/// \file ablation_fabric.cpp
/// \brief Fabric-parameter sensitivity: LEQA vs QSPR across fabric sizes
///        and channel capacities.
///
/// Algorithm 1 takes the fabric size as a free input ("this value can be
/// changed to find the optimal size"); the Nc knob drives the M/M/1
/// congestion branch of Eq. 8.  For the estimator to be useful in design-
/// space exploration its *trends* must agree with the detailed mapper:
/// both should relax with a larger fabric and tighten with a smaller Nc.
/// Every parameter point is one pipeline request with a parameter override;
/// the session synthesizes the workload and builds its graphs exactly once.
///
/// The third sweep exercises the fabric::Topology axis: the same workload
/// mapped and estimated on a grid, a torus, and the area-equivalent
/// ion-trap line.  The wraparound should relax routing (shorter average
/// CNOT travel), the line should tighten it.
#include <cmath>
#include <cstdio>

#include "fabric/topology.h"
#include "harness.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
    using namespace leqa;

    std::printf("=== Ablation: fabric size and channel capacity sensitivity ===\n");
    std::printf("workload: gf2^16mult (48 qubits, 3885 FT ops)\n\n");

    auto pipe = bench::make_suite_pipeline(fabric::PhysicalParams{}); // Table 1
    const pipeline::CircuitSource workload =
        pipeline::CircuitSource::from_bench("gf2^16mult");

    const auto run_point = [&](const fabric::PhysicalParams& params) {
        pipeline::EstimationRequest request(workload, pipeline::RunMode::Both);
        request.params = params;
        return pipe.run(request);
    };

    {
        std::printf("-- fabric size sweep (Nc = 5) --\n");
        util::Table table({"fabric", "QSPR actual (s)", "LEQA estimate (s)", "error (%)"});
        double prev_actual = -1.0;
        double prev_estimate = -1.0;
        int trend_agreements = 0;
        int trend_checks = 0;
        for (const int side : {10, 14, 20, 30, 40, 60, 80}) {
            fabric::PhysicalParams params;
            params.width = side;
            params.height = side;
            const pipeline::EstimationResult result = run_point(params);
            const double actual_s = result.mapping->latency_us * 1e-6;
            const double estimate_s = result.estimate->latency_seconds();
            table.add_row({std::to_string(side) + "x" + std::to_string(side),
                           util::format_scientific(actual_s, 3),
                           util::format_scientific(estimate_s, 3),
                           util::format_double(100.0 * std::abs(estimate_s - actual_s) /
                                                   actual_s,
                                               3)});
            if (prev_actual > 0.0) {
                ++trend_checks;
                const bool actual_down = actual_s <= prev_actual * 1.02;
                const bool estimate_down = estimate_s <= prev_estimate * 1.02;
                if (actual_down == estimate_down) ++trend_agreements;
            }
            prev_actual = actual_s;
            prev_estimate = estimate_s;
        }
        std::printf("%s", table.to_string().c_str());
        std::printf("trend agreement (larger fabric relaxes both): %d/%d\n\n",
                    trend_agreements, trend_checks);
    }

    {
        std::printf("-- channel capacity sweep (60x60 fabric) --\n");
        util::Table table({"Nc", "QSPR actual (s)", "LEQA estimate (s)", "error (%)"});
        for (const int nc : {1, 2, 3, 5, 8, 12}) {
            fabric::PhysicalParams params;
            params.nc = nc;
            const pipeline::EstimationResult result = run_point(params);
            const double actual_s = result.mapping->latency_us * 1e-6;
            const double estimate_s = result.estimate->latency_seconds();
            table.add_row({std::to_string(nc), util::format_scientific(actual_s, 3),
                           util::format_scientific(estimate_s, 3),
                           util::format_double(100.0 * std::abs(estimate_s - actual_s) /
                                                   actual_s,
                                               3)});
        }
        std::printf("%s", table.to_string().c_str());
        std::printf("note: at the Table 1 operating point (Nc = 5) the channels are\n"
                    "mostly uncongested, so both tools flatten above small Nc -- the\n"
                    "M/M/1 branch of Eq. 8 only engages when zones overlap heavily.\n\n");
    }

    {
        std::printf("-- topology sweep (fixed 400-ULB area, Nc = 5) --\n");
        util::Table table(
            {"topology", "fabric", "QSPR actual (s)", "LEQA estimate (s)", "error (%)"});
        for (const auto kind :
             {fabric::TopologyKind::Grid, fabric::TopologyKind::Torus,
              fabric::TopologyKind::Line}) {
            fabric::PhysicalParams params;
            params.topology = kind;
            if (kind == fabric::TopologyKind::Line) {
                params.width = 400;
                params.height = 1;
            } else {
                params.width = 20;
                params.height = 20;
            }
            const pipeline::EstimationResult result = run_point(params);
            const double actual_s = result.mapping->latency_us * 1e-6;
            const double estimate_s = result.estimate->latency_seconds();
            table.add_row({fabric::topology_kind_name(kind),
                           std::to_string(params.width) + "x" +
                               std::to_string(params.height),
                           util::format_scientific(actual_s, 3),
                           util::format_scientific(estimate_s, 3),
                           util::format_double(100.0 * std::abs(estimate_s - actual_s) /
                                                   actual_s,
                                               3)});
        }
        std::printf("%s", table.to_string().c_str());
        std::printf("pipeline cache over all sweeps: %s\n",
                    pipe.cache_stats().to_string().c_str());
    }
    return 0;
}

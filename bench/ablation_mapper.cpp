/// \file ablation_mapper.cpp
/// \brief Ablation of the QSPR baseline's design choices (DESIGN.md §4):
///        routing algorithm (congestion-aware maze vs fixed XY), schedule
///        policy (program order vs critical-path priority), and placement.
///
/// Two questions: how much do the detailed mapper's choices move the
/// "actual" latency, and does LEQA (calibrated once, against the default
/// configuration) stay accurate when the mapper underneath it changes --
/// the paper's claim that v is the only knob needed per mapper.  One
/// pipeline session serves every variant: swapping mapper options keeps the
/// cached FT circuits and graphs, so only the detailed mapping re-runs.
#include <cmath>
#include <cstdio>

#include "harness.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
    using namespace leqa;

    std::printf("=== Ablation: QSPR mapper design choices ===\n");
    std::printf("workload: gf2^16mult; LEQA calibrated once per mapper variant\n\n");

    auto pipe = bench::make_suite_pipeline(fabric::PhysicalParams{}); // Table 1
    const pipeline::CircuitSource workload =
        pipeline::CircuitSource::from_bench("gf2^16mult");

    struct Variant {
        const char* label;
        qspr::QsprOptions options;
    };
    std::vector<Variant> variants;
    {
        Variant v{"maze + program-order (default)", {}};
        variants.push_back(v);
    }
    {
        Variant v{"xy + program-order", {}};
        v.options.routing = qspr::RoutingAlgorithm::Xy;
        variants.push_back(v);
    }
    {
        Variant v{"maze + critical-path priority", {}};
        v.options.schedule = qspr::SchedulePolicy::CriticalPathPriority;
        variants.push_back(v);
    }
    {
        Variant v{"maze + random placement", {}};
        v.options.placement = qspr::PlacementStrategy::Random;
        v.options.seed = 42;
        variants.push_back(v);
    }

    util::Table table({"mapper variant", "actual (s)", "calibrated v",
                       "LEQA estimate (s)", "|error| (%)", "qspr time (s)"});
    for (const Variant& variant : variants) {
        // Swap the session's mapper; cached circuits and graphs survive.
        pipe.set_qspr_options(variant.options);

        // Re-calibrate v against this mapper variant (the paper: "this
        // parameter also can be used for tuning the LEQA with different
        // quantum mappers").
        const auto calibration = bench::calibrate_on_smallest(pipe);
        pipe.apply_calibration(calibration);

        pipeline::EstimationRequest request(workload, pipeline::RunMode::Both);
        const pipeline::EstimationResult result = pipe.run(request);
        const double actual_s = result.mapping->latency_us * 1e-6;
        const double estimate_s = result.estimate->latency_seconds();

        table.add_row({variant.label, util::format_scientific(actual_s, 3),
                       util::format_double(calibration.v, 4),
                       util::format_scientific(estimate_s, 3),
                       util::format_double(
                           100.0 * std::abs(estimate_s - actual_s) / actual_s, 3),
                       util::format_double(result.times.map_s, 3)});
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("\npipeline cache across all variants: %s\n",
                pipe.cache_stats().to_string().c_str());
    std::printf("reading: the mapper's own latency moves with its design choices,\n"
                "and a single re-fitted v keeps LEQA within a few percent of each\n"
                "variant -- the paper's per-mapper tuning story.\n");
    return 0;
}

/// \file ablation_sq_terms.cpp
/// \brief Ablation of the E[S_q] truncation (paper §3.1): "only the first
///        20 terms are calculated in practice.  Simulation results show
///        that this choice does not dramatically affect the accuracy of
///        the estimation while it substantially improves the runtime."
///
/// Sweeps the truncation point on two benchmarks with very different qubit
/// counts and reports the estimate drift vs the exact (all Q terms)
/// reference, plus the estimator runtime.
#include <cmath>
#include <cstdio>

#include "benchgen/suite.h"
#include "core/leqa.h"
#include "fabric/params.h"
#include "iig/iig.h"
#include "qodg/qodg.h"
#include "synth/ft_synth.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace leqa;

void sweep(const std::string& name) {
    const auto ft = benchgen::make_ft_benchmark(name).circuit;
    const qodg::Qodg graph(ft);
    const iig::Iig iig(ft);
    const fabric::PhysicalParams params; // Table 1

    core::LeqaOptions exact_options;
    exact_options.exact_sq = true;
    util::Stopwatch exact_clock;
    const auto exact =
        core::LeqaEstimator(params, exact_options).estimate(graph, iig);
    const double exact_s = exact_clock.seconds();

    std::printf("--- %s: Q = %zu qubits, exact reference D = %.6E s "
                "(%.1f ms) ---\n",
                name.c_str(), iig.num_qubits(), exact.latency_seconds(),
                exact_s * 1e3);

    util::Table table({"E[S_q] terms", "D (s)", "drift vs exact (%)", "runtime (ms)"});
    for (const int terms : {1, 2, 3, 5, 10, 20, 50, 100}) {
        if (static_cast<std::size_t>(terms) > iig.num_qubits()) break;
        core::LeqaOptions options;
        options.sq_terms = terms;
        const core::LeqaEstimator estimator(params, options);
        util::Stopwatch clock;
        const auto estimate = estimator.estimate(graph, iig);
        const double runtime_ms = clock.milliseconds();
        const double drift =
            100.0 * std::abs(estimate.latency_us - exact.latency_us) / exact.latency_us;
        table.add_row({std::to_string(terms),
                       util::format_scientific(estimate.latency_seconds(), 3),
                       util::format_double(drift, 3), util::format_double(runtime_ms, 3)});
    }
    std::printf("%s\n", table.to_string().c_str());
}

} // namespace

int main() {
    std::printf("=== Ablation: E[S_q] truncation (paper: first 20 terms) ===\n\n");
    sweep("hwb50ps");    // Q = 370
    sweep("hwb100ps");   // Q = 1106: exact path is Q*A binomial evaluations
    std::printf("claim check: at 20 terms the drift should be a fraction of a\n"
                "percent while the runtime stays flat vs Q (the exact reference\n"
                "grows with Q).\n");
    return 0;
}

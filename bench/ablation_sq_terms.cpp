/// \file ablation_sq_terms.cpp
/// \brief Ablation of the E[S_q] truncation (paper §3.1): "only the first
///        20 terms are calculated in practice.  Simulation results show
///        that this choice does not dramatically affect the accuracy of
///        the estimation while it substantially improves the runtime."
///
/// Sweeps the truncation point on two benchmarks with very different qubit
/// counts and reports the estimate drift vs the exact (all Q terms)
/// reference, plus the estimator runtime.  One pipeline session per
/// benchmark: swapping the estimator options keeps the cached graphs, so
/// the sweep isolates exactly the E[S_q] evaluation cost.
#include <cmath>
#include <cstdio>

#include "harness.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace leqa;

void sweep(const std::string& name) {
    auto pipe = bench::make_suite_pipeline(fabric::PhysicalParams{}); // Table 1
    const pipeline::CircuitSource source = pipeline::CircuitSource::from_bench(name);
    const pipeline::EstimationRequest request(source);

    core::LeqaOptions exact_options;
    exact_options.exact_sq = true;
    pipe.set_leqa_options(exact_options);
    const pipeline::EstimationResult exact = pipe.run(request);
    const std::size_t num_qubits = exact.circuit.qubits;

    std::printf("--- %s: Q = %zu qubits, exact reference D = %.6E s "
                "(%.1f ms) ---\n",
                name.c_str(), num_qubits, exact.estimate->latency_seconds(),
                exact.times.estimate_s * 1e3);

    util::Table table({"E[S_q] terms", "D (s)", "drift vs exact (%)", "runtime (ms)"});
    for (const int terms : {1, 2, 3, 5, 10, 20, 50, 100}) {
        if (static_cast<std::size_t>(terms) > num_qubits) break;
        core::LeqaOptions options;
        options.sq_terms = terms;
        pipe.set_leqa_options(options);
        const pipeline::EstimationResult result = pipe.run(request);
        const double drift = 100.0 *
                             std::abs(result.estimate->latency_us -
                                      exact.estimate->latency_us) /
                             exact.estimate->latency_us;
        table.add_row({std::to_string(terms),
                       util::format_scientific(result.estimate->latency_seconds(), 3),
                       util::format_double(drift, 3),
                       util::format_double(result.times.estimate_s * 1e3, 3)});
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("cache: %s\n\n", pipe.cache_stats().to_string().c_str());
}

} // namespace

int main() {
    std::printf("=== Ablation: E[S_q] truncation (paper: first 20 terms) ===\n\n");
    sweep("hwb50ps");    // Q = 370
    sweep("hwb100ps");   // Q = 1106: exact path is Q*A binomial evaluations
    std::printf("claim check: at 20 terms the drift should be a fraction of a\n"
                "percent while the runtime stays flat vs Q (the exact reference\n"
                "grows with Q).\n");
    return 0;
}

/// \file calibration.cpp
/// \brief The v-tuning curve (paper §3.2): v "can be used for tuning the
///        LEQA with different quantum mappers".
///
/// Prints the mean-absolute-relative-error curve of LEQA over the three
/// training benchmarks as a function of v, then the golden-section optimum
/// the other benches use, and finally the held-out error on three unseen
/// benchmarks at that frozen v.
#include <cstdio>

#include "harness.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
    using namespace leqa;

    std::printf("=== Calibration: fitting LEQA's v against the QSPR mapper ===\n\n");

    const fabric::PhysicalParams base; // Table 1 (v = 0.001 default)
    const qspr::QsprMapper mapper(base);

    // Training set: the three smallest suite benchmarks.
    const std::vector<std::string> training = {"8bitadder", "gf2^16mult", "hwb15ps"};
    std::vector<circuit::Circuit> train_circuits;
    for (const auto& name : training) {
        train_circuits.push_back(benchgen::make_ft_benchmark(name).circuit);
    }
    std::vector<core::CalibrationSample> samples;
    for (const auto& circ : train_circuits) {
        samples.push_back({&circ, mapper.map(circ).latency_us});
    }

    std::printf("-- error vs v curve (training set) --\n");
    util::Table curve({"v", "mean |error| (%)"});
    for (const double v : {1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 2e-3, 3e-3, 5e-3, 1e-2, 3e-2, 1e-1}) {
        fabric::PhysicalParams params = base;
        params.v = v;
        const double error =
            core::mean_abs_relative_error(samples, params, core::LeqaOptions{});
        curve.add_row({util::format_double(v, 4), util::format_double(error * 100.0, 4)});
    }
    std::printf("%s\n", curve.to_string().c_str());

    const auto result = core::calibrate_v(samples, base);
    std::printf("golden-section optimum: v = %.6f, training error %.2f%% "
                "(%zu estimator evaluations)\n\n",
                result.v, result.mean_abs_rel_error * 100.0, result.evaluations);

    // Held-out check on three unseen benchmarks.
    std::printf("-- held-out error at the frozen v --\n");
    fabric::PhysicalParams tuned = base;
    tuned.v = result.v;
    const core::LeqaEstimator estimator(tuned);
    util::Table held({"benchmark", "actual (s)", "estimated (s)", "|error| (%)"});
    for (const std::string name : {"hwb16ps", "gf2^20mult", "ham15"}) {
        const auto circ = benchgen::make_ft_benchmark(name).circuit;
        const double actual_s = mapper.map(circ).latency_us * 1e-6;
        const double estimate_s = estimator.estimate(circ).latency_seconds();
        held.add_row({name, util::format_scientific(actual_s, 3),
                      util::format_scientific(estimate_s, 3),
                      util::format_double(100.0 * std::abs(estimate_s - actual_s) / actual_s,
                                          3)});
    }
    std::printf("%s", held.to_string().c_str());
    std::printf("\nThe paper's Table 1 default (v = 0.001) sits on the flat region\n"
                "of the curve for its mapper; ours lands nearby for this mapper.\n");
    return 0;
}

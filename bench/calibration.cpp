/// \file calibration.cpp
/// \brief The v-tuning curve (paper §3.2): v "can be used for tuning the
///        LEQA with different quantum mappers".
///
/// Prints the mean-absolute-relative-error curve of LEQA over the three
/// training benchmarks as a function of v, then the golden-section optimum
/// the other benches use, and finally the held-out error on three unseen
/// benchmarks at that frozen v.  Everything runs through one pipeline
/// session: the training circuits are synthesized once, their graphs built
/// once, and both the curve scan and the calibrator reuse them.
#include <cmath>
#include <cstdio>

#include "harness.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
    using namespace leqa;

    std::printf("=== Calibration: fitting LEQA's v against the QSPR mapper ===\n\n");

    auto pipe = bench::make_suite_pipeline(fabric::PhysicalParams{}); // Table 1
    const fabric::PhysicalParams base = pipe.config().params;         // v = 0.001

    // Training set: the three smallest suite benchmarks, mapped once by the
    // session's QSPR configuration (cached for the calibrator below).
    const auto training = pipe.training_samples(bench::training_sources());

    std::printf("-- error vs v curve (training set) --\n");
    util::Table curve({"v", "mean |error| (%)"});
    for (const double v : {1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 2e-3, 3e-3, 5e-3, 1e-2, 3e-2, 1e-1}) {
        fabric::PhysicalParams params = base;
        params.v = v;
        const double error = core::mean_abs_relative_error(training.graph_samples,
                                                           params, core::LeqaOptions{});
        curve.add_row({util::format_double(v, 4), util::format_double(error * 100.0, 4)});
    }
    std::printf("%s\n", curve.to_string().c_str());

    // Calibrate on the same training set: no re-mapping, no graph rebuilds.
    const auto result = pipe.calibrate(training);
    std::printf("golden-section optimum: v = %.6f, training error %.2f%% "
                "(%zu estimator evaluations)\n\n",
                result.v, result.mean_abs_rel_error * 100.0, result.evaluations);

    // Held-out check on three unseen benchmarks at the frozen v.
    std::printf("-- held-out error at the frozen v --\n");
    pipe.apply_calibration(result);
    util::Table held({"benchmark", "actual (s)", "estimated (s)", "|error| (%)"});
    for (const std::string name : {"hwb16ps", "gf2^20mult", "ham15"}) {
        pipeline::EstimationRequest request(pipeline::CircuitSource::from_bench(name),
                                            pipeline::RunMode::Both);
        const pipeline::EstimationResult held_out = pipe.run(request);
        const double actual_s = held_out.mapping->latency_us * 1e-6;
        const double estimate_s = held_out.estimate->latency_seconds();
        held.add_row({name, util::format_scientific(actual_s, 3),
                      util::format_scientific(estimate_s, 3),
                      util::format_double(100.0 * std::abs(estimate_s - actual_s) / actual_s,
                                          3)});
    }
    std::printf("%s", held.to_string().c_str());
    std::printf("\npipeline cache over the whole run: %s\n",
                pipe.cache_stats().to_string().c_str());
    std::printf("The paper's Table 1 default (v = 0.001) sits on the flat region\n"
                "of the curve for its mapper; ours lands nearby for this mapper.\n");
    return 0;
}

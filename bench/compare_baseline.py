#!/usr/bin/env python3
"""Compare bench artifacts against last-known-good baselines.

Reads bench/baselines.json and, for each metric, extracts a value from a
bench artifact (BENCH_sweep.json / BENCH_service.json) by dotted path --
`a.b.c`, with `[3]` for array indices and `[key=value]` for searching an
array of objects -- and checks it against the metric's bounds:

  * `equals`: the value must equal this exactly (counts, booleans);
  * `min` / `max`: inclusive numeric bounds (ratio metrics);
  * neither: report-only, printed for trend-watching.

A metric may also carry `requires`: a list of preconditions (same schema,
against the same artifact) that must all hold for the metric to be
judgeable at all.  The canonical case is thread-scaling: a 4-thread
speedup bound is meaningless on a 1-core box, so the metric requires
`explore.hardware_threads >= 4` and resolves to UNKNOWN -- not PASS, not
FAIL -- when the precondition is unmet.  Precondition-unmet UNKNOWNs are
environmental, not rot, and are exempt from --strict.

Verdicts per metric: PASS, FAIL (a gated bound was violated), REPORT
(no bounds / mode report), UNKNOWN (artifact or path missing, or a
`requires` precondition unmet).  The exit code is nonzero only when a
gated metric FAILs -- or, with --strict, when any gated metric is
UNKNOWN for a reason other than an unmet precondition (CI uses this:
there, both artifacts are freshly generated, so a missing path means the
bench or the baseline rotted).

Usage:
  compare_baseline.py [--baselines bench/baselines.json]
                      [--sweep BENCH_sweep.json]
                      [--service BENCH_service.json]
                      [--strict]
"""
import argparse
import json
import re
import sys

_INDEX = re.compile(r"\[([^\]]+)\]")


def split_path(path):
    """'a.b[2].c[name=torus].d' -> ['a', 'b', 2, 'c', ('name', 'torus'), 'd']"""
    steps = []
    for part in path.split("."):
        head = part.split("[", 1)[0]
        if head:
            steps.append(head)
        for selector in _INDEX.findall(part):
            if "=" in selector:
                key, value = selector.split("=", 1)
                steps.append((key, value))
            else:
                steps.append(int(selector))
    return steps


def extract(document, path):
    """The value at `path`, or None when any step is missing."""
    node = document
    for step in split_path(path):
        if isinstance(step, str):
            if not isinstance(node, dict) or step not in node:
                return None
            node = node[step]
        elif isinstance(step, int):
            if not isinstance(node, list) or not -len(node) <= step < len(node):
                return None
            node = node[step]
        else:  # (key, value) search in an array of objects
            key, value = step
            if not isinstance(node, list):
                return None
            matches = [item for item in node
                       if isinstance(item, dict) and str(item.get(key)) == value]
            if not matches:
                return None
            node = matches[0]
    return node


def check(metric, value):
    """(verdict, detail) for one extracted value."""
    if value is None:
        return "UNKNOWN", "value missing from artifact"
    if "equals" in metric:
        want = metric["equals"]
        ok = value == want and isinstance(value, type(want))
        return ("PASS" if ok else "FAIL"), f"value {value!r}, want == {want!r}"
    bounds = []
    ok = True
    if "min" in metric:
        bounds.append(f">= {metric['min']}")
        ok = ok and isinstance(value, (int, float)) and value >= metric["min"]
    if "max" in metric:
        bounds.append(f"<= {metric['max']}")
        ok = ok and isinstance(value, (int, float)) and value <= metric["max"]
    if not bounds:
        return "REPORT", f"value {value!r} (baseline {metric.get('baseline')!r})"
    return ("PASS" if ok else "FAIL"), f"value {value!r}, want {' and '.join(bounds)}"


def requires_met(metric, document):
    """True when every `requires` precondition holds against `document`.

    A precondition uses the same schema as a metric (path + equals/min/max);
    a missing path or a violated bound both mean "not judgeable here".
    """
    for precondition in metric.get("requires", []):
        verdict, _ = check(precondition, extract(document, precondition["path"]))
        if verdict != "PASS":
            return False
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baselines", default="bench/baselines.json")
    parser.add_argument("--sweep", default="BENCH_sweep.json",
                        help="path of the sweep_perf artifact")
    parser.add_argument("--service", default="BENCH_service.json",
                        help="path of the load_harness artifact")
    parser.add_argument("--strict", action="store_true",
                        help="treat UNKNOWN on a gated metric as failure")
    args = parser.parse_args()

    with open(args.baselines) as handle:
        baselines = json.load(handle)

    artifacts = {}
    for name, path in (("sweep", args.sweep), ("service", args.service)):
        try:
            with open(path) as handle:
                artifacts[name] = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            artifacts[name] = None
            print(f"note: artifact '{name}' unreadable at {path}: {error}")

    failures = 0
    unknown_gates = 0
    for metric in baselines["metrics"]:
        gated = metric.get("mode", "gate") == "gate"
        precondition_unmet = False
        document = artifacts.get(metric["artifact"])
        if document is None:
            verdict, detail = "UNKNOWN", "artifact missing"
        elif not requires_met(metric, document):
            # Not judgeable in this environment (e.g. a 4-thread speedup
            # bound on a 1-core box): UNKNOWN, never PASS -- and exempt
            # from --strict, since the artifact itself is healthy.
            verdict, detail = "UNKNOWN", "precondition unmet"
            precondition_unmet = True
        else:
            verdict, detail = check(metric, extract(document, metric["path"]))
        if not gated and verdict in ("PASS", "FAIL"):
            verdict = "REPORT"  # report mode never judges, even with bounds
        if verdict == "FAIL":
            failures += 1
        if verdict == "UNKNOWN" and gated and not precondition_unmet:
            unknown_gates += 1
        tag = "gate" if gated else "report"
        print(f"{verdict:7s} [{tag}] {metric['artifact']}:{metric['path']}  {detail}")
        if verdict == "FAIL":
            print(f"        note: {metric.get('note', '')}")

    print(f"\n{failures} gated failure(s), {unknown_gates} unknown gated metric(s)")
    if failures or (args.strict and unknown_gates):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

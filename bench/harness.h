/// \file harness.h
/// \brief Shared machinery for the paper-reproduction bench binaries.
///
/// Methodology (matches the paper §4):
///   - QSPR (our re-implementation, congestion-aware maze routing) produces
///     the "actual" latency of each benchmark;
///   - LEQA's speed parameter v is calibrated once on the three smallest
///     benchmarks against that mapper (the paper's stated use of v as the
///     mapper-tuning knob) and then frozen;
///   - both tools run on the identical FT netlist; wall-clock runtimes
///     cover mapping / estimation only (generation and synthesis excluded,
///     mirroring the paper's shared-parser setup).
///
/// Environment knobs:
///   LEQA_BENCH_FAST=1   skip benchmarks above 80k FT ops (quick CI runs)
///   LEQA_BENCH_LIMIT=N  custom op-count cap
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "benchgen/suite.h"
#include "core/calibrate.h"
#include "core/leqa.h"
#include "fabric/params.h"
#include "qspr/qspr.h"
#include "synth/ft_synth.h"
#include "util/env.h"
#include "util/stopwatch.h"

namespace leqa::bench {

/// One evaluated suite row (ours + the paper's published values).
struct SuiteRow {
    benchgen::PaperBenchmark spec;
    std::size_t qubits = 0;
    std::size_t ops = 0;
    double actual_s = 0.0;
    double estimated_s = 0.0;
    double error_pct = 0.0;
    double qspr_runtime_s = 0.0;
    double leqa_runtime_s = 0.0;
    double speedup = 0.0;
};

/// Op-count cap from the environment (0 = no cap).
inline std::size_t bench_op_limit() {
    if (util::env_flag("LEQA_BENCH_FAST")) return 80000;
    return static_cast<std::size_t>(util::env_int("LEQA_BENCH_LIMIT", 0));
}

/// Calibrate v on the three smallest suite benchmarks against QSPR.
inline core::CalibrationResult calibrate_on_smallest(
    const fabric::PhysicalParams& params, const qspr::QsprOptions& qspr_options = {}) {
    const std::vector<std::string> training = {"8bitadder", "gf2^16mult", "hwb15ps"};
    std::vector<circuit::Circuit> circuits;
    circuits.reserve(training.size());
    for (const auto& name : training) {
        circuits.push_back(benchgen::make_ft_benchmark(name).circuit);
    }
    const qspr::QsprMapper mapper(params, qspr_options);
    std::vector<core::CalibrationSample> samples;
    for (const auto& circ : circuits) {
        samples.push_back({&circ, mapper.map(circ).latency_us});
    }
    return core::calibrate_v(samples, params);
}

/// Evaluate the full suite: QSPR actual + LEQA estimate + wall times.
inline std::vector<SuiteRow> run_suite(const fabric::PhysicalParams& params,
                                       const core::LeqaOptions& leqa_options = {},
                                       const qspr::QsprOptions& qspr_options = {},
                                       bool verbose = true) {
    const std::size_t limit = bench_op_limit();
    std::vector<SuiteRow> rows;
    for (const auto& spec : benchgen::paper_suite()) {
        if (limit > 0 && spec.paper_ops > limit) {
            if (verbose) {
                std::fprintf(stderr, "[bench] skipping %s (%zu ops > limit %zu)\n",
                             spec.name.c_str(), spec.paper_ops, limit);
            }
            continue;
        }
        SuiteRow row;
        row.spec = spec;
        const auto ft = benchgen::make_ft_benchmark(spec.name);
        row.qubits = ft.circuit.num_qubits();
        row.ops = ft.circuit.size();

        const qspr::QsprMapper mapper(params, qspr_options);
        util::Stopwatch qspr_clock;
        const auto actual = mapper.map(ft.circuit);
        row.qspr_runtime_s = qspr_clock.seconds();
        row.actual_s = actual.latency_us * 1e-6;

        const core::LeqaEstimator estimator(params, leqa_options);
        util::Stopwatch leqa_clock;
        const auto estimate = estimator.estimate(ft.circuit);
        row.leqa_runtime_s = leqa_clock.seconds();
        row.estimated_s = estimate.latency_seconds();

        row.error_pct = 100.0 * std::abs(row.estimated_s - row.actual_s) / row.actual_s;
        row.speedup = row.leqa_runtime_s > 0.0 ? row.qspr_runtime_s / row.leqa_runtime_s : 0.0;
        if (verbose) {
            std::fprintf(stderr, "[bench] %-18s actual %.3E s, estimate %.3E s (%.2f%%), "
                                 "qspr %.3fs, leqa %.4fs\n",
                         spec.name.c_str(), row.actual_s, row.estimated_s, row.error_pct,
                         row.qspr_runtime_s, row.leqa_runtime_s);
        }
        rows.push_back(row);
    }
    return rows;
}

} // namespace leqa::bench

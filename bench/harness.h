/// \file harness.h
/// \brief Shared machinery for the paper-reproduction bench binaries.
///
/// Methodology (matches the paper §4):
///   - QSPR (our re-implementation, congestion-aware maze routing) produces
///     the "actual" latency of each benchmark;
///   - LEQA's speed parameter v is calibrated once on the three smallest
///     benchmarks against that mapper (the paper's stated use of v as the
///     mapper-tuning knob) and then frozen;
///   - both tools run on the identical FT netlist through one
///     leqa::pipeline::Pipeline session; per-stage wall times come from the
///     pipeline (LEQA runtime = graph build + estimate, QSPR runtime = the
///     map stage).  run_suite clears the session cache first so every row
///     pays the full graph-build cost -- the timing methodology must be
///     uniform across rows for the Table 3 speedup column, even though a
///     production sweep would happily keep the calibration-warmed entries.
///
/// Environment knobs:
///   LEQA_BENCH_FAST=1   skip benchmarks above 80k FT ops (quick CI runs)
///   LEQA_BENCH_LIMIT=N  custom op-count cap
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "benchgen/suite.h"
#include "core/calibrate.h"
#include "pipeline/pipeline.h"
#include "util/env.h"

namespace leqa::bench {

/// One evaluated suite row (ours + the paper's published values).
struct SuiteRow {
    benchgen::PaperBenchmark spec;
    std::size_t qubits = 0;
    std::size_t ops = 0;
    double actual_s = 0.0;
    double estimated_s = 0.0;
    double error_pct = 0.0;
    double qspr_runtime_s = 0.0;
    double leqa_runtime_s = 0.0;
    double speedup = 0.0;
};

/// Op-count cap from the environment (0 = no cap).
inline std::size_t bench_op_limit() {
    if (util::env_flag("LEQA_BENCH_FAST")) return 80000;
    return static_cast<std::size_t>(util::env_int("LEQA_BENCH_LIMIT", 0));
}

/// A pipeline session for suite evaluation.  The cache bound is kept small:
/// the suite's large benchmarks are visited once each, and bounding the
/// cache keeps peak memory near the seed's one-circuit-at-a-time level.
inline pipeline::Pipeline make_suite_pipeline(const fabric::PhysicalParams& params,
                                              const qspr::QsprOptions& qspr_options = {},
                                              const core::LeqaOptions& leqa_options = {}) {
    pipeline::PipelineConfig config;
    config.params = params;
    config.qspr = qspr_options;
    config.leqa = leqa_options;
    config.max_cached_circuits = 4;
    return pipeline::Pipeline(config);
}

/// The paper's three smallest suite benchmarks (the calibration set).
inline std::vector<pipeline::CircuitSource> training_sources() {
    return {pipeline::CircuitSource::from_bench("8bitadder"),
            pipeline::CircuitSource::from_bench("gf2^16mult"),
            pipeline::CircuitSource::from_bench("hwb15ps")};
}

/// Calibrate v on the three smallest suite benchmarks against the session's
/// mapper (and leave those circuits warm in the session cache).
inline core::CalibrationResult calibrate_on_smallest(pipeline::Pipeline& pipe) {
    return pipe.calibrate(training_sources());
}

/// Evaluate the full suite through the session: QSPR actual + LEQA estimate
/// + per-stage wall times.  Starts from a cold cache so the runtime columns
/// are methodologically uniform across rows (see the header comment).
inline std::vector<SuiteRow> run_suite(pipeline::Pipeline& pipe, bool verbose = true) {
    pipe.clear_cache();
    const std::size_t limit = bench_op_limit();
    std::vector<SuiteRow> rows;
    for (const auto& spec : benchgen::paper_suite()) {
        if (limit > 0 && spec.paper_ops > limit) {
            if (verbose) {
                std::fprintf(stderr, "[bench] skipping %s (%zu ops > limit %zu)\n",
                             spec.name.c_str(), spec.paper_ops, limit);
            }
            continue;
        }
        pipeline::EstimationRequest request(
            pipeline::CircuitSource::from_bench(spec.name), pipeline::RunMode::Both);
        const pipeline::EstimationResult result = pipe.run(request);

        SuiteRow row;
        row.spec = spec;
        row.qubits = result.circuit.qubits;
        row.ops = result.circuit.ft_ops;
        row.actual_s = result.mapping->latency_us * 1e-6;
        row.estimated_s = result.estimate->latency_seconds();
        row.qspr_runtime_s = result.times.map_s;
        row.leqa_runtime_s = result.times.graphs_s + result.times.estimate_s;
        row.error_pct = 100.0 * std::abs(row.estimated_s - row.actual_s) / row.actual_s;
        row.speedup =
            row.leqa_runtime_s > 0.0 ? row.qspr_runtime_s / row.leqa_runtime_s : 0.0;
        if (verbose) {
            std::fprintf(stderr, "[bench] %-18s actual %.3E s, estimate %.3E s (%.2f%%), "
                                 "qspr %.3fs, leqa %.4fs\n",
                         spec.name.c_str(), row.actual_s, row.estimated_s, row.error_pct,
                         row.qspr_runtime_s, row.leqa_runtime_s);
        }
        rows.push_back(row);
    }
    return rows;
}

} // namespace leqa::bench

/// \file load_harness.cpp
/// \brief Sustained-load bench for the TCP service: an in-process
///        net::Server driven by many concurrent closed-loop client
///        connections over real loopback sockets, plus a backpressure
///        phase against a deliberately tiny queue.  Records sustained
///        req/s, error/reject counts, and p50/p99/p999 latencies into
///        BENCH_service.json.
///
/// Phase 1 -- sustained mixed load: N connections (64 by default -- the
/// acceptance bar; 16 under LEQA_BENCH_FAST), each a closed loop of M
/// requests over one socket: mostly cache-warm estimates with a sprinkle
/// of sweeps, small explores, and inline stats ops.  Every response is
/// parsed and id-checked; any parse failure, id mismatch, or unexpected
/// error is a protocol error, and the run demands zero.
///
/// Phase 2 -- backpressure: a fresh service with --threads 1 and
/// --max-queue 4.  A slow explore job pins the single worker (confirmed
/// running via an inline stats op before the burst), four cheap jobs
/// fill the queue, and a burst of further requests must come back as
/// retryable `Unavailable` rejections while the reactor stays responsive
/// (a stats round trip is timed *during* the overload).  The final drain
/// must answer every accepted request exactly once.
///
/// Environment knobs: LEQA_BENCH_FAST shrinks the load (16 connections x
/// 16 requests); LEQA_SERVICE_JSON overrides the artifact path.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mathx/stats.h"
#include "net/server.h"
#include "net/socket.h"
#include "service/service.h"
#include "service/wire.h"
#include "util/env.h"
#include "util/json.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace {

using namespace leqa;
namespace wire = service::wire;

/// The tiny suite circuit every load request targets: cache-warm after the
/// first touch, so the phase measures the service + wire + reactor path,
/// not synthesis.
const char* kSource = "bench:ham3";

wire::WireRequest make_estimate(std::uint64_t id) {
    wire::WireRequest request;
    request.id = id;
    request.op = wire::WireRequest::Op::Estimate;
    request.source = kSource;
    return request;
}

wire::WireRequest make_sweep(std::uint64_t id) {
    wire::WireRequest request;
    request.id = id;
    request.op = wire::WireRequest::Op::Sweep;
    request.source = kSource;
    request.axis = service::SweepAxis::FabricSides;
    request.values = {40, 50, 60};
    return request;
}

wire::WireRequest make_explore(std::uint64_t id) {
    wire::WireRequest request;
    request.id = id;
    request.op = wire::WireRequest::Op::Explore;
    request.source = kSource;
    request.explore.sides = {40, 50};
    request.explore.speeds = {0.001, 0.002};
    request.explore.threads = 1; // the box is already saturated with clients
    return request;
}

wire::WireRequest make_stats(std::uint64_t id) {
    wire::WireRequest request;
    request.id = id;
    request.op = wire::WireRequest::Op::Stats;
    return request;
}

/// The i-th request of a connection's closed loop: mostly estimates, with
/// sweeps, explores, and stats ops mixed in at fixed phases so every
/// connection exercises every op shape.
wire::WireRequest mixed_request(std::uint64_t id, int i) {
    switch (i % 16) {
        case 5: return make_sweep(id);
        case 11: return make_explore(id);
        case 15: return make_stats(id);
        default: return make_estimate(id);
    }
}


/// One closed-loop connection's tally.
struct WorkerResult {
    std::vector<double> latencies_s; ///< per-request round-trip seconds
    std::size_t protocol_errors = 0; ///< parse / id / unexpected-error
    std::size_t rejected = 0;        ///< Unavailable responses (retryable)
};

/// Run one connection: M requests, one outstanding at a time, each timed
/// send -> matching response.
WorkerResult run_connection(const std::string& host, std::uint16_t port,
                            int requests) {
    WorkerResult result;
    result.latencies_s.reserve(static_cast<std::size_t>(requests));
    try {
        net::Client client(host, port);
        for (int i = 0; i < requests; ++i) {
            const std::uint64_t id = static_cast<std::uint64_t>(i) + 1;
            const wire::WireRequest request = mixed_request(id, i);
            const util::Stopwatch clock;
            client.send_line(wire::serialize_request(request));
            const std::optional<std::string> line = client.read_line();
            if (!line) { // server vanished mid-loop
                result.protocol_errors += static_cast<std::size_t>(requests - i);
                break;
            }
            result.latencies_s.push_back(clock.seconds());
            const util::Result<wire::WireResponse> response =
                wire::parse_response(*line);
            if (!response.ok() || response.value().id != id) {
                ++result.protocol_errors;
            } else if (!response.value().status.ok()) {
                if (response.value().status.code() == util::StatusCode::Unavailable) {
                    ++result.rejected; // retryable backpressure, not a bug
                } else {
                    ++result.protocol_errors;
                }
            }
        }
        client.finish_writes();
        if (client.read_line()) ++result.protocol_errors; // spurious extra line
    } catch (const std::exception&) {
        ++result.protocol_errors;
    }
    return result;
}

/// Decode {"result":{"stats":{...}}} fields the harness steers by.
struct StatsView {
    long long running = 0;
    long long queue_depth = 0;
    long long rejected = 0;
    bool ok = false;
};

StatsView stats_view_of(const wire::WireResponse& response) {
    StatsView view;
    if (!response.status.ok()) return view;
    const util::JsonValue* stats = response.result.find("stats");
    if (!stats) return view;
    const auto field = [&](const char* key) -> long long {
        const util::JsonValue* value = stats->find(key);
        return value ? static_cast<long long>(value->as_number()) : 0;
    };
    view.running = field("running");
    view.queue_depth = field("queue_depth");
    view.rejected = field("rejected");
    view.ok = true;
    return view;
}

} // namespace

int main() {
    std::printf("=== service load: TCP reactor under concurrent closed-loop clients ===\n\n");

    const bool fast = util::env_flag("LEQA_BENCH_FAST");
    const int connections = fast ? 16 : 64;
    const int requests_per_connection = fast ? 16 : 32;
    const std::string host = "127.0.0.1";

    // --- phase 1: sustained mixed load ------------------------------------
    service::ServiceOptions load_options; // threads = hardware, queue = 1024
    service::Service load_service(pipeline::PipelineConfig{}, load_options);
    net::ServerOptions load_server_options;
    load_server_options.host = host;
    net::Server load_server(load_service, load_server_options);
    std::thread load_reactor([&] { load_server.run(); });

    { // warm the pipeline cache so the loop measures steady state
        net::Client warmup(host, load_server.port());
        for (int i = 0; i < 3; ++i) {
            warmup.send_line(wire::serialize_request(mixed_request(
                static_cast<std::uint64_t>(i) + 1, i == 0 ? 0 : (i == 1 ? 5 : 11))));
            (void)warmup.read_line();
        }
    }

    // Start every connection thread, then release them together so the
    // measured window is all-N-concurrent from its first instant.
    std::mutex gate_mutex;
    std::condition_variable gate_cv;
    bool gate_open = false;
    std::vector<WorkerResult> results(static_cast<std::size_t>(connections));
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(connections));
    for (int c = 0; c < connections; ++c) {
        workers.emplace_back([&, c] {
            {
                std::unique_lock<std::mutex> lock(gate_mutex);
                gate_cv.wait(lock, [&] { return gate_open; });
            }
            results[static_cast<std::size_t>(c)] =
                run_connection(host, load_server.port(), requests_per_connection);
        });
    }
    const util::Stopwatch load_clock;
    {
        const std::lock_guard<std::mutex> lock(gate_mutex);
        gate_open = true;
    }
    gate_cv.notify_all();
    for (auto& worker : workers) worker.join();
    const double load_s = load_clock.seconds();

    std::vector<double> latencies;
    std::size_t protocol_errors = 0;
    std::size_t load_rejected = 0;
    for (const auto& result : results) {
        latencies.insert(latencies.end(), result.latencies_s.begin(),
                         result.latencies_s.end());
        protocol_errors += result.protocol_errors;
        load_rejected += result.rejected;
    }
    const std::size_t total_requests = latencies.size();
    const double sustained_req_s =
        load_s > 0.0 ? static_cast<double>(total_requests) / load_s : 0.0;
    const double p50_s = mathx::nearest_rank_percentile_inplace(latencies, 0.50);
    const double p99_s = mathx::nearest_rank_percentile_inplace(latencies, 0.99);
    const double p999_s = mathx::nearest_rank_percentile_inplace(latencies, 0.999);
    const double max_s = mathx::nearest_rank_percentile_inplace(latencies, 1.0);

    load_server.stop();
    load_reactor.join();

    std::printf("sustained load: %d connections x %d requests over %s\n",
                connections, requests_per_connection, kSource);
    std::printf("  wall %.3f s, %.0f req/s, %zu responses, %zu protocol errors, "
                "%zu rejected\n",
                load_s, sustained_req_s, total_requests, protocol_errors,
                load_rejected);
    std::printf("  latency p50 %.2e s, p99 %.2e s, p999 %.2e s, max %.2e s\n",
                p50_s, p99_s, p999_s, max_s);

    // --- phase 2: backpressure against a tiny queue -----------------------
    // One worker, four queue slots.  A slow explore pins the worker; four
    // cheap jobs fill the queue; everything past that must reject with the
    // retryable Unavailable code while the reactor keeps answering inline
    // ops within milliseconds.
    const std::size_t kMaxQueue = 4;
    service::ServiceOptions bp_options;
    bp_options.threads = 1;
    bp_options.max_queue = kMaxQueue;
    service::Service bp_service(pipeline::PipelineConfig{}, bp_options);
    net::ServerOptions bp_server_options;
    bp_server_options.host = host;
    net::Server bp_server(bp_service, bp_server_options);
    std::thread bp_reactor([&] { bp_server.run(); });

    // The pinning job: a 512-point exploration of a 61k-op suite circuit,
    // roughly a second of single-worker compute on a small box -- orders of
    // magnitude longer than the probe + fill + burst sequence it must
    // outlast (which is all sub-50ms loopback traffic).
    wire::WireRequest slow = make_explore(1);
    slow.source = "bench:gf2^64mult";
    slow.explore.topologies = {fabric::TopologyKind::Grid, fabric::TopologyKind::Torus};
    slow.explore.sides = {40, 44, 48, 52, 56, 60, 64, 72};
    slow.explore.speeds = {0.0005, 0.001, 0.002, 0.004, 0.006, 0.008, 0.012, 0.016};
    slow.explore.capacities = {3, 4, 5, 6};

    net::Client pinner(host, bp_server.port());
    pinner.send_line(wire::serialize_request(slow));

    // All control traffic goes down one pipelined connection, so a stats
    // probe's reply can be preceded by earlier responses (most notably the
    // burst's rejections, which complete instantly).  Every line is either
    // the awaited probe reply or gets classified into the exactly-once
    // accounting below.
    net::Client prober(host, bp_server.port());
    const int burst = 32;
    std::map<std::uint64_t, int> seen; // filler/burst id -> response count
    std::size_t bp_accepted_ok = 0;
    std::size_t bp_rejected = 0;
    std::size_t bp_protocol_errors = 0;
    const auto classify = [&](const wire::WireResponse& response) {
        const std::uint64_t id = response.id;
        if ((id < 100 || id >= 100 + kMaxQueue) &&
            (id < 200 || id >= 200 + static_cast<std::uint64_t>(burst))) {
            ++bp_protocol_errors; // a reply nobody asked for
            return;
        }
        ++seen[id];
        if (response.status.ok()) {
            ++bp_accepted_ok;
        } else if (response.status.code() == util::StatusCode::Unavailable) {
            ++bp_rejected;
        } else {
            ++bp_protocol_errors;
        }
    };
    const auto probe_stats = [&](std::uint64_t id) -> StatsView {
        prober.send_line(wire::serialize_request(make_stats(id)));
        while (const std::optional<std::string> line = prober.read_line()) {
            const util::Result<wire::WireResponse> response =
                wire::parse_response(*line);
            if (!response.ok()) {
                ++bp_protocol_errors;
                continue;
            }
            if (response.value().id == id) return stats_view_of(response.value());
            classify(response.value());
        }
        return {}; // EOF before the reply: not ok
    };

    bool pinned = false;
    for (int attempt = 0; attempt < 2000 && !pinned; ++attempt) {
        const StatsView view = probe_stats(90000 + static_cast<std::uint64_t>(attempt));
        pinned = view.ok && view.running >= 1;
        if (!pinned) std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (!pinned) ++bp_protocol_errors; // the pin must be observed pre-burst

    // Fill the queue, then confirm it is full before bursting.
    for (std::uint64_t id = 100; id < 100 + kMaxQueue; ++id) {
        prober.send_line(wire::serialize_request(make_estimate(id)));
    }
    bool queue_full = false;
    for (int attempt = 0; attempt < 2000 && !queue_full; ++attempt) {
        const StatsView view = probe_stats(91000 + static_cast<std::uint64_t>(attempt));
        queue_full = view.ok && view.queue_depth >= static_cast<long long>(kMaxQueue);
        if (!queue_full) std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (!queue_full) ++bp_protocol_errors;

    for (std::uint64_t id = 200; id < 200 + burst; ++id) {
        prober.send_line(wire::serialize_request(make_estimate(id)));
    }

    // Reactor responsiveness while the worker is pinned and the queue is
    // full: an inline stats round trip, timed (the clock includes reading
    // through the burst's rejection replies already in flight -- all local,
    // all reactor-emitted, so this is still a liveness measurement).
    const util::Stopwatch stats_clock;
    const StatsView overloaded = probe_stats(95000);
    const double stats_latency_s = stats_clock.seconds();
    if (!overloaded.ok) ++bp_protocol_errors;

    // Drain: every request sent on this connection answers exactly once.
    prober.finish_writes();
    while (const std::optional<std::string> line = prober.read_line()) {
        const util::Result<wire::WireResponse> response = wire::parse_response(*line);
        if (!response.ok()) {
            ++bp_protocol_errors;
            continue;
        }
        classify(response.value());
    }
    bool drained_exactly_once = true;
    for (std::uint64_t id = 100; id < 100 + kMaxQueue; ++id) {
        drained_exactly_once = drained_exactly_once && seen[id] == 1;
    }
    for (std::uint64_t id = 200; id < 200 + burst; ++id) {
        drained_exactly_once = drained_exactly_once && seen[id] == 1;
    }

    const std::optional<std::string> slow_line = pinner.read_line();
    bool slow_answered = false;
    if (slow_line) {
        const util::Result<wire::WireResponse> response =
            wire::parse_response(*slow_line);
        slow_answered = response.ok() && response.value().id == 1 &&
                        response.value().status.ok();
    }
    pinner.finish_writes();
    if (!slow_answered) ++bp_protocol_errors;

    bp_server.stop();
    bp_reactor.join();
    const double reject_rate =
        static_cast<double>(bp_rejected) /
        static_cast<double>(kMaxQueue + static_cast<std::size_t>(burst));

    std::printf("\nbackpressure: 1 worker, max-queue %zu, %d-request burst\n",
                kMaxQueue, burst);
    std::printf("  accepted %zu, rejected %zu (rate %.2f), exactly-once drain %s\n",
                bp_accepted_ok, bp_rejected, reject_rate,
                drained_exactly_once ? "yes" : "NO");
    std::printf("  stats round trip during overload: %.2e s\n", stats_latency_s);
    std::printf("  protocol errors: %zu\n", bp_protocol_errors);

    // --- artifact ----------------------------------------------------------
    util::JsonWriter json;
    json.begin_object();
    json.kv("bench", "load_harness");
    json.kv("hardware_threads",
            static_cast<long long>(std::thread::hardware_concurrency()));
    json.key("load").begin_object();
    json.kv("connections", static_cast<long long>(connections));
    json.kv("requests_per_connection", static_cast<long long>(requests_per_connection));
    json.kv("source", kSource);
    json.kv("responses", total_requests);
    json.kv("wall_s", load_s);
    json.kv("sustained_req_s", sustained_req_s);
    json.kv("protocol_errors", protocol_errors);
    json.kv("rejected", load_rejected);
    json.key("latency").begin_object();
    json.kv("p50_s", p50_s);
    json.kv("p99_s", p99_s);
    json.kv("p999_s", p999_s);
    json.kv("max_s", max_s);
    json.end_object();
    json.end_object();
    json.key("backpressure").begin_object();
    json.kv("max_queue", kMaxQueue);
    json.kv("burst", static_cast<long long>(burst));
    json.kv("worker_pinned", pinned);
    json.kv("queue_filled", queue_full);
    json.kv("accepted_ok", bp_accepted_ok);
    json.kv("rejected", bp_rejected);
    json.kv("reject_rate", reject_rate);
    json.kv("stats_latency_during_overload_s", stats_latency_s);
    json.kv("drained_exactly_once", drained_exactly_once);
    json.kv("slow_job_answered", slow_answered);
    json.kv("protocol_errors", bp_protocol_errors);
    json.end_object();
    json.end_object();

    const std::string path =
        util::env_string("LEQA_SERVICE_JSON").value_or("BENCH_service.json");
    std::ofstream out(path);
    out << json.str() << "\n";
    std::printf("\nwrote %s\n", path.c_str());

    // Nonzero exit on any protocol error: CI treats this bench as a gate on
    // wire correctness, not just a numbers source.
    return protocol_errors + bp_protocol_errors == 0 ? 0 : 1;
}

/// \file microbench.cpp
/// \brief google-benchmark micro-benchmarks of LEQA's components, matching
///        the complexity analysis of Eq. 17 / the supplemental material:
///        O(|V| + |E|) graph construction, O(A) coverage grid, O(T*A*logQ)
///        expected-surface evaluation, O(|V| + |E|) critical path.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "benchgen/gf2_mult.h"
#include "benchgen/suite.h"
#include "core/engine.h"
#include "core/leqa.h"
#include "fabric/params.h"
#include "iig/iig.h"
#include "parser/qasm.h"
#include "pipeline/pipeline.h"
#include "qodg/qodg.h"
#include "qspr/qspr.h"
#include "synth/ft_synth.h"

namespace {

using namespace leqa;

circuit::Circuit ft_mult(int n) {
    benchgen::Gf2MultSpec spec;
    spec.n = n;
    spec.form = benchgen::Gf2PolyForm::Auto;
    return synth::ft_synthesize(benchgen::gf2_mult(spec)).circuit;
}

void BM_QodgBuild(benchmark::State& state) {
    const auto circ = ft_mult(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        const qodg::Qodg graph(circ);
        benchmark::DoNotOptimize(graph.num_edges());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(circ.size()));
}
BENCHMARK(BM_QodgBuild)->Arg(8)->Arg(16)->Arg(32);

void BM_IigBuild(benchmark::State& state) {
    const auto circ = ft_mult(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        const iig::Iig iig(circ);
        benchmark::DoNotOptimize(iig.num_edges());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(circ.size()));
}
BENCHMARK(BM_IigBuild)->Arg(8)->Arg(16)->Arg(32);

void BM_CriticalPath(benchmark::State& state) {
    const auto circ = ft_mult(static_cast<int>(state.range(0)));
    const qodg::Qodg graph(circ);
    const fabric::PhysicalParams params;
    const auto delays =
        graph.node_delays([&](circuit::GateKind kind) { return params.delay_us(kind); });
    for (auto _ : state) {
        const auto lp = graph.longest_path(delays);
        benchmark::DoNotOptimize(lp.length);
    }
}
BENCHMARK(BM_CriticalPath)->Arg(8)->Arg(16)->Arg(32);

void BM_CoverageGrid(benchmark::State& state) {
    const int side = static_cast<int>(state.range(0));
    for (auto _ : state) {
        double sum = 0.0;
        for (int x = 1; x <= side; ++x) {
            for (int y = 1; y <= side; ++y) {
                sum += core::LeqaEstimator::coverage_probability(x, y, side, side, 6);
            }
        }
        benchmark::DoNotOptimize(sum);
    }
}
BENCHMARK(BM_CoverageGrid)->Arg(60)->Arg(100);

void BM_ExpectedSurfaces(benchmark::State& state) {
    const int terms = static_cast<int>(state.range(0));
    std::vector<double> coverage;
    for (int x = 1; x <= 60; ++x) {
        for (int y = 1; y <= 60; ++y) {
            coverage.push_back(core::LeqaEstimator::coverage_probability(x, y, 60, 60, 6));
        }
    }
    for (auto _ : state) {
        double sum = 0.0;
        for (int q = 1; q <= terms; ++q) {
            sum += core::LeqaEstimator::expected_surface(coverage, 768, q);
        }
        benchmark::DoNotOptimize(sum);
    }
}
BENCHMARK(BM_ExpectedSurfaces)->Arg(20)->Arg(100);

void BM_LeqaEndToEnd(benchmark::State& state) {
    const auto circ = ft_mult(static_cast<int>(state.range(0)));
    const qodg::Qodg graph(circ);
    const iig::Iig iig(circ);
    const core::LeqaEstimator estimator(fabric::PhysicalParams{});
    for (auto _ : state) {
        const auto estimate = estimator.estimate(graph, iig);
        benchmark::DoNotOptimize(estimate.latency_us);
    }
}
BENCHMARK(BM_LeqaEndToEnd)->Arg(16)->Arg(32);

void BM_QsprMap(benchmark::State& state) {
    const auto circ = ft_mult(static_cast<int>(state.range(0)));
    const qspr::QsprMapper mapper(fabric::PhysicalParams{});
    for (auto _ : state) {
        const auto result = mapper.map(circ);
        benchmark::DoNotOptimize(result.latency_us);
    }
}
BENCHMARK(BM_QsprMap)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_QasmParse(benchmark::State& state) {
    const auto circ = ft_mult(16);
    const std::string text = parser::write_qasm(circ);
    for (auto _ : state) {
        const auto parsed = parser::parse_qasm(text);
        benchmark::DoNotOptimize(parsed.size());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_QasmParse);

// The pipeline-cache win the facade exists for: a fabric sweep re-estimates
// the same circuit at many parameter points.  Cold rebuilds the session
// (synthesis + QODG/IIG per iteration); warm reuses the cached
// intermediates, which is how sweep/calibrate/batch consumers run.
const std::vector<int> kSweepSides = {40, 52, 60, 72, 80};

void BM_PipelineSweepCold(benchmark::State& state) {
    benchgen::Gf2MultSpec spec;
    spec.n = static_cast<int>(state.range(0));
    spec.form = benchgen::Gf2PolyForm::Auto;
    const auto source = pipeline::CircuitSource::from_circuit(benchgen::gf2_mult(spec));
    for (auto _ : state) {
        pipeline::Pipeline pipe; // fresh session: synthesis + graphs rebuilt
        const auto sweep = pipe.sweep_fabric_sides(source, kSweepSides);
        benchmark::DoNotOptimize(sweep.best_index);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kSweepSides.size()));
}
BENCHMARK(BM_PipelineSweepCold)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_PipelineSweepWarm(benchmark::State& state) {
    benchgen::Gf2MultSpec spec;
    spec.n = static_cast<int>(state.range(0));
    spec.form = benchgen::Gf2PolyForm::Auto;
    pipeline::Pipeline pipe;
    const auto source = pipeline::CircuitSource::from_circuit(benchgen::gf2_mult(spec));
    (void)pipe.sweep_fabric_sides(source, kSweepSides); // populate the cache
    for (auto _ : state) {
        const auto sweep = pipe.sweep_fabric_sides(source, kSweepSides);
        benchmark::DoNotOptimize(sweep.best_index);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kSweepSides.size()));
}
BENCHMARK(BM_PipelineSweepWarm)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

// Per-parameter-point estimation cost on the acceptance bar's 50x50 fabric.
// Seed path: the pre-refactor evaluation (full a x b coverage table, three
// lgammas + two logs + exp per cell per q term).  Staged path: the
// CircuitProfile is built once outside the loop and each point pays only
// the compressed-coverage + Eq. 18 parameter stage plus the CSR critical
// path.  The ratio of these two benchmarks is the sweep speedup.
fabric::PhysicalParams fifty_by_fifty() {
    fabric::PhysicalParams params;
    params.width = 50;
    params.height = 50;
    return params;
}

void BM_PerPointSeed(benchmark::State& state) {
    const auto circ = ft_mult(static_cast<int>(state.range(0)));
    const qodg::Qodg graph(circ);
    const iig::Iig iig(circ);
    const core::LeqaEstimator estimator(fifty_by_fifty());
    for (auto _ : state) {
        const auto estimate = estimator.estimate_reference(graph, iig);
        benchmark::DoNotOptimize(estimate.latency_us);
    }
}
BENCHMARK(BM_PerPointSeed)->Arg(16)->Arg(64);

void BM_PerPointStaged(benchmark::State& state) {
    const auto circ = ft_mult(static_cast<int>(state.range(0)));
    const qodg::Qodg graph(circ);
    const iig::Iig iig(circ);
    const auto profile = core::CircuitProfile::build(graph, iig);
    core::EstimationEngine engine(fifty_by_fifty());
    // Alternate the geometry so every iteration misses the engine's E[S_q]
    // memo and pays the full parameter stage (a fabric-side sweep's cost).
    fabric::PhysicalParams jiggled = fifty_by_fifty();
    jiggled.height = 49;
    bool flip = false;
    for (auto _ : state) {
        engine.set_params(flip ? jiggled : fifty_by_fifty());
        flip = !flip;
        const auto estimate = engine.estimate(profile);
        benchmark::DoNotOptimize(estimate.latency_us);
    }
}
BENCHMARK(BM_PerPointStaged)->Arg(16)->Arg(64);

void BM_PerPointStagedMemoHit(benchmark::State& state) {
    const auto circ = ft_mult(static_cast<int>(state.range(0)));
    const qodg::Qodg graph(circ);
    const iig::Iig iig(circ);
    const auto profile = core::CircuitProfile::build(graph, iig);
    core::EstimationEngine engine(fifty_by_fifty());
    // Alternate v at fixed geometry: the memo hits (a v / Nc sweep or the
    // calibrator's search), leaving the congestion algebra + critical path.
    fabric::PhysicalParams faster = fifty_by_fifty();
    faster.v *= 2.0;
    bool flip = false;
    for (auto _ : state) {
        engine.set_params(flip ? faster : fifty_by_fifty());
        flip = !flip;
        const auto estimate = engine.estimate(profile);
        benchmark::DoNotOptimize(estimate.latency_us);
    }
}
BENCHMARK(BM_PerPointStagedMemoHit)->Arg(16)->Arg(64);

// --- fixture-style harness --------------------------------------------------
// Per-op benchmarks below share expensive setup through benchmark::Fixture
// subclasses (SetUp builds the inputs once per run; the timed loop measures
// only the operation).  New hot paths get a per-op ns number by adding one
// BENCHMARK_DEFINE_F / BENCHMARK_REGISTER_F pair against an existing
// fixture instead of re-rolling the setup.

/// Shared coverage histogram + zone-count inputs of the E[S_q] kernels.
class SurfacesFixture : public benchmark::Fixture {
public:
    void SetUp(const benchmark::State&) override {
        histogram = fabric::CoverageHistogram::build(60, 60, 6);
    }

    fabric::CoverageHistogram histogram;
    static constexpr long long kZones = 768;
};

// The scalar Eq. 18 evaluation: one BinomialTermRecursion object per
// histogram bin, advanced bin-by-bin per q.
BENCHMARK_DEFINE_F(SurfacesFixture, BM_SurfacesScalar)(benchmark::State& state) {
    const long long terms = state.range(0);
    for (auto _ : state) {
        const auto surfaces =
            core::EstimationEngine::expected_surfaces_reference(histogram, kZones,
                                                                terms);
        benchmark::DoNotOptimize(surfaces.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * terms *
                            static_cast<std::int64_t>(histogram.bins().size()));
}
BENCHMARK_REGISTER_F(SurfacesFixture, BM_SurfacesScalar)->Arg(20)->Arg(100);

// The SoA batch evaluation: all bins advance in lockstep through one flat
// multiply/renormalize loop (mathx::BinomialRowBatch).
BENCHMARK_DEFINE_F(SurfacesFixture, BM_SurfacesBatched)(benchmark::State& state) {
    const long long terms = state.range(0);
    for (auto _ : state) {
        const auto surfaces =
            core::EstimationEngine::expected_surfaces(histogram, kZones, terms);
        benchmark::DoNotOptimize(surfaces.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * terms *
                            static_cast<std::int64_t>(histogram.bins().size()));
}
BENCHMARK_REGISTER_F(SurfacesFixture, BM_SurfacesBatched)->Arg(20)->Arg(100);

/// Prebuilt profile + fixed-geometry (Nc, v) axis for the whole-parameter-
/// stage comparison (the sweep_perf batched_vs_scalar section's shape).
class ParameterAxisFixture : public benchmark::Fixture {
public:
    void SetUp(const benchmark::State&) override {
        if (!graph) {
            circ = ft_mult(16);
            graph = std::make_unique<qodg::Qodg>(circ);
            interactions = std::make_unique<iig::Iig>(circ);
            profile = core::CircuitProfile::build(*graph, *interactions);
        }
        points.clear();
        for (int nc = 2; nc <= 9; ++nc) {
            for (const double v : {0.0005, 0.001, 0.002, 0.004}) {
                points.push_back({nc, v});
            }
        }
    }

    circuit::Circuit circ;
    std::unique_ptr<qodg::Qodg> graph;
    std::unique_ptr<iig::Iig> interactions;
    core::CircuitProfile profile;
    std::vector<core::ParameterPoint> points;
};

BENCHMARK_DEFINE_F(ParameterAxisFixture, BM_ParameterAxisScalar)
(benchmark::State& state) {
    core::EstimationEngine engine(fifty_by_fifty());
    for (auto _ : state) {
        fabric::PhysicalParams params = fifty_by_fifty();
        double sum = 0.0;
        for (const core::ParameterPoint& point : points) {
            params.nc = point.nc;
            params.v = point.v;
            engine.set_params(params);
            sum += engine.estimate(profile).latency_us;
        }
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(points.size()));
}
BENCHMARK_REGISTER_F(ParameterAxisFixture, BM_ParameterAxisScalar)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(ParameterAxisFixture, BM_ParameterAxisBatched)
(benchmark::State& state) {
    core::EstimationEngine engine(fifty_by_fifty());
    for (auto _ : state) {
        const auto estimates = engine.estimate_batch(profile, points);
        benchmark::DoNotOptimize(estimates.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(points.size()));
}
BENCHMARK_REGISTER_F(ParameterAxisFixture, BM_ParameterAxisBatched)
    ->Unit(benchmark::kMillisecond);

void BM_FtSynthesis(benchmark::State& state) {
    benchgen::Gf2MultSpec spec;
    spec.n = static_cast<int>(state.range(0));
    spec.form = benchgen::Gf2PolyForm::Auto;
    const auto circ = benchgen::gf2_mult(spec);
    for (auto _ : state) {
        const auto result = synth::ft_synthesize(circ);
        benchmark::DoNotOptimize(result.circuit.size());
    }
}
BENCHMARK(BM_FtSynthesis)->Arg(16)->Arg(32);

} // namespace

BENCHMARK_MAIN();

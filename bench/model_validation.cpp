/// \file model_validation.cpp
/// \brief Validates LEQA's three stochastic model components against
///        direct Monte Carlo simulation (the content of the paper's
///        Figures 3, 4 and 5):
///
///   1. zone coverage: analytic P_xy (Eq. 5) and E[S_q] (Eq. 4) vs counting
///      random zone placements;
///   2. Hamiltonian-path length: Eq. 15 (averaged BHH tour bounds, tour ->
///      path correction) vs exact/2-opt solutions of sampled instances;
///   3. M/M/1 congestion: Little's-formula waiting time (Eqs. 9-11) vs a
///      discrete-event queue simulation.
#include <cmath>
#include <cstdio>

#include "core/leqa.h"
#include "mathx/queueing.h"
#include "mathx/tsp.h"
#include "mc/path_model.h"
#include "mc/queue_sim.h"
#include "mc/zone_coverage.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
    using namespace leqa;
    util::Rng rng(0xC0FFEE);

    std::printf("=== Model validation: analytic forms vs Monte Carlo ===\n\n");

    // ---------------------------------------------------------------------
    std::printf("-- 1. zone coverage: P_xy (Eq. 5) vs simulation --\n");
    {
        mc::ZoneCoverageConfig config;
        config.width = 20;
        config.height = 20;
        config.zone_side = 5;
        config.trials = 60000;
        util::Table table({"cell (x,y)", "analytic P", "Monte Carlo P", "diff"});
        for (const auto& [x, y] : {std::pair{1, 1}, {3, 3}, {10, 10}, {20, 1}, {10, 1}}) {
            const double analytic = core::LeqaEstimator::coverage_probability(
                x, y, config.width, config.height, config.zone_side);
            const double empirical = mc::empirical_coverage_probability(config, x, y, rng);
            table.add_row({"(" + std::to_string(x) + "," + std::to_string(y) + ")",
                           util::format_double(analytic, 4),
                           util::format_double(empirical, 4),
                           util::format_double(std::abs(analytic - empirical), 2)});
        }
        std::printf("%s\n", table.to_string().c_str());
    }

    // ---------------------------------------------------------------------
    std::printf("-- 2. expected q-covered surface: E[S_q] (Eq. 4) vs simulation --\n");
    {
        mc::ZoneCoverageConfig config;
        config.width = 30;
        config.height = 30;
        config.zone_side = 6;
        config.num_zones = 24;
        config.trials = 1500;
        std::vector<double> coverage;
        for (int x = 1; x <= config.width; ++x) {
            for (int y = 1; y <= config.height; ++y) {
                coverage.push_back(core::LeqaEstimator::coverage_probability(
                    x, y, config.width, config.height, config.zone_side));
            }
        }
        const auto empirical = mc::empirical_expected_surfaces(config, 8, rng);
        util::Table table({"q", "analytic E[S_q]", "Monte Carlo E[S_q]", "rel diff (%)"});
        for (long long q = 0; q <= 8; ++q) {
            const double analytic =
                core::LeqaEstimator::expected_surface(coverage, config.num_zones, q);
            const double mc_value = empirical[static_cast<std::size_t>(q)];
            const double rel = analytic > 1e-6
                                   ? 100.0 * std::abs(analytic - mc_value) / analytic
                                   : 0.0;
            table.add_row({std::to_string(q), util::format_double(analytic, 5),
                           util::format_double(mc_value, 5), util::format_double(rel, 3)});
        }
        std::printf("%s", table.to_string().c_str());
        std::printf("note: Eq. 4 treats cell coverages as independent across zones;\n"
                    "the simulation includes the true spatial correlation, so small\n"
                    "systematic gaps at the distribution tails are expected.\n\n");
    }

    // ---------------------------------------------------------------------
    std::printf("-- 3. Hamiltonian path: Eq. 15 vs exact/2-opt solutions --\n");
    {
        util::Table table({"M (neighbors)", "B (area)", "Eq. 15", "Monte Carlo",
                           "rel diff (%)", "solver"});
        for (const int m : {2, 4, 7, 11, 19, 39}) {
            mc::PathModelConfig config;
            config.num_points = m + 1;
            config.zone_area = static_cast<double>(m + 1); // B_i = M_i + 1 (Eq. 6)
            config.trials = m <= 11 ? 600 : 250;
            const auto result = mc::empirical_path_model(config, rng);
            const double analytic = mathx::expected_hamiltonian_path(
                config.zone_area, static_cast<double>(m));
            table.add_row({std::to_string(m), util::format_double(config.zone_area, 3),
                           util::format_double(analytic, 4),
                           util::format_double(result.mean_path, 4),
                           util::format_double(
                               100.0 * std::abs(analytic - result.mean_path) /
                                   result.mean_path,
                               3),
                           result.exact ? "exact DP" : "2-opt"});
        }
        std::printf("%s", table.to_string().c_str());
        std::printf("note: Eqs. 13-14 are asymptotic (M >> 1); the paper applies them\n"
                    "at small M anyway, which is visible as the small-M bias above.\n\n");
    }

    // ---------------------------------------------------------------------
    std::printf("-- 4. M/M/1 congestion: Eqs. 9-11 vs discrete-event simulation --\n");
    {
        const double nc = 5.0;
        const double d_uncongest = 1000.0;
        const double mu = mathx::channel_service_rate(nc, d_uncongest);
        util::Table table({"queue q", "lambda (Eq. 10)", "W analytic (Eq. 11)",
                           "W simulated", "L simulated", "rel diff W (%)"});
        for (const double q : {1.0, 2.0, 5.0, 9.0, 19.0}) {
            const double lambda = mathx::arrival_rate_from_queue_length(q, nc, d_uncongest);
            const double w_analytic =
                mathx::average_wait_from_queue_length(q, nc, d_uncongest);
            mc::QueueSimConfig config;
            config.arrival_rate = lambda;
            config.service_rate = mu;
            const auto sim = mc::simulate_mm1(config, rng);
            table.add_row(
                {util::format_double(q, 3), util::format_double(lambda, 4),
                 util::format_double(w_analytic, 5),
                 util::format_double(sim.mean_system_time, 5),
                 util::format_double(sim.mean_queue_length, 4),
                 util::format_double(100.0 *
                                         std::abs(w_analytic - sim.mean_system_time) /
                                         w_analytic,
                                     3)});
        }
        std::printf("%s", table.to_string().c_str());
        std::printf("Little's law closes: L_sim ~ q and W_sim ~ (1+q) d/Nc, the exact\n"
                    "expression LEQA substitutes into Eq. 8.\n");
    }
    return 0;
}

/// \file optimize_perf.cpp
/// \brief Placement-optimizer perf tracking: incremental re-timing vs full
///        recompute per candidate move, plus the optimizer's end-to-end
///        improvement over the CenteredBlock start, merged into the
///        BENCH_sweep.json artifact as an "optimize" section.
///
/// Two measurements:
///   - incremental vs full: the identical greedy candidate stream is driven
///     twice over the same start placement -- once through
///     `core::PlacedTimer` (bound screen, affected-cone re-timing, undo-log
///     reverts), once the naive way (rebuild the placed delay vector and
///     run a full `Qodg::longest_path` per candidate).  Candidates are
///     drawn uniformly over the move space: on the default 60x60 fabric a
///     qubit has ~3552 free relocation targets against nq-1 swap partners,
///     so the mix is relocate-dominated -- exactly the regime the bound
///     screen exists for.  The bound is sound, so both loops take identical
///     accept/reject decisions and end on identical placements; the
///     artifact records per-move costs, the same-box ratio
///     (`incremental_vs_full_ratio`, gated >= 5x in baselines.json), and
///     the bit-exact parity of the final states (`parity_ok`, gated true);
///   - improvement: `core::optimize_placement` (greedy, bounded move
///     budget) against the CenteredBlock start on two suite circuits; both
///     must report `improved` (gated in baselines.json).
///
/// Environment knobs: LEQA_BENCH_FAST shrinks the circuit and budgets;
/// LEQA_SWEEP_JSON overrides the artifact path (the section is merged into
/// an existing sweep_perf document when one is already there).
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "benchgen/gf2_mult.h"
#include "core/optimize.h"
#include "core/placed.h"
#include "fabric/geometry.h"
#include "harness.h"
#include "pipeline/pipeline.h"
#include "qodg/qodg.h"
#include "qspr/placement.h"
#include "synth/ft_synth.h"
#include "util/env.h"
#include "util/json.h"
#include "util/json_value.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace leqa;

struct FtCircuit {
    circuit::Circuit ft;
    std::unique_ptr<qodg::Qodg> graph;
};

FtCircuit ft_bench(const std::string& spec) {
    FtCircuit out{synth::ft_synthesize(pipeline::parse_source(spec).load()).circuit,
                  nullptr};
    out.graph = std::make_unique<qodg::Qodg>(out.ft);
    return out;
}

std::vector<fabric::UlbId> centered_homes(const fabric::PhysicalParams& params,
                                          std::size_t num_qubits) {
    return qspr::initial_placement(fabric::FabricGeometry(fabric::make_topology(params)),
                                   num_qubits, qspr::PlacementStrategy::CenteredBlock, 1);
}

/// One candidate move, recorded as the incremental loop draws it so the
/// naive loop can replay the exact same stream.
struct Candidate {
    bool relocate = false;
    std::size_t q1 = 0;
    std::size_t q2 = 0;       ///< swap partner
    fabric::UlbId to = 0;     ///< relocate destination
};

} // namespace

int main() {
    std::printf("=== placement optimizer: incremental re-timing vs full recompute ===\n\n");

    const bool fast =
        bench::bench_op_limit() > 0 && bench::bench_op_limit() <= 80000;

    // --- incremental vs full on one greedy candidate stream ----------------
    benchgen::Gf2MultSpec spec;
    spec.n = fast ? 16 : 32;
    spec.form = benchgen::Gf2PolyForm::Auto;
    const circuit::Circuit reversible = benchgen::gf2_mult(spec);
    FtCircuit tc{synth::ft_synthesize(reversible).circuit, nullptr};
    tc.graph = std::make_unique<qodg::Qodg>(tc.ft);

    const fabric::PhysicalParams params; // Table 1 defaults, grid 60x60
    const auto topology = fabric::make_topology(params);
    const std::vector<fabric::UlbId> homes =
        centered_homes(params, tc.ft.num_qubits());
    const std::size_t candidates = fast ? 1500 : 4000;
    const std::size_t nq = tc.ft.num_qubits();

    // Uniform draw over the move space: every free ULB is a relocation
    // target, every other qubit a swap partner.
    core::PlacedTimer timer(*tc.graph, tc.ft, params, homes);
    const double free_ulbs = static_cast<double>(timer.num_ulbs() - nq);
    const double relocate_fraction =
        free_ulbs / (free_ulbs + static_cast<double>(nq - 1));

    // Incremental discipline: greedy -- the bound screens a candidate in
    // O(gates touching the moved qubits); survivors pay one affected-cone
    // pass, reverted via the undo log when the move does not improve.
    util::Rng rng(9);
    std::vector<Candidate> stream;
    stream.reserve(candidates);
    double inc_latency = timer.latency_us();
    std::size_t inc_fast_rejected = 0;
    std::size_t inc_accepted = 0;
    const util::Stopwatch inc_clock;
    for (std::size_t i = 0; i < candidates; ++i) {
        Candidate candidate;
        candidate.relocate = rng.chance(relocate_fraction);
        candidate.q1 = rng.index(nq);
        if (candidate.relocate) {
            do {
                candidate.to =
                    static_cast<fabric::UlbId>(rng.index(timer.num_ulbs()));
            } while (timer.occupant(candidate.to) != core::PlacedTimer::kNoQubit);
        } else {
            candidate.q2 = rng.index(nq - 1);
            if (candidate.q2 >= candidate.q1) ++candidate.q2;
        }
        stream.push_back(candidate);

        const double bound =
            candidate.relocate
                ? timer.relocate_lower_bound(candidate.q1, candidate.to)
                : timer.swap_lower_bound(candidate.q1, candidate.q2);
        if (bound >= inc_latency) {
            ++inc_fast_rejected;
            continue;
        }
        const fabric::UlbId from = timer.homes()[candidate.q1];
        const double latency =
            candidate.relocate ? timer.apply_relocate(candidate.q1, candidate.to)
                               : timer.apply_swap(candidate.q1, candidate.q2);
        if (latency < inc_latency) {
            inc_latency = latency;
            ++inc_accepted;
        } else if (candidate.relocate) {
            (void)timer.apply_relocate(candidate.q1, from); // revert
        } else {
            (void)timer.apply_swap(candidate.q1, candidate.q2); // revert
        }
    }
    const double incremental_s = inc_clock.seconds();

    // Naive discipline: every candidate pays a fresh placed-delay build and
    // a from-scratch longest path -- what an annealer costs without the
    // incremental engine.  The bound above is sound, so this loop takes the
    // identical accept/reject decisions and lands on the same placement.
    std::vector<fabric::UlbId> naive_homes = homes;
    double naive_latency =
        tc.graph
            ->longest_path(core::placed_node_delays(*tc.graph, tc.ft, *topology,
                                                    params, naive_homes))
            .length;
    const util::Stopwatch naive_clock;
    for (const Candidate& candidate : stream) {
        fabric::UlbId from = 0;
        if (candidate.relocate) {
            from = naive_homes[candidate.q1];
            naive_homes[candidate.q1] = candidate.to;
        } else {
            std::swap(naive_homes[candidate.q1], naive_homes[candidate.q2]);
        }
        const double latency =
            tc.graph
                ->longest_path(core::placed_node_delays(*tc.graph, tc.ft, *topology,
                                                        params, naive_homes))
                .length;
        if (latency < naive_latency) {
            naive_latency = latency;
        } else if (candidate.relocate) {
            naive_homes[candidate.q1] = from;
        } else {
            std::swap(naive_homes[candidate.q1], naive_homes[candidate.q2]);
        }
    }
    const double full_s = naive_clock.seconds();

    const double inc_per_move_s = incremental_s / static_cast<double>(candidates);
    const double full_per_move_s = full_s / static_cast<double>(candidates);
    const double ratio = incremental_s > 0.0 ? full_s / incremental_s : 0.0;

    // Parity: identical trajectories, and the timer's state must equal a
    // from-scratch recompute bit for bit.
    const double check =
        tc.graph->longest_path(timer.delays()).length;
    const bool parity_ok = naive_homes == timer.homes() &&
                           naive_latency == timer.latency_us() &&
                           check == timer.latency_us();

    std::printf("circuit: gf2^%dmult  (%zu FT ops, %zu qubits), %zu candidates\n",
                spec.n, tc.ft.size(), tc.ft.num_qubits(), candidates);
    std::printf("  incremental (PlacedTimer): %.3e s/move  (%zu fast-rejected, "
                "%zu accepted, %zu nodes re-timed)\n",
                inc_per_move_s, inc_fast_rejected, inc_accepted,
                timer.last_retimed_nodes());
    std::printf("  full recompute           : %.3e s/move\n", full_per_move_s);
    std::printf("  ratio (full/incremental) : %.1fx  (parity %s)\n", ratio,
                parity_ok ? "ok" : "BROKEN");

    // --- optimizer improvement over CenteredBlock on suite circuits --------
    struct ImprovementRow {
        std::string name;
        core::OptimizeResult result;
    };
    std::vector<ImprovementRow> improvements;
    for (const char* bench_name : {"8bitadder", "hwb15ps"}) {
        FtCircuit suite = ft_bench(std::string("bench:") + bench_name);
        core::OptimizeOptions options;
        options.mode = core::OptimizeMode::Greedy;
        options.max_moves = fast ? 1500 : 4000;
        improvements.push_back(
            {bench_name,
             core::optimize_placement(*suite.graph, suite.ft, params,
                                      centered_homes(params, suite.ft.num_qubits()),
                                      options)});
    }
    bool all_improved = true;
    std::printf("optimizer vs CenteredBlock (greedy, bounded budget):\n");
    for (const ImprovementRow& row : improvements) {
        const core::OptimizeResult& result = row.result;
        const double pct =
            result.initial_latency_us > 0.0
                ? 100.0 * (result.initial_latency_us - result.final_latency_us) /
                      result.initial_latency_us
                : 0.0;
        all_improved = all_improved && result.improved;
        std::printf("  %-12s %.6E -> %.6E s  (%.2f%%, improved %s, %.3f s)\n",
                    row.name.c_str(), result.initial_latency_us * 1e-6,
                    result.final_latency_us * 1e-6, pct,
                    result.improved ? "yes" : "NO", result.seconds);
    }

    // --- artifact: merge the "optimize" section into the sweep document ----
    util::JsonWriter section;
    section.begin_object();
    section.key("incremental_vs_full").begin_object();
    section.kv("circuit", "gf2^" + std::to_string(spec.n) + "mult");
    section.kv("ft_ops", tc.ft.size());
    section.kv("qubits", tc.ft.num_qubits());
    section.kv("candidates", candidates);
    section.kv("relocate_fraction", relocate_fraction);
    section.kv("incremental_per_move_s", inc_per_move_s);
    section.kv("full_per_move_s", full_per_move_s);
    section.kv("fast_rejected", inc_fast_rejected);
    section.kv("accepted", inc_accepted);
    section.end_object();
    section.kv("incremental_vs_full_ratio", ratio);
    section.kv("parity_ok", parity_ok);
    section.key("improvements").begin_array();
    for (const ImprovementRow& row : improvements) {
        const core::OptimizeResult& result = row.result;
        section.begin_object();
        section.kv("name", row.name);
        section.kv("initial_latency_us", result.initial_latency_us);
        section.kv("final_latency_us", result.final_latency_us);
        section.kv("improved", result.improved);
        section.kv("moves_attempted", result.moves_attempted);
        section.kv("moves_fast_rejected", result.moves_fast_rejected);
        section.end_object();
    }
    section.end_array();
    section.kv("all_improved", all_improved);
    section.end_object();

    const std::string path =
        util::env_string("LEQA_SWEEP_JSON").value_or("BENCH_sweep.json");
    util::JsonWriter document;
    document.begin_object();
    bool merged = false;
    {
        // Keep whatever sweep_perf already wrote; replace only "optimize".
        std::ifstream in(path);
        if (in) {
            const std::string existing((std::istreambuf_iterator<char>(in)),
                                       std::istreambuf_iterator<char>());
            try {
                const util::JsonValue root = util::json_parse(existing);
                for (const auto& [key, value] : root.members()) {
                    if (key == "optimize") continue;
                    document.key(key).raw_value(value.dump());
                }
                merged = true;
            } catch (...) {
                // Unparseable artifact: start a fresh document below.
            }
        }
    }
    if (!merged) document.kv("bench", "optimize_perf");
    document.key("optimize").raw_value(section.str());
    document.end_object();

    std::ofstream out(path);
    out << document.str() << "\n";
    std::printf("\n%s optimize section into %s\n", merged ? "merged" : "wrote",
                path.c_str());
    return parity_ok ? 0 : 1;
}

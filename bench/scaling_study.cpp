/// \file scaling_study.cpp
/// \brief Reproduces the paper's §4.2 scaling narrative: QSPR runtime grows
///        superlinearly with operation count (degree ~1.5) while LEQA grows
///        linearly, and extrapolating to Shor-1024 (1.35e10 logical
///        operations) the detailed mapper would need ~years while LEQA
///        needs hours.
///
/// Method: sweep the gf2^Nmult family (a clean one-parameter size series),
/// fit both runtimes as power laws of the FT op count, and evaluate the
/// fits at the Shor-1024 logical op count exactly as the paper does.
#include <algorithm>
#include <limits>
#include <cstdio>

#include "benchgen/gf2_mult.h"
#include "core/leqa.h"
#include "fabric/params.h"
#include "harness.h"
#include "mathx/stats.h"
#include "qspr/qspr.h"
#include "synth/ft_synth.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
    using namespace leqa;

    std::printf("=== Scaling study: QSPR vs LEQA runtime vs operation count ===\n\n");

    const bool fast = bench::bench_op_limit() > 0;
    std::vector<int> qspr_sizes = {8, 12, 16, 24, 32, 48, 64};
    if (!fast) qspr_sizes.push_back(96);
    // LEQA is cheap enough to measure far beyond the mapper's reach; fit
    // its exponent where the O(|V| + |E|) term dominates the fixed
    // O(T*A*logQ) overhead.
    std::vector<int> leqa_sizes = qspr_sizes;
    leqa_sizes.insert(leqa_sizes.end(), fast ? std::initializer_list<int>{128}
                                             : std::initializer_list<int>{128, 192, 256});

    fabric::PhysicalParams params; // Table 1
    const qspr::QsprMapper mapper(params);
    const core::LeqaEstimator estimator(params);

    util::Table table({"gf2^Nmult", "FT ops", "QSPR (s)", "LEQA (s)", "Speedup (X)"});
    std::vector<double> ops, qspr_times;
    std::vector<double> leqa_ops, leqa_times, leqa_fit_ops, leqa_fit_times;
    for (const int n : leqa_sizes) {
        benchgen::Gf2MultSpec spec;
        spec.n = n;
        spec.form = benchgen::Gf2PolyForm::Auto;
        const auto ft = synth::ft_synthesize(benchgen::gf2_mult(spec)).circuit;

        // Best-of-N timing: single-shot wall clocks on millisecond-scale
        // work are too noisy for stable power-law fits.
        const auto best_of = [](int reps, const auto& body) {
            double best = std::numeric_limits<double>::infinity();
            for (int r = 0; r < reps; ++r) {
                util::Stopwatch clock;
                body();
                best = std::min(best, clock.seconds());
            }
            return best;
        };

        const bool run_qspr =
            std::find(qspr_sizes.begin(), qspr_sizes.end(), n) != qspr_sizes.end();
        double qspr_s = 0.0;
        if (run_qspr) {
            const int reps = ft.size() < 100000 ? 3 : 1;
            qspr_s = best_of(reps, [&] { (void)mapper.map(ft); });
            ops.push_back(static_cast<double>(ft.size()));
            qspr_times.push_back(std::max(qspr_s, 1e-6));
        }

        const double leqa_s = best_of(3, [&] { (void)estimator.estimate(ft); });
        leqa_ops.push_back(static_cast<double>(ft.size()));
        leqa_times.push_back(std::max(leqa_s, 1e-6));
        if (ft.size() >= 50000) { // asymptotic region for the LEQA fit
            leqa_fit_ops.push_back(static_cast<double>(ft.size()));
            leqa_fit_times.push_back(std::max(leqa_s, 1e-6));
        }

        table.add_row({"n=" + std::to_string(n), std::to_string(ft.size()),
                       run_qspr ? util::format_double(qspr_s, 3) : "-",
                       util::format_double(leqa_s, 3),
                       run_qspr && leqa_s > 0 ? util::format_double(qspr_s / leqa_s, 3)
                                              : "-"});
    }
    std::printf("%s\n", table.to_string().c_str());

    const auto qspr_fit = mathx::power_law_fit(ops, qspr_times);
    const auto leqa_fit = leqa_fit_ops.size() >= 2
                              ? mathx::power_law_fit(leqa_fit_ops, leqa_fit_times)
                              : mathx::power_law_fit(leqa_ops, leqa_times);
    std::printf("power-law fits (runtime = c * N^alpha):\n");
    std::printf("  QSPR: alpha = %.3f (R^2 = %.3f)   paper claim: 1.5\n",
                qspr_fit.exponent, qspr_fit.r_squared);
    std::printf("  LEQA: alpha = %.3f (R^2 = %.3f)   paper claim: 1.0\n\n",
                leqa_fit.exponent, leqa_fit.r_squared);

    // The paper's §4.2 extrapolation: Shor-1024 has ~1.35e10 logical ops
    // (1.35e15 physical ops / ~1e5 physical ops per logical op with
    // two-level Steane).  The paper extrapolates QSPR ~ 2 years vs LEQA
    // ~ 16.5 hours.
    const double shor_ops = 1.35e10;
    const double qspr_seconds = mathx::power_law_eval(qspr_fit, shor_ops);
    const double leqa_seconds = mathx::power_law_eval(leqa_fit, shor_ops);
    std::printf("extrapolation to Shor-1024 (%.2e logical ops):\n", shor_ops);
    std::printf("  QSPR: %.3e s = %.1f days = %.2f years   (paper: ~2 years)\n",
                qspr_seconds, qspr_seconds / 86400.0, qspr_seconds / (365.0 * 86400.0));
    std::printf("  LEQA: %.3e s = %.1f hours               (paper: 16.5 hours)\n",
                leqa_seconds, leqa_seconds / 3600.0);
    std::printf("  ratio: %.0fx\n\n", qspr_seconds / leqa_seconds);
    const bool qspr_superlinear = qspr_fit.exponent > 1.1;
    const bool leqa_linear = leqa_fit.exponent < 1.15;
    std::printf("shape check: QSPR superlinear (alpha %.2f > 1.1): %s; "
                "LEQA ~linear (alpha %.2f < 1.15): %s -> %s\n",
                qspr_fit.exponent, qspr_superlinear ? "yes" : "NO",
                leqa_fit.exponent, leqa_linear ? "yes" : "NO",
                qspr_superlinear && leqa_linear
                    ? "the paper's divergence claim holds"
                    : "shape mismatch");
    return 0;
}

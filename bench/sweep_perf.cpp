/// \file sweep_perf.cpp
/// \brief Sweep-cost tracking bench: records cold/warm pipeline sweeps and
///        old-vs-new per-parameter-point timings into BENCH_sweep.json so
///        the perf trajectory is tracked from the staged-engine PR onward.
///
/// Measurements on a gf2 multiplier circuit:
///   - cold sweep: a fresh pipeline session per sweep (synthesis + graph
///     build + profile paid inside the measurement);
///   - warm sweep: the session cache holds the circuit-invariant artifacts,
///     so each point pays only the parameter stage;
///   - per-point: the seed evaluation path (`estimate_reference`: full
///     a x b coverage table, per-cell log-space PMF) against the staged
///     engine on prebuilt graphs, on the 50x50 fabric of the acceptance
///     bar.  `speedup_per_point` is the headline number;
///   - topologies: the same warm sweep and geometry-moving per-point cost
///     for every `fabric::Topology` (grid / torus / line on the
///     area-equivalent fabric), with the per-point cost ratio vs grid —
///     the topology-generic coverage path must stay within 2x of grid;
///   - service overhead: warm per-request cost through the async
///     `service::Service` (1 worker, submit-all / wait-all) against direct
///     `Pipeline::run` on the same warm session — the scheduler must stay
///     under ~5% per-request overhead;
///   - explore: the parallel multi-dimensional explorer on a 200-point
///     topology x side x Nc x v cross-product at 1/2/4 worker threads —
///     points/sec, speedup vs the serial evaluation, and a bit-identity
///     check of the 4-thread result against serial.  `hardware_threads`
///     qualifies the scaling numbers (a 1-core box cannot speed up).
///
/// Environment knobs: LEQA_BENCH_FAST / LEQA_BENCH_LIMIT (see harness.h)
/// shrink the circuit; LEQA_SWEEP_JSON overrides the artifact path.
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/gf2_mult.h"
#include "core/engine.h"
#include "core/explore.h"
#include "core/leqa.h"
#include "harness.h"
#include "iig/iig.h"
#include "pipeline/pipeline.h"
#include "qodg/qodg.h"
#include "service/service.h"
#include "synth/ft_synth.h"
#include "util/env.h"
#include "util/json.h"
#include "util/stopwatch.h"

namespace {

using namespace leqa;

/// Best-of-N wall time of a callable, in seconds.
template <typename F>
double best_of(int repetitions, F&& body) {
    double best = 1e300;
    for (int rep = 0; rep < repetitions; ++rep) {
        const util::Stopwatch clock;
        body();
        best = std::min(best, clock.seconds());
    }
    return best;
}

} // namespace

int main() {
    std::printf("=== sweep cost: pipeline cold/warm and per-point old vs new ===\n\n");

    // gf2^32mult-sized input by default; the FAST knob drops to n = 16.
    const int n = bench::bench_op_limit() > 0 && bench::bench_op_limit() <= 80000 ? 16 : 32;
    benchgen::Gf2MultSpec spec;
    spec.n = n;
    spec.form = benchgen::Gf2PolyForm::Auto;
    const circuit::Circuit reversible = benchgen::gf2_mult(spec);
    const auto source = pipeline::CircuitSource::from_circuit(reversible);

    const std::vector<int> sides = {40, 44, 48, 50, 52, 56, 60, 64, 72, 80};

    // --- cold vs warm sweep through the pipeline ---------------------------
    const double cold_s = best_of(3, [&] {
        pipeline::Pipeline fresh; // pays synthesis + graphs + profile
        (void)fresh.sweep_fabric_sides(source, sides);
    });

    pipeline::Pipeline warm;
    (void)warm.sweep_fabric_sides(source, sides); // populate the cache
    const double warm_s = best_of(5, [&] {
        (void)warm.sweep_fabric_sides(source, sides);
    });

    // --- per-point: seed evaluation vs staged engine, 50x50 fabric ---------
    const circuit::Circuit ft = synth::ft_synthesize(reversible).circuit;
    const qodg::Qodg graph(ft);
    const iig::Iig iig(ft);
    const core::CircuitProfile profile = core::CircuitProfile::build(graph, iig);

    fabric::PhysicalParams params;
    params.width = 50;
    params.height = 50;

    const core::LeqaEstimator seed_estimator(params);
    core::EstimationEngine engine(params);

    const int reps = 20;
    const double seed_point_s = best_of(3, [&] {
        for (int rep = 0; rep < reps; ++rep) {
            (void)seed_estimator.estimate_reference(graph, iig);
        }
    }) / reps;

    // Two staged regimes.  Geometry-moving (a fabric-side sweep): every
    // point changes (a, b), missing the engine's E[S_q] memo and paying the
    // full compressed-coverage + Eq. 18 parameter stage — the conservative
    // headline.  Geometry-fixed (a v or Nc sweep, the calibrator): the memo
    // hits and each point pays only the congestion algebra + critical path.
    fabric::PhysicalParams jiggled = params;
    jiggled.height = 49;
    const double staged_point_s = best_of(3, [&] {
        for (int rep = 0; rep < reps; ++rep) {
            engine.set_params(rep % 2 == 0 ? params : jiggled);
            (void)engine.estimate(profile);
        }
    }) / reps;

    fabric::PhysicalParams faster = params;
    faster.v = params.v * 2.0;
    const double staged_memo_point_s = best_of(3, [&] {
        for (int rep = 0; rep < reps; ++rep) {
            engine.set_params(rep % 2 == 0 ? params : faster);
            (void)engine.estimate(profile);
        }
    }) / reps;

    const double per_point_speedup =
        staged_point_s > 0.0 ? seed_point_s / staged_point_s : 0.0;
    const double memo_point_speedup =
        staged_memo_point_s > 0.0 ? seed_point_s / staged_memo_point_s : 0.0;
    const double warm_point_s = warm_s / static_cast<double>(sides.size());

    // --- the topology axis: warm sweep + geometry-moving per-point cost ----
    struct TopologyRow {
        std::string name;
        double warm_s = 0.0;
        double point_s = 0.0;
        double vs_grid = 0.0; ///< per-point cost ratio against grid
    };
    std::vector<TopologyRow> topology_rows;
    for (const auto kind :
         {fabric::TopologyKind::Grid, fabric::TopologyKind::Torus,
          fabric::TopologyKind::Line}) {
        TopologyRow row;
        row.name = fabric::topology_kind_name(kind);

        fabric::PhysicalParams base;
        base.topology = kind;
        if (kind == fabric::TopologyKind::Line) {
            base.width = base.width * base.height; // area-equivalent row
            base.height = 1;
        }
        pipeline::PipelineConfig config;
        config.params = base;
        pipeline::Pipeline session(config);
        (void)session.sweep_fabric_sides(source, sides); // warm the cache
        row.warm_s = best_of(5, [&] {
            (void)session.sweep_fabric_sides(source, sides);
        });

        // Geometry-moving per-point cost on the 50x50-area fabric of the
        // acceptance bar (2500x1 for the line), memo defeated per point.
        fabric::PhysicalParams at = base;
        at.width = kind == fabric::TopologyKind::Line ? 2500 : 50;
        at.height = kind == fabric::TopologyKind::Line ? 1 : 50;
        fabric::PhysicalParams moved = at;
        if (kind == fabric::TopologyKind::Line) {
            moved.width = 2450;
        } else {
            moved.height = 49;
        }
        core::EstimationEngine topo_engine(at);
        row.point_s = best_of(3, [&] {
            for (int rep = 0; rep < reps; ++rep) {
                topo_engine.set_params(rep % 2 == 0 ? at : moved);
                (void)topo_engine.estimate(profile);
            }
        }) / reps;
        topology_rows.push_back(row);
    }
    for (auto& row : topology_rows) {
        row.vs_grid = topology_rows.front().point_s > 0.0
                          ? row.point_s / topology_rows.front().point_s
                          : 0.0;
    }

    // --- service overhead: async boundary vs direct run, 1 worker ----------
    // Same warm session on both sides; requests hit the circuit cache and
    // the E[S_q] memo, isolating pure scheduling cost (job alloc + queue +
    // worker handoff + result delivery) in the daemon's steady-state shape
    // (submit a batch, then collect).
    const int service_reps = 64;
    auto session = std::make_shared<pipeline::Pipeline>();
    pipeline::EstimationRequest warm_request(source);
    (void)session->run(warm_request); // populate circuit + graphs + memo

    const double direct_req_s = best_of(5, [&] {
        for (int rep = 0; rep < service_reps; ++rep) {
            (void)session->run(warm_request);
        }
    }) / service_reps;

    service::ServiceOptions service_options;
    service_options.threads = 1;
    service::Service svc(session, service_options);
    std::vector<service::JobHandle> handles(
        static_cast<std::size_t>(service_reps));
    const double service_req_s = best_of(5, [&] {
        for (int rep = 0; rep < service_reps; ++rep) {
            handles[static_cast<std::size_t>(rep)] = svc.submit(warm_request);
        }
        // Collect newest-first: one sleep on the whole batch instead of a
        // wake/sleep ping-pong per job (jobs complete in FIFO order here).
        for (auto it = handles.rbegin(); it != handles.rend(); ++it) {
            (void)it->wait();
        }
    }) / service_reps;
    const double service_overhead =
        direct_req_s > 0.0 ? service_req_s / direct_req_s : 0.0;

    // --- parallel explore: cross-product scaling at 1/2/4 threads ----------
    // 2 topologies x 10 sides x 2 capacities x 5 speeds = 200 points, the
    // acceptance-bar shape.  The serial result is the bit-identity baseline.
    core::ExplorationSpec explore_spec;
    explore_spec.topologies = {fabric::TopologyKind::Grid, fabric::TopologyKind::Torus};
    explore_spec.sides = {40, 44, 48, 50, 52, 56, 60, 64, 72, 80};
    explore_spec.capacities = {3, 5};
    explore_spec.speeds = {0.0005, 0.001, 0.002, 0.004, 0.008};

    fabric::PhysicalParams explore_base; // Table 1 defaults, grid 60x60
    const std::vector<fabric::PhysicalParams> explore_points =
        core::exploration_configurations(profile.num_qubits, explore_base,
                                         explore_spec);
    const auto serial_explore =
        core::evaluate_configurations(profile, explore_points, {}, 1);

    struct ExploreRow {
        std::size_t threads = 1;
        double seconds = 0.0;
        double points_per_s = 0.0;
        double speedup = 0.0;    ///< serial seconds / this row's seconds
        bool bit_identical = false; ///< all latencies == the serial run's
    };
    std::vector<ExploreRow> explore_rows;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        ExploreRow row;
        row.threads = threads;
        core::ExplorationResult last;
        row.seconds = best_of(3, [&] {
            last = core::evaluate_configurations(profile, explore_points, {}, threads);
        });
        row.points_per_s = row.seconds > 0.0
                               ? static_cast<double>(explore_points.size()) / row.seconds
                               : 0.0;
        row.bit_identical = last.points.size() == serial_explore.points.size() &&
                            last.best_index == serial_explore.best_index;
        for (std::size_t i = 0; row.bit_identical && i < last.points.size(); ++i) {
            row.bit_identical = last.points[i].estimate.latency_us ==
                                serial_explore.points[i].estimate.latency_us;
        }
        explore_rows.push_back(row);
    }
    for (auto& row : explore_rows) {
        row.speedup = row.seconds > 0.0 ? explore_rows.front().seconds / row.seconds
                                        : 0.0;
    }
    const unsigned hardware_threads = std::thread::hardware_concurrency();

    // --- batched vs scalar parameter stage on a (Nc, v) axis ---------------
    // The tentpole number: a fixed-geometry 64-point (Nc x v) axis on the
    // 50x50 fabric, evaluated point-by-point through the scalar engine
    // (E[S_q] cache warm after the first point — the strongest scalar
    // baseline) against ONE estimate_batch call.  The ratio is per-point
    // throughput, machine-independent, and gated in bench/baselines.json.
    // Every sweep_perf run also asserts parity: each batched estimate must
    // equal its scalar twin bit for bit, or the artifact reports
    // parity_ok=false and the baseline gate fails CI.
    std::vector<core::ParameterPoint> axis_points;
    for (int nc = 2; nc <= 9; ++nc) {
        for (const double v : {0.00025, 0.0005, 0.001, 0.002, 0.004, 0.008,
                               0.016, 0.032}) {
            axis_points.push_back({nc, v});
        }
    }
    core::EstimationEngine scalar_engine(params);   // 50x50 grid from above
    core::EstimationEngine batched_engine(params);
    std::vector<core::LeqaEstimate> scalar_estimates(axis_points.size());
    std::vector<core::LeqaEstimate> batched_estimates;
    const double scalar_axis_s = best_of(3, [&] {
        fabric::PhysicalParams point_params = params;
        for (std::size_t i = 0; i < axis_points.size(); ++i) {
            point_params.nc = axis_points[i].nc;
            point_params.v = axis_points[i].v;
            scalar_engine.set_params(point_params);
            scalar_estimates[i] = scalar_engine.estimate(profile);
        }
    });
    const double batched_axis_s = best_of(3, [&] {
        batched_estimates = batched_engine.estimate_batch(profile, axis_points);
    });
    const double scalar_axis_point_s =
        scalar_axis_s / static_cast<double>(axis_points.size());
    const double batched_axis_point_s =
        batched_axis_s / static_cast<double>(axis_points.size());
    const double batched_ratio =
        batched_axis_s > 0.0 ? scalar_axis_s / batched_axis_s : 0.0;

    bool parity_ok = batched_estimates.size() == scalar_estimates.size();
    for (std::size_t i = 0; parity_ok && i < batched_estimates.size(); ++i) {
        parity_ok = batched_estimates[i].latency_us == scalar_estimates[i].latency_us &&
                    batched_estimates[i].l_cnot_avg_us ==
                        scalar_estimates[i].l_cnot_avg_us &&
                    batched_estimates[i].critical_cnots ==
                        scalar_estimates[i].critical_cnots &&
                    batched_estimates[i].e_sq == scalar_estimates[i].e_sq;
    }

    // Toolchain note: vectorization silently turning off (an -O0 build, or
    // a compiler losing the SIMD lanes) shows up here, next to the ratio it
    // would regress.
#if defined(__AVX512F__)
    const char* simd = "avx512f";
#elif defined(__AVX2__)
    const char* simd = "avx2";
#elif defined(__AVX__)
    const char* simd = "avx";
#elif defined(__SSE2__) || defined(__x86_64__)
    const char* simd = "sse2";
#elif defined(__ARM_NEON)
    const char* simd = "neon";
#else
    const char* simd = "none";
#endif
#if defined(__OPTIMIZE__)
    const bool optimized = true;
#else
    const bool optimized = false;
#endif

    std::printf("circuit: gf2^%dmult  (%zu FT ops, %zu qubits)\n", n, ft.size(),
                ft.num_qubits());
    std::printf("sweep over %zu fabric sides:\n", sides.size());
    std::printf("  cold (fresh session) : %.4f s\n", cold_s);
    std::printf("  warm (cached profile): %.4f s  (%.2e s/point)\n", warm_s,
                warm_point_s);
    std::printf("per point on a 50x50 fabric:\n");
    std::printf("  seed path (reference)        : %.3e s\n", seed_point_s);
    std::printf("  staged, geometry moving      : %.3e s  (%.1fx)\n", staged_point_s,
                per_point_speedup);
    std::printf("  staged, geometry fixed (memo): %.3e s  (%.1fx)\n",
                staged_memo_point_s, memo_point_speedup);
    std::printf("per point by topology (geometry moving, 50x50-area fabric):\n");
    for (const auto& row : topology_rows) {
        std::printf("  %-5s : %.3e s/point  (%.2fx grid), warm sweep %.4f s\n",
                    row.name.c_str(), row.point_s, row.vs_grid, row.warm_s);
    }
    std::printf("service overhead (warm, 1 worker, %d requests):\n", service_reps);
    std::printf("  direct Pipeline::run : %.3e s/request\n", direct_req_s);
    std::printf("  Service submit+wait  : %.3e s/request  (%.3fx direct)\n",
                service_req_s, service_overhead);
    std::printf("parallel explore (%zu-point cross-product, %u hardware threads):\n",
                explore_points.size(), hardware_threads);
    for (const auto& row : explore_rows) {
        std::printf("  %zu thread%s : %.4f s  (%.0f points/s, %.2fx serial, "
                    "bit-identical %s)\n",
                    row.threads, row.threads == 1 ? " " : "s", row.seconds,
                    row.points_per_s, row.speedup, row.bit_identical ? "yes" : "NO");
    }
    std::printf("batched vs scalar parameter stage (%zu-point Nc x v axis, 50x50):\n",
                axis_points.size());
    std::printf("  scalar engine loop : %.3e s/point\n", scalar_axis_point_s);
    std::printf("  estimate_batch     : %.3e s/point  (%.2fx, parity %s)\n",
                batched_axis_point_s, batched_ratio, parity_ok ? "ok" : "BROKEN");
    std::printf("  toolchain: %s, simd %s, optimized %s\n", __VERSION__, simd,
                optimized ? "yes" : "NO");

    // --- artifact ----------------------------------------------------------
    util::JsonWriter json;
    json.begin_object();
    json.kv("bench", "sweep_perf");
    json.key("circuit").begin_object();
    json.kv("name", "gf2^" + std::to_string(n) + "mult");
    json.kv("ft_ops", ft.size());
    json.kv("qubits", ft.num_qubits());
    json.end_object();
    json.key("pipeline_sweep").begin_object();
    json.kv("points", sides.size());
    json.kv("cold_s", cold_s);
    json.kv("warm_s", warm_s);
    json.kv("warm_per_point_s", warm_point_s);
    json.end_object();
    json.key("per_point_50x50").begin_object();
    json.kv("seed_s", seed_point_s);
    json.kv("staged_s", staged_point_s);
    json.kv("speedup", per_point_speedup);
    json.kv("staged_memo_s", staged_memo_point_s);
    json.kv("memo_speedup", memo_point_speedup);
    json.end_object();
    json.key("topologies").begin_array();
    for (const auto& row : topology_rows) {
        json.begin_object();
        json.kv("name", row.name);
        json.kv("warm_sweep_s", row.warm_s);
        json.kv("per_point_s", row.point_s);
        json.kv("per_point_vs_grid", row.vs_grid);
        json.end_object();
    }
    json.end_array();
    json.key("service_overhead").begin_object();
    json.kv("requests", static_cast<long long>(service_reps));
    json.kv("direct_per_request_s", direct_req_s);
    json.kv("service_per_request_s", service_req_s);
    json.kv("overhead_ratio", service_overhead);
    json.end_object();
    json.key("explore").begin_object();
    json.kv("points", explore_points.size());
    json.kv("hardware_threads", static_cast<long long>(hardware_threads));
    json.key("threads").begin_array();
    for (const auto& row : explore_rows) {
        json.begin_object();
        json.kv("threads", row.threads);
        json.kv("seconds", row.seconds);
        json.kv("points_per_s", row.points_per_s);
        json.kv("speedup", row.speedup);
        json.kv("bit_identical", row.bit_identical);
        json.end_object();
    }
    json.end_array();
    json.kv("speedup_4t", explore_rows.back().speedup);
    json.kv("bit_identical_4t", explore_rows.back().bit_identical);
    json.end_object();
    json.key("batched_vs_scalar").begin_object();
    json.kv("points", axis_points.size());
    json.kv("scalar_per_point_s", scalar_axis_point_s);
    json.kv("batched_per_point_s", batched_axis_point_s);
    json.kv("per_point_ratio", batched_ratio);
    json.kv("parity_ok", parity_ok);
    json.key("toolchain").begin_object();
    json.kv("compiler", __VERSION__);
    json.kv("simd", simd);
    json.kv("optimized", optimized);
    json.end_object();
    json.end_object();
    json.end_object();

    const std::string path =
        util::env_string("LEQA_SWEEP_JSON").value_or("BENCH_sweep.json");
    std::ofstream out(path);
    out << json.str() << "\n";
    std::printf("\nwrote %s\n", path.c_str());
    return 0;
}

/// \file table2_accuracy.cpp
/// \brief Reproduces the paper's Table 2: actual latency computed by the
///        detailed QSPR mapper vs the latency estimated by LEQA, with the
///        absolute relative error per benchmark.
///
/// The paper reports an average error of 2.11% with a maximum below 9%.
/// Our absolute latencies differ from the paper's (our QSPR is a
/// re-implementation, not the authors' Java tool), but the claim under
/// test is the *estimator accuracy against its mapper*, which this bench
/// measures directly after the documented one-time v calibration.
#include <cmath>
#include <cstdio>

#include "harness.h"
#include "mathx/stats.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
    using namespace leqa;

    std::printf("=== Table 2: actual (QSPR) vs estimated (LEQA) latency ===\n\n");

    auto pipe = bench::make_suite_pipeline(fabric::PhysicalParams{}); // Table 1
    const auto calibration = bench::calibrate_on_smallest(pipe);
    pipe.apply_calibration(calibration);
    std::printf("calibrated v = %.6f on {8bitadder, gf2^16mult, hwb15ps} "
                "(training error %.2f%%)\n\n",
                calibration.v, calibration.mean_abs_rel_error * 100.0);

    const auto rows = bench::run_suite(pipe);

    util::Table table({"Benchmark", "Actual Delay (sec)", "Estimated Delay (sec)",
                       "Abs Error (%)", "paper err (%)"});
    std::vector<double> errors;
    for (const auto& row : rows) {
        table.add_row({row.spec.name, util::format_scientific(row.actual_s, 3),
                       util::format_scientific(row.estimated_s, 3),
                       util::format_double(row.error_pct, 3),
                       util::format_double(row.spec.paper_error_pct, 3)});
        errors.push_back(row.error_pct);
    }
    std::printf("%s\n", table.to_string().c_str());

    if (!errors.empty()) {
        std::printf("average |error|: %.2f%%   (paper: 2.11%%)\n",
                    mathx::mean(errors));
        std::printf("maximum |error|: %.2f%%   (paper: 8.29%%, \"below 9%%\")\n",
                    mathx::max_value(errors));
        const bool avg_ok = mathx::mean(errors) < 6.0;
        const bool max_ok = mathx::max_value(errors) < 15.0;
        std::printf("shape check: average %s, maximum %s\n",
                    avg_ok ? "within band" : "OUT OF BAND",
                    max_ok ? "within band" : "OUT OF BAND");
    }
    return 0;
}

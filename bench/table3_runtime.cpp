/// \file table3_runtime.cpp
/// \brief Reproduces the paper's Table 3: benchmark sizes and the runtime
///        of QSPR vs LEQA, with the speedup column.
///
/// Claims under test: LEQA is orders of magnitude faster than the detailed
/// mapper on mid-size benchmarks, and the speedup *grows* with operation
/// count (8x at the small end to >100x on gf2^256mult in the paper).
/// Absolute runtimes are hardware- and implementation-dependent; the shape
/// (monotone-ish growth of the speedup with op count, superlinear QSPR
/// scaling vs near-linear LEQA scaling) is what must reproduce.
#include <cstdio>

#include "harness.h"
#include "mathx/stats.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
    using namespace leqa;

    std::printf("=== Table 3: benchmark sizes and QSPR vs LEQA runtime ===\n\n");

    auto pipe = bench::make_suite_pipeline(fabric::PhysicalParams{}); // Table 1
    const auto calibration = bench::calibrate_on_smallest(pipe);
    pipe.apply_calibration(calibration);

    const auto rows = bench::run_suite(pipe);

    util::Table table({"Benchmark", "Qubit Count", "Operation Count", "QSPR (s)",
                       "LEQA (s)", "Speedup (X)", "paper (X)"});
    for (const auto& row : rows) {
        table.add_row({row.spec.name, std::to_string(row.qubits),
                       std::to_string(row.ops), util::format_double(row.qspr_runtime_s, 3),
                       util::format_double(row.leqa_runtime_s, 3),
                       util::format_double(row.speedup, 3),
                       util::format_double(row.spec.paper_speedup, 4)});
    }
    std::printf("%s\n", table.to_string().c_str());

    if (rows.size() >= 4) {
        // Scaling exponents over the measured suite (paper: QSPR ~ N^1.5,
        // LEQA linear in N).
        std::vector<double> ops, qspr_times, leqa_times;
        for (const auto& row : rows) {
            ops.push_back(static_cast<double>(row.ops));
            qspr_times.push_back(std::max(row.qspr_runtime_s, 1e-6));
            leqa_times.push_back(std::max(row.leqa_runtime_s, 1e-6));
        }
        const auto qspr_fit = mathx::power_law_fit(ops, qspr_times);
        const auto leqa_fit = mathx::power_law_fit(ops, leqa_times);
        std::printf("runtime scaling over the suite (power-law fit):\n");
        std::printf("  QSPR: runtime ~ N^%.2f  (R^2 = %.3f; paper: degree 1.5)\n",
                    qspr_fit.exponent, qspr_fit.r_squared);
        std::printf("  LEQA: runtime ~ N^%.2f  (R^2 = %.3f; paper: linear)\n",
                    leqa_fit.exponent, leqa_fit.r_squared);

        const double small_speedup = rows.front().speedup;
        const double large_speedup = rows.back().speedup;
        std::printf("speedup growth: %.1fx (smallest) -> %.1fx (largest); %s\n",
                    small_speedup, large_speedup,
                    large_speedup > small_speedup ? "grows with op count (paper shape)"
                                                  : "DOES NOT GROW (shape mismatch)");
    }
    return 0;
}

/// \file coding_advisor.cpp
/// \brief Compare alternative codings of the same function with LEQA.
///
/// The paper's motivation: a fast estimator lets quantum algorithm
/// designers "learn efficient ways of coding their quantum algorithms by
/// quickly comparing the latency of different software coding techniques."
/// This example compares three codings of the same multiply-accumulate
/// kernel over GF(2^16):
///   A. trinomial-style reduction is impossible for n = 16, so: pentanomial
///      multiplier (the suite default);
///   B. the same multiplier with ancilla-sharing FT synthesis (fewer
///      qubits, more serialization);
///   C. a "wide" variant that spends 2x the qubits to halve the
///      multiplication depth (two half-multipliers + xor combine).
///
///   $ ./build/examples/coding_advisor
#include <cstdio>

#include "benchgen/gf2_mult.h"
#include "core/leqa.h"
#include "fabric/params.h"
#include "synth/ft_synth.h"

namespace {

using namespace leqa;

struct Candidate {
    const char* label;
    circuit::Circuit ft_circuit;
};

void report(const Candidate& candidate, const core::LeqaEstimator& estimator,
            double baseline_s) {
    const core::LeqaEstimate estimate = estimator.estimate(candidate.ft_circuit);
    std::printf("%-38s %8zu %9zu %12.4E %9.2fx\n", candidate.label,
                candidate.ft_circuit.num_qubits(), candidate.ft_circuit.size(),
                estimate.latency_seconds(),
                baseline_s > 0 ? estimate.latency_seconds() / baseline_s : 1.0);
}

} // namespace

int main() {
    benchgen::Gf2MultSpec spec;
    spec.n = 16;
    spec.form = benchgen::Gf2PolyForm::Pentanomial;
    const circuit::Circuit mult = benchgen::gf2_mult(spec);

    // Coding A: standard flow (fresh ancillas -- none needed here).
    Candidate coding_a{"A: pentanomial multiplier", synth::ft_synthesize(mult).circuit};

    // Coding B: identical netlist, ancilla-sharing synthesis.  For this
    // kernel the netlist has no multi-controlled gates, so B == A; it is
    // kept to show the knob (and costs nothing).
    synth::FtSynthOptions sharing;
    sharing.share_ancillas = true;
    Candidate coding_b{"B: same, ancilla-sharing synthesis",
                       synth::ft_synthesize(mult, sharing).circuit};

    // Coding C: interleave two independent half-size multiplications that
    // a compiler could extract (a0*b0 and a1*b1 into separate accumulators)
    // -- twice the qubits, half the sequential depth.
    benchgen::Gf2MultSpec half;
    half.n = 8;
    half.form = benchgen::Gf2PolyForm::Auto;
    const circuit::Circuit half_mult = benchgen::gf2_mult(half);
    circuit::Circuit wide(48, "gf2^16mult-wide");
    {
        // Two disjoint 24-qubit half multipliers, gates interleaved so the
        // scheduler can overlap them.
        const auto& gates = half_mult.gates();
        for (std::size_t i = 0; i < gates.size(); ++i) {
            circuit::Gate low = gates[i];
            wide.add_gate(low);
            circuit::Gate high = gates[i];
            for (auto& q : high.controls) q += 24;
            for (auto& q : high.targets) q += 24;
            wide.add_gate(high);
        }
    }
    Candidate coding_c{"C: two interleaved half-multipliers",
                       synth::ft_synthesize(wide).circuit};

    const fabric::PhysicalParams params; // Table 1
    const core::LeqaEstimator estimator(params);
    const double baseline =
        estimator.estimate(coding_a.ft_circuit).latency_seconds();

    std::printf("LEQA as a coding advisor (fabric %dx%d, Table 1 parameters)\n\n",
                params.width, params.height);
    std::printf("%-38s %8s %9s %12s %9s\n", "coding", "qubits", "FT ops", "D (s)",
                "vs A");
    report(coding_a, estimator, baseline);
    report(coding_b, estimator, baseline);
    report(coding_c, estimator, baseline);
    std::printf("\nCoding C shows the classic width-vs-depth trade: more qubits,\n"
                "shorter critical path, lower estimated latency -- evaluated in\n"
                "milliseconds instead of a full map-and-route run per variant.\n");
    return 0;
}

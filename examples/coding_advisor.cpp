/// \file coding_advisor.cpp
/// \brief Compare alternative codings of the same function with LEQA.
///
/// The paper's motivation: a fast estimator lets quantum algorithm
/// designers "learn efficient ways of coding their quantum algorithms by
/// quickly comparing the latency of different software coding techniques."
/// This example compares three codings of the same multiply-accumulate
/// kernel over GF(2^16), each handed to the pipeline as an in-memory
/// circuit source:
///   A. trinomial-style reduction is impossible for n = 16, so: pentanomial
///      multiplier (the suite default);
///   B. the same multiplier with ancilla-sharing FT synthesis (fewer
///      qubits, more serialization);
///   C. a "wide" variant that spends 2x the qubits to halve the
///      multiplication depth (two half-multipliers + xor combine).
///
///   $ ./build/examples/coding_advisor
#include <cstdio>
#include <vector>

#include "benchgen/gf2_mult.h"
#include "pipeline/pipeline.h"

namespace {

using namespace leqa;

void report(const pipeline::EstimationResult& result, double baseline_s) {
    const double latency_s = result.estimate->latency_seconds();
    std::printf("%-38s %8zu %9zu %12.4E %9.2fx\n", result.label.c_str(),
                result.circuit.qubits, result.circuit.ft_ops, latency_s,
                baseline_s > 0 ? latency_s / baseline_s : 1.0);
}

} // namespace

int main() {
    benchgen::Gf2MultSpec spec;
    spec.n = 16;
    spec.form = benchgen::Gf2PolyForm::Pentanomial;
    const circuit::Circuit mult = benchgen::gf2_mult(spec);

    // Coding C: interleave two independent half-size multiplications that
    // a compiler could extract (a0*b0 and a1*b1 into separate accumulators)
    // -- twice the qubits, half the sequential depth.
    benchgen::Gf2MultSpec half;
    half.n = 8;
    half.form = benchgen::Gf2PolyForm::Auto;
    const circuit::Circuit half_mult = benchgen::gf2_mult(half);
    circuit::Circuit wide(48, "gf2^16mult-wide");
    {
        // Two disjoint 24-qubit half multipliers, gates interleaved so the
        // scheduler can overlap them.
        const auto& gates = half_mult.gates();
        for (std::size_t i = 0; i < gates.size(); ++i) {
            circuit::Gate low = gates[i];
            wide.add_gate(low);
            circuit::Gate high = gates[i];
            for (auto& q : high.controls) q += 24;
            for (auto& q : high.targets) q += 24;
            wide.add_gate(high);
        }
    }

    pipeline::Pipeline pipe; // Table 1 defaults, fresh-ancilla synthesis

    // Codings A and C go through the default session; coding B re-runs the
    // identical netlist under ancilla-sharing synthesis (a config change,
    // hence a distinct cache identity -- the cache key records the synth
    // toggles).
    pipeline::EstimationRequest coding_a(pipeline::CircuitSource::from_circuit(mult));
    coding_a.label = "A: pentanomial multiplier";
    pipeline::EstimationRequest coding_c(pipeline::CircuitSource::from_circuit(wide));
    coding_c.label = "C: two interleaved half-multipliers";

    const pipeline::EstimationResult result_a = pipe.run(coding_a);
    const pipeline::EstimationResult result_c = pipe.run(coding_c);

    synth::FtSynthOptions sharing;
    sharing.share_ancillas = true;
    pipeline::PipelineConfig shared_config;
    shared_config.synth = sharing;
    pipeline::Pipeline shared_pipe(shared_config);
    pipeline::EstimationRequest coding_b(pipeline::CircuitSource::from_circuit(mult));
    coding_b.label = "B: same, ancilla-sharing synthesis";
    const pipeline::EstimationResult result_b = shared_pipe.run(coding_b);

    const fabric::PhysicalParams& params = pipe.config().params;
    const double baseline = result_a.estimate->latency_seconds();

    std::printf("LEQA as a coding advisor (fabric %dx%d, Table 1 parameters)\n\n",
                params.width, params.height);
    std::printf("%-38s %8s %9s %12s %9s\n", "coding", "qubits", "FT ops", "D (s)",
                "vs A");
    report(result_a, baseline);
    report(result_b, baseline);
    report(result_c, baseline);
    std::printf("\nCoding C shows the classic width-vs-depth trade: more qubits,\n"
                "shorter critical path, lower estimated latency -- evaluated in\n"
                "milliseconds instead of a full map-and-route run per variant.\n");
    return 0;
}

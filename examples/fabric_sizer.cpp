/// \file fabric_sizer.cpp
/// \brief Use LEQA to pick the latency-optimal fabric size for a workload.
///
/// Algorithm 1 takes the fabric dimensions as a free input; the paper notes
/// "this value can be changed to find the optimal size for the fabric which
/// results in the minimum delay".  A bigger fabric spreads presence zones
/// (fewer overlaps, less congestion) but LEQA's model also captures the
/// point of diminishing returns.  This example sweeps square fabrics for a
/// benchmark and reports the knee -- a design-space exploration that would
/// take hours with a detailed mapper and takes milliseconds with LEQA.
///
///   $ ./build/examples/fabric_sizer [benchmark] [v]
#include <cstdio>
#include <string>

#include "benchgen/suite.h"
#include "core/leqa.h"
#include "iig/iig.h"
#include "qodg/qodg.h"
#include "synth/ft_synth.h"

int main(int argc, char** argv) {
    using namespace leqa;

    const std::string name = argc > 1 ? argv[1] : "gf2^20mult";
    const circuit::Circuit circ = synth::ft_synthesize(benchgen::make_benchmark(name)).circuit;
    std::printf("workload: %s (%zu qubits, %zu FT ops)\n\n", name.c_str(),
                circ.num_qubits(), circ.size());

    // Prebuild graphs once; only the fabric parameters change per step.
    const qodg::Qodg graph(circ);
    const iig::Iig iig(circ);

    fabric::PhysicalParams params; // Table 1 defaults
    if (argc > 2) params.v = std::stod(argv[2]);

    std::printf("%8s %14s %16s %14s\n", "fabric", "D (s)", "L_CNOT^avg (us)", "vs best (%)");
    double best = -1.0;
    int best_side = 0;
    struct Row { int side; double latency; double l_cnot; };
    std::vector<Row> rows;
    for (int side = 8; side <= 120; side += 4) {
        if (static_cast<std::size_t>(side) * side < circ.num_qubits()) continue;
        params.width = side;
        params.height = side;
        const core::LeqaEstimator estimator(params);
        const core::LeqaEstimate estimate = estimator.estimate(graph, iig);
        rows.push_back({side, estimate.latency_seconds(), estimate.l_cnot_avg_us});
        if (best < 0.0 || estimate.latency_seconds() < best) {
            best = estimate.latency_seconds();
            best_side = side;
        }
    }
    for (const Row& row : rows) {
        std::printf("%5dx%-3d %14.4E %16.2f %+13.2f%s\n", row.side, row.side,
                    row.latency, row.l_cnot, 100.0 * (row.latency - best) / best,
                    row.side == best_side ? "  <-- minimum" : "");
    }
    std::printf("\nlatency-optimal square fabric for %s: %dx%d (D = %.4E s)\n",
                name.c_str(), best_side, best_side, best);
    return 0;
}

/// \file fabric_sizer.cpp
/// \brief Use LEQA to pick the latency-optimal fabric size for a workload.
///
/// Algorithm 1 takes the fabric dimensions as a free input; the paper notes
/// "this value can be changed to find the optimal size for the fabric which
/// results in the minimum delay".  A bigger fabric spreads presence zones
/// (fewer overlaps, less congestion) but LEQA's model also captures the
/// point of diminishing returns.  This example runs the pipeline's fabric
/// sweep for a benchmark and reports the knee -- a design-space exploration
/// that would take hours with a detailed mapper and takes milliseconds with
/// LEQA.  The session cache builds the QODG/IIG exactly once for the whole
/// sweep.
///
///   $ ./build/examples/fabric_sizer [benchmark] [v]
#include <cstdio>
#include <string>
#include <vector>

#include "pipeline/pipeline.h"

int main(int argc, char** argv) {
    using namespace leqa;

    const std::string name = argc > 1 ? argv[1] : "gf2^20mult";

    pipeline::PipelineConfig config; // Table 1 defaults
    if (argc > 2) config.params.v = std::stod(argv[2]);
    pipeline::Pipeline pipe(config);

    const pipeline::CircuitSource source = pipeline::CircuitSource::from_bench(name);
    const pipeline::CachedCircuitPtr circuit = pipe.resolve(source);
    std::printf("workload: %s (%zu qubits, %zu FT ops)\n\n", name.c_str(),
                circuit->info().qubits, circuit->info().ft_ops);

    std::vector<int> sides;
    for (int side = 8; side <= 120; side += 4) sides.push_back(side);
    const core::SweepResult sweep = pipe.sweep_fabric_sides(source, sides);

    std::printf("%8s %14s %16s %14s\n", "fabric", "D (s)", "L_CNOT^avg (us)",
                "vs best (%)");
    const double best = sweep.best().estimate.latency_seconds();
    for (std::size_t i = 0; i < sweep.points.size(); ++i) {
        const core::SweepPoint& point = sweep.points[i];
        std::printf("%5dx%-3d %14.4E %16.2f %+13.2f%s\n", point.params.width,
                    point.params.height, point.estimate.latency_seconds(),
                    point.estimate.l_cnot_avg_us,
                    100.0 * (point.estimate.latency_seconds() - best) / best,
                    i == sweep.best_index ? "  <-- minimum" : "");
    }
    std::printf("\nlatency-optimal square fabric for %s: %dx%d (D = %.4E s)\n",
                name.c_str(), sweep.best().params.width, sweep.best().params.height,
                best);
    std::printf("pipeline cache: %s (one QODG/IIG build for %zu fabric sizes)\n",
                pipe.cache_stats().to_string().c_str(), sweep.points.size());
    return 0;
}

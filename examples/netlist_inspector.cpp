/// \file netlist_inspector.cpp
/// \brief Parse a netlist (or generate a suite benchmark), print its
///        structural statistics, and export QODG / IIG Graphviz renderings
///        from the pipeline's cached intermediates.
///
///   $ ./build/examples/netlist_inspector                 # uses bench:ham3
///   $ ./build/examples/netlist_inspector my.qasm out_dir
#include <algorithm>
#include <cstdio>
#include <string>

#include "parser/io.h"
#include "pipeline/pipeline.h"

int main(int argc, char** argv) {
    using namespace leqa;

    const std::string spec = argc > 1 ? argv[1] : "bench:ham3";
    const pipeline::CircuitSource source = pipeline::parse_source(spec);

    // The pre-FT netlist for the structural report...
    const circuit::Circuit circ = source.load();
    std::printf("netlist: %s\n", circ.name().empty() ? "(unnamed)" : circ.name().c_str());
    std::printf("  qubits: %zu\n  gates:  %zu (%s)\n", circ.num_qubits(), circ.size(),
                circ.counts().to_string().c_str());
    std::printf("  classical-reversible: %s, FT: %s\n",
                circ.is_classical() ? "yes" : "no", circ.is_ft() ? "yes" : "no");

    // ...and the pipeline's cached FT circuit + graphs for everything else
    // (handing over the already-parsed circuit avoids a second parse).
    pipeline::Pipeline pipe;
    const pipeline::CachedCircuitPtr entry =
        pipe.resolve(pipeline::CircuitSource::from_circuit(circ));
    if (entry->info().synthesized) {
        std::printf("after FT synthesis: %s\n", entry->synth_stats().to_string().c_str());
    }

    const qodg::Qodg& graph = entry->qodg();
    const iig::Iig& iig = entry->iig();
    std::printf("QODG: %zu nodes, %zu merged edges\n", graph.num_nodes(),
                graph.num_edges());
    std::printf("IIG:  %zu interacting pairs, total weight %llu, B = %.3f\n",
                iig.num_edges(),
                static_cast<unsigned long long>(iig.total_adjacent_weight() / 2),
                iig.average_zone_area());

    // Degree histogram of the IIG: how many interaction partners qubits have.
    std::size_t max_degree = 0;
    for (circuit::Qubit q = 0; q < iig.num_qubits(); ++q) {
        max_degree = std::max(max_degree, iig.degree(q));
    }
    std::printf("IIG degree histogram (M_i):\n");
    for (std::size_t d = 0; d <= max_degree; ++d) {
        std::size_t count = 0;
        for (circuit::Qubit q = 0; q < iig.num_qubits(); ++q) {
            if (iig.degree(q) == d) ++count;
        }
        if (count > 0) std::printf("  M=%2zu: %zu qubit(s)\n", d, count);
    }

    if (entry->ft().size() <= 200) {
        const std::string dir = argc > 2 ? argv[2] : ".";
        parser::write_file(dir + "/qodg.dot", graph.to_dot(entry->ft()));
        parser::write_file(dir + "/iig.dot", iig.to_dot(entry->ft()));
        std::printf("wrote %s/qodg.dot and %s/iig.dot (render with graphviz)\n",
                    dir.c_str(), dir.c_str());
    } else {
        std::printf("(skipping DOT export: graph too large to render usefully)\n");
    }
    return 0;
}

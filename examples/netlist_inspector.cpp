/// \file netlist_inspector.cpp
/// \brief Parse a netlist (or generate a suite benchmark), print its
///        structural statistics, and export QODG / IIG Graphviz renderings.
///
///   $ ./build/examples/netlist_inspector                 # uses ham3
///   $ ./build/examples/netlist_inspector my.qasm out_dir
#include <cstdio>
#include <string>

#include "benchgen/suite.h"
#include "iig/iig.h"
#include "parser/io.h"
#include "qodg/qodg.h"
#include "synth/ft_synth.h"

int main(int argc, char** argv) {
    using namespace leqa;

    circuit::Circuit circ;
    if (argc > 1 && !benchgen::has_benchmark(argv[1])) {
        circ = parser::load_netlist(argv[1]);
    } else if (argc > 1) {
        circ = benchgen::make_benchmark(argv[1]);
    } else {
        circ = benchgen::ham3();
    }

    std::printf("netlist: %s\n", circ.name().empty() ? "(unnamed)" : circ.name().c_str());
    std::printf("  qubits: %zu\n  gates:  %zu (%s)\n", circ.num_qubits(), circ.size(),
                circ.counts().to_string().c_str());
    std::printf("  classical-reversible: %s, FT: %s\n",
                circ.is_classical() ? "yes" : "no", circ.is_ft() ? "yes" : "no");

    circuit::Circuit ft = circ;
    if (!circ.is_ft()) {
        const auto result = synth::ft_synthesize(circ);
        std::printf("after FT synthesis: %s\n", result.stats.to_string().c_str());
        ft = result.circuit;
    }

    const qodg::Qodg graph(ft);
    const iig::Iig iig(ft);
    std::printf("QODG: %zu nodes, %zu merged edges\n", graph.num_nodes(),
                graph.num_edges());
    std::printf("IIG:  %zu interacting pairs, total weight %llu, B = %.3f\n",
                iig.num_edges(),
                static_cast<unsigned long long>(iig.total_adjacent_weight() / 2),
                iig.average_zone_area());

    // Degree histogram of the IIG: how many interaction partners qubits have.
    std::size_t max_degree = 0;
    for (circuit::Qubit q = 0; q < iig.num_qubits(); ++q) {
        max_degree = std::max(max_degree, iig.degree(q));
    }
    std::printf("IIG degree histogram (M_i):\n");
    for (std::size_t d = 0; d <= max_degree; ++d) {
        std::size_t count = 0;
        for (circuit::Qubit q = 0; q < iig.num_qubits(); ++q) {
            if (iig.degree(q) == d) ++count;
        }
        if (count > 0) std::printf("  M=%2zu: %zu qubit(s)\n", d, count);
    }

    if (ft.size() <= 200) {
        const std::string dir = argc > 2 ? argv[2] : ".";
        parser::write_file(dir + "/qodg.dot", graph.to_dot(ft));
        parser::write_file(dir + "/iig.dot", iig.to_dot(ft));
        std::printf("wrote %s/qodg.dot and %s/iig.dot (render with graphviz)\n",
                    dir.c_str(), dir.c_str());
    } else {
        std::printf("(skipping DOT export: graph too large to render usefully)\n");
    }
    return 0;
}

/// \file pipeline_report.cpp
/// \brief End-to-end pipeline with machine-readable outputs: run a batch of
///        benchmarks through one Pipeline session (estimate + detailed
///        mapping), emit the batch JSON document plus the per-circuit
///        reports and the detailed schedule CSV -- the integration surface
///        a regression dashboard or plotting script would consume.
///
///   $ ./build/examples/pipeline_report [benchmark] [output-dir]
#include <cstdio>
#include <string>
#include <vector>

#include "parser/io.h"
#include "pipeline/pipeline.h"
#include "report/report.h"

int main(int argc, char** argv) {
    using namespace leqa;

    const std::string name = argc > 1 ? argv[1] : "hwb15ps";
    const std::string dir = argc > 2 ? argv[2] : ".";

    pipeline::PipelineConfig config; // Table 1
    config.qspr.collect_schedule = true;
    pipeline::Pipeline pipe(config);

    // A batch: the requested benchmark at the session fabric plus the same
    // circuit on a smaller fabric -- graphs are built once and shared.
    std::vector<pipeline::EstimationRequest> requests;
    requests.emplace_back(pipeline::CircuitSource::from_bench(name),
                          pipeline::RunMode::Both);
    {
        pipeline::EstimationRequest compact(pipeline::CircuitSource::from_bench(name),
                                            pipeline::RunMode::Estimate);
        fabric::PhysicalParams small = config.params;
        small.width = 40;
        small.height = 40;
        compact.params = small;
        compact.label = name + "@40x40";
        requests.push_back(std::move(compact));
    }
    const std::vector<pipeline::EstimationResult> results = pipe.run_batch(requests);

    // The whole batch as one JSON document.
    const std::string batch_path = dir + "/pipeline_batch.json";
    parser::write_file(batch_path, report::batch_to_json(results));

    // The detailed mapping of the first request: JSON + schedule CSV.
    const pipeline::EstimationResult& full = results.front();
    const std::string result_path = dir + "/qspr_result.json";
    parser::write_file(result_path,
                       report::qspr_result_to_json(*full.mapping, full.params,
                                                   full.circuit.name));
    const pipeline::CachedCircuitPtr circuit = pipe.resolve(requests.front().source);
    const std::string schedule_path = dir + "/qspr_schedule.csv";
    parser::write_file(schedule_path,
                       report::schedule_to_csv(*full.mapping, circuit->ft()));

    std::printf("benchmark %s: %zu qubits, %zu FT ops\n", name.c_str(),
                full.circuit.qubits, full.circuit.ft_ops);
    std::printf("  LEQA estimate: %.4E s\n", full.estimate->latency_seconds());
    std::printf("  QSPR actual:   %.4E s\n", full.mapping->latency_us * 1e-6);
    std::printf("  error: %+.2f%%\n",
                100.0 * (full.estimate->latency_us - full.mapping->latency_us) /
                    full.mapping->latency_us);
    std::printf("  40x40 estimate: %.4E s (cached graphs: %s)\n",
                results[1].estimate->latency_seconds(),
                pipe.cache_stats().to_string().c_str());
    std::printf("  batch JSON:    %s\n", batch_path.c_str());
    std::printf("  QSPR JSON:     %s\n", result_path.c_str());
    std::printf("  schedule CSV:  %zu ops -> %s\n", full.mapping->schedule.size(),
                schedule_path.c_str());
    return 0;
}

/// \file pipeline_report.cpp
/// \brief End-to-end pipeline with machine-readable outputs: estimate a
///        benchmark with LEQA, map it with QSPR, and emit JSON reports plus
///        the detailed schedule as CSV -- the integration surface a
///        regression dashboard or plotting script would consume.
///
///   $ ./build/examples/pipeline_report [benchmark] [output-dir]
#include <cstdio>
#include <string>

#include "benchgen/suite.h"
#include "core/leqa.h"
#include "fabric/params.h"
#include "parser/io.h"
#include "qspr/qspr.h"
#include "report/report.h"
#include "synth/ft_synth.h"

int main(int argc, char** argv) {
    using namespace leqa;

    const std::string name = argc > 1 ? argv[1] : "hwb15ps";
    const std::string dir = argc > 2 ? argv[2] : ".";
    const auto ft = synth::ft_synthesize(benchgen::make_benchmark(name)).circuit;
    const fabric::PhysicalParams params; // Table 1

    // LEQA estimate -> JSON.
    const auto estimate = core::LeqaEstimator(params).estimate(ft);
    const std::string estimate_path = dir + "/" + "leqa_estimate.json";
    parser::write_file(estimate_path,
                       report::estimate_to_json(estimate, params, ft.name()));

    // QSPR mapping with full schedule -> JSON + CSV.
    qspr::QsprOptions options;
    options.collect_schedule = true;
    const auto result = qspr::QsprMapper(params, options).map(ft);
    const std::string result_path = dir + "/" + "qspr_result.json";
    parser::write_file(result_path,
                       report::qspr_result_to_json(result, params, ft.name()));
    const std::string schedule_path = dir + "/" + "qspr_schedule.csv";
    parser::write_file(schedule_path, report::schedule_to_csv(result, ft));

    std::printf("benchmark %s: %zu qubits, %zu FT ops\n", name.c_str(),
                ft.num_qubits(), ft.size());
    std::printf("  LEQA estimate: %.4E s -> %s\n", estimate.latency_seconds(),
                estimate_path.c_str());
    std::printf("  QSPR actual:   %.4E s -> %s\n", result.latency_us * 1e-6,
                result_path.c_str());
    std::printf("  schedule:      %zu ops -> %s\n", result.schedule.size(),
                schedule_path.c_str());
    std::printf("  error: %+.2f%%\n",
                100.0 * (estimate.latency_us - result.latency_us) / result.latency_us);
    return 0;
}

/// \file qecc_explorer.cpp
/// \brief Explore how the error-correction code changes program latency.
///
/// The paper's introduction motivates LEQA with exactly this loop: "this
/// method allows designers of quantum error correction codes (QECC) to
/// investigate the effect of different error correction codes on the
/// latency of quantum programs."  Different codes change the FT gate
/// delays (e.g. T is non-transversal in Steane and needs slow state
/// distillation, while H is the slow gate in some topological schemes).
/// Each profile is one pipeline request with a parameter override; the
/// session cache means the circuit is synthesized and its graphs built
/// exactly once for the whole exploration.
///
///   $ ./build/examples/qecc_explorer [benchmark]
#include <cstdio>
#include <string>
#include <vector>

#include "pipeline/pipeline.h"

namespace {

struct QeccProfile {
    const char* name;
    double d_h_us;
    double d_t_us;
    double d_pauli_us;
    double d_cnot_us;
};

} // namespace

int main(int argc, char** argv) {
    using namespace leqa;

    const std::string name = argc > 1 ? argv[1] : "hwb15ps";

    pipeline::Pipeline pipe;
    const pipeline::CircuitSource source = pipeline::CircuitSource::from_bench(name);
    const pipeline::CachedCircuitPtr circuit = pipe.resolve(source);
    std::printf("workload: %s (%zu qubits, %zu FT ops)\n\n", name.c_str(),
                circuit->info().qubits, circuit->info().ft_ops);

    // Delay profiles: the paper's [[7,1,3]] Steane numbers, a one-level
    // (faster, weaker) Steane variant, a distillation-heavy profile where
    // T is 10x the Clifford delay, and a T-optimized profile.
    const std::vector<QeccProfile> profiles = {
        {"steane-7-1-3 (Table 1)", 5440.0, 10940.0, 5240.0, 4930.0},
        {"steane-1-level (fast)", 544.0, 1094.0, 524.0, 493.0},
        {"distillation-heavy", 5440.0, 52400.0, 5240.0, 4930.0},
        {"t-optimized", 5440.0, 5440.0, 5240.0, 4930.0},
    };

    // One batch, one profile per request (parameter overrides share the
    // cached graphs).
    std::vector<pipeline::EstimationRequest> requests;
    for (const QeccProfile& profile : profiles) {
        pipeline::EstimationRequest request(source);
        fabric::PhysicalParams params; // Table 1 TQA defaults
        params.d_h_us = profile.d_h_us;
        params.d_t_us = profile.d_t_us;
        params.d_pauli_us = profile.d_pauli_us;
        params.d_s_us = profile.d_pauli_us;
        params.d_cnot_us = profile.d_cnot_us;
        request.params = params;
        request.label = profile.name;
        requests.push_back(std::move(request));
    }
    const std::vector<pipeline::EstimationResult> results = pipe.run_batch(requests);

    std::printf("%-24s %14s %12s %18s\n", "QECC profile", "D (s)", "vs Steane",
                "critical T-ops");
    const double steane_latency = results.front().estimate->latency_seconds();
    for (const pipeline::EstimationResult& result : results) {
        const core::LeqaEstimate& estimate = *result.estimate;
        const std::size_t critical_t =
            estimate.critical_census.of(circuit::GateKind::T) +
            estimate.critical_census.of(circuit::GateKind::Tdg);
        std::printf("%-24s %14.4E %11.2fx %18zu\n", result.label.c_str(),
                    estimate.latency_seconds(),
                    estimate.latency_seconds() / steane_latency, critical_t);
    }
    std::printf("\ncache: %s -- one synthesis + one graph build for %zu profiles.\n",
                pipe.cache_stats().to_string().c_str(), profiles.size());
    std::printf("Note how the critical path re-routes around slow gates: the\n"
                "T-count on the critical path changes with the QECC profile, the\n"
                "effect Algorithm 1 line 19 exists to capture.\n");
    return 0;
}

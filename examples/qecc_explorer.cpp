/// \file qecc_explorer.cpp
/// \brief Explore how the error-correction code changes program latency.
///
/// The paper's introduction motivates LEQA with exactly this loop: "this
/// method allows designers of quantum error correction codes (QECC) to
/// investigate the effect of different error correction codes on the
/// latency of quantum programs."  Different codes change the FT gate
/// delays (e.g. T is non-transversal in Steane and needs slow state
/// distillation, while H is the slow gate in some topological schemes).
/// This example evaluates a workload under several QECC delay profiles
/// in one LEQA pass each.
///
///   $ ./build/examples/qecc_explorer [benchmark]
#include <cstdio>
#include <string>
#include <vector>

#include "benchgen/suite.h"
#include "core/leqa.h"
#include "iig/iig.h"
#include "qodg/qodg.h"
#include "synth/ft_synth.h"

namespace {

struct QeccProfile {
    const char* name;
    double d_h_us;
    double d_t_us;
    double d_pauli_us;
    double d_cnot_us;
};

} // namespace

int main(int argc, char** argv) {
    using namespace leqa;

    const std::string name = argc > 1 ? argv[1] : "hwb15ps";
    const circuit::Circuit circ =
        synth::ft_synthesize(benchgen::make_benchmark(name)).circuit;
    const qodg::Qodg graph(circ);
    const iig::Iig iig(circ);
    std::printf("workload: %s (%zu qubits, %zu FT ops)\n\n", name.c_str(),
                circ.num_qubits(), circ.size());

    // Delay profiles: the paper's [[7,1,3]] Steane numbers, a one-level
    // (faster, weaker) Steane variant, a distillation-heavy profile where
    // T is 10x the Clifford delay, and a T-optimized profile.
    const std::vector<QeccProfile> profiles = {
        {"steane-7-1-3 (Table 1)", 5440.0, 10940.0, 5240.0, 4930.0},
        {"steane-1-level (fast)", 544.0, 1094.0, 524.0, 493.0},
        {"distillation-heavy", 5440.0, 52400.0, 5240.0, 4930.0},
        {"t-optimized", 5440.0, 5440.0, 5240.0, 4930.0},
    };

    std::printf("%-24s %14s %12s %18s\n", "QECC profile", "D (s)", "vs Steane",
                "critical T-ops");
    double steane_latency = 0.0;
    for (const QeccProfile& profile : profiles) {
        fabric::PhysicalParams params; // Table 1 TQA defaults
        params.d_h_us = profile.d_h_us;
        params.d_t_us = profile.d_t_us;
        params.d_pauli_us = profile.d_pauli_us;
        params.d_s_us = profile.d_pauli_us;
        params.d_cnot_us = profile.d_cnot_us;
        const core::LeqaEstimator estimator(params);
        const core::LeqaEstimate estimate = estimator.estimate(graph, iig);
        if (steane_latency == 0.0) steane_latency = estimate.latency_seconds();
        const std::size_t critical_t =
            estimate.critical_census.of(circuit::GateKind::T) +
            estimate.critical_census.of(circuit::GateKind::Tdg);
        std::printf("%-24s %14.4E %11.2fx %18zu\n", profile.name,
                    estimate.latency_seconds(),
                    estimate.latency_seconds() / steane_latency, critical_t);
    }
    std::printf("\nNote how the critical path re-routes around slow gates: the\n"
                "T-count on the critical path changes with the QECC profile, the\n"
                "effect Algorithm 1 line 19 exists to capture.\n");
    return 0;
}

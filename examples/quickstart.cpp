/// \file quickstart.cpp
/// \brief Five-minute tour of the library on the paper's Figure 2 circuit.
///
/// Builds the ham3 circuit, FT-synthesizes it, inspects the QODG (the graph
/// of Figure 2(b)), estimates its latency with LEQA, and cross-checks the
/// estimate against the detailed QSPR baseline.
///
///   $ ./build/examples/quickstart
#include <cstdio>

#include "benchgen/suite.h"
#include "core/leqa.h"
#include "fabric/params.h"
#include "iig/iig.h"
#include "qodg/qodg.h"
#include "qspr/qspr.h"
#include "synth/ft_synth.h"

int main() {
    using namespace leqa;

    // 1. A reversible circuit: ham3 from the paper's Figure 2 (one Toffoli
    //    plus four FT gates on three qubits).
    const circuit::Circuit ham3 = benchgen::ham3();
    std::printf("== ham3 (Figure 2) ==\n%s\n", ham3.to_string().c_str());

    // 2. Fault-tolerant synthesis: the Toffoli expands into the 15-gate
    //    {H, T, Tdg, CNOT} network, giving the 19 FT operations the figure
    //    numbers 1..19.
    const synth::FtSynthResult ft = synth::ft_synthesize(ham3);
    std::printf("FT synthesis: %s\n\n", ft.stats.to_string().c_str());

    // 3. The QODG: dependency graph with start/end sentinels (Figure 2(b)).
    const qodg::Qodg graph(ft.circuit);
    std::printf("QODG: %zu nodes (%zu ops), %zu merged edges\n", graph.num_nodes(),
                graph.num_ops(), graph.num_edges());
    const iig::Iig iig(ft.circuit);
    std::printf("IIG: %zu qubits, %zu interacting pairs, B = %.2f\n\n",
                iig.num_qubits(), iig.num_edges(), iig.average_zone_area());

    // 4. LEQA estimate with the paper's Table 1 physical parameters.
    const fabric::PhysicalParams params; // Table 1 defaults
    const core::LeqaEstimator estimator(params);
    const core::LeqaEstimate estimate = estimator.estimate(ft.circuit);
    std::printf("LEQA estimate:  %.6E s (critical path: %zu CNOT, %zu one-qubit)\n",
                estimate.latency_seconds(), estimate.critical_cnots,
                estimate.critical_one_qubit);

    // 5. Detailed baseline for comparison.
    const qspr::QsprMapper mapper(params);
    const qspr::QsprResult actual = mapper.map(ft.circuit);
    const double error =
        100.0 * (estimate.latency_us - actual.latency_us) / actual.latency_us;
    std::printf("QSPR actual:    %.6E s\n", actual.latency_us * 1e-6);
    std::printf("estimation error: %+.2f%%\n", error);
    return 0;
}

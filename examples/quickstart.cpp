/// \file quickstart.cpp
/// \brief Five-minute tour of the library on the paper's Figure 2 circuit.
///
/// One Pipeline session runs the whole flow -- parse, FT synthesis, QODG /
/// IIG construction, the LEQA estimate and the detailed QSPR baseline --
/// from a single request; the cached intermediates are inspected afterwards.
///
///   $ ./build/examples/quickstart
#include <cstdio>

#include "pipeline/pipeline.h"

int main() {
    using namespace leqa;

    // 1. A session with the paper's Table 1 physical parameters.
    pipeline::Pipeline pipe;

    // 2. One request: the ham3 circuit of Figure 2, estimate + map.
    pipeline::EstimationRequest request(pipeline::CircuitSource::from_bench("ham3"),
                                        pipeline::RunMode::Both);
    const pipeline::EstimationResult result = pipe.run(request);

    std::printf("== ham3 (Figure 2) ==\n");
    std::printf("FT synthesis: %zu reversible gates -> %zu FT operations on %zu "
                "qubits\n",
                result.circuit.pre_ft_gates, result.circuit.ft_ops,
                result.circuit.qubits);

    // 3. The cached intermediates: the QODG of Figure 2(b) and the IIG.
    const pipeline::CachedCircuitPtr entry = pipe.resolve(request.source);
    std::printf("QODG: %zu nodes (%zu ops), %zu merged edges\n",
                entry->qodg().num_nodes(), entry->qodg().num_ops(),
                entry->qodg().num_edges());
    std::printf("IIG: %zu qubits, %zu interacting pairs, B = %.2f\n\n",
                entry->iig().num_qubits(), entry->iig().num_edges(),
                entry->iig().average_zone_area());

    // 4. LEQA estimate vs the detailed QSPR baseline, from the same request.
    const core::LeqaEstimate& estimate = *result.estimate;
    const qspr::QsprResult& actual = *result.mapping;
    std::printf("LEQA estimate:  %.6E s (critical path: %zu CNOT, %zu one-qubit)\n",
                estimate.latency_seconds(), estimate.critical_cnots,
                estimate.critical_one_qubit);
    std::printf("QSPR actual:    %.6E s\n", actual.latency_us * 1e-6);
    const double error =
        100.0 * (estimate.latency_us - actual.latency_us) / actual.latency_us;
    std::printf("estimation error: %+.2f%%\n\n", error);

    // 5. The session cache: a second identical request re-parses nothing.
    (void)pipe.run(request);
    std::printf("cache after two runs: %s\n", pipe.cache_stats().to_string().c_str());
    return 0;
}

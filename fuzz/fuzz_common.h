/// \file fuzz_common.h
/// \brief Shared plumbing of the fuzz harnesses.
///
/// Two pieces every harness wants:
///
///   - `install_abort_handler()`: reroute LEQA_CHECK / LEQA_DCHECK failures
///     from the default throwing handler to an abort with a banner.  The
///     harnesses catch `util::Error` liberally (malformed input *should*
///     throw ParseError and friends), so a thrown InternalError from a
///     violated contract would be swallowed; the abort handler makes every
///     contract violation a crash libFuzzer and the replay driver report.
///   - `FUZZ_REQUIRE(cond, msg)`: a harness-level invariant (differential
///     mismatches, broken round trips).  Also an abort, for the same
///     reason — and it works identically in fuzzer and replay builds.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/check.h"

namespace leqa_fuzz {

[[noreturn]] inline void abort_check_handler(const char* expression,
                                             const char* file, int line,
                                             const std::string& message) {
    std::fprintf(stderr, "\n== LEQA contract violated ==\n%s:%d: CHECK(%s): %s\n",
                 file, line, expression, message.c_str());
    std::abort();
}

/// Install once per process (safe from a harness's first call: libFuzzer
/// and the replay driver are both single-threaded).
inline void install_abort_handler() {
    static const bool installed = [] {
        (void)leqa::util::set_check_fail_handler(&abort_check_handler);
        return true;
    }();
    (void)installed;
}

} // namespace leqa_fuzz

#define FUZZ_REQUIRE(cond, msg)                                               \
    do {                                                                      \
        if (!(cond)) {                                                        \
            std::fprintf(stderr, "\n== fuzz invariant violated ==\n%s:%d: %s\n", \
                         __FILE__, __LINE__, (msg));                          \
            std::abort();                                                     \
        }                                                                     \
    } while (false)

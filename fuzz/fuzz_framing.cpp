/// \file fuzz_framing.cpp
/// \brief NDJSON frame splitter on arbitrary bytes, whole-vs-chunked
///        differential.
///
/// The first two input bytes parameterize the harness (line cap and chunk
/// size); the rest is the stream.  The same stream is fed to one reader in
/// a single feed() and to a second reader in adversarial chunkings, and the
/// two event sequences must match exactly — framing must not depend on TCP
/// segmentation.  Per-event contracts:
///
///   - no emitted text contains '\n' or exceeds the cap (normal lines) /
///     the kept diagnostic prefix (overlong lines);
///   - an overlong text is never longer than the bytes actually buffered —
///     the regression in fuzz/regressions/fuzz_framing covers the resize()
///     call that used to *grow* short overlong lines with NUL padding;
///   - buffered() never exceeds the cap + 1 (the byte that detects the
///     overflow), so a hostile unterminated stream cannot grow memory.
#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz_common.h"
#include "net/framing.h"

namespace {

constexpr std::size_t kOverlongPrefix = 256; // mirrors framing.cpp

std::vector<leqa::net::WireLine> drain(leqa::net::LineReader& reader,
                                       std::size_t cap) {
    std::vector<leqa::net::WireLine> lines;
    while (auto line = reader.next()) {
        FUZZ_REQUIRE(line->text.find('\n') == std::string::npos,
                     "framed line contains a newline");
        if (line->overlong) {
            FUZZ_REQUIRE(line->text.size() <= std::min(kOverlongPrefix, cap + 1),
                         "overlong diagnostic prefix exceeds min(256, cap+1)");
        } else {
            FUZZ_REQUIRE(line->text.size() <= cap,
                         "non-overlong line exceeds the cap");
        }
        lines.push_back(std::move(*line));
    }
    return lines;
}

} // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    leqa_fuzz::install_abort_handler();
    if (size < 2) return 0;
    const std::size_t cap = 2 + data[0];            // [2, 257]: spans the prefix
    const std::size_t chunk = 1 + data[1] % 17;     // [1, 17]
    const std::string_view stream(reinterpret_cast<const char*>(data + 2), size - 2);

    leqa::net::LineReader whole(cap);
    whole.feed(stream);
    FUZZ_REQUIRE(whole.buffered() <= cap + 1, "reader buffered more than the cap");
    whole.finish();
    const std::vector<leqa::net::WireLine> expected = drain(whole, cap);

    leqa::net::LineReader chunked(cap);
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
        chunked.feed(stream.substr(off, chunk));
        FUZZ_REQUIRE(chunked.buffered() <= cap + 1,
                     "chunked reader buffered more than the cap");
    }
    chunked.finish();
    const std::vector<leqa::net::WireLine> actual = drain(chunked, cap);

    FUZZ_REQUIRE(expected.size() == actual.size(),
                 "whole-vs-chunked feed framed different line counts");
    for (std::size_t i = 0; i < expected.size(); ++i) {
        FUZZ_REQUIRE(expected[i].overlong == actual[i].overlong,
                     "whole-vs-chunked feed disagrees on overlong");
        FUZZ_REQUIRE(expected[i].text == actual[i].text,
                     "whole-vs-chunked feed framed different text");
        // The overlong event keeps at most what the line actually held:
        // kept prefix <= min(line length, 256).  A grown, NUL-padded prefix
        // trips the newline/size checks in drain() via this bound.
        if (expected[i].overlong) {
            FUZZ_REQUIRE(expected[i].text.size() <= stream.size(),
                         "overlong prefix is longer than the whole stream");
        }
    }
    return 0;
}

/// \file fuzz_json.cpp
/// \brief JSON document model: parse -> dump -> re-parse fixed point.
///
/// `util::json_parse` consumes every byte string the wire layer might see.
/// Contract under fuzz:
///
///   - arbitrary bytes either parse or throw util::ParseError — nothing
///     else escapes, and no UB (the interesting bugs: unguarded recursion,
///     numeral overflow, bad escape decoding);
///   - the *string-level* fixed point of DESIGN.md §9 holds: for any value
///     that parsed, `dump(parse(dump(v))) == dump(v)`.  The comparison is
///     on serialized text, not re-parsed doubles: format_double's 12
///     significant digits make the dump grid coarser than the double grid,
///     so text equality is the invariant that is actually exact.
#include <cstdint>
#include <string>

#include "fuzz_common.h"
#include "util/error.h"
#include "util/json_value.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    leqa_fuzz::install_abort_handler();
    const std::string text(reinterpret_cast<const char*>(data), size);

    leqa::util::JsonValue value;
    try {
        value = leqa::util::json_parse(text);
    } catch (const leqa::util::ParseError&) {
        return 0; // rejection is the expected outcome for most byte strings
    }

    const std::string first = value.dump();
    leqa::util::JsonValue reparsed;
    try {
        reparsed = leqa::util::json_parse(first);
    } catch (const leqa::util::ParseError&) {
        FUZZ_REQUIRE(false, ("dump() produced unparsable JSON: " + first).c_str());
    }
    const std::string second = reparsed.dump();
    FUZZ_REQUIRE(first == second,
                 ("parse->dump is not a fixed point:\n  " + first + "\n  " + second)
                     .c_str());
    return 0;
}

/// \file fuzz_openqasm.cpp
/// \brief OpenQASM 2.0 subset parser: arbitrary text never crashes, the
///        dialect sniffer agrees with the parser, and accepted circuits
///        survive the write/parse round trip.
///
/// Same shape as fuzz_qasm but for the interchange dialect.  The round trip
/// is total on *parsed* circuits: the subset `parse_openqasm` accepts (1q
/// gates, cx/ccx/cswap) is exactly the subset `write_openqasm` can emit, so
/// a parsed circuit failing to serialize is a harness-reportable bug.
#include <cstdint>
#include <string>

#include "circuit/circuit.h"
#include "fuzz_common.h"
#include "parser/openqasm.h"
#include "util/error.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    leqa_fuzz::install_abort_handler();
    const std::string text(reinterpret_cast<const char*>(data), size);

    (void)leqa::parser::looks_like_openqasm(text); // must never throw

    leqa::circuit::Circuit circ(0);
    try {
        circ = leqa::parser::parse_openqasm(text, "<fuzz>");
    } catch (const leqa::util::InputError&) {
        return 0;
    }

    const std::string written = leqa::parser::write_openqasm(circ);
    FUZZ_REQUIRE(leqa::parser::looks_like_openqasm(written),
                 "write_openqasm output fails the dialect sniffer");
    leqa::circuit::Circuit again(0);
    try {
        again = leqa::parser::parse_openqasm(written, "<fuzz-roundtrip>");
    } catch (const leqa::util::InputError&) {
        FUZZ_REQUIRE(false,
                     ("write_openqasm emitted unparsable text:\n" + written).c_str());
    }
    FUZZ_REQUIRE(again.num_qubits() == circ.num_qubits(),
                 "openqasm round trip changed the qubit count");
    FUZZ_REQUIRE(again.size() == circ.size(),
                 "openqasm round trip changed the gate count");
    for (std::size_t i = 0; i < circ.size(); ++i) {
        FUZZ_REQUIRE(again.gate(i).kind == circ.gate(i).kind,
                     "openqasm round trip changed a gate kind");
    }
    return 0;
}

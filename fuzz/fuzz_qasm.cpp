/// \file fuzz_qasm.cpp
/// \brief QASM-subset netlist parser: arbitrary text never crashes, and
///        accepted circuits survive the write/parse round trip.
///
/// `parse_qasm` is the primary untrusted surface of the CLI tools (any file
/// path on the command line lands here).  Contract under fuzz: every input
/// either yields a circuit or throws util::InputError (ParseError for
/// malformed text, with a source location); a circuit that parsed must
/// serialize with `write_qasm` and re-parse to the same shape (qubit count,
/// gate count, per-gate kind) — names and comments are the only lossy part.
#include <cstdint>
#include <string>

#include "circuit/circuit.h"
#include "fuzz_common.h"
#include "parser/qasm.h"
#include "util/error.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    leqa_fuzz::install_abort_handler();
    const std::string text(reinterpret_cast<const char*>(data), size);

    leqa::circuit::Circuit circ(0);
    try {
        circ = leqa::parser::parse_qasm(text, "<fuzz>");
    } catch (const leqa::util::InputError&) {
        return 0; // malformed netlist: the documented rejection path
    }

    const std::string written = leqa::parser::write_qasm(circ);
    leqa::circuit::Circuit again(0);
    try {
        again = leqa::parser::parse_qasm(written, "<fuzz-roundtrip>");
    } catch (const leqa::util::InputError&) {
        FUZZ_REQUIRE(false, ("write_qasm emitted unparsable text:\n" + written).c_str());
    }
    FUZZ_REQUIRE(again.num_qubits() == circ.num_qubits(),
                 "qasm round trip changed the qubit count");
    FUZZ_REQUIRE(again.size() == circ.size(),
                 "qasm round trip changed the gate count");
    for (std::size_t i = 0; i < circ.size(); ++i) {
        FUZZ_REQUIRE(again.gate(i).kind == circ.gate(i).kind,
                     "qasm round trip changed a gate kind");
    }
    return 0;
}

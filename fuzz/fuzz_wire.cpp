/// \file fuzz_wire.cpp
/// \brief Wire request codec + in-process Service round trip.
///
/// The deepest untrusted surface: a request line crosses `parse_request`
/// (must *never* throw — the daemon answers errors, it does not die), then
/// a decoded request drives the real async `Service`, and the response line
/// must survive `parse_response`.  Three layers of contract:
///
///   - codec totality: `parse_request` / `parse_response` on arbitrary
///     bytes return a Result, never throw, never crash;
///   - codec fixed point: for a request that parsed,
///     `serialize_request -> parse_request -> serialize_request` reproduces
///     the identical string (string-level, for the same reason as
///     fuzz_json: 12-digit number formatting makes text the exact grid);
///   - service totality: the decoded request — clamped to a small fabric /
///     tiny budgets so hostile numerals cannot buy unbounded compute, with
///     the source pinned to "bench:ham3" so there is no file-system
///     dependence — submits, completes, and its serialized result parses
///     back as a response.  No exception may escape the Service boundary.
#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>

#include "fuzz_common.h"
#include "service/service.h"
#include "service/wire.h"
#include "util/error.h"

namespace {

using leqa::service::Service;
using leqa::service::ServiceOptions;
namespace wire = leqa::service::wire;

template <typename T>
void clamp_opt(std::optional<T>& field, T lo, T hi) {
    if (!field) return;
    if (!(*field >= lo)) *field = lo; // also catches NaN
    if (*field > hi) *field = hi;
}

/// Bound the compute a decoded request can buy.  Correctness of *handling*
/// is what is under test, not throughput: a clamped request exercises the
/// same dispatch, queueing, and serialization paths at a fixed small cost.
void clamp_request(wire::WireRequest& request) {
    request.source = "bench:ham3";
    clamp_opt(request.params.width, 1, 12);
    clamp_opt(request.params.height, 1, 12);
    clamp_opt(request.params.nc, 1, 6);
    clamp_opt(request.params.v, 1e-4, 0.1);
    clamp_opt(request.params.t_move_us, 1.0, 1000.0);
    request.deadline_s.reset(); // wall-clock dependence breaks reproducibility

    request.values.resize(std::min<std::size_t>(request.values.size(), 3));
    for (double& v : request.values) {
        if (!(v >= 1e-4)) v = 1e-4;
        if (v > 12.0) v = 12.0;
    }
    request.kinds.resize(std::min<std::size_t>(request.kinds.size(), 3));

    auto& spec = request.explore;
    spec.topologies.resize(std::min<std::size_t>(spec.topologies.size(), 2));
    spec.sides.resize(std::min<std::size_t>(spec.sides.size(), 2));
    for (int& s : spec.sides) s = std::clamp(s, 4, 10);
    spec.capacities.resize(std::min<std::size_t>(spec.capacities.size(), 2));
    for (int& c : spec.capacities) c = std::clamp(c, 1, 6);
    spec.speeds.resize(std::min<std::size_t>(spec.speeds.size(), 2));
    for (double& v : spec.speeds) {
        if (!(v >= 1e-4)) v = 1e-4;
        if (v > 0.1) v = 0.1;
    }
    spec.threads = std::min<std::size_t>(std::max<std::size_t>(spec.threads, 1), 2);

    auto& opt = request.optimize;
    opt.max_moves = std::min<std::size_t>(std::max<std::size_t>(opt.max_moves, 1), 128);
    opt.max_seconds = 0.0;
    if (!(opt.relocate_fraction >= 0.0)) opt.relocate_fraction = 0.0;
    if (opt.relocate_fraction > 1.0) opt.relocate_fraction = 1.0;
    if (!(opt.final_temperature_frac >= 0.0)) opt.final_temperature_frac = 0.0;
    if (!(opt.initial_temperature_frac >= opt.final_temperature_frac)) {
        opt.initial_temperature_frac = opt.final_temperature_frac;
    }
    if (opt.initial_temperature_frac > 1.0) opt.initial_temperature_frac = 1.0;

    request.sources.resize(std::min<std::size_t>(request.sources.size(), 2));
    for (std::string& s : request.sources) s = "bench:ham3";
}

Service& shared_service() {
    static Service service(leqa::pipeline::PipelineConfig{},
                           ServiceOptions{/*threads=*/1, /*max_queue=*/64});
    return service;
}

/// Mirror of the session dispatch (net/session.cpp) minus the per-client
/// job table: run the clamped request to completion, return the response
/// line (empty only for ops the harness answers inline without one).
std::string run_request(const wire::WireRequest& request) {
    Service& service = shared_service();
    switch (request.op) {
        case wire::WireRequest::Op::Estimate:
        case wire::WireRequest::Op::Map:
        case wire::WireRequest::Op::Both: {
            std::optional<leqa::fabric::PhysicalParams> params;
            if (!request.params.empty()) {
                params = request.params.apply(service.pipeline().config().params);
            }
            return wire::serialize_result(
                request.id, service
                                .submit(request.source, wire::run_mode_of(request.op),
                                        std::move(params))
                                .wait());
        }
        case wire::WireRequest::Op::Sweep: {
            leqa::service::SweepRequest sweep;
            sweep.source = request.source;
            sweep.axis = request.axis;
            sweep.values = request.values;
            sweep.kinds = request.kinds;
            return wire::serialize_result(request.id,
                                          service.submit_sweep(std::move(sweep)).wait());
        }
        case wire::WireRequest::Op::Explore: {
            leqa::service::ExploreRequest explore;
            explore.source = request.source;
            explore.spec = request.explore;
            return wire::serialize_result(
                request.id, service.submit_explore(std::move(explore)).wait());
        }
        case wire::WireRequest::Op::Optimize: {
            leqa::service::OptimizeRequest optimize;
            optimize.source = request.source;
            optimize.options = request.optimize;
            if (!request.params.empty()) {
                optimize.params =
                    request.params.apply(service.pipeline().config().params);
            }
            return wire::serialize_result(
                request.id, service.submit_optimize(std::move(optimize)).wait());
        }
        case wire::WireRequest::Op::Calibrate: {
            leqa::service::CalibrationRequest calibrate;
            calibrate.sources = request.sources;
            calibrate.apply = false; // keep the shared session parameters fixed
            return wire::serialize_result(
                request.id, service.submit_calibration(std::move(calibrate)).wait());
        }
        case wire::WireRequest::Op::Cancel:
            return wire::serialize_cancel_ack(request.id, request.target,
                                              /*cancelled=*/false);
        case wire::WireRequest::Op::Stats:
            return wire::serialize_stats(request.id, service.stats());
    }
    return {};
}

} // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    leqa_fuzz::install_abort_handler();
    if (size > 4096) return 0; // parse cost is linear; bigger buys no coverage
    const std::string line(reinterpret_cast<const char*>(data), size);

    // Totality: both direction codecs accept arbitrary bytes.
    std::optional<leqa::util::Result<wire::WireRequest>> parsed;
    try {
        parsed = wire::parse_request(line);
        (void)wire::parse_response(line);
        (void)wire::extract_id(line);
    } catch (...) {
        FUZZ_REQUIRE(false, "the wire codec threw on raw input");
    }
    if (!parsed->ok()) return 0;

    // Codec fixed point on the decoded request.
    const std::string first = wire::serialize_request(parsed->value());
    const leqa::util::Result<wire::WireRequest> reparsed = wire::parse_request(first);
    FUZZ_REQUIRE(reparsed.ok(), ("serialize_request emitted a line parse_request "
                                 "rejects: " + first)
                                    .c_str());
    FUZZ_REQUIRE(wire::serialize_request(reparsed.value()) == first,
                 "serialize_request -> parse_request is not a fixed point");

    // Service round trip on the clamped request.
    wire::WireRequest request = parsed->value();
    clamp_request(request);
    std::string response_line;
    try {
        response_line = run_request(request);
    } catch (...) {
        FUZZ_REQUIRE(false, "an exception escaped the Service boundary");
    }
    FUZZ_REQUIRE(!response_line.empty(), "request produced no response line");
    const leqa::util::Result<wire::WireResponse> response =
        wire::parse_response(response_line);
    FUZZ_REQUIRE(response.ok(), ("service response line fails parse_response: " +
                                 response_line)
                                    .c_str());
    FUZZ_REQUIRE(wire::serialize_response(response.value()) == response_line,
                 "serialize_response -> parse_response is not a fixed point");
    return 0;
}

/// \file replay_main.cpp
/// \brief Corpus-replay driver: a `main()` that feeds files through the same
///        `LLVMFuzzerTestOneInput` libFuzzer links against.
///
/// Each fuzz_*.cpp defines only the libFuzzer entry point, so one source
/// file builds two ways: with `-fsanitize=fuzzer` (Clang, CI's fuzz-smoke
/// job) libFuzzer provides main and explores; linked against this file
/// (any compiler, LEQA_BUILD_TESTS) the binary replays its seed corpus and
/// checked-in regressions deterministically under ctest — including the
/// ASan+UBSan and TSan legs, which is how fuzz findings stay fixed.
///
/// Usage: `<target>_replay <file-or-directory>...` — directories are walked
/// non-recursively, entries replayed in sorted order.  Exits non-zero when
/// an argument is missing or unreadable; a harness failure aborts (the
/// LEQA_CHECK fail handler is process-fatal under replay).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

bool replay_file(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "replay: cannot read %s\n", path.string().c_str());
        return false;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    (void)LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                                 bytes.size());
    return true;
}

} // namespace

int main(int argc, char** argv) {
    std::size_t replayed = 0;
    for (int i = 1; i < argc; ++i) {
        const std::filesystem::path arg(argv[i]);
        std::error_code ec;
        if (std::filesystem::is_directory(arg, ec)) {
            std::vector<std::filesystem::path> entries;
            for (const auto& entry : std::filesystem::directory_iterator(arg)) {
                if (entry.is_regular_file()) entries.push_back(entry.path());
            }
            std::sort(entries.begin(), entries.end());
            for (const auto& entry : entries) {
                if (!replay_file(entry)) return 1;
                ++replayed;
            }
        } else if (std::filesystem::is_regular_file(arg, ec)) {
            if (!replay_file(arg)) return 1;
            ++replayed;
        } else {
            std::fprintf(stderr, "replay: no such file or directory: %s\n", argv[i]);
            return 1;
        }
    }
    std::printf("replayed %zu input(s)\n", replayed);
    return 0;
}

#!/usr/bin/env bash
# The whole static-analysis gate in one entry point: clang-tidy (via
# scripts/run_clang_tidy.sh), ruff over the Python helpers, and the
# repo-convention greps.  CI's lint job runs this exact script, so a clean
# local run reproduces the gate.
#
# Usage: scripts/lint.sh [build-dir]
#
#   build-dir  forwarded to run_clang_tidy.sh (default build-tidy).
#
# Tools that are not installed are *skipped with a notice* locally but are
# hard failures when CI=true -- the greps always run (they need nothing but
# grep).
set -uo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tidy}"
STRICT="${CI:-false}"
FAILED=0

note() { echo "== $*"; }
fail() {
    echo "error: $*" >&2
    FAILED=1
}
missing_tool() {
    if [ "${STRICT}" = "true" ]; then
        fail "$1 not found (required in CI)"
    else
        note "$1 not found; skipping (runs in CI)"
    fi
}

# --- repo-convention greps (always run) ------------------------------------

# NO_THREAD_SAFETY_ANALYSIS opts a function out of Clang's capability
# analysis; shipped code must use proper LEQA_GUARDED_BY / LEQA_REQUIRES
# annotations instead.  Only the macro's own definition may mention it.
note "grep: NO_THREAD_SAFETY_ANALYSIS ban under src/"
if grep -rn "LEQA_NO_THREAD_SAFETY_ANALYSIS" src/ \
        | grep -v "src/util/thread_annotations.h"; then
    fail "NO_THREAD_SAFETY_ANALYSIS is reserved for test helpers"
fi

# Raw assert() vanishes under NDEBUG with no diagnostic and no fail-handler
# hook; library code uses LEQA_CHECK (always on) or LEQA_DCHECK (Debug-only,
# death-testable) from util/check.h instead.
note "grep: raw assert( ban under src/"
if grep -rn --include='*.cpp' --include='*.h' -E '(^|[^_[:alnum:]])assert\(' src/; then
    fail "raw assert( in src/; use LEQA_CHECK / LEQA_DCHECK (util/check.h)"
fi

# --- clang-tidy -------------------------------------------------------------

if command -v "${CLANG_TIDY:-clang-tidy}" >/dev/null 2>&1; then
    note "clang-tidy"
    scripts/run_clang_tidy.sh "${BUILD_DIR}" || fail "clang-tidy reported issues"
else
    missing_tool "${CLANG_TIDY:-clang-tidy}"
fi

# --- ruff -------------------------------------------------------------------

if command -v ruff >/dev/null 2>&1; then
    note "ruff"
    ruff check bench/compare_baseline.py tests/server_smoke.py \
        || fail "ruff reported issues"
else
    missing_tool ruff
fi

if [ "${FAILED}" -ne 0 ]; then
    echo "lint: FAIL" >&2
    exit 1
fi
echo "lint: clean"

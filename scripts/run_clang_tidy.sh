#!/usr/bin/env bash
# Run clang-tidy over the library + CLI sources with the checked-in
# .clang-tidy config, against a CMake compile database.  CI calls this
# exact script, so a clean local run reproduces the CI gate.
#
# Usage: scripts/run_clang_tidy.sh [build-dir]
#
#   build-dir  directory holding (or to receive) compile_commands.json;
#              defaults to build-tidy.  Configured on demand with
#              -DCMAKE_EXPORT_COMPILE_COMMANDS=ON.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tidy}"
TIDY="${CLANG_TIDY:-clang-tidy}"

if ! command -v "${TIDY}" >/dev/null 2>&1; then
    echo "error: ${TIDY} not found (set CLANG_TIDY to override)" >&2
    exit 2
fi

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
    cmake -S . -B "${BUILD_DIR}" \
        -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        ${CMAKE_CONFIGURE_ARGS:-}
fi

# Every translation unit in the compile database that lives under src/.
# (Tests and benches are covered by the compiler-side -Werror legs; the
# tidy gate is scoped to the shipped library + CLIs.)
mapfile -t SOURCES < <(git ls-files 'src/*.cpp' 'src/**/*.cpp' | sort)

if [ "${#SOURCES[@]}" -eq 0 ]; then
    echo "error: no sources found under src/" >&2
    exit 2
fi

echo "clang-tidy (${TIDY}) over ${#SOURCES[@]} translation units"

STATUS=0
JOBS="${TIDY_JOBS:-$(nproc)}"
printf '%s\n' "${SOURCES[@]}" \
    | xargs -P "${JOBS}" -n 1 "${TIDY}" -p "${BUILD_DIR}" --quiet \
    || STATUS=$?

if [ "${STATUS}" -ne 0 ]; then
    echo "clang-tidy: FAIL" >&2
    exit 1
fi
echo "clang-tidy: clean"

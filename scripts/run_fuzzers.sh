#!/usr/bin/env bash
# Build the libFuzzer targets (Clang + ASan/UBSan) and run each for a
# bounded smoke pass over its seed corpus, then replay the checked-in
# regressions.  CI's fuzz-smoke job runs this exact script; locally it is
# the way to reproduce or extend a fuzzing session.
#
# Usage: scripts/run_fuzzers.sh [seconds-per-target] [target...]
#
#   seconds-per-target  -max_total_time per fuzzer (default 60)
#   target...           subset of fuzz targets (default: all fuzz/fuzz_*.cpp)
#
# Environment:
#   CC/CXX        compiler (default clang/clang++; must be Clang)
#   BUILD_DIR     build tree (default build-fuzz)
#   CORPUS_DIR    writable corpus state; seeded from fuzz/corpus and kept
#                 across runs for accumulation (default <BUILD_DIR>/corpus)
set -euo pipefail

cd "$(dirname "$0")/.."

SECONDS_PER_TARGET="${1:-60}"
shift $(( $# > 0 ? 1 : 0 ))

BUILD_DIR="${BUILD_DIR:-build-fuzz}"
CORPUS_DIR="${CORPUS_DIR:-${BUILD_DIR}/corpus}"
export CC="${CC:-clang}"
export CXX="${CXX:-clang++}"

if ! command -v "${CXX}" >/dev/null 2>&1; then
    echo "error: ${CXX} not found (libFuzzer needs Clang)" >&2
    exit 2
fi

if [ "$#" -gt 0 ]; then
    TARGETS=("$@")
else
    TARGETS=()
    for source in fuzz/fuzz_*.cpp; do
        name="$(basename "${source}" .cpp)"
        TARGETS+=("${name}")
    done
fi

# shellcheck disable=SC2086  # CMAKE_CONFIGURE_ARGS is deliberately word-split
cmake -S . -B "${BUILD_DIR}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLEQA_FUZZ=ON \
    -DLEQA_BUILD_TESTS=OFF \
    -DLEQA_BUILD_EXAMPLES=OFF \
    -DLEQA_BUILD_BENCHES=OFF \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=undefined" \
    ${CMAKE_CONFIGURE_ARGS:-}
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target "${TARGETS[@]}"

STATUS=0
for name in "${TARGETS[@]}"; do
    echo "== ${name}: regressions =="
    if [ -d "fuzz/regressions/${name}" ]; then
        # Replay known findings first: -runs=0 executes each file once and
        # exits, so a regression that crashes fails fast and unambiguously.
        "${BUILD_DIR}/fuzz/${name}" -runs=0 "fuzz/regressions/${name}" \
            || { echo "error: ${name} regression replay failed" >&2; STATUS=1; continue; }
    fi

    echo "== ${name}: fuzzing for ${SECONDS_PER_TARGET}s =="
    mkdir -p "${CORPUS_DIR}/${name}"
    SEED_DIRS=()
    [ -d "fuzz/corpus/${name}" ] && SEED_DIRS+=("fuzz/corpus/${name}")
    [ -d "fuzz/regressions/${name}" ] && SEED_DIRS+=("fuzz/regressions/${name}")
    "${BUILD_DIR}/fuzz/${name}" \
        -max_total_time="${SECONDS_PER_TARGET}" \
        -timeout=20 \
        -rss_limit_mb=4096 \
        -print_final_stats=1 \
        -artifact_prefix="${BUILD_DIR}/fuzz/${name}-" \
        "${CORPUS_DIR}/${name}" "${SEED_DIRS[@]}" \
        || { echo "error: ${name} found a crash (artifact under ${BUILD_DIR}/fuzz/)" >&2; STATUS=1; }
done

if [ "${STATUS}" -ne 0 ]; then
    echo "fuzz: FAIL" >&2
    exit 1
fi
echo "fuzz: clean"

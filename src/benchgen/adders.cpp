#include "benchgen/adders.h"

#include "util/error.h"

namespace leqa::benchgen {

namespace {

struct AdderWires {
    circuit::Qubit a;
    circuit::Qubit b;
    circuit::Qubit c;      ///< carry into this position
    circuit::Qubit c_next; ///< carry out (unused at the top position)
    bool has_c_next;
};

/// CARRY(c_in, a, b, c_out): c_out ^= maj-style carry, b ^= a.
void emit_carry(circuit::Circuit& circ, const AdderWires& w) {
    circ.toffoli(w.a, w.b, w.c_next);
    circ.cnot(w.a, w.b);
    circ.toffoli(w.c, w.b, w.c_next);
}

/// Inverse of emit_carry.
void emit_carry_inverse(circuit::Circuit& circ, const AdderWires& w) {
    circ.toffoli(w.c, w.b, w.c_next);
    circ.cnot(w.a, w.b);
    circ.toffoli(w.a, w.b, w.c_next);
}

/// SUM(c_in, a, b): b ^= a ^ c_in.
void emit_sum(circuit::Circuit& circ, const AdderWires& w) {
    circ.cnot(w.a, w.b);
    circ.cnot(w.c, w.b);
}

} // namespace

circuit::Circuit vbe_adder(int n) {
    LEQA_REQUIRE(n >= 1, "adder width must be >= 1");
    circuit::Circuit circ(0, std::to_string(n) + "bitadder");
    for (int i = 0; i < n; ++i) circ.add_qubit("a" + std::to_string(i));
    for (int i = 0; i < n; ++i) circ.add_qubit("b" + std::to_string(i));
    for (int i = 0; i < n; ++i) circ.add_qubit("c" + std::to_string(i));
    circ.add_comment("generator: vbe_adder n=" + std::to_string(n));
    circ.add_comment("function: b <- (a + b) mod 2^" + std::to_string(n) +
                     "; carries restored to 0");

    const auto wires = [&](int i) {
        AdderWires w;
        w.a = static_cast<circuit::Qubit>(i);
        w.b = static_cast<circuit::Qubit>(n + i);
        w.c = static_cast<circuit::Qubit>(2 * n + i);
        w.has_c_next = i + 1 < n;
        w.c_next = w.has_c_next ? static_cast<circuit::Qubit>(2 * n + i + 1) : 0;
        return w;
    };

    // Forward carry sweep (positions 0..n-2 produce carry-out).
    for (int i = 0; i + 1 < n; ++i) emit_carry(circ, wires(i));
    // Top position: plain sum with the incoming carry (mod-2^n drop-out).
    emit_sum(circ, wires(n - 1));
    // Downward sweep: undo carries, emit sums.
    for (int i = n - 2; i >= 0; --i) {
        emit_carry_inverse(circ, wires(i));
        emit_sum(circ, wires(i));
    }

    LEQA_CHECK(circ.size() == vbe_adder_counts(n).total(), "adder gate count mismatch");
    return circ;
}

AdderCounts vbe_adder_counts(int n) {
    AdderCounts counts;
    if (n <= 0) return counts;
    // forward: (n-1) * (2 Tof + 1 CNOT); top sum: 2 CNOT;
    // downward: (n-1) * (2 Tof + 1 CNOT + 2 CNOT).
    counts.toffolis = 4 * static_cast<std::size_t>(n - 1);
    counts.cnots = static_cast<std::size_t>(n - 1) * 4 + 2;
    return counts;
}

} // namespace leqa::benchgen

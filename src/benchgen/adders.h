/// \file adders.h
/// \brief Reversible ripple-carry adders (the paper's Nbitadder / modNadder
///        benchmark families).
///
/// VBE-style (Vedral-Barenco-Ekert) ripple-carry adder on 3n qubits:
///   a[0..n-1]  addend (preserved),
///   b[0..n-1]  becomes (a + b) mod 2^n,
///   c[0..n-1]  carry ancillas (restored to 0).
///
/// The paper's "8bitadder" uses exactly this register budget (24 qubits for
/// n = 8).  Its op count (822) came from a different synthesized netlist;
/// ours is the textbook construction (4(n-1) Toffolis, ~4n CNOTs before FT
/// synthesis), functionally verified.  A mod-2^k adder is the same circuit
/// (addition mod 2^k is the natural overflow behaviour).
#pragma once

#include "circuit/circuit.h"

namespace leqa::benchgen {

/// n-bit VBE ripple-carry adder: b <- (a + b) mod 2^n.
[[nodiscard]] circuit::Circuit vbe_adder(int n);

/// Pre-FT gate counts of vbe_adder (for tests and planning).
struct AdderCounts {
    std::size_t toffolis = 0;
    std::size_t cnots = 0;
    [[nodiscard]] std::size_t total() const { return toffolis + cnots; }
};
[[nodiscard]] AdderCounts vbe_adder_counts(int n);

} // namespace leqa::benchgen

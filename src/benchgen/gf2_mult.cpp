#include "benchgen/gf2_mult.h"

#include <numeric>

#include "mathx/gf2poly.h"
#include "util/error.h"

namespace leqa::benchgen {

namespace {

std::vector<int> middle_terms_for(int n, Gf2PolyForm form) {
    switch (form) {
        case Gf2PolyForm::Auto:
            return mathx::irreducible_middle_terms(n, /*force_pentanomial=*/false);
        case Gf2PolyForm::Trinomial: {
            const auto t = mathx::find_irreducible_trinomial(n);
            LEQA_REQUIRE(t.has_value(),
                         "no irreducible trinomial of degree " + std::to_string(n));
            return {*t};
        }
        case Gf2PolyForm::Pentanomial:
            return mathx::irreducible_middle_terms(n, /*force_pentanomial=*/true);
    }
    throw util::InternalError("unhandled polynomial form");
}

std::string poly_to_string(int n, const std::vector<int>& middle) {
    std::string out = "x^" + std::to_string(n);
    for (const int t : middle) {
        out += t == 1 ? " + x" : " + x^" + std::to_string(t);
    }
    return out + " + 1";
}

} // namespace

circuit::Circuit gf2_mult(const Gf2MultSpec& spec) {
    LEQA_REQUIRE(spec.n >= 2, "gf2_mult: n must be >= 2");
    const int n = spec.n;
    const auto middle = middle_terms_for(n, spec.form);

    circuit::Circuit circ(0, "gf2^" + std::to_string(n) + "mult");
    for (int i = 0; i < n; ++i) circ.add_qubit("a" + std::to_string(i));
    for (int i = 0; i < n; ++i) circ.add_qubit("b" + std::to_string(i));
    for (int i = 0; i < n; ++i) circ.add_qubit("c" + std::to_string(i));
    circ.add_comment("generator: gf2_mult n=" + std::to_string(n));
    circ.add_comment("reduction polynomial: " + poly_to_string(n, middle));
    circ.add_comment("garbage: b register ends as b * x^(n-1) mod p");

    const auto a_wire = [&](int i) { return static_cast<circuit::Qubit>(i); };
    const auto c_wire = [&](int i) { return static_cast<circuit::Qubit>(2 * n + i); };

    // wire_of[k] = physical b wire currently holding coefficient k of
    // b * x^i mod p.  Rotating this table is the free relabeling.
    std::vector<circuit::Qubit> wire_of(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) wire_of[k] = static_cast<circuit::Qubit>(n + k);

    for (int i = 0; i < n; ++i) {
        // c_k ^= a_i & (b * x^i)_k for all k.
        for (int k = 0; k < n; ++k) {
            circ.toffoli(a_wire(i), wire_of[k], c_wire(k));
        }
        if (i == n - 1) break;
        // b <- b * x mod p: coefficient n-1 wraps into position 0 and feeds
        // back into each middle term; the cyclic renaming is gate-free.
        const circuit::Qubit wrap = wire_of[n - 1];
        for (int k = n - 1; k >= 1; --k) wire_of[k] = wire_of[k - 1];
        wire_of[0] = wrap;
        for (const int t : middle) {
            circ.cnot(wire_of[0], wire_of[t]);
        }
    }

    LEQA_CHECK(circ.size() == gf2_mult_gate_count(n, middle.size()),
               "gf2_mult gate count mismatch");
    return circ;
}

std::size_t gf2_mult_gate_count(int n, std::size_t middle_terms) {
    return static_cast<std::size_t>(n) * n +
           static_cast<std::size_t>(n - 1) * middle_terms;
}

std::size_t gf2_mult_ft_op_count(int n, std::size_t middle_terms) {
    return 15 * static_cast<std::size_t>(n) * n +
           static_cast<std::size_t>(n - 1) * middle_terms;
}

namespace {
std::uint64_t mulmod_bits(int n, const std::vector<int>& middle, std::uint64_t a,
                          std::uint64_t b) {
    LEQA_REQUIRE(n <= 63, "reference multiplier supports n <= 63");
    const std::uint64_t mask = (1ULL << n) - 1;
    std::uint64_t result = 0;
    std::uint64_t shifted_b = b & mask;
    for (int i = 0; i < n; ++i) {
        if ((a >> i) & 1ULL) result ^= shifted_b;
        // shifted_b <- shifted_b * x mod p.
        const std::uint64_t wrap = (shifted_b >> (n - 1)) & 1ULL;
        shifted_b = (shifted_b << 1) & mask;
        if (wrap) {
            shifted_b ^= 1ULL;
            for (const int t : middle) shifted_b ^= 1ULL << t;
        }
    }
    return result;
}
} // namespace

std::uint64_t gf2_mult_reference(int n, Gf2PolyForm form, std::uint64_t a,
                                 std::uint64_t b) {
    return mulmod_bits(n, middle_terms_for(n, form), a, b);
}

std::uint64_t gf2_mult_b_residue(int n, Gf2PolyForm form, std::uint64_t b) {
    const auto middle = middle_terms_for(n, form);
    const std::uint64_t mask = (1ULL << n) - 1;
    std::uint64_t value = b & mask;
    for (int i = 0; i < n - 1; ++i) {
        const std::uint64_t wrap = (value >> (n - 1)) & 1ULL;
        value = (value << 1) & mask;
        if (wrap) {
            value ^= 1ULL;
            for (const int t : middle) value ^= 1ULL << t;
        }
    }
    return value;
}

} // namespace leqa::benchgen

/// \file gf2_mult.h
/// \brief Reversible GF(2^n) multiplier generator (the paper's gf2^Nmult
///        benchmark family).
///
/// Shift-and-add Mastrovito-style multiplier on 3n qubits:
///   a[0..n-1]  multiplicand (preserved),
///   b[0..n-1]  multiplier   (left holding b * x^(n-1) mod p; documented
///              garbage, exactly like the Maslov benchmarks' garbage lines),
///   c[0..n-1]  accumulator  (c ^= a * b mod p).
///
/// Per diagonal i the circuit adds a_i * (b * x^i mod p) into c with n
/// Toffolis; advancing b -> b * x mod p costs one CNOT per middle term of
/// the reduction polynomial plus a free wire relabeling.  Totals:
///   Toffolis: n^2
///   CNOTs:    (n - 1) * (#middle terms)   [1 for trinomials, 3 for
///                                          pentanomials]
/// After FT synthesis: 15 n^2 + (n-1) * #middle FT operations -- exactly
/// the paper's reported operation counts for its gf2^Nmult benchmarks
/// (pentanomial reduction everywhere except gf2^20mult, which matches the
/// trinomial count; see DESIGN.md §5).
#pragma once

#include "circuit/circuit.h"

namespace leqa::benchgen {

enum class Gf2PolyForm {
    Auto,             ///< trinomial if one exists, else pentanomial
    Trinomial,        ///< require x^n + x^t + 1 (throws if none exists)
    Pentanomial,      ///< require x^n + x^t3 + x^t2 + x^t1 + 1
};

struct Gf2MultSpec {
    int n = 16;
    Gf2PolyForm form = Gf2PolyForm::Pentanomial;
};

/// Generate the reversible multiplier (pre-FT-synthesis: Toffoli + CNOT).
[[nodiscard]] circuit::Circuit gf2_mult(const Gf2MultSpec& spec);

/// Closed-form pre-FT gate count: n^2 Toffolis + (n-1)*middle CNOTs.
[[nodiscard]] std::size_t gf2_mult_gate_count(int n, std::size_t middle_terms);

/// Closed-form post-FT op count: 15 n^2 + (n-1)*middle.
[[nodiscard]] std::size_t gf2_mult_ft_op_count(int n, std::size_t middle_terms);

/// Reference GF(2^n) product (for functional verification): the modular
/// product of a and b under the same polynomial the generator selects.
[[nodiscard]] std::uint64_t gf2_mult_reference(int n, Gf2PolyForm form,
                                               std::uint64_t a, std::uint64_t b);

/// The value left in the b register after the circuit: b * x^(n-1) mod p.
[[nodiscard]] std::uint64_t gf2_mult_b_residue(int n, Gf2PolyForm form, std::uint64_t b);

} // namespace leqa::benchgen

#include "benchgen/suite.h"

#include <algorithm>

#include "benchgen/adders.h"
#include "benchgen/gf2_mult.h"
#include "benchgen/surrogate.h"
#include "util/error.h"

namespace leqa::benchgen {

namespace {

std::vector<PaperBenchmark> build_suite() {
    // Columns: name, kind, paper qubits, paper ops, actual (s), estimated
    // (s), |error| %, QSPR runtime (s), LEQA runtime (s), speedup, size
    // parameter, surrogate base qubits.  Values transcribed from Tables 2
    // and 3 of the paper.
    std::vector<PaperBenchmark> suite;
    const auto add = [&](std::string name, BenchmarkKind kind, std::size_t qubits,
                         std::size_t ops, double actual, double estimated, double err,
                         double qspr_rt, double leqa_rt, double speedup, int n,
                         std::size_t base) {
        PaperBenchmark b;
        b.name = std::move(name);
        b.kind = kind;
        b.paper_qubits = qubits;
        b.paper_ops = ops;
        b.paper_actual_s = actual;
        b.paper_estimated_s = estimated;
        b.paper_error_pct = err;
        b.paper_qspr_runtime_s = qspr_rt;
        b.paper_leqa_runtime_s = leqa_rt;
        b.paper_speedup = speedup;
        b.size_parameter = n;
        b.surrogate_base = base;
        suite.push_back(std::move(b));
    };

    add("8bitadder", BenchmarkKind::Adder, 24, 822, 1.617e0, 1.667e0, 3.10, 0.9, 0.115, 8.2, 8, 0);
    add("gf2^16mult", BenchmarkKind::Gf2Mult, 48, 3885, 4.460e0, 4.524e0, 1.45, 3.0, 0.289, 10.3, 16, 0);
    add("hwb15ps", BenchmarkKind::Surrogate, 47, 3885, 1.940e1, 1.993e1, 2.76, 2.7, 0.256, 10.7, 15, 15);
    add("hwb16ps", BenchmarkKind::Surrogate, 55, 3811, 1.852e1, 1.903e1, 2.76, 2.9, 0.250, 11.5, 16, 16);
    add("gf2^18mult", BenchmarkKind::Gf2Mult, 54, 4911, 5.085e0, 5.109e0, 0.46, 3.5, 0.276, 12.6, 18, 0);
    add("gf2^19mult", BenchmarkKind::Gf2Mult, 57, 5469, 5.393e0, 5.407e0, 0.25, 3.7, 0.259, 14.2, 19, 0);
    add("gf2^20mult", BenchmarkKind::Gf2Mult, 60, 6019, 5.654e0, 5.660e0, 0.11, 5.1, 0.301, 17.1, 20, 0);
    add("ham15", BenchmarkKind::Surrogate, 146, 5308, 2.518e1, 2.530e1, 0.51, 4.3, 0.257, 16.6, 15, 15);
    add("hwb20ps", BenchmarkKind::Surrogate, 83, 6395, 3.026e1, 3.106e1, 2.66, 3.8, 0.272, 13.9, 20, 20);
    add("hwb50ps", BenchmarkKind::Surrogate, 370, 25370, 1.236e2, 1.274e2, 3.10, 11.8, 0.450, 26.3, 50, 50);
    add("gf2^50mult", BenchmarkKind::Gf2Mult, 150, 37647, 1.474e1, 1.495e1, 1.44, 16.9, 0.398, 42.5, 50, 0);
    add("mod1048576adder", BenchmarkKind::Surrogate, 1180, 37070, 2.027e2, 1.958e2, 3.38, 20.2, 0.382, 52.8, 20, 61);
    add("gf2^64mult", BenchmarkKind::Gf2Mult, 192, 61629, 1.904e1, 1.935e1, 1.64, 29.4, 0.461, 63.8, 64, 0);
    add("hwb100ps", BenchmarkKind::Surrogate, 1106, 67735, 3.427e2, 3.402e2, 0.72, 26.7, 0.575, 46.4, 100, 100);
    add("gf2^100mult", BenchmarkKind::Gf2Mult, 300, 150297, 3.015e1, 2.998e1, 0.57, 65.2, 0.859, 76.0, 100, 0);
    add("hwb200ps", BenchmarkKind::Surrogate, 3145, 175490, 9.638e2, 8.839e2, 8.29, 66.7, 0.915, 72.9, 200, 200);
    add("gf2^128mult", BenchmarkKind::Gf2Mult, 384, 246141, 3.886e1, 3.838e1, 1.24, 106.0, 1.381, 78.3, 128, 0);
    add("gf2^256mult", BenchmarkKind::Gf2Mult, 768, 983805, 7.936e1, 7.654e1, 3.55, 524.8, 4.576, 114.7, 256, 0);
    return suite;
}

} // namespace

const std::vector<PaperBenchmark>& paper_suite() {
    static const std::vector<PaperBenchmark> suite = build_suite();
    return suite;
}

const PaperBenchmark& find_benchmark(const std::string& name) {
    const auto& suite = paper_suite();
    const auto it = std::find_if(suite.begin(), suite.end(),
                                 [&](const PaperBenchmark& b) { return b.name == name; });
    LEQA_REQUIRE(it != suite.end(), "unknown benchmark: " + name);
    return *it;
}

bool has_benchmark(const std::string& name) {
    const auto& suite = paper_suite();
    return std::any_of(suite.begin(), suite.end(),
                       [&](const PaperBenchmark& b) { return b.name == name; });
}

circuit::Circuit make_benchmark(const std::string& name) {
    const PaperBenchmark& spec = find_benchmark(name);
    switch (spec.kind) {
        case BenchmarkKind::Adder:
            return vbe_adder(spec.size_parameter);
        case BenchmarkKind::Gf2Mult: {
            Gf2MultSpec gf2;
            gf2.n = spec.size_parameter;
            // The paper's op counts match pentanomial reduction everywhere
            // except gf2^20mult, which matches the trinomial count exactly.
            gf2.form = spec.size_parameter == 20 ? Gf2PolyForm::Trinomial
                                                 : Gf2PolyForm::Pentanomial;
            return gf2_mult(gf2);
        }
        case BenchmarkKind::Surrogate: {
            SurrogateSpec surrogate;
            surrogate.name = spec.name;
            surrogate.base_qubits = spec.surrogate_base;
            surrogate.target_qubits = spec.paper_qubits;
            surrogate.target_ft_ops = spec.paper_ops;
            surrogate.seed = 0x5EED0000ULL + static_cast<std::uint64_t>(spec.size_parameter);
            return surrogate_benchmark(surrogate);
        }
    }
    throw util::InternalError("unhandled benchmark kind");
}

synth::FtSynthResult make_ft_benchmark(const std::string& name) {
    return synth::ft_synthesize(make_benchmark(name));
}

circuit::Circuit ham3() {
    circuit::Circuit circ(3, "ham3");
    circ.add_comment("generator: ham3 (paper Figure 2 reconstruction)");
    // One Toffoli (15 FT ops after synthesis) plus four FT gates = the 19
    // numbered operations of Figure 2(b).
    circ.toffoli(0, 1, 2);
    circ.cnot(1, 2);
    circ.cnot(0, 1);
    circ.t(0);
    circ.cnot(2, 0);
    return circ;
}

} // namespace leqa::benchgen

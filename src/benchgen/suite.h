/// \file suite.h
/// \brief The paper's benchmark suite (Tables 2 and 3) and factories.
///
/// Each entry records the paper's published numbers (qubit count, FT op
/// count, QSPR actual latency, LEQA estimate, runtimes) alongside a factory
/// that regenerates an equivalent circuit: constructive generators for the
/// gf2 multipliers and the adder, count-exact structural surrogates for the
/// hwb / ham / mod benchmarks (see DESIGN.md §5 for the substitution
/// rationale).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "synth/ft_synth.h"

namespace leqa::benchgen {

enum class BenchmarkKind {
    Adder,      ///< constructive VBE adder (functional)
    Gf2Mult,    ///< constructive GF(2^n) multiplier (functional, count-exact)
    Surrogate,  ///< count-exact structural surrogate
};

struct PaperBenchmark {
    std::string name;
    BenchmarkKind kind = BenchmarkKind::Surrogate;

    // Published values (Tables 2 and 3).
    std::size_t paper_qubits = 0;
    std::size_t paper_ops = 0;
    double paper_actual_s = 0.0;      ///< QSPR "actual delay"
    double paper_estimated_s = 0.0;   ///< LEQA estimate
    double paper_error_pct = 0.0;
    double paper_qspr_runtime_s = 0.0;
    double paper_leqa_runtime_s = 0.0;
    double paper_speedup = 0.0;

    // Generator parameters.
    int size_parameter = 0;           ///< n for adders / multipliers
    std::size_t surrogate_base = 0;   ///< base qubits for surrogates
};

/// The 18 benchmarks of Tables 2-3, in the paper's (operation count) order.
[[nodiscard]] const std::vector<PaperBenchmark>& paper_suite();

/// Look up one entry by name; throws InputError for unknown names.
[[nodiscard]] const PaperBenchmark& find_benchmark(const std::string& name);

/// True when the name exists in the suite.
[[nodiscard]] bool has_benchmark(const std::string& name);

/// Build the pre-FT-synthesis reversible netlist for a suite entry.
[[nodiscard]] circuit::Circuit make_benchmark(const std::string& name);

/// Build and FT-synthesize (fresh ancillas, the paper's flow).
[[nodiscard]] synth::FtSynthResult make_ft_benchmark(const std::string& name);

/// The ham3 circuit of the paper's Figure 2: one Toffoli plus four FT gates
/// on 3 qubits (19 FT operations after synthesis).  Reconstructed from the
/// figure; used by the quickstart example and the QODG tests.
[[nodiscard]] circuit::Circuit ham3();

} // namespace leqa::benchgen

#include "benchgen/surrogate.h"

#include <algorithm>

#include "synth/decompose.h"
#include "synth/ft_synth.h"
#include "util/error.h"
#include "util/rng.h"

namespace leqa::benchgen {

namespace {

/// Plan: how many 4-control (x) and 3-control (y) Toffolis supply the
/// ancillas, and how the remaining op budget splits into 3-input Toffolis
/// and CNOTs.
struct SurrogatePlan {
    std::size_t four_control = 0;  // 3 ancillas, 91 FT ops each
    std::size_t three_control = 0; // 2 ancillas, 61 FT ops each
    std::size_t toffoli3 = 0;      // 15 FT ops each
    std::size_t cnots = 0;         // 1 FT op each
};

SurrogatePlan solve_plan(const SurrogateSpec& spec) {
    LEQA_REQUIRE(spec.target_qubits >= spec.base_qubits,
                 spec.name + ": target qubit count below base qubits");
    const std::size_t ancillas = spec.target_qubits - spec.base_qubits;

    SurrogatePlan plan;
    // 3x + 2y = ancillas with x maximal (prefer wider gates, like the
    // decomposed multi-controlled gates of the original benchmarks).
    switch (ancillas % 3) {
        case 0:
            plan.four_control = ancillas / 3;
            plan.three_control = 0;
            break;
        case 2:
            plan.four_control = ancillas / 3;
            plan.three_control = 1;
            break;
        default: // remainder 1: use two 3-control gates (needs ancillas >= 4)
            LEQA_REQUIRE(ancillas >= 4, spec.name + ": cannot reach ancilla target");
            plan.four_control = (ancillas - 4) / 3;
            plan.three_control = 2;
            break;
    }
    const std::size_t chain_ops = plan.four_control * synth::ft_ops_for_mcx(4) +
                                  plan.three_control * synth::ft_ops_for_mcx(3);
    LEQA_REQUIRE(spec.target_ft_ops >= chain_ops,
                 spec.name + ": op target too small for the ancilla plan");
    const std::size_t remaining = spec.target_ft_ops - chain_ops;
    plan.toffoli3 = remaining / 15;
    plan.cnots = remaining % 15;
    return plan;
}

} // namespace

circuit::Circuit surrogate_benchmark(const SurrogateSpec& spec) {
    LEQA_REQUIRE(spec.base_qubits >= 6,
                 spec.name + ": surrogate needs at least 6 base qubits");
    const SurrogatePlan plan = solve_plan(spec);

    util::Rng rng(spec.seed);
    circuit::Circuit circ(spec.base_qubits, spec.name);
    circ.add_comment("generator: surrogate (structure-matched substitute)");
    circ.add_comment("targets: qubits=" + std::to_string(spec.target_qubits) +
                     " ft_ops=" + std::to_string(spec.target_ft_ops) +
                     " seed=" + std::to_string(spec.seed));

    const auto n = spec.base_qubits;
    // Deterministic interleave of the four gate classes, hwb-style: a
    // sliding window provides locality; occasional long-range partners
    // provide the global mixing of the hidden-weighted-bit permutation.
    std::size_t window = 0;
    const auto window_qubit = [&](std::size_t offset) {
        return static_cast<circuit::Qubit>((window + offset) % n);
    };
    const auto long_range_qubit = [&](circuit::Qubit avoid_window_span) {
        // Any qubit outside the current window span.
        const std::size_t span = avoid_window_span;
        const std::size_t pick = (window + span + 1 + rng.index(n - span - 1)) % n;
        return static_cast<circuit::Qubit>(pick);
    };

    std::size_t remaining_four = plan.four_control;
    std::size_t remaining_three = plan.three_control;
    std::size_t remaining_t3 = plan.toffoli3;
    std::size_t remaining_cnot = plan.cnots;

    while (remaining_four + remaining_three + remaining_t3 + remaining_cnot > 0) {
        // Rotate through gate classes proportionally so wide gates spread
        // across the circuit rather than clustering at the front.
        if (remaining_four > 0) {
            std::vector<circuit::Qubit> controls{window_qubit(0), window_qubit(1),
                                                 window_qubit(2), long_range_qubit(3)};
            circ.add_gate(circuit::make_mcx(controls, window_qubit(3)));
            --remaining_four;
        }
        if (remaining_three > 0) {
            std::vector<circuit::Qubit> controls{window_qubit(0), window_qubit(1),
                                                 long_range_qubit(2)};
            circ.add_gate(circuit::make_mcx(controls, window_qubit(2)));
            --remaining_three;
        }
        // Keep the local/global fill roughly uniform between wide gates.
        const std::size_t wide_left = remaining_four + remaining_three;
        const std::size_t t3_quota =
            wide_left > 0 ? std::max<std::size_t>(1, remaining_t3 / (wide_left + 1))
                          : remaining_t3;
        for (std::size_t i = 0; i < t3_quota && remaining_t3 > 0; ++i) {
            if (rng.chance(0.7)) {
                circ.toffoli(window_qubit(0), window_qubit(1), window_qubit(2));
            } else {
                circ.toffoli(window_qubit(0), long_range_qubit(1), window_qubit(1));
            }
            --remaining_t3;
            window = (window + 1) % n;
        }
        const std::size_t cnot_quota =
            wide_left > 0 ? std::max<std::size_t>(1, remaining_cnot / (wide_left + 1))
                          : remaining_cnot;
        for (std::size_t i = 0; i < cnot_quota && remaining_cnot > 0; ++i) {
            if (rng.chance(0.5)) {
                circ.cnot(window_qubit(0), window_qubit(1));
            } else {
                circ.cnot(window_qubit(0), long_range_qubit(1));
            }
            --remaining_cnot;
            window = (window + 3) % n;
        }
        window = (window + 1) % n;
    }

    LEQA_CHECK(synth::predicted_ft_ops(circ) == spec.target_ft_ops,
               spec.name + ": surrogate op plan mismatch");
    LEQA_CHECK(spec.base_qubits + synth::predicted_ancillas(circ) == spec.target_qubits,
               spec.name + ": surrogate qubit plan mismatch");
    return circ;
}

} // namespace leqa::benchgen

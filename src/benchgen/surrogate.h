/// \file surrogate.h
/// \brief Count-targeted structural surrogates for benchmarks whose original
///        netlists are not redistributable (hwbNps, ham15, mod1048576adder).
///
/// LEQA and QSPR consume only the *structure* of a netlist: the operation
/// mix, the dependency graph, and the interaction-intensity statistics --
/// never the Boolean function it computes.  The surrogate generator
/// therefore reproduces the published qubit and FT-operation counts
/// *exactly* while mimicking the decomposed-Toffoli structure of Maslov's
/// synthesized circuits:
///
///   - `base` working qubits carry the logical computation;
///   - multi-controlled Toffolis (k >= 3 controls) over sliding windows of
///     the working qubits supply the ancilla growth: each contributes k-1
///     fresh ancillas and 30(k-1)+1 FT ops (no ancilla sharing, §4.1);
///   - the remaining op budget is filled with 3-input Toffolis (15 FT ops)
///     and CNOTs (1 FT op) mixing local and long-range partners.
///
/// The generator solves the small integer program
///     3x + 2y = ancillas,  91x + 61y + 15*t3 + cnots = ft_ops
/// and emits a deterministic, seeded circuit.  ft_synthesize() of the
/// result has exactly `qubits` qubits and `ft_ops` operations (asserted in
/// the tests).
#pragma once

#include <cstdint>

#include "circuit/circuit.h"

namespace leqa::benchgen {

struct SurrogateSpec {
    std::string name;          ///< circuit name, e.g. "hwb15ps"
    std::size_t base_qubits = 0; ///< working qubits before ancillas
    std::size_t target_qubits = 0; ///< post-synthesis qubit count (paper value)
    std::size_t target_ft_ops = 0; ///< post-synthesis op count (paper value)
    std::uint64_t seed = 1;    ///< interaction-pattern seed
};

/// Build the pre-FT surrogate.  After synth::ft_synthesize (fresh-ancilla
/// mode) the circuit has exactly spec.target_qubits qubits and
/// spec.target_ft_ops operations.  Throws InputError when the targets are
/// not representable (e.g. fewer target qubits than base qubits, or an op
/// budget too small for the required ancilla gates).
[[nodiscard]] circuit::Circuit surrogate_benchmark(const SurrogateSpec& spec);

} // namespace leqa::benchgen

#include "circuit/circuit.h"

#include <sstream>

#include "util/error.h"

namespace leqa::circuit {

std::size_t GateCounts::total() const {
    std::size_t sum = 0;
    for (const std::size_t n : by_kind) sum += n;
    return sum;
}

std::size_t GateCounts::one_qubit_ft() const {
    std::size_t sum = 0;
    for (const GateKind kind : {GateKind::X, GateKind::Y, GateKind::Z, GateKind::H,
                                GateKind::S, GateKind::Sdg, GateKind::T, GateKind::Tdg}) {
        sum += of(kind);
    }
    return sum;
}

std::size_t GateCounts::two_qubit() const {
    return of(GateKind::Cnot) + of(GateKind::Swap);
}

std::string GateCounts::to_string() const {
    std::ostringstream out;
    bool first = true;
    for (std::size_t i = 0; i < kGateKindCount; ++i) {
        if (by_kind[i] == 0) continue;
        if (!first) out << ", ";
        out << gate_name(static_cast<GateKind>(i)) << "=" << by_kind[i];
        first = false;
    }
    if (first) out << "(empty)";
    return out.str();
}

Circuit::Circuit(std::size_t num_qubits, std::string name) : name_(std::move(name)) {
    for (std::size_t i = 0; i < num_qubits; ++i) add_qubit();
}

Qubit Circuit::add_qubit(const std::string& name) {
    const auto index = static_cast<Qubit>(qubit_names_.size());
    std::string resolved = name.empty() ? "q" + std::to_string(index) : name;
    LEQA_REQUIRE(qubit_lookup_.find(resolved) == qubit_lookup_.end(),
                 "duplicate qubit name: " + resolved);
    qubit_lookup_.emplace(resolved, index);
    qubit_names_.push_back(std::move(resolved));
    return index;
}

const std::string& Circuit::qubit_name(Qubit q) const {
    LEQA_REQUIRE(q < qubit_names_.size(), "qubit index out of range");
    return qubit_names_[q];
}

Qubit Circuit::qubit_index(const std::string& name) const {
    const auto it = qubit_lookup_.find(name);
    LEQA_REQUIRE(it != qubit_lookup_.end(), "unknown qubit name: " + name);
    return it->second;
}

bool Circuit::has_qubit(const std::string& name) const {
    return qubit_lookup_.find(name) != qubit_lookup_.end();
}

void Circuit::add_gate(Gate gate) {
    gate.validate_against(num_qubits());
    gates_.push_back(std::move(gate));
}

Circuit& Circuit::x(Qubit q) { add_gate(make_x(q)); return *this; }
Circuit& Circuit::y(Qubit q) { add_gate(make_y(q)); return *this; }
Circuit& Circuit::z(Qubit q) { add_gate(make_z(q)); return *this; }
Circuit& Circuit::h(Qubit q) { add_gate(make_h(q)); return *this; }
Circuit& Circuit::s(Qubit q) { add_gate(make_s(q)); return *this; }
Circuit& Circuit::sdg(Qubit q) { add_gate(make_sdg(q)); return *this; }
Circuit& Circuit::t(Qubit q) { add_gate(make_t(q)); return *this; }
Circuit& Circuit::tdg(Qubit q) { add_gate(make_tdg(q)); return *this; }

Circuit& Circuit::cnot(Qubit control, Qubit target) {
    add_gate(make_cnot(control, target));
    return *this;
}

Circuit& Circuit::toffoli(Qubit c0, Qubit c1, Qubit target) {
    add_gate(make_toffoli(c0, c1, target));
    return *this;
}

Circuit& Circuit::mcx(std::vector<Qubit> controls, Qubit target) {
    add_gate(make_mcx(std::move(controls), target));
    return *this;
}

Circuit& Circuit::fredkin(Qubit control, Qubit a, Qubit b) {
    add_gate(make_fredkin(control, a, b));
    return *this;
}

Circuit& Circuit::swap(Qubit a, Qubit b) {
    add_gate(make_swap(a, b));
    return *this;
}

void Circuit::append(const Circuit& other) {
    LEQA_REQUIRE(other.num_qubits() <= num_qubits(),
                 "append: other circuit uses more qubits than this one");
    for (const Gate& g : other.gates_) add_gate(g);
}

GateCounts Circuit::counts() const {
    GateCounts counts;
    for (const Gate& g : gates_) {
        ++counts.by_kind[static_cast<std::size_t>(g.kind)];
    }
    return counts;
}

bool Circuit::is_ft() const {
    for (const Gate& g : gates_) {
        if (!g.is_ft()) return false;
    }
    return true;
}

bool Circuit::is_classical() const {
    for (const Gate& g : gates_) {
        if (!gate_info(g.kind).is_classical) return false;
    }
    return true;
}

std::vector<Qubit> Circuit::unused_qubits() const {
    std::vector<bool> used(num_qubits(), false);
    for (const Gate& g : gates_) {
        for (const Qubit q : g.controls) used[q] = true;
        for (const Qubit q : g.targets) used[q] = true;
    }
    std::vector<Qubit> out;
    for (Qubit q = 0; q < used.size(); ++q) {
        if (!used[q]) out.push_back(q);
    }
    return out;
}

std::size_t Circuit::two_qubit_gate_count() const {
    std::size_t count = 0;
    for (const Gate& g : gates_) {
        if (g.arity() >= 2) ++count;
    }
    return count;
}

void Circuit::validate() const {
    for (const Gate& g : gates_) g.validate_against(num_qubits());
}

bool Circuit::same_structure(const Circuit& other) const {
    return num_qubits() == other.num_qubits() && gates_ == other.gates_;
}

std::string Circuit::to_string() const {
    std::ostringstream out;
    out << "circuit \"" << (name_.empty() ? "(unnamed)" : name_) << "\": "
        << num_qubits() << " qubits, " << gates_.size() << " gates\n";
    for (const Gate& g : gates_) out << "  " << g.to_string() << '\n';
    return out.str();
}

} // namespace leqa::circuit

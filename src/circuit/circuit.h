/// \file circuit.h
/// \brief The Circuit container: an ordered list of gates over named qubits.
#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "circuit/gate.h"

namespace leqa::circuit {

/// Per-kind gate census.
struct GateCounts {
    std::array<std::size_t, kGateKindCount> by_kind{};

    [[nodiscard]] std::size_t of(GateKind kind) const {
        return by_kind[static_cast<std::size_t>(kind)];
    }
    [[nodiscard]] std::size_t total() const;
    [[nodiscard]] std::size_t one_qubit_ft() const;   ///< X..Tdg
    [[nodiscard]] std::size_t two_qubit() const;      ///< CNOT (+SWAP if present)
    [[nodiscard]] std::string to_string() const;
};

/// An ordered quantum circuit over `num_qubits()` logical qubits.
///
/// Qubits are dense indices 0..n-1 with optional names.  Gates are stored in
/// program order; the class offers fluent builders (`c.h(0).cnot(0,1)`),
/// census helpers, validation, and structural comparison.  Metadata fields
/// (name, provenance comments) survive the netlist writers/parsers.
class Circuit {
public:
    Circuit() = default;
    explicit Circuit(std::size_t num_qubits, std::string name = "");

    // --- qubit management -------------------------------------------------
    [[nodiscard]] std::size_t num_qubits() const { return qubit_names_.size(); }

    /// Append a new qubit; returns its index.  Auto-names "q<i>" when
    /// \p name is empty.  Throws on duplicate names.
    Qubit add_qubit(const std::string& name = "");

    [[nodiscard]] const std::string& qubit_name(Qubit q) const;
    /// Index of a named qubit; throws InputError if absent.
    [[nodiscard]] Qubit qubit_index(const std::string& name) const;
    [[nodiscard]] bool has_qubit(const std::string& name) const;

    // --- gate management --------------------------------------------------
    /// Append a validated gate.  Throws InputError on invalid operands.
    void add_gate(Gate gate);

    [[nodiscard]] const std::vector<Gate>& gates() const { return gates_; }
    [[nodiscard]] std::size_t size() const { return gates_.size(); }
    [[nodiscard]] bool empty() const { return gates_.empty(); }
    [[nodiscard]] const Gate& gate(std::size_t i) const { return gates_.at(i); }

    /// Fluent builders (all return *this).
    Circuit& x(Qubit q);
    Circuit& y(Qubit q);
    Circuit& z(Qubit q);
    Circuit& h(Qubit q);
    Circuit& s(Qubit q);
    Circuit& sdg(Qubit q);
    Circuit& t(Qubit q);
    Circuit& tdg(Qubit q);
    Circuit& cnot(Qubit control, Qubit target);
    Circuit& toffoli(Qubit c0, Qubit c1, Qubit target);
    Circuit& mcx(std::vector<Qubit> controls, Qubit target);
    Circuit& fredkin(Qubit control, Qubit a, Qubit b);
    Circuit& swap(Qubit a, Qubit b);

    /// Append all gates of \p other (qubit indices must be compatible).
    void append(const Circuit& other);

    // --- analysis ---------------------------------------------------------
    [[nodiscard]] GateCounts counts() const;

    /// True if every gate is in the FT set {X,Y,Z,H,S,Sdg,T,Tdg,CNOT}.
    [[nodiscard]] bool is_ft() const;

    /// True if every gate permutes computational basis states
    /// (X/CNOT/Toffoli/Fredkin/SWAP only).
    [[nodiscard]] bool is_classical() const;

    /// Indices of qubits never referenced by any gate.
    [[nodiscard]] std::vector<Qubit> unused_qubits() const;

    /// Number of gates touching >= 2 qubits.
    [[nodiscard]] std::size_t two_qubit_gate_count() const;

    // --- metadata ----------------------------------------------------------
    [[nodiscard]] const std::string& name() const { return name_; }
    void set_name(std::string name) { name_ = std::move(name); }

    /// Free-form provenance lines (generator, parameters, seed); the netlist
    /// writers emit them as header comments.
    [[nodiscard]] const std::vector<std::string>& comments() const { return comments_; }
    void add_comment(std::string line) { comments_.push_back(std::move(line)); }

    /// Re-validate every gate against the current qubit count.
    void validate() const;

    /// Structural equality: same qubit count, same gate sequence.
    /// Names/comments are ignored.
    [[nodiscard]] bool same_structure(const Circuit& other) const;

    /// Multi-line human-readable dump (for debugging / examples).
    [[nodiscard]] std::string to_string() const;

private:
    std::string name_;
    std::vector<std::string> qubit_names_;
    std::map<std::string, Qubit> qubit_lookup_;
    std::vector<Gate> gates_;
    std::vector<std::string> comments_;
};

} // namespace leqa::circuit

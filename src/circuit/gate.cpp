#include "circuit/gate.h"

#include <algorithm>
#include <array>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace leqa::circuit {

namespace {
// Indexed by GateKind.  max_controls == -1 means unbounded.
constexpr std::array<GateInfo, kGateKindCount> kGateTable = {{
    /* X       */ {"x", 0, 0, 1, true, true, true},
    /* Y       */ {"y", 0, 0, 1, true, false, true},
    /* Z       */ {"z", 0, 0, 1, true, false, true},
    /* H       */ {"h", 0, 0, 1, true, false, true},
    /* S       */ {"s", 0, 0, 1, true, false, false},
    /* Sdg     */ {"sdg", 0, 0, 1, true, false, false},
    /* T       */ {"t", 0, 0, 1, true, false, false},
    /* Tdg     */ {"tdg", 0, 0, 1, true, false, false},
    /* Cnot    */ {"cnot", 1, 1, 1, true, true, true},
    /* Toffoli */ {"toffoli", 1, -1, 1, false, true, true},
    /* Fredkin */ {"fredkin", 1, -1, 2, false, true, true},
    /* Swap    */ {"swap", 0, 0, 2, false, true, true},
}};
} // namespace

const GateInfo& gate_info(GateKind kind) {
    return kGateTable[static_cast<std::size_t>(kind)];
}

std::string gate_name(GateKind kind) { return gate_info(kind).name; }

GateKind parse_gate_name(const std::string& name) {
    const std::string lowered = util::to_lower(name);
    for (std::size_t i = 0; i < kGateKindCount; ++i) {
        if (lowered == kGateTable[i].name) return static_cast<GateKind>(i);
    }
    // Accept common aliases.
    if (lowered == "not") return GateKind::X;
    if (lowered == "cx") return GateKind::Cnot;
    if (lowered == "ccx" || lowered == "ccnot") return GateKind::Toffoli;
    if (lowered == "cswap") return GateKind::Fredkin;
    if (lowered == "t+" || lowered == "tdag") return GateKind::Tdg;
    if (lowered == "s+" || lowered == "sdag") return GateKind::Sdg;
    throw util::InputError("unknown gate mnemonic: " + name);
}

bool is_gate_name(const std::string& name) {
    try {
        (void)parse_gate_name(name);
        return true;
    } catch (const util::InputError&) {
        return false;
    }
}

std::vector<Qubit> Gate::qubits() const {
    std::vector<Qubit> out = controls;
    out.insert(out.end(), targets.begin(), targets.end());
    return out;
}

bool Gate::is_ft() const {
    if (!gate_info(kind).is_ft) return false;
    // CNOT with exactly one control is FT; the enum cannot express a
    // multi-controlled CNOT so the static table is sufficient, but keep the
    // check defensive.
    return true;
}

void Gate::validate() const {
    const GateInfo& info = gate_info(kind);
    const auto n_controls = static_cast<int>(controls.size());
    const auto n_targets = static_cast<int>(targets.size());
    LEQA_REQUIRE(n_controls >= info.min_controls,
                 std::string(info.name) + ": too few controls");
    LEQA_REQUIRE(info.max_controls < 0 || n_controls <= info.max_controls,
                 std::string(info.name) + ": too many controls");
    LEQA_REQUIRE(n_targets == info.targets,
                 std::string(info.name) + ": wrong number of targets");
    std::vector<Qubit> all = qubits();
    std::sort(all.begin(), all.end());
    LEQA_REQUIRE(std::adjacent_find(all.begin(), all.end()) == all.end(),
                 std::string(info.name) + ": duplicate qubit operand");
}

void Gate::validate_against(std::size_t num_qubits) const {
    validate();
    for (const Qubit q : qubits()) {
        LEQA_REQUIRE(q < num_qubits,
                     "qubit index " + std::to_string(q) + " out of range (circuit has " +
                         std::to_string(num_qubits) + " qubits)");
    }
}

std::string Gate::to_string() const {
    std::ostringstream out;
    out << gate_name(kind);
    bool first = true;
    for (const Qubit q : controls) {
        out << (first ? " q" : ", q") << q;
        first = false;
    }
    if (!controls.empty()) out << " ->";
    first = true;
    for (const Qubit q : targets) {
        out << (first ? " q" : ", q") << q;
        first = false;
    }
    return out.str();
}

Gate make_x(Qubit q) { return Gate(GateKind::X, {}, {q}); }
Gate make_y(Qubit q) { return Gate(GateKind::Y, {}, {q}); }
Gate make_z(Qubit q) { return Gate(GateKind::Z, {}, {q}); }
Gate make_h(Qubit q) { return Gate(GateKind::H, {}, {q}); }
Gate make_s(Qubit q) { return Gate(GateKind::S, {}, {q}); }
Gate make_sdg(Qubit q) { return Gate(GateKind::Sdg, {}, {q}); }
Gate make_t(Qubit q) { return Gate(GateKind::T, {}, {q}); }
Gate make_tdg(Qubit q) { return Gate(GateKind::Tdg, {}, {q}); }

Gate make_cnot(Qubit control, Qubit target) {
    return Gate(GateKind::Cnot, {control}, {target});
}

Gate make_toffoli(Qubit c0, Qubit c1, Qubit target) {
    return Gate(GateKind::Toffoli, {c0, c1}, {target});
}

Gate make_mcx(std::vector<Qubit> controls, Qubit target) {
    if (controls.size() == 1) return make_cnot(controls[0], target);
    return Gate(GateKind::Toffoli, std::move(controls), {target});
}

Gate make_fredkin(Qubit control, Qubit a, Qubit b) {
    return Gate(GateKind::Fredkin, {control}, {a, b});
}

Gate make_mcswap(std::vector<Qubit> controls, Qubit a, Qubit b) {
    return Gate(GateKind::Fredkin, std::move(controls), {a, b});
}

Gate make_swap(Qubit a, Qubit b) { return Gate(GateKind::Swap, {}, {a, b}); }

} // namespace leqa::circuit

/// \file gate.h
/// \brief Gate kinds, per-kind metadata, and the Gate record.
///
/// The library distinguishes three gate tiers (paper §2):
///   - reversible-logic gates produced by synthesis: NOT/X, CNOT, Toffoli
///     (any number of controls), Fredkin (controlled SWAP, any number of
///     controls), SWAP;
///   - the fault-tolerant (FT) operation set the fabric executes:
///     {CNOT, H, T, T-dagger, S, S-dagger, X, Y, Z};
///   - everything else is rejected by the FT-checking passes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace leqa::circuit {

/// Logical qubit index within a Circuit.
using Qubit = std::uint32_t;

enum class GateKind : std::uint8_t {
    // One-qubit FT operations.
    X,
    Y,
    Z,
    H,
    S,
    Sdg, ///< S-dagger (inverse phase)
    T,
    Tdg, ///< T-dagger (-pi/4 rotation)
    // Two-qubit FT operation (the only one, per the paper).
    Cnot,
    // Reversible-logic gates that FT synthesis lowers.
    Toffoli, ///< multi-controlled X; >= 1 control
    Fredkin, ///< multi-controlled SWAP; >= 1 control
    Swap,
};

/// Number of distinct GateKind values (for array-indexed tables).
inline constexpr std::size_t kGateKindCount = static_cast<std::size_t>(GateKind::Swap) + 1;

/// Static metadata for a gate kind.
struct GateInfo {
    const char* name;        ///< canonical lower-case mnemonic
    int min_controls;        ///< minimum number of control qubits
    int max_controls;        ///< maximum (-1 = unbounded)
    int targets;             ///< number of target qubits
    bool is_ft;              ///< member of the FT operation set
    bool is_classical;       ///< permutation of computational basis states
    bool is_self_inverse;    ///< U^2 = I
};

/// Metadata lookup (never fails; kind is a closed enum).
[[nodiscard]] const GateInfo& gate_info(GateKind kind);

/// Canonical mnemonic, e.g. "cnot", "tdg".
[[nodiscard]] std::string gate_name(GateKind kind);

/// Parse a mnemonic (case-insensitive).  Throws InputError if unknown.
[[nodiscard]] GateKind parse_gate_name(const std::string& name);

/// True if \p name is a known mnemonic.
[[nodiscard]] bool is_gate_name(const std::string& name);

/// A single gate application: kind + control qubits + target qubits.
///
/// Controls and targets must be disjoint and duplicate-free; Gate::validate
/// enforces this.  For Fredkin the two swapped qubits are the targets.
struct Gate {
    GateKind kind = GateKind::X;
    std::vector<Qubit> controls;
    std::vector<Qubit> targets;

    Gate() = default;
    Gate(GateKind k, std::vector<Qubit> ctrls, std::vector<Qubit> tgts)
        : kind(k), controls(std::move(ctrls)), targets(std::move(tgts)) {}

    /// Total qubits touched (controls + targets).
    [[nodiscard]] std::size_t arity() const { return controls.size() + targets.size(); }

    /// All touched qubits, controls first.
    [[nodiscard]] std::vector<Qubit> qubits() const;

    /// True for gates touching exactly two qubits (CNOT, SWAP, 1-ctl ops).
    [[nodiscard]] bool is_two_qubit() const { return arity() == 2; }

    /// True if the gate is in the FT set *as applied* (e.g. Toffoli with
    /// two controls is not FT; CNOT is).
    [[nodiscard]] bool is_ft() const;

    /// Throws InputError if control/target counts are invalid for the kind,
    /// or if any qubit repeats.
    void validate() const;

    /// Throws InputError if any qubit index is >= num_qubits.
    void validate_against(std::size_t num_qubits) const;

    /// Human-readable form, e.g. "toffoli q0, q1 -> q2".
    [[nodiscard]] std::string to_string() const;

    [[nodiscard]] bool operator==(const Gate& other) const = default;
};

/// Convenience constructors for the common gates.
[[nodiscard]] Gate make_x(Qubit q);
[[nodiscard]] Gate make_y(Qubit q);
[[nodiscard]] Gate make_z(Qubit q);
[[nodiscard]] Gate make_h(Qubit q);
[[nodiscard]] Gate make_s(Qubit q);
[[nodiscard]] Gate make_sdg(Qubit q);
[[nodiscard]] Gate make_t(Qubit q);
[[nodiscard]] Gate make_tdg(Qubit q);
[[nodiscard]] Gate make_cnot(Qubit control, Qubit target);
[[nodiscard]] Gate make_toffoli(Qubit c0, Qubit c1, Qubit target);
[[nodiscard]] Gate make_mcx(std::vector<Qubit> controls, Qubit target);
[[nodiscard]] Gate make_fredkin(Qubit control, Qubit a, Qubit b);
[[nodiscard]] Gate make_mcswap(std::vector<Qubit> controls, Qubit a, Qubit b);
[[nodiscard]] Gate make_swap(Qubit a, Qubit b);

} // namespace leqa::circuit

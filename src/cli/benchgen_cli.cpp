/// \file benchgen_cli.cpp
/// \brief Emit the paper's benchmark netlists as .qasm / .real files.
///
/// Examples:
///   benchgen_cli --list
///   benchgen_cli gf2^16mult out/gf2_16.qasm
///   benchgen_cli hwb15ps out/hwb15ps.real --ft
#include <cstdio>

#include "benchgen/suite.h"
#include "cli/common.h"
#include "parser/io.h"
#include "synth/ft_synth.h"
#include "util/args.h"
#include "util/strings.h"

namespace {

using namespace leqa;

int body(int argc, char** argv) {
    util::ArgParser parser("Generate the paper's benchmark circuits");
    parser.add_positional("name", "suite benchmark name (see --list)", false);
    parser.add_positional("output", "output netlist path (.qasm or .real)", false);
    parser.add_flag("list", "list the benchmark suite with its published numbers");
    parser.add_flag("ft", "FT-synthesize before writing (.qasm output only)");
    if (!parser.parse(argc, argv)) return 0;

    if (parser.flag("list")) {
        std::printf("%-18s %6s %9s %12s %12s %9s\n", "name", "qubits", "ops",
                    "actual(s)", "estimated(s)", "error(%)");
        for (const auto& b : benchgen::paper_suite()) {
            std::printf("%-18s %6zu %9zu %12.3E %12.3E %9.2f\n", b.name.c_str(),
                        b.paper_qubits, b.paper_ops, b.paper_actual_s,
                        b.paper_estimated_s, b.paper_error_pct);
        }
        return 0;
    }

    const auto name = parser.positional("name");
    const auto output = parser.positional("output");
    LEQA_REQUIRE(name.has_value() && output.has_value(),
                 "usage: benchgen_cli <name> <output> (or --list)");

    // Accept the pipeline's bench: namespace too; this tool only generates
    // suite benchmarks, so the bare name remains valid here.
    const std::string bench_name =
        util::starts_with(*name, "bench:") ? name->substr(6) : *name;
    circuit::Circuit circ = benchgen::make_benchmark(bench_name);
    if (parser.flag("ft")) {
        auto result = synth::ft_synthesize(circ);
        std::printf("ft synthesis: %s\n", result.stats.to_string().c_str());
        circ = std::move(result.circuit);
    }
    parser::save_netlist(circ, *output);
    std::printf("wrote %s (%zu qubits, %zu gates) to %s\n", circ.name().c_str(),
                circ.num_qubits(), circ.size(), output->c_str());
    return 0;
}

} // namespace

int main(int argc, char** argv) { return leqa::cli::run_main(argc, argv, body); }

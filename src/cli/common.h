/// \file common.h
/// \brief Shared helpers for the CLI tools: input resolution and parameter
///        overrides.
#pragma once

#include <cstdio>
#include <string>

#include "benchgen/suite.h"
#include "circuit/circuit.h"
#include "fabric/params.h"
#include "parser/io.h"
#include "synth/ft_synth.h"
#include "util/args.h"
#include "util/error.h"
#include "util/strings.h"

namespace leqa::cli {

/// Resolve the circuit input: a netlist path, or "bench:<name>" /
/// "--bench <name>" for a generated suite benchmark.  The returned circuit
/// is pre-FT; callers synthesize as needed.
inline circuit::Circuit resolve_input(const std::string& input) {
    if (util::starts_with(input, "bench:")) {
        const std::string name = input.substr(6);
        return name == "ham3" ? benchgen::ham3() : benchgen::make_benchmark(name);
    }
    if (input == "ham3") return benchgen::ham3(); // the paper's Figure 2 circuit
    if (benchgen::has_benchmark(input)) {
        return benchgen::make_benchmark(input);
    }
    return parser::load_netlist(input);
}

/// Register the shared fabric-parameter options on a parser.
inline void add_param_options(util::ArgParser& parser) {
    parser.add_option("params", "physical-parameter config file (Table 1 defaults)");
    parser.add_option("fabric", "fabric size as WxH, e.g. 60x60");
    parser.add_option("nc", "routing channel capacity Nc");
    parser.add_option("v", "logical-qubit speed parameter v");
    parser.add_option("tmove", "per-hop move time in microseconds");
}

/// Build PhysicalParams from --params plus individual overrides.
inline fabric::PhysicalParams resolve_params(const util::ArgParser& parser) {
    fabric::PhysicalParams params;
    if (parser.option_given("params")) {
        params = fabric::PhysicalParams::load(parser.option("params"));
    }
    if (parser.option_given("fabric")) {
        const auto parts = util::split(parser.option("fabric"), 'x');
        LEQA_REQUIRE(parts.size() == 2, "--fabric expects WxH, e.g. 60x60");
        const auto w = util::parse_int(parts[0]);
        const auto h = util::parse_int(parts[1]);
        LEQA_REQUIRE(w && h && *w > 0 && *h > 0, "--fabric expects positive integers");
        params.width = static_cast<int>(*w);
        params.height = static_cast<int>(*h);
    }
    if (parser.option_given("nc")) params.nc = static_cast<int>(parser.option_int("nc"));
    if (parser.option_given("v")) params.v = parser.option_double("v");
    if (parser.option_given("tmove")) params.t_move_us = parser.option_double("tmove");
    params.validate();
    return params;
}

/// Standard top-level error handler for main().
inline int run_main(int argc, char** argv, int (*body)(int, char**)) {
    try {
        return body(argc, argv);
    } catch (const util::Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}

} // namespace leqa::cli

/// \file common.h
/// \brief Shared helpers for the CLI tools.
///
/// Input resolution and parameter handling moved to pipeline/input.h (the
/// pipeline facade's input-resolution module); what remains here is the
/// top-level error handler the three CLIs share.
#pragma once

#include <cstdio>

#include "util/error.h"

namespace leqa::cli {

/// Standard top-level error handler for main().
inline int run_main(int argc, char** argv, int (*body)(int, char**)) {
    try {
        return body(argc, argv);
    } catch (const util::Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}

} // namespace leqa::cli

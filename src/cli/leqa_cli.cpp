/// \file leqa_cli.cpp
/// \brief Command-line LEQA estimator: netlist (or generated benchmark) in,
///        latency estimate and model breakdown out.  A thin shell over the
///        leqa::pipeline::Pipeline facade.
///
/// Examples:
///   leqa_cli bench:gf2^16mult
///   leqa_cli path/to/circuit.qasm --fabric 80x80 --nc 3 --v 0.002
///   leqa_cli bench:hwb15ps --breakdown --dot qodg.dot
///   leqa_cli bench:ham3 bench:8bitadder bench:hwb15ps --threads 4 --cache-stats
///   leqa_cli bench:gf2^16mult --explore --topologies grid,torus
///            --sides 40,50,60 --capacities 3,5 --speeds 0.001,0.002 --threads 4
///   leqa_cli bench:ham3 --optimize --opt-moves 5000 --opt-seed 7
///
/// With more than one input the requests run as a thread-pooled batch with
/// per-request outcomes: a failing input prints its status line (and fails
/// the exit code) without losing the others.  With --explore the single
/// input is evaluated over the full cross-product of the given axes on
/// --threads workers (see core/explore.h).
#include <cstdio>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "cli/common.h"
#include "core/explore.h"
#include "parser/io.h"
#include "pipeline/pipeline.h"
#include "report/report.h"
#include "util/args.h"
#include "util/status.h"
#include "util/strings.h"

namespace {

using namespace leqa;

/// Parse one comma-separated axis list with \p parse_item; empty option ->
/// empty axis (keep the session default).
template <typename T, typename ParseItem>
std::vector<T> axis_values(const util::ArgParser& parser, const std::string& name,
                           ParseItem&& parse_item) {
    std::vector<T> values;
    if (!parser.option_given(name)) return values;
    for (const std::string& item : util::split(parser.option(name), ',')) {
        values.push_back(parse_item(item));
    }
    if (values.empty()) {
        throw util::InputError("--" + name + " needs a comma-separated list");
    }
    return values;
}

core::ExplorationSpec explore_spec_from_args(const util::ArgParser& parser) {
    core::ExplorationSpec spec;
    spec.topologies = axis_values<fabric::TopologyKind>(
        parser, "topologies",
        [](const std::string& item) { return fabric::parse_topology_kind(item); });
    const auto parse_int_item = [](const char* axis) {
        return [axis](const std::string& item) {
            const std::optional<long long> parsed = util::parse_int(item);
            if (!parsed.has_value() || *parsed < 1 ||
                *parsed > std::numeric_limits<int>::max()) {
                throw util::InputError(std::string("--") + axis +
                                       ": bad value \"" + item + "\"");
            }
            return static_cast<int>(*parsed);
        };
    };
    spec.sides = axis_values<int>(parser, "sides", parse_int_item("sides"));
    spec.capacities = axis_values<int>(parser, "capacities", parse_int_item("capacities"));
    spec.speeds = axis_values<double>(parser, "speeds", [](const std::string& item) {
        const std::optional<double> parsed = util::parse_double(item);
        if (!parsed.has_value()) {
            throw util::InputError("--speeds: bad value \"" + item + "\"");
        }
        return *parsed;
    });
    if (spec.topologies.empty() && spec.sides.empty() && spec.capacities.empty() &&
        spec.speeds.empty()) {
        throw util::InputError(
            "--explore needs at least one axis "
            "(--topologies/--sides/--capacities/--speeds)");
    }
    spec.threads = parser.option_size("threads");
    return spec;
}

int run_explore(pipeline::Pipeline& pipe, const std::string& spec_text,
                const util::ArgParser& parser) {
    const core::ExplorationSpec spec = explore_spec_from_args(parser);
    const core::ExplorationResult result =
        pipe.explore(pipeline::parse_source(spec_text), spec);

    std::printf("explored %zu points on %zu thread%s\n", result.points.size(),
                result.threads_used, result.threads_used == 1 ? "" : "s");
    if (result.non_finite_points > 0) {
        std::printf("  %zu point(s) came back non-finite and were skipped\n",
                    result.non_finite_points);
    }
    if (result.has_best()) {
        const core::SweepPoint& best = result.best();
        std::printf("best: %s %dx%d, Nc=%d, v=%g -> D = %.6E s\n",
                    fabric::topology_kind_name(best.params.topology).c_str(),
                    best.params.width, best.params.height, best.params.nc,
                    best.params.v, best.estimate.latency_seconds());
    }
    for (const core::TopologyBest& best : result.best_per_topology) {
        const core::SweepPoint& point = result.points[best.index];
        std::printf("  best %-5s : %dx%d, Nc=%d, v=%g -> D = %.6E s\n",
                    fabric::topology_kind_name(best.kind).c_str(), point.params.width,
                    point.params.height, point.params.nc, point.params.v,
                    point.estimate.latency_seconds());
    }
    std::printf("latency/area pareto front (%zu points):\n",
                result.pareto_front.size());
    for (const std::size_t index : result.pareto_front) {
        const core::SweepPoint& point = result.points[index];
        std::printf("  area %8lld (%s %dx%d)  D = %.6E s\n", point.params.area(),
                    fabric::topology_kind_name(point.params.topology).c_str(),
                    point.params.width, point.params.height,
                    point.estimate.latency_seconds());
    }
    if (parser.option_given("json")) {
        parser::write_file(parser.option("json"),
                           report::exploration_to_json(result));
        std::printf("wrote JSON report to %s\n", parser.option("json").c_str());
    }
    return 0;
}

int run_optimize(pipeline::Pipeline& pipe, const std::string& spec_text,
                 const util::ArgParser& parser) {
    core::OptimizeOptions options;
    const std::size_t moves = parser.option_size("opt-moves");
    if (moves < 1) throw util::InputError("--opt-moves must be >= 1");
    options.max_moves = moves;
    options.seed = static_cast<std::uint64_t>(parser.option_size("opt-seed"));
    options.mode = core::parse_optimize_mode(parser.option("opt-mode"));
    options.max_seconds = parser.option_double("opt-seconds");
    if (options.max_seconds < 0.0) {
        throw util::InputError("--opt-seconds must be non-negative");
    }

    const core::OptimizeResult result =
        pipe.optimize(pipeline::parse_source(spec_text), options);

    const double pct = result.initial_latency_us > 0.0
                           ? 100.0 * (result.initial_latency_us -
                                      result.final_latency_us) /
                                 result.initial_latency_us
                           : 0.0;
    std::printf("placement optimization (%s, %zu-move budget, seed %llu)\n",
                core::optimize_mode_name(options.mode).c_str(), options.max_moves,
                static_cast<unsigned long long>(options.seed));
    std::printf("  initial placed latency: %.6E s\n",
                result.initial_latency_us * 1e-6);
    std::printf("  final placed latency:   %.6E s  (%.2f%% better)\n",
                result.final_latency_us * 1e-6, pct);
    std::printf("  moves: %zu attempted, %zu accepted, %zu fast-rejected by the "
                "incremental bound\n",
                result.moves_attempted, result.moves_accepted,
                result.moves_fast_rejected);
    std::printf("  re-timed %zu QODG nodes in %.3f s\n", result.nodes_retimed,
                result.seconds);
    if (parser.option_given("json")) {
        parser::write_file(parser.option("json"), report::optimize_to_json(result));
        std::printf("wrote JSON report to %s\n", parser.option("json").c_str());
    }
    return 0;
}

int run_batch(pipeline::Pipeline& pipe, const std::vector<std::string>& specs,
              std::size_t threads, const util::ArgParser& parser) {
    // A bad spec (unknown bench, missing file) must cost only its own slot:
    // parse failures become pre-failed outcomes instead of throwing here and
    // aborting the whole batch.
    std::vector<pipeline::EstimationRequest> requests;
    requests.reserve(specs.size());
    std::vector<std::optional<util::Status>> rejected(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        try {
            requests.emplace_back(pipeline::parse_source(specs[i]));
            requests.back().label = specs[i];
        } catch (...) {
            rejected[i] = util::status_from_exception(std::current_exception(),
                                                      "resolve");
        }
    }
    std::vector<util::Result<pipeline::EstimationResult>> batch =
        pipe.run_batch_results(requests, threads);

    std::vector<util::Result<pipeline::EstimationResult>> outcomes;
    outcomes.reserve(specs.size());
    std::size_t next = 0;
    for (const std::optional<util::Status>& parse_failure : rejected) {
        if (parse_failure.has_value()) {
            outcomes.emplace_back(*parse_failure);
        } else {
            outcomes.emplace_back(std::move(batch[next++]));
        }
    }

    std::size_t failed = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (outcomes[i].ok()) {
            const pipeline::EstimationResult& result = outcomes[i].value();
            std::printf("%-24s D = %.6E s  (%zu qubits, %zu FT ops, %.3f ms)\n",
                        result.label.c_str(), result.estimate->latency_seconds(),
                        result.circuit.qubits, result.circuit.ft_ops,
                        result.times.total_s * 1e3);
        } else {
            ++failed;
            std::printf("%-24s %s\n", specs[i].c_str(),
                        outcomes[i].status().to_string().c_str());
        }
    }
    std::printf("batch: %zu inputs, %zu failed\n", outcomes.size(), failed);

    if (parser.option_given("json")) {
        parser::write_file(parser.option("json"),
                           report::batch_results_to_json(outcomes, specs));
        std::printf("wrote JSON report to %s\n", parser.option("json").c_str());
    }
    return failed == 0 ? 0 : 1;
}

int body(int argc, char** argv) {
    util::ArgParser parser(
        "LEQA: fast latency estimation for a quantum algorithm mapped to a "
        "tiled quantum circuit fabric (DAC 2013)");
    parser.add_positional("input", "netlist path (.qasm/.real) or bench:<name>");
    parser.add_rest("inputs", "more inputs: run all of them as one batch");
    pipeline::add_param_options(parser);
    parser.add_option("sq-terms", "number of E[S_q] terms (paper: 20)", "20");
    parser.add_option("threads", "batch / explore worker threads (0 = hardware)", "0");
    parser.add_flag("explore",
                    "evaluate the cross-product of the axis options below");
    parser.add_option("topologies",
                      "explore axis: comma-separated topologies (grid,torus,line)");
    parser.add_option("sides", "explore axis: comma-separated fabric sides");
    parser.add_option("capacities",
                      "explore axis: comma-separated channel capacities Nc");
    parser.add_option("speeds", "explore axis: comma-separated qubit speeds v");
    parser.add_flag("optimize",
                    "anneal the initial placement for minimal placed latency");
    parser.add_option("opt-moves", "optimize: candidate-move budget", "20000");
    parser.add_option("opt-seed", "optimize: RNG seed", "1");
    parser.add_option("opt-mode", "optimize: anneal | greedy", "anneal");
    parser.add_option("opt-seconds",
                      "optimize: wall-clock budget in seconds (0 = unbounded)", "0");
    parser.add_flag("exact-sq", "evaluate all Q terms of E[S_q]");
    parser.add_flag("breakdown", "print the model intermediates");
    parser.add_flag("no-synth", "input is already FT-synthesized");
    parser.add_flag("cache-stats", "print pipeline cache statistics after the run");
    parser.add_option("dot", "write the QODG as Graphviz DOT to this path");
    parser.add_option("json", "write the estimate as JSON to this path");
    if (!parser.parse(argc, argv)) return 0;

    pipeline::PipelineConfig config;
    config.params = pipeline::params_from_args(parser);
    config.leqa.sq_terms = static_cast<int>(parser.option_int("sq-terms"));
    config.leqa.exact_sq = parser.flag("exact-sq");
    config.auto_synthesize = !parser.flag("no-synth");
    pipeline::Pipeline pipe(config);

    int exit_code = 0;
    if (parser.flag("optimize")) {
        if (parser.flag("explore")) {
            throw util::InputError("--optimize and --explore are exclusive");
        }
        if (!parser.rest().empty()) {
            throw util::InputError("--optimize runs on a single input");
        }
        exit_code = run_optimize(pipe, *parser.positional("input"), parser);
        if (parser.flag("cache-stats")) {
            std::printf("cache: %s\n", pipe.cache_stats().to_string().c_str());
        }
        return exit_code;
    }
    if (parser.flag("explore")) {
        if (!parser.rest().empty()) {
            throw util::InputError("--explore runs on a single input");
        }
        if (parser.option_given("dot") || parser.flag("breakdown")) {
            std::fprintf(stderr,
                         "note: --dot/--breakdown apply to single-estimate runs "
                         "and are ignored with --explore\n");
        }
        exit_code = run_explore(pipe, *parser.positional("input"), parser);
        if (parser.flag("cache-stats")) {
            std::printf("cache: %s\n", pipe.cache_stats().to_string().c_str());
        }
        return exit_code;
    }
    if (!parser.rest().empty()) {
        if (parser.option_given("dot") || parser.flag("breakdown")) {
            std::fprintf(stderr,
                         "note: --dot/--breakdown apply to single-input runs "
                         "and are ignored in batch mode\n");
        }
        std::vector<std::string> specs = {*parser.positional("input")};
        specs.insert(specs.end(), parser.rest().begin(), parser.rest().end());
        exit_code = run_batch(pipe, specs, parser.option_size("threads"), parser);
    } else {
        pipeline::EstimationRequest request(
            pipeline::parse_source(*parser.positional("input")));
        const pipeline::EstimationResult result = pipe.run(request);
        const core::LeqaEstimate& estimate = *result.estimate;
        const fabric::PhysicalParams& params = result.params;
        const pipeline::CachedCircuitPtr entry = pipe.resolve(request.source);

        if (result.circuit.synthesized) {
            std::printf("ft synthesis: %s\n", entry->synth_stats().to_string().c_str());
        }
        std::printf("circuit: %s\n", result.circuit.name.c_str());
        std::printf("  logical qubits:      %zu\n", result.circuit.qubits);
        std::printf("  FT operations:       %zu (from %zu reversible gates)\n",
                    result.circuit.ft_ops, result.circuit.pre_ft_gates);
        std::printf("fabric: %dx%d ULBs (%s), Nc=%d, Tmove=%.0f us, v=%g\n", params.width,
                    params.height, fabric::topology_kind_name(params.topology).c_str(),
                    params.nc, params.t_move_us, params.v);
        std::printf("estimated latency D: %.6E s  (%.3f us)\n",
                    estimate.latency_seconds(), estimate.latency_us);
        std::printf("leqa runtime: %.3f ms (resolve %.3f ms, graphs %.3f ms, "
                    "estimate %.3f ms)\n",
                    result.times.total_s * 1e3, result.times.resolve_s * 1e3,
                    result.times.graphs_s * 1e3, result.times.estimate_s * 1e3);

        if (parser.flag("breakdown")) {
            std::printf("\nmodel breakdown:\n");
            std::printf("  B (avg zone area):      %.4f\n", estimate.zone_area_b);
            std::printf("  d_uncongest:            %.3f us\n", estimate.d_uncongest_us);
            std::printf("  L_CNOT^avg (Eq. 2):     %.3f us\n", estimate.l_cnot_avg_us);
            std::printf("  L_1q^avg (2 Tmove):     %.3f us\n", estimate.l_one_qubit_avg_us);
            std::printf("  critical path ops:      %zu (%zu CNOT, %zu one-qubit)\n",
                        estimate.critical_census.total_ops, estimate.critical_cnots,
                        estimate.critical_one_qubit);
            std::printf("  critical gate delay:    %.3f us (no routing)\n",
                        estimate.critical_gate_delay_us);
            std::printf("  covered area sum E[Sq]: %.4f of %lld ULBs\n",
                        estimate.covered_area, params.area());
            std::printf("  E[S_q] / d_q terms (q = 1..%zu):\n", estimate.e_sq.size());
            for (std::size_t i = 0; i < estimate.e_sq.size(); ++i) {
                if (estimate.e_sq[i] < 1e-9 && i > 4) continue; // skip the flat tail
                std::printf("    q=%2zu  E[S_q]=%10.4f  d_q=%10.3f us\n", i + 1,
                            estimate.e_sq[i], estimate.d_q[i]);
            }
        }

        if (parser.option_given("dot")) {
            parser::write_file(parser.option("dot"), entry->qodg().to_dot(entry->ft()));
            std::printf("wrote QODG DOT to %s\n", parser.option("dot").c_str());
        }
        if (parser.option_given("json")) {
            parser::write_file(parser.option("json"), report::result_to_json(result));
            std::printf("wrote JSON report to %s\n", parser.option("json").c_str());
        }
    }

    if (parser.flag("cache-stats")) {
        std::printf("cache: %s\n", pipe.cache_stats().to_string().c_str());
    }
    return exit_code;
}

} // namespace

int main(int argc, char** argv) { return leqa::cli::run_main(argc, argv, body); }

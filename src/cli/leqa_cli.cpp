/// \file leqa_cli.cpp
/// \brief Command-line LEQA estimator: netlist (or generated benchmark) in,
///        latency estimate and model breakdown out.  A thin shell over the
///        leqa::pipeline::Pipeline facade.
///
/// Examples:
///   leqa_cli bench:gf2^16mult
///   leqa_cli path/to/circuit.qasm --fabric 80x80 --nc 3 --v 0.002
///   leqa_cli bench:hwb15ps --breakdown --dot qodg.dot
#include <cstdio>

#include "cli/common.h"
#include "parser/io.h"
#include "pipeline/pipeline.h"
#include "report/report.h"
#include "util/args.h"

namespace {

using namespace leqa;

int body(int argc, char** argv) {
    util::ArgParser parser(
        "LEQA: fast latency estimation for a quantum algorithm mapped to a "
        "tiled quantum circuit fabric (DAC 2013)");
    parser.add_positional("input", "netlist path (.qasm/.real) or bench:<name>");
    pipeline::add_param_options(parser);
    parser.add_option("sq-terms", "number of E[S_q] terms (paper: 20)", "20");
    parser.add_flag("exact-sq", "evaluate all Q terms of E[S_q]");
    parser.add_flag("breakdown", "print the model intermediates");
    parser.add_flag("no-synth", "input is already FT-synthesized");
    parser.add_option("dot", "write the QODG as Graphviz DOT to this path");
    parser.add_option("json", "write the estimate as JSON to this path");
    if (!parser.parse(argc, argv)) return 0;

    pipeline::PipelineConfig config;
    config.params = pipeline::params_from_args(parser);
    config.leqa.sq_terms = static_cast<int>(parser.option_int("sq-terms"));
    config.leqa.exact_sq = parser.flag("exact-sq");
    config.auto_synthesize = !parser.flag("no-synth");
    pipeline::Pipeline pipe(config);

    pipeline::EstimationRequest request(
        pipeline::parse_source(*parser.positional("input")));
    const pipeline::EstimationResult result = pipe.run(request);
    const core::LeqaEstimate& estimate = *result.estimate;
    const fabric::PhysicalParams& params = result.params;
    const pipeline::CachedCircuitPtr entry = pipe.resolve(request.source);

    if (result.circuit.synthesized) {
        std::printf("ft synthesis: %s\n", entry->synth_stats().to_string().c_str());
    }
    std::printf("circuit: %s\n", result.circuit.name.c_str());
    std::printf("  logical qubits:      %zu\n", result.circuit.qubits);
    std::printf("  FT operations:       %zu (from %zu reversible gates)\n",
                result.circuit.ft_ops, result.circuit.pre_ft_gates);
    std::printf("fabric: %dx%d ULBs (%s), Nc=%d, Tmove=%.0f us, v=%g\n", params.width,
                params.height, fabric::topology_kind_name(params.topology).c_str(),
                params.nc, params.t_move_us, params.v);
    std::printf("estimated latency D: %.6E s  (%.3f us)\n",
                estimate.latency_seconds(), estimate.latency_us);
    std::printf("leqa runtime: %.3f ms (resolve %.3f ms, graphs %.3f ms, "
                "estimate %.3f ms)\n",
                result.times.total_s * 1e3, result.times.resolve_s * 1e3,
                result.times.graphs_s * 1e3, result.times.estimate_s * 1e3);

    if (parser.flag("breakdown")) {
        std::printf("\nmodel breakdown:\n");
        std::printf("  B (avg zone area):      %.4f\n", estimate.zone_area_b);
        std::printf("  d_uncongest:            %.3f us\n", estimate.d_uncongest_us);
        std::printf("  L_CNOT^avg (Eq. 2):     %.3f us\n", estimate.l_cnot_avg_us);
        std::printf("  L_1q^avg (2 Tmove):     %.3f us\n", estimate.l_one_qubit_avg_us);
        std::printf("  critical path ops:      %zu (%zu CNOT, %zu one-qubit)\n",
                    estimate.critical_census.total_ops, estimate.critical_cnots,
                    estimate.critical_one_qubit);
        std::printf("  critical gate delay:    %.3f us (no routing)\n",
                    estimate.critical_gate_delay_us);
        std::printf("  covered area sum E[Sq]: %.4f of %lld ULBs\n",
                    estimate.covered_area, params.area());
        std::printf("  E[S_q] / d_q terms (q = 1..%zu):\n", estimate.e_sq.size());
        for (std::size_t i = 0; i < estimate.e_sq.size(); ++i) {
            if (estimate.e_sq[i] < 1e-9 && i > 4) continue; // skip the flat tail
            std::printf("    q=%2zu  E[S_q]=%10.4f  d_q=%10.3f us\n", i + 1,
                        estimate.e_sq[i], estimate.d_q[i]);
        }
    }

    if (parser.option_given("dot")) {
        parser::write_file(parser.option("dot"), entry->qodg().to_dot(entry->ft()));
        std::printf("wrote QODG DOT to %s\n", parser.option("dot").c_str());
    }
    if (parser.option_given("json")) {
        parser::write_file(parser.option("json"), report::result_to_json(result));
        std::printf("wrote JSON report to %s\n", parser.option("json").c_str());
    }
    return 0;
}

} // namespace

int main(int argc, char** argv) { return leqa::cli::run_main(argc, argv, body); }

/// \file leqa_server.cpp
/// \brief LEQA as a long-lived stdio daemon: NDJSON requests in, NDJSON
///        responses out, backed by the async service::Service.
///
/// One JSON object per input line (see service/wire.h for the format);
/// responses are written in order of completion, correlated by "id".
/// Estimate/map/sweep/explore/calibrate requests run on the service's worker pool
/// with per-request priority and deadline; "cancel" and "stats" are
/// answered inline.  EOF on stdin drains the queue gracefully (every
/// accepted request still gets its response) and exits 0.  No request --
/// however malformed -- can crash the daemon: failures come back as
/// {"error":{"code":...,...}} lines.
///
/// Examples:
///   printf '{"id":1,"op":"estimate","source":"bench:ham3"}\n' | leqa_server
///   leqa_server --threads 8 --max-queue 256 --fabric 80x80 < requests.ndjson
#include <csignal>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cli/common.h"
#include "pipeline/pipeline.h"
#include "service/service.h"
#include "service/wire.h"
#include "util/args.h"
#include "util/strings.h"

namespace {

using namespace leqa;

int body(int argc, char** argv) {
    util::ArgParser parser(
        "LEQA NDJSON daemon: one JSON request per stdin line, one JSON "
        "response per stdout line (id-correlated, completion order)");
    pipeline::add_param_options(parser);
    parser.add_option("threads", "service worker threads (0 = hardware)", "0");
    parser.add_option("max-queue", "queued-job bound (submit blocks when full)",
                      "1024");
    parser.add_flag("no-synth", "inputs are already FT-synthesized");
    if (!parser.parse(argc, argv)) return 0;

#ifdef SIGPIPE
    // A client that stops reading must not kill the daemon mid-drain: let
    // writes fail with EPIPE instead of raising the default-fatal signal.
    std::signal(SIGPIPE, SIG_IGN);
#endif

    pipeline::PipelineConfig config;
    config.params = pipeline::params_from_args(parser);
    config.auto_synthesize = !parser.flag("no-synth");

    service::ServiceOptions service_options;
    service_options.threads = parser.option_size("threads");
    service_options.max_queue = parser.option_size("max-queue");

    // Everything the worker callbacks touch (emit, the jobs map and their
    // mutexes) must outlive the Service: declare them first so unwinding
    // destroys the Service -- joining its workers -- before them.
    // Workers complete jobs concurrently; one mutex keeps response lines whole.
    std::mutex out_mutex;
    const auto emit = [&out_mutex](const std::string& line) {
        const std::lock_guard<std::mutex> lock(out_mutex);
        std::fputs(line.c_str(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
    };

    // Wire id -> handle, so "cancel" can reach in-flight jobs.  Entries are
    // erased on completion (a cancel for a finished job answers NotFound), so
    // the map stays bounded by the number of in-flight requests.
    std::mutex jobs_mutex;
    std::unordered_map<std::uint64_t, service::JobHandle> jobs;
    const auto track = [&jobs_mutex, &jobs](std::uint64_t id,
                                            service::JobHandle handle) {
        const std::lock_guard<std::mutex> lock(jobs_mutex);
        // The job may have completed (and fired its erase) before this
        // insert ran; only track handles that are still in flight.
        const service::JobState state = handle.poll();
        if (state != service::JobState::Done && state != service::JobState::Cancelled) {
            jobs[id] = std::move(handle);
        }
    };

    service::Service service(config, service_options);

    std::string line;
    while (std::getline(std::cin, line)) {
        if (util::trim(line).empty()) continue;
        const util::Result<service::wire::WireRequest> parsed =
            service::wire::parse_request(line);
        if (!parsed.ok()) {
            // Best-effort correlation -- but never duplicate an in-flight
            // id: if the recovered id already names a pending job, answer
            // as unidentifiable (id 0) so that job's eventual response
            // stays the only line with its id.
            std::uint64_t recovered = service::wire::extract_id(line);
            if (recovered != 0) {
                const std::lock_guard<std::mutex> lock(jobs_mutex);
                if (jobs.count(recovered) != 0) recovered = 0;
            }
            emit(service::wire::serialize_error(recovered, parsed.status()));
            continue;
        }
        const service::wire::WireRequest& request = parsed.value();
        const std::uint64_t id = request.id;
        {
            // Ids must be unique among in-flight requests for every op: a
            // reused job id would make the older job uncancellable and let
            // its completion erase the newer entry, and even an inline op
            // (cancel/stats) reusing one would put two responses with the
            // same id on the wire.
            const std::lock_guard<std::mutex> lock(jobs_mutex);
            if (jobs.count(id) != 0) {
                emit(service::wire::serialize_error(
                    id, util::Status(util::StatusCode::InvalidArgument,
                                     "request id " + std::to_string(id) +
                                         " is already in flight",
                                     "wire")));
                continue;
            }
        }
        service::SubmitOptions options = service::wire::submit_options(request);
        options.on_complete = [id, &emit, &jobs_mutex,
                               &jobs](const service::JobHandle& handle) {
            emit(service::wire::serialize_result(id, handle.wait()));
            const std::lock_guard<std::mutex> lock(jobs_mutex);
            jobs.erase(id);
        };

        switch (request.op) {
            case service::wire::WireRequest::Op::Estimate:
            case service::wire::WireRequest::Op::Map:
            case service::wire::WireRequest::Op::Both: {
                std::optional<fabric::PhysicalParams> params;
                if (!request.params.empty()) {
                    params = request.params.apply(service.pipeline().config().params);
                }
                track(id, service.submit(request.source,
                                         service::wire::run_mode_of(request.op),
                                         std::move(params), std::move(options)));
                break;
            }
            case service::wire::WireRequest::Op::Sweep: {
                service::SweepRequest sweep;
                sweep.source = request.source;
                sweep.axis = request.axis;
                sweep.values = request.values;
                sweep.kinds = request.kinds;
                track(id, service.submit_sweep(std::move(sweep), std::move(options)));
                break;
            }
            case service::wire::WireRequest::Op::Explore: {
                service::ExploreRequest explore;
                explore.source = request.source;
                explore.spec = request.explore;
                track(id, service.submit_explore(std::move(explore), std::move(options)));
                break;
            }
            case service::wire::WireRequest::Op::Calibrate: {
                service::CalibrationRequest calibrate;
                calibrate.sources = request.sources;
                calibrate.apply = request.apply_calibration;
                track(id,
                      service.submit_calibration(std::move(calibrate), std::move(options)));
                break;
            }
            case service::wire::WireRequest::Op::Cancel: {
                service::JobHandle target;
                {
                    const std::lock_guard<std::mutex> lock(jobs_mutex);
                    const auto it = jobs.find(request.target);
                    if (it != jobs.end()) target = it->second;
                }
                if (!target.valid()) {
                    emit(service::wire::serialize_error(
                        id, util::Status(util::StatusCode::NotFound,
                                         "no job with id " +
                                             std::to_string(request.target),
                                         "queue")));
                } else {
                    emit(service::wire::serialize_cancel_ack(id, request.target,
                                                             target.cancel()));
                }
                break;
            }
            case service::wire::WireRequest::Op::Stats:
                emit(service::wire::serialize_stats(id, service.stats()));
                break;
        }
    }

    // EOF: graceful drain -- every accepted job still answers, then exit.
    service.drain();
    return 0;
}

} // namespace

int main(int argc, char** argv) { return leqa::cli::run_main(argc, argv, body); }

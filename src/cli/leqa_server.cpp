/// \file leqa_server.cpp
/// \brief LEQA as a long-lived daemon: NDJSON requests in, NDJSON responses
///        out, backed by the async service::Service.  Two transports:
///
///   stdio (default)   one client over stdin/stdout; EOF *or* SIGTERM/
///                     SIGINT drains gracefully (every accepted request
///                     still gets its response) and exits 0.
///   --listen <port>   poll-reactor TCP server (see net/server.h): N
///                     concurrent connections, connection-local id spaces,
///                     `Unavailable` rejections instead of blocking when
///                     the bounded queue fills, graceful drain on signal.
///
/// One JSON object per line in both modes (see service/wire.h for the
/// format).  Request lines are length-capped (--max-line): an overlong
/// line answers ParseError and the stream resynchronizes at the next
/// newline.  No request -- however malformed -- can crash the daemon.
///
/// Examples:
///   printf '{"id":1,"op":"estimate","source":"bench:ham3"}\n' | leqa_server
///   leqa_server --threads 8 --max-queue 256 --fabric 80x80 < requests.ndjson
///   leqa_server --listen 7421 --threads 8 --max-conns 256
///   leqa_server --listen 0        # ephemeral port, printed on stdout
#include <csignal>
#include <cstdio>
#include <poll.h>
#include <string>
#include <unistd.h>

#include "cli/common.h"
#include "net/framing.h"
#include "net/server.h"
#include "net/session.h"
#include "net/socket.h"
#include "pipeline/pipeline.h"
#include "service/service.h"
#include "service/wire.h"
#include "util/args.h"
#include "util/error.h"
#include "util/thread_annotations.h"

namespace {

using namespace leqa;

/// Self-pipe for SIGTERM/SIGINT: the handler only write()s (async-signal-
/// safe); both the stdio loop and the TCP reactor poll the read end and
/// begin a graceful drain when it turns readable.
int g_signal_pipe_wr = -1;

extern "C" void on_terminate_signal(int) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t rc = ::write(g_signal_pipe_wr, &byte, 1);
}

/// Install the self-pipe and the handlers; returns the read end.
int install_signal_pipe() {
    int fds[2];
    if (::pipe(fds) != 0) throw util::Error("signal pipe creation failed");
    net::set_nonblocking(fds[0]);
    net::set_nonblocking(fds[1]);
    g_signal_pipe_wr = fds[1];
    struct sigaction action{};
    action.sa_handler = on_terminate_signal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0; // no SA_RESTART: blocking poll() must wake on signal
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
    return fds[0];
}

/// stdio transport: poll stdin + the signal pipe, feed a bounded
/// LineReader, dispatch through one net::Session.  On stdin EOF or a
/// termination signal, drains the service *before* returning -- the emit
/// sink (and its stdout mutex) must outlive every in-flight completion.
void run_stdio(service::Service& service, std::size_t max_line_bytes,
               int signal_fd) {
    util::Mutex out_mutex;
    const auto session = net::Session::make(
        service,
        [&out_mutex](std::string line) {
            const util::MutexLock lock(out_mutex);
            std::fputs(line.c_str(), stdout);
            std::fputc('\n', stdout);
            std::fflush(stdout);
        },
        net::SessionOptions{/*reject_when_full=*/false});

    net::LineReader reader(max_line_bytes);
    const auto dispatch = [&] {
        while (std::optional<net::WireLine> line = reader.next()) {
            if (line->overlong) session->handle_overlong();
            else session->handle_line(line->text);
        }
    };

    char buffer[65536];
    bool reading = true;
    while (reading) {
        pollfd fds[2] = {{STDIN_FILENO, POLLIN, 0}, {signal_fd, POLLIN, 0}};
        if (::poll(fds, 2, -1) < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (fds[1].revents & POLLIN) break; // signal: stop reading, drain
        if (fds[0].revents & (POLLIN | POLLHUP | POLLERR)) {
            const ssize_t got = ::read(STDIN_FILENO, buffer, sizeof(buffer));
            if (got < 0) {
                if (errno == EINTR) continue;
                break;
            }
            if (got == 0) { // EOF
                reader.finish();
                dispatch();
                reading = false;
            } else {
                reader.feed(std::string_view(buffer, static_cast<std::size_t>(got)));
                dispatch();
            }
        }
    }
    // Graceful drain: every accepted job still answers through this
    // session's emit, which references the locals above.
    service.drain();
}

int body(int argc, char** argv) {
    util::ArgParser parser(
        "LEQA NDJSON daemon: one JSON request per line, one JSON response "
        "per line (id-correlated, completion order); stdio by default, a "
        "multi-client TCP reactor with --listen");
    pipeline::add_param_options(parser);
    parser.add_option("threads", "service worker threads (0 = hardware)", "0");
    parser.add_option("max-queue", "queued-job bound (stdio blocks, TCP "
                      "rejects Unavailable when full)", "1024");
    parser.add_option("listen", "TCP port to serve on (0 = ephemeral; "
                      "omit for stdio mode)");
    parser.add_option("host", "TCP bind address", "127.0.0.1");
    parser.add_option("max-conns", "concurrent TCP connection cap", "1024");
    parser.add_option("max-line", "request line length cap in bytes",
                      "1048576");
    parser.add_flag("no-synth", "inputs are already FT-synthesized");
    if (!parser.parse(argc, argv)) return 0;

#ifdef SIGPIPE
    // A client that stops reading must not kill the daemon mid-drain: let
    // writes fail with EPIPE instead of raising the default-fatal signal.
    std::signal(SIGPIPE, SIG_IGN);
#endif
    const int signal_fd = install_signal_pipe();

    pipeline::PipelineConfig config;
    config.params = pipeline::params_from_args(parser);
    config.auto_synthesize = !parser.flag("no-synth");

    service::ServiceOptions service_options;
    service_options.threads = parser.option_size("threads");
    service_options.max_queue = parser.option_size("max-queue");

    const std::size_t max_line = parser.option_size("max-line");
    LEQA_REQUIRE(max_line >= 64, "--max-line must be at least 64 bytes");

    service::Service service(config, service_options);

    if (parser.option_given("listen")) {
        const long long port = parser.option_int("listen");
        LEQA_REQUIRE(port >= 0 && port <= 65535, "--listen port must be 0..65535");
        net::ServerOptions server_options;
        server_options.host = parser.option("host");
        server_options.port = static_cast<std::uint16_t>(port);
        server_options.max_connections = parser.option_size("max-conns");
        server_options.max_line_bytes = max_line;
        server_options.shutdown_fd = signal_fd;
        net::Server server(service, server_options);
        // Announce the bound endpoint (stdout carries no NDJSON in TCP
        // mode); harnesses parse this line to discover an ephemeral port.
        std::printf("listening on %s:%u\n", server_options.host.c_str(),
                    static_cast<unsigned>(server.port()));
        std::fflush(stdout);
        server.run(); // returns drained: every accepted request answered
    } else {
        run_stdio(service, max_line, signal_fd);
    }
    return 0;
}

} // namespace

int main(int argc, char** argv) { return leqa::cli::run_main(argc, argv, body); }

/// \file qspr_cli.cpp
/// \brief Command-line QSPR baseline: run the detailed scheduler / placer /
///        router and report the actual latency.
///
/// Examples:
///   qspr_cli gf2^16mult
///   qspr_cli path/to/circuit.qasm --fabric 80x80 --placement random --seed 7
#include <cstdio>

#include "cli/common.h"
#include "qspr/qspr.h"
#include "report/report.h"
#include "util/stopwatch.h"

namespace {

using namespace leqa;

int body(int argc, char** argv) {
    util::ArgParser parser(
        "QSPR baseline: detailed scheduling, placement and routing of an FT "
        "netlist on a tiled quantum architecture");
    parser.add_positional("input", "netlist path (.qasm/.real) or suite benchmark name");
    cli::add_param_options(parser);
    parser.add_option("placement", "centered-block | row-major | random", "centered-block");
    parser.add_option("routing", "maze | xy", "maze");
    parser.add_option("schedule", "program-order | critical-path", "program-order");
    parser.add_option("seed", "seed for random placement", "1");
    parser.add_flag("stats", "print detailed mapper statistics");
    parser.add_flag("no-synth", "input is already FT-synthesized");
    parser.add_option("json", "write the mapping result as JSON to this path");
    parser.add_option("schedule-csv", "write the detailed schedule as CSV to this path");
    if (!parser.parse(argc, argv)) return 0;

    const auto params = cli::resolve_params(parser);
    qspr::QsprOptions options;
    options.placement = qspr::parse_placement_strategy(parser.option("placement"));
    options.seed = static_cast<std::uint64_t>(parser.option_int("seed"));
    options.routing = qspr::parse_routing_algorithm(parser.option("routing"));
    options.schedule = qspr::parse_schedule_policy(parser.option("schedule"));
    options.collect_schedule = parser.option_given("schedule-csv");

    circuit::Circuit circ = cli::resolve_input(*parser.positional("input"));
    if (!parser.flag("no-synth") && !circ.is_ft()) {
        const auto result = synth::ft_synthesize(circ);
        std::printf("ft synthesis: %s\n", result.stats.to_string().c_str());
        circ = std::move(result.circuit);
    }

    const util::Stopwatch total;
    const qspr::QsprMapper mapper(params, options);
    const qspr::QsprResult result = mapper.map(circ);
    const double runtime_s = total.seconds();

    std::printf("circuit: %s\n", circ.name().empty() ? "(unnamed)" : circ.name().c_str());
    std::printf("  logical qubits: %zu\n", circ.num_qubits());
    std::printf("  FT operations:  %zu\n", circ.size());
    std::printf("fabric: %dx%d ULBs, Nc=%d, Tmove=%.0f us, placement=%s\n",
                params.width, params.height, params.nc, params.t_move_us,
                qspr::placement_strategy_name(options.placement).c_str());
    std::printf("actual latency: %.6E s  (%.3f us)\n", result.latency_us * 1e-6,
                result.latency_us);
    std::printf("qspr runtime: %.3f s\n", runtime_s);
    if (parser.flag("stats")) {
        std::printf("stats: %s\n", result.stats.to_string().c_str());
    }
    if (parser.option_given("json")) {
        parser::write_file(parser.option("json"),
                           report::qspr_result_to_json(result, params, circ.name()));
        std::printf("wrote JSON report to %s\n", parser.option("json").c_str());
    }
    if (parser.option_given("schedule-csv")) {
        parser::write_file(parser.option("schedule-csv"),
                           report::schedule_to_csv(result, circ));
        std::printf("wrote schedule CSV to %s\n", parser.option("schedule-csv").c_str());
    }
    return 0;
}

} // namespace

int main(int argc, char** argv) { return leqa::cli::run_main(argc, argv, body); }

/// \file qspr_cli.cpp
/// \brief Command-line QSPR baseline: run the detailed scheduler / placer /
///        router and report the actual latency.  A thin shell over the
///        leqa::pipeline::Pipeline facade in Map mode.
///
/// Examples:
///   qspr_cli bench:gf2^16mult
///   qspr_cli path/to/circuit.qasm --fabric 80x80 --placement random --seed 7
#include <cstdio>

#include "cli/common.h"
#include "parser/io.h"
#include "pipeline/pipeline.h"
#include "report/report.h"
#include "util/args.h"

namespace {

using namespace leqa;

int body(int argc, char** argv) {
    util::ArgParser parser(
        "QSPR baseline: detailed scheduling, placement and routing of an FT "
        "netlist on a tiled quantum architecture");
    parser.add_positional("input", "netlist path (.qasm/.real) or bench:<name>");
    pipeline::add_param_options(parser);
    parser.add_option("placement", "centered-block | row-major | random", "centered-block");
    parser.add_option("routing", "maze | xy", "maze");
    parser.add_option("schedule", "program-order | critical-path", "program-order");
    parser.add_option("seed", "seed for random placement", "1");
    parser.add_flag("stats", "print detailed mapper statistics");
    parser.add_flag("no-synth", "input is already FT-synthesized");
    parser.add_option("json", "write the mapping result as JSON to this path");
    parser.add_option("schedule-csv", "write the detailed schedule as CSV to this path");
    if (!parser.parse(argc, argv)) return 0;

    pipeline::PipelineConfig config;
    config.params = pipeline::params_from_args(parser);
    config.qspr.placement = qspr::parse_placement_strategy(parser.option("placement"));
    config.qspr.seed = static_cast<std::uint64_t>(parser.option_int("seed"));
    config.qspr.routing = qspr::parse_routing_algorithm(parser.option("routing"));
    config.qspr.schedule = qspr::parse_schedule_policy(parser.option("schedule"));
    config.qspr.collect_schedule = parser.option_given("schedule-csv");
    config.auto_synthesize = !parser.flag("no-synth");
    pipeline::Pipeline pipe(config);

    pipeline::EstimationRequest request(
        pipeline::parse_source(*parser.positional("input")), pipeline::RunMode::Map);
    const pipeline::EstimationResult result = pipe.run(request);
    const qspr::QsprResult& mapping = *result.mapping;
    const fabric::PhysicalParams& params = result.params;
    const pipeline::CachedCircuitPtr entry = pipe.resolve(request.source);

    if (result.circuit.synthesized) {
        std::printf("ft synthesis: %s\n", entry->synth_stats().to_string().c_str());
    }
    std::printf("circuit: %s\n", result.circuit.name.c_str());
    std::printf("  logical qubits: %zu\n", result.circuit.qubits);
    std::printf("  FT operations:  %zu\n", result.circuit.ft_ops);
    std::printf("fabric: %dx%d ULBs (%s), Nc=%d, Tmove=%.0f us, placement=%s\n",
                params.width, params.height,
                fabric::topology_kind_name(params.topology).c_str(), params.nc,
                params.t_move_us,
                qspr::placement_strategy_name(config.qspr.placement).c_str());
    std::printf("actual latency: %.6E s  (%.3f us)\n", mapping.latency_us * 1e-6,
                mapping.latency_us);
    std::printf("qspr runtime: %.3f s (resolve %.3f s, map %.3f s)\n",
                result.times.total_s, result.times.resolve_s, result.times.map_s);
    if (parser.flag("stats")) {
        std::printf("stats: %s\n", mapping.stats.to_string().c_str());
    }
    if (parser.option_given("json")) {
        parser::write_file(parser.option("json"), report::result_to_json(result));
        std::printf("wrote JSON report to %s\n", parser.option("json").c_str());
    }
    if (parser.option_given("schedule-csv")) {
        parser::write_file(parser.option("schedule-csv"),
                           report::schedule_to_csv(mapping, entry->ft()));
        std::printf("wrote schedule CSV to %s\n", parser.option("schedule-csv").c_str());
    }
    return 0;
}

} // namespace

int main(int argc, char** argv) { return leqa::cli::run_main(argc, argv, body); }

#include "core/calibrate.h"

#include <cmath>
#include <limits>

#include "core/engine.h"
#include "util/error.h"

namespace leqa::core {

namespace {

void validate_sample(const GraphSample& sample) {
    LEQA_REQUIRE(sample.graph != nullptr && sample.iig != nullptr,
                 "null graphs in calibration sample");
    LEQA_REQUIRE(sample.actual_latency_us > 0.0,
                 "calibration sample must have positive actual latency");
}

/// One training pair reduced to its circuit-invariant profile: the whole v
/// search then pays only the parameter-dependent stage per evaluation.
struct ProfiledSample {
    CircuitProfile profile;
    double actual_latency_us = 0.0;
};

std::vector<ProfiledSample> profile_samples(const std::vector<GraphSample>& samples) {
    std::vector<ProfiledSample> profiled;
    profiled.reserve(samples.size());
    for (const GraphSample& sample : samples) {
        profiled.push_back(
            {CircuitProfile::build(*sample.graph, *sample.iig), sample.actual_latency_us});
    }
    return profiled;
}

/// One engine per sample, persistent across the whole v search: v does not
/// move the coverage geometry, so each engine's E[S_q] memo is computed on
/// the first evaluation and hit on every later one.
std::vector<EstimationEngine> engines_for(const std::vector<ProfiledSample>& samples,
                                          const fabric::PhysicalParams& params,
                                          const LeqaOptions& options) {
    std::vector<EstimationEngine> engines;
    engines.reserve(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        engines.emplace_back(params, options);
    }
    return engines;
}

/// Mean error at speed v over index-aligned (sample, engine) pairs.
double error_at(const std::vector<ProfiledSample>& samples,
                std::vector<EstimationEngine>& engines,
                const fabric::PhysicalParams& params, double v,
                std::size_t& evaluations) {
    fabric::PhysicalParams tuned = params;
    tuned.v = v;
    double total = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        engines[i].set_params(tuned);
        const LeqaEstimate estimate = engines[i].estimate(samples[i].profile);
        ++evaluations;
        total += std::abs(estimate.latency_us - samples[i].actual_latency_us) /
                 samples[i].actual_latency_us;
    }
    return total / static_cast<double>(samples.size());
}

/// Owned graph storage backing the circuit-sample entry points.
struct PreparedSamples {
    std::vector<std::unique_ptr<qodg::Qodg>> graphs;
    std::vector<std::unique_ptr<iig::Iig>> iigs;
    std::vector<GraphSample> samples;
};

PreparedSamples prepare(const std::vector<CalibrationSample>& samples) {
    PreparedSamples prepared;
    prepared.graphs.reserve(samples.size());
    prepared.iigs.reserve(samples.size());
    prepared.samples.reserve(samples.size());
    for (const CalibrationSample& sample : samples) {
        LEQA_REQUIRE(sample.ft_circuit != nullptr, "null circuit in calibration sample");
        LEQA_REQUIRE(sample.actual_latency_us > 0.0,
                     "calibration sample must have positive actual latency");
        prepared.graphs.push_back(std::make_unique<qodg::Qodg>(*sample.ft_circuit));
        prepared.iigs.push_back(std::make_unique<iig::Iig>(*sample.ft_circuit));
        prepared.samples.push_back({prepared.graphs.back().get(),
                                    prepared.iigs.back().get(),
                                    sample.actual_latency_us});
    }
    return prepared;
}

} // namespace

double mean_abs_relative_error(const std::vector<CalibrationSample>& samples,
                               const fabric::PhysicalParams& params,
                               const LeqaOptions& options) {
    LEQA_REQUIRE(!samples.empty(), "need at least one calibration sample");
    LeqaEstimator estimator(params, options);
    double total = 0.0;
    for (const CalibrationSample& sample : samples) {
        LEQA_REQUIRE(sample.ft_circuit != nullptr, "null circuit in calibration sample");
        LEQA_REQUIRE(sample.actual_latency_us > 0.0,
                     "calibration sample must have positive actual latency");
        const LeqaEstimate estimate = estimator.estimate(*sample.ft_circuit);
        total += std::abs(estimate.latency_us - sample.actual_latency_us) /
                 sample.actual_latency_us;
    }
    return total / static_cast<double>(samples.size());
}

double mean_abs_relative_error(const std::vector<GraphSample>& samples,
                               const fabric::PhysicalParams& params,
                               const LeqaOptions& options) {
    LEQA_REQUIRE(!samples.empty(), "need at least one calibration sample");
    for (const GraphSample& sample : samples) validate_sample(sample);
    std::size_t evaluations = 0;
    const std::vector<ProfiledSample> profiled = profile_samples(samples);
    std::vector<EstimationEngine> engines = engines_for(profiled, params, options);
    return error_at(profiled, engines, params, params.v, evaluations);
}

CalibrationResult calibrate_v(const std::vector<GraphSample>& samples,
                              const fabric::PhysicalParams& base_params,
                              const LeqaOptions& options,
                              const CalibratorOptions& calibrator_options) {
    LEQA_REQUIRE(!samples.empty(), "need at least one calibration sample");
    LEQA_REQUIRE(calibrator_options.v_min > 0.0 &&
                     calibrator_options.v_max > calibrator_options.v_min,
                 "invalid v search range");
    LEQA_REQUIRE(calibrator_options.coarse_grid >= 2, "coarse grid needs >= 2 points");
    for (const GraphSample& sample : samples) validate_sample(sample);

    // Stage 1 once per sample; every v evaluation below is parameter-stage
    // work only.
    const std::vector<ProfiledSample> profiled = profile_samples(samples);
    std::vector<EstimationEngine> engines = engines_for(profiled, base_params, options);

    CalibrationResult result;
    const double log_min = std::log10(calibrator_options.v_min);
    const double log_max = std::log10(calibrator_options.v_max);

    // Coarse log-spaced scan, batched: the grid varies only v at fixed
    // geometry, which is exactly the engine's batch axis — each sample
    // evaluates the entire grid in one estimate_batch call instead of one
    // scalar estimate per (sample, v) pair.  Error accumulation order over
    // samples matches the scalar error_at, so the scan is bit-identical.
    const std::size_t grid_size =
        static_cast<std::size_t>(calibrator_options.coarse_grid);
    std::vector<double> grid_log_v(grid_size);
    std::vector<ParameterPoint> grid_points(grid_size);
    for (int i = 0; i < calibrator_options.coarse_grid; ++i) {
        const double log_v = log_min + (log_max - log_min) * i /
                                           (calibrator_options.coarse_grid - 1);
        grid_log_v[static_cast<std::size_t>(i)] = log_v;
        grid_points[static_cast<std::size_t>(i)] =
            ParameterPoint{base_params.nc, std::pow(10.0, log_v)};
    }
    std::vector<double> grid_error(grid_size, 0.0);
    for (std::size_t s = 0; s < profiled.size(); ++s) {
        const std::vector<LeqaEstimate> estimates =
            engines[s].estimate_batch(profiled[s].profile, grid_points);
        result.evaluations += estimates.size();
        for (std::size_t i = 0; i < grid_size; ++i) {
            grid_error[i] += std::abs(estimates[i].latency_us -
                                      profiled[s].actual_latency_us) /
                             profiled[s].actual_latency_us;
        }
    }
    double best_log_v = log_min;
    double best_error = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < grid_size; ++i) {
        const double error =
            grid_error[i] / static_cast<double>(profiled.size());
        if (error < best_error) {
            best_error = error;
            best_log_v = grid_log_v[i];
        }
    }

    // Golden-section refinement on the bracket around the best grid point.
    const double step = (log_max - log_min) / (calibrator_options.coarse_grid - 1);
    double lo = std::max(log_min, best_log_v - step);
    double hi = std::min(log_max, best_log_v + step);
    constexpr double kInvPhi = 0.6180339887498949;
    double x1 = hi - kInvPhi * (hi - lo);
    double x2 = lo + kInvPhi * (hi - lo);
    double f1 = error_at(profiled, engines, base_params, std::pow(10.0, x1),
                         result.evaluations);
    double f2 = error_at(profiled, engines, base_params, std::pow(10.0, x2),
                         result.evaluations);
    for (int i = 0; i < calibrator_options.refine_iterations; ++i) {
        if (f1 <= f2) {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - kInvPhi * (hi - lo);
            f1 = error_at(profiled, engines, base_params, std::pow(10.0, x1),
                          result.evaluations);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + kInvPhi * (hi - lo);
            f2 = error_at(profiled, engines, base_params, std::pow(10.0, x2),
                          result.evaluations);
        }
    }
    const double refined_log_v = f1 <= f2 ? x1 : x2;
    const double refined_error = std::min(f1, f2);

    if (refined_error <= best_error) {
        result.v = std::pow(10.0, refined_log_v);
        result.mean_abs_rel_error = refined_error;
    } else {
        result.v = std::pow(10.0, best_log_v);
        result.mean_abs_rel_error = best_error;
    }
    return result;
}

CalibrationResult calibrate_v(const std::vector<CalibrationSample>& samples,
                              const fabric::PhysicalParams& base_params,
                              const LeqaOptions& options,
                              const CalibratorOptions& calibrator_options) {
    LEQA_REQUIRE(!samples.empty(), "need at least one calibration sample");
    const PreparedSamples prepared = prepare(samples);
    return calibrate_v(prepared.samples, base_params, options, calibrator_options);
}

} // namespace leqa::core

/// \file calibrate.h
/// \brief Fitting LEQA's speed parameter v against a detailed mapper.
///
/// The paper (§3.2) introduces v as "a parameter depending on the physical
/// characteristics of the fabric technology ... [that] also can be used for
/// tuning the LEQA with different quantum mappers".  The calibrator fits v
/// on a small training set of (circuit, actual latency) pairs produced by a
/// mapper (our QSPR re-implementation), minimizing the mean absolute
/// relative error; the fitted v is then frozen for evaluation, mirroring
/// the paper's methodology of one fixed v per mapper.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "circuit/circuit.h"
#include "core/leqa.h"
#include "fabric/params.h"
#include "iig/iig.h"
#include "qodg/qodg.h"

namespace leqa::core {

/// One training pair.
struct CalibrationSample {
    const circuit::Circuit* ft_circuit = nullptr; ///< borrowed, not owned
    double actual_latency_us = 0.0;
};

/// One training pair with prebuilt graphs (the pipeline's cached
/// intermediates); lets the v sweep reuse QODG/IIG instead of rebuilding.
struct GraphSample {
    const qodg::Qodg* graph = nullptr; ///< borrowed, not owned
    const iig::Iig* iig = nullptr;     ///< borrowed, not owned
    double actual_latency_us = 0.0;
};

struct CalibrationResult {
    double v = 0.0;                 ///< fitted speed parameter
    double mean_abs_rel_error = 0.0; ///< at the fitted v, over the samples
    std::size_t evaluations = 0;    ///< estimator invocations spent
};

struct CalibratorOptions {
    double v_min = 1e-6;
    double v_max = 1.0;
    int coarse_grid = 48;       ///< log-spaced coarse scan points
    int refine_iterations = 40; ///< golden-section refinement steps
};

/// Mean absolute relative error of LEQA over samples at the given params.
[[nodiscard]] double mean_abs_relative_error(
    const std::vector<CalibrationSample>& samples,
    const fabric::PhysicalParams& params, const LeqaOptions& options);

/// As above, over prebuilt graphs (no QODG/IIG construction).
[[nodiscard]] double mean_abs_relative_error(
    const std::vector<GraphSample>& samples, const fabric::PhysicalParams& params,
    const LeqaOptions& options);

/// Fit v: coarse log-grid scan followed by golden-section refinement of the
/// best bracket.  Deterministic.  Throws InputError on an empty sample set.
[[nodiscard]] CalibrationResult calibrate_v(
    const std::vector<CalibrationSample>& samples,
    const fabric::PhysicalParams& base_params, const LeqaOptions& options = {},
    const CalibratorOptions& calibrator_options = {});

/// As above, over prebuilt graphs: the whole search runs without a single
/// QODG/IIG construction.  This is the pipeline facade's entry point.
[[nodiscard]] CalibrationResult calibrate_v(
    const std::vector<GraphSample>& samples, const fabric::PhysicalParams& base_params,
    const LeqaOptions& options = {}, const CalibratorOptions& calibrator_options = {});

} // namespace leqa::core

#include "core/engine.h"

#include <algorithm>
#include <cmath>

#include "mathx/binomial.h"
#include "mathx/queueing.h"
#include "mathx/tsp.h"
#include "util/error.h"

namespace leqa::core {

// -------------------------------------------------------- CircuitProfile --

CircuitProfile CircuitProfile::build(const qodg::Qodg& graph, const iig::Iig& iig) {
    CircuitProfile profile;
    profile.graph = &graph;
    profile.num_qubits = iig.num_qubits();
    profile.num_ops = graph.num_ops();

    // Lines 1-3 of Algorithm 1: IIG statistics and B (Eqs. 6-7).
    profile.zone_area_b = iig.average_zone_area();

    // Lines 4-8 without the parameter: the W_i-weighted average of
    // E[l_ham,i] / M_i (Eqs. 15-16).  Dividing by v at estimate time
    // recovers d_uncongest (Eq. 12) exactly up to association order.
    double numerator = 0.0;
    double denominator = 0.0;
    for (circuit::Qubit i = 0; i < iig.num_qubits(); ++i) {
        const double w = static_cast<double>(iig.adjacent_weight(i));
        if (w <= 0.0) continue; // no interactions: no presence-zone travel
        const double m = static_cast<double>(iig.degree(i));
        const double l_ham = mathx::expected_hamiltonian_path(iig.zone_area(i), m);
        numerator += w * (l_ham / m);
        denominator += w;
    }
    profile.d_uncongest_v = denominator > 0.0 ? numerator / denominator : 0.0;

    for (qodg::NodeId id = 0; id < graph.num_nodes(); ++id) {
        const qodg::Node& node = graph.node(id);
        if (node.kind == qodg::NodeKind::Op) {
            ++profile.gate_counts[static_cast<std::size_t>(node.gate_kind)];
        }
    }
    return profile;
}

// ------------------------------------------------------ EstimationEngine --
// (CoverageHistogram moved to fabric/topology.{h,cpp}: every topology now
// supplies its own compressed Eq. 5 table.)

EstimationEngine::EstimationEngine(const fabric::PhysicalParams& params,
                                   LeqaOptions options)
    : params_(params), options_(options) {
    params_.validate();
    LEQA_REQUIRE(options_.sq_terms >= 1, "sq_terms must be >= 1");
    topology_ = fabric::make_topology(params_);
}

void EstimationEngine::set_params(const fabric::PhysicalParams& params) {
    params.validate();
    const bool same_fabric = params.topology == params_.topology &&
                             params.width == params_.width &&
                             params.height == params_.height;
    params_ = params;
    if (!same_fabric || topology_ == nullptr) {
        topology_ = fabric::make_topology(params_);
    }
}

std::vector<double> EstimationEngine::expected_surfaces(
    const CoverageHistogram& coverage, long long num_zones, long long terms) {
    LEQA_REQUIRE(num_zones >= 0, "zone count must be non-negative");
    LEQA_REQUIRE(terms >= 0 && terms <= num_zones, "terms must be in [0, Q]");

    // One running Eq. 18 recursion per distinct coverage probability; each
    // q advances every recursion by one multiplicative step.
    std::vector<mathx::BinomialTermRecursion> rows;
    rows.reserve(coverage.bins().size());
    for (const CoverageHistogram::Bin& bin : coverage.bins()) {
        rows.emplace_back(num_zones, bin.probability);
    }

    std::vector<double> surfaces;
    surfaces.reserve(static_cast<std::size_t>(terms));
    for (long long q = 1; q <= terms; ++q) {
        double total = 0.0;
        for (std::size_t r = 0; r < rows.size(); ++r) {
            rows[r].advance();
            total += coverage.bins()[r].multiplicity * rows[r].value();
        }
        surfaces.push_back(total);
    }
    return surfaces;
}

LeqaEstimate EstimationEngine::estimate(const CircuitProfile& profile) const {
    LEQA_REQUIRE(profile.graph != nullptr, "profile has no QODG attached");
    const qodg::Qodg& graph = *profile.graph;

    LeqaEstimate out;
    out.num_qubits = profile.num_qubits;
    out.num_ops = profile.num_ops;
    out.l_one_qubit_avg_us = params_.one_qubit_routing_latency_us();

    const long long q_total = static_cast<long long>(profile.num_qubits);
    const fabric::Topology& topo = *topology_;
    const int a = topo.width();
    const int b = topo.height();

    // --- lines 1-3 came from the profile (Eqs. 6-7) ------------------------
    out.zone_area_b = profile.zone_area_b;

    // --- lines 4-8: d_uncongest (Eq. 12); v divides back in ----------------
    out.d_uncongest_us = profile.d_uncongest_v / params_.v;

    // --- lines 9-13: coverage histogram (Eq. 5, topology-provided) ---------
    // --- lines 14-17: E[S_q] (Eq. 4, via Eq. 18) and d_q (Eq. 8) -----------
    // --- line 18: L_CNOT^avg (Eq. 2) ---------------------------------------
    if (q_total > 0 && out.d_uncongest_us > 0.0) {
        const int side = topo.zone_extent(out.zone_area_b);
        const long long terms =
            options_.exact_sq ? q_total
                              : std::min<long long>(q_total, options_.sq_terms);
        if (surface_memo_.kind != topo.kind() || surface_memo_.a != a ||
            surface_memo_.b != b || surface_memo_.side != side ||
            surface_memo_.q_total != q_total || surface_memo_.terms != terms) {
            const CoverageHistogram coverage = topo.coverage_histogram(side);
            surface_memo_ =
                SurfaceMemo{topo.kind(), a, b, side, q_total, terms,
                            expected_surfaces(coverage, q_total, terms)};
        }
        out.e_sq = surface_memo_.e_sq;
        out.d_q.reserve(static_cast<std::size_t>(terms));
        double weighted_delay = 0.0;
        for (long long q = 1; q <= terms; ++q) {
            const double surface = out.e_sq[static_cast<std::size_t>(q - 1)];
            const double delay = mathx::congested_delay(
                static_cast<double>(q), static_cast<double>(params_.nc),
                out.d_uncongest_us);
            out.d_q.push_back(delay);
            out.covered_area += surface;
            weighted_delay += surface * delay;
        }
        out.l_cnot_avg_us = out.covered_area > 0.0 ? weighted_delay / out.covered_area : 0.0;
    }

    // --- lines 19-20: update QODG delays, critical path, D (Eq. 1) ---------
    // Per-kind delay table instead of a per-node functor; only kinds the
    // circuit contains are queried (delay_us rejects non-FT kinds).
    std::array<double, circuit::kGateKindCount> delay_by_kind{};
    for (std::size_t k = 0; k < circuit::kGateKindCount; ++k) {
        if (profile.gate_counts[k] == 0) continue;
        const auto kind = static_cast<circuit::GateKind>(k);
        const double routing = kind == circuit::GateKind::Cnot
                                   ? out.l_cnot_avg_us
                                   : out.l_one_qubit_avg_us;
        delay_by_kind[k] = params_.delay_us(kind) + routing;
    }
    const std::vector<double> delays = graph.node_delays(delay_by_kind);
    const qodg::LongestPath lp = graph.longest_path(delays);
    const std::vector<qodg::NodeId> path = graph.critical_path(lp);
    out.critical_census = graph.census(path);
    out.critical_cnots = out.critical_census.of(circuit::GateKind::Cnot);
    out.critical_one_qubit = out.critical_census.total_ops - out.critical_cnots;
    out.latency_us = lp.length;

    for (std::size_t k = 0; k < circuit::kGateKindCount; ++k) {
        const auto kind = static_cast<circuit::GateKind>(k);
        const std::size_t count = out.critical_census.by_kind[k];
        if (count > 0) {
            out.critical_gate_delay_us += static_cast<double>(count) * params_.delay_us(kind);
        }
    }
    return out;
}

} // namespace leqa::core

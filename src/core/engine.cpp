#include "core/engine.h"

#include <algorithm>
#include <cmath>

#include "mathx/binomial.h"
#include "mathx/queueing.h"
#include "mathx/tsp.h"
#include "util/error.h"

namespace leqa::core {

// -------------------------------------------------------- CircuitProfile --

CircuitProfile CircuitProfile::build(const qodg::Qodg& graph, const iig::Iig& iig) {
    CircuitProfile profile;
    profile.graph = &graph;
    profile.num_qubits = iig.num_qubits();
    profile.num_ops = graph.num_ops();

    // Lines 1-3 of Algorithm 1: IIG statistics and B (Eqs. 6-7).
    profile.zone_area_b = iig.average_zone_area();

    // Lines 4-8 without the parameter: the W_i-weighted average of
    // E[l_ham,i] / M_i (Eqs. 15-16).  Dividing by v at estimate time
    // recovers d_uncongest (Eq. 12) exactly up to association order.
    double numerator = 0.0;
    double denominator = 0.0;
    for (circuit::Qubit i = 0; i < iig.num_qubits(); ++i) {
        const double w = static_cast<double>(iig.adjacent_weight(i));
        if (w <= 0.0) continue; // no interactions: no presence-zone travel
        const double m = static_cast<double>(iig.degree(i));
        const double l_ham = mathx::expected_hamiltonian_path(iig.zone_area(i), m);
        numerator += w * (l_ham / m);
        denominator += w;
    }
    profile.d_uncongest_v = denominator > 0.0 ? numerator / denominator : 0.0;

    for (qodg::NodeId id = 0; id < graph.num_nodes(); ++id) {
        const qodg::Node& node = graph.node(id);
        if (node.kind == qodg::NodeKind::Op) {
            ++profile.gate_counts[static_cast<std::size_t>(node.gate_kind)];
        }
    }
    return profile;
}

// ----------------------------------------------------- CoverageHistogram --

CoverageHistogram CoverageHistogram::build(int a, int b, int zone_side) {
    LEQA_REQUIRE(a >= 1 && b >= 1, "fabric dimensions must be >= 1");
    LEQA_REQUIRE(zone_side >= 1 && zone_side <= std::min(a, b),
                 "zone side must be in [1, min(a, b)]");
    const int s = zone_side;

    // Along one axis of length `len`, Eq. 5's count min{x, len-x+1, s,
    // len-s+1} takes at most min(s, len-s+1) distinct values; tally how
    // many coordinates produce each.
    const auto axis_counts = [s](int len) {
        const int cap = std::min(s, len - s + 1);
        std::vector<double> count(static_cast<std::size_t>(cap) + 1, 0.0);
        for (int x = 1; x <= len; ++x) {
            const int n = std::min({x, len - x + 1, s, len - s + 1});
            count[static_cast<std::size_t>(n)] += 1.0;
        }
        return count;
    };
    const std::vector<double> cx = axis_counts(a);
    const std::vector<double> cy = axis_counts(b);

    // Cross the two axes on the integer product nx * ny, merging products
    // that coincide (1*4 == 2*2): at most (cap_a * cap_b) <= s^2 bins.
    const std::size_t max_product = (cx.size() - 1) * (cy.size() - 1);
    std::vector<double> product_count(max_product + 1, 0.0);
    for (std::size_t i = 1; i < cx.size(); ++i) {
        if (cx[i] == 0.0) continue;
        for (std::size_t j = 1; j < cy.size(); ++j) {
            if (cy[j] == 0.0) continue;
            product_count[i * j] += cx[i] * cy[j];
        }
    }

    const double denom =
        static_cast<double>(a - s + 1) * static_cast<double>(b - s + 1);
    CoverageHistogram histogram;
    histogram.cells_ = static_cast<double>(a) * static_cast<double>(b);
    for (std::size_t product = 1; product <= max_product; ++product) {
        if (product_count[product] == 0.0) continue;
        histogram.bins_.push_back(
            Bin{static_cast<double>(product) / denom, product_count[product]});
    }
    return histogram;
}

// ------------------------------------------------------ EstimationEngine --

EstimationEngine::EstimationEngine(const fabric::PhysicalParams& params,
                                   LeqaOptions options)
    : params_(params), options_(options) {
    params_.validate();
    LEQA_REQUIRE(options_.sq_terms >= 1, "sq_terms must be >= 1");
}

void EstimationEngine::set_params(const fabric::PhysicalParams& params) {
    params.validate();
    params_ = params;
}

std::vector<double> EstimationEngine::expected_surfaces(
    const CoverageHistogram& coverage, long long num_zones, long long terms) {
    LEQA_REQUIRE(num_zones >= 0, "zone count must be non-negative");
    LEQA_REQUIRE(terms >= 0 && terms <= num_zones, "terms must be in [0, Q]");

    // One running Eq. 18 recursion per distinct coverage probability; each
    // q advances every recursion by one multiplicative step.
    std::vector<mathx::BinomialTermRecursion> rows;
    rows.reserve(coverage.bins().size());
    for (const CoverageHistogram::Bin& bin : coverage.bins()) {
        rows.emplace_back(num_zones, bin.probability);
    }

    std::vector<double> surfaces;
    surfaces.reserve(static_cast<std::size_t>(terms));
    for (long long q = 1; q <= terms; ++q) {
        double total = 0.0;
        for (std::size_t r = 0; r < rows.size(); ++r) {
            rows[r].advance();
            total += coverage.bins()[r].multiplicity * rows[r].value();
        }
        surfaces.push_back(total);
    }
    return surfaces;
}

LeqaEstimate EstimationEngine::estimate(const CircuitProfile& profile) const {
    LEQA_REQUIRE(profile.graph != nullptr, "profile has no QODG attached");
    const qodg::Qodg& graph = *profile.graph;

    LeqaEstimate out;
    out.num_qubits = profile.num_qubits;
    out.num_ops = profile.num_ops;
    out.l_one_qubit_avg_us = params_.one_qubit_routing_latency_us();

    const long long q_total = static_cast<long long>(profile.num_qubits);
    const int a = params_.width;
    const int b = params_.height;

    // --- lines 1-3 came from the profile (Eqs. 6-7) ------------------------
    out.zone_area_b = profile.zone_area_b;

    // --- lines 4-8: d_uncongest (Eq. 12); v divides back in ----------------
    out.d_uncongest_us = profile.d_uncongest_v / params_.v;

    // --- lines 9-13: coverage histogram (Eq. 5, compressed) ----------------
    // --- lines 14-17: E[S_q] (Eq. 4, via Eq. 18) and d_q (Eq. 8) -----------
    // --- line 18: L_CNOT^avg (Eq. 2) ---------------------------------------
    if (q_total > 0 && out.d_uncongest_us > 0.0) {
        const int side = LeqaEstimator::zone_side(out.zone_area_b, a, b);
        const long long terms =
            options_.exact_sq ? q_total
                              : std::min<long long>(q_total, options_.sq_terms);
        if (surface_memo_.a != a || surface_memo_.b != b || surface_memo_.side != side ||
            surface_memo_.q_total != q_total || surface_memo_.terms != terms) {
            const CoverageHistogram coverage = CoverageHistogram::build(a, b, side);
            surface_memo_ =
                SurfaceMemo{a, b, side, q_total, terms,
                            expected_surfaces(coverage, q_total, terms)};
        }
        out.e_sq = surface_memo_.e_sq;
        out.d_q.reserve(static_cast<std::size_t>(terms));
        double weighted_delay = 0.0;
        for (long long q = 1; q <= terms; ++q) {
            const double surface = out.e_sq[static_cast<std::size_t>(q - 1)];
            const double delay = mathx::congested_delay(
                static_cast<double>(q), static_cast<double>(params_.nc),
                out.d_uncongest_us);
            out.d_q.push_back(delay);
            out.covered_area += surface;
            weighted_delay += surface * delay;
        }
        out.l_cnot_avg_us = out.covered_area > 0.0 ? weighted_delay / out.covered_area : 0.0;
    }

    // --- lines 19-20: update QODG delays, critical path, D (Eq. 1) ---------
    // Per-kind delay table instead of a per-node functor; only kinds the
    // circuit contains are queried (delay_us rejects non-FT kinds).
    std::array<double, circuit::kGateKindCount> delay_by_kind{};
    for (std::size_t k = 0; k < circuit::kGateKindCount; ++k) {
        if (profile.gate_counts[k] == 0) continue;
        const auto kind = static_cast<circuit::GateKind>(k);
        const double routing = kind == circuit::GateKind::Cnot
                                   ? out.l_cnot_avg_us
                                   : out.l_one_qubit_avg_us;
        delay_by_kind[k] = params_.delay_us(kind) + routing;
    }
    const std::vector<double> delays = graph.node_delays(delay_by_kind);
    const qodg::LongestPath lp = graph.longest_path(delays);
    const std::vector<qodg::NodeId> path = graph.critical_path(lp);
    out.critical_census = graph.census(path);
    out.critical_cnots = out.critical_census.of(circuit::GateKind::Cnot);
    out.critical_one_qubit = out.critical_census.total_ops - out.critical_cnots;
    out.latency_us = lp.length;

    for (std::size_t k = 0; k < circuit::kGateKindCount; ++k) {
        const auto kind = static_cast<circuit::GateKind>(k);
        const std::size_t count = out.critical_census.by_kind[k];
        if (count > 0) {
            out.critical_gate_delay_us += static_cast<double>(count) * params_.delay_us(kind);
        }
    }
    return out;
}

} // namespace leqa::core

#include "core/engine.h"

#include <algorithm>
#include <cmath>

#include "mathx/binomial.h"
#include "mathx/queueing.h"
#include "mathx/tsp.h"
#include "util/error.h"

namespace leqa::core {

// -------------------------------------------------------- CircuitProfile --

CircuitProfile CircuitProfile::build(const qodg::Qodg& graph, const iig::Iig& iig) {
    CircuitProfile profile;
    profile.graph = &graph;
    profile.num_qubits = iig.num_qubits();
    profile.num_ops = graph.num_ops();

    // Lines 1-3 of Algorithm 1: IIG statistics and B (Eqs. 6-7).
    profile.zone_area_b = iig.average_zone_area();

    // Lines 4-8 without the parameter: the W_i-weighted average of
    // E[l_ham,i] / M_i (Eqs. 15-16).  Dividing by v at estimate time
    // recovers d_uncongest (Eq. 12) exactly up to association order.
    double numerator = 0.0;
    double denominator = 0.0;
    for (circuit::Qubit i = 0; i < iig.num_qubits(); ++i) {
        const double w = static_cast<double>(iig.adjacent_weight(i));
        if (w <= 0.0) continue; // no interactions: no presence-zone travel
        const double m = static_cast<double>(iig.degree(i));
        const double l_ham = mathx::expected_hamiltonian_path(iig.zone_area(i), m);
        numerator += w * (l_ham / m);
        denominator += w;
    }
    profile.d_uncongest_v = denominator > 0.0 ? numerator / denominator : 0.0;

    for (qodg::NodeId id = 0; id < graph.num_nodes(); ++id) {
        const qodg::Node& node = graph.node(id);
        if (node.kind == qodg::NodeKind::Op) {
            ++profile.gate_counts[static_cast<std::size_t>(node.gate_kind)];
        }
    }
    return profile;
}

// ------------------------------------------------------ EstimationEngine --
// (CoverageHistogram moved to fabric/topology.{h,cpp}: every topology now
// supplies its own compressed Eq. 5 table.)

EstimationEngine::EstimationEngine(const fabric::PhysicalParams& params,
                                   LeqaOptions options)
    : params_(params), options_(options) {
    params_.validate();
    LEQA_REQUIRE(options_.sq_terms >= 1, "sq_terms must be >= 1");
    topology_ = fabric::make_topology(params_);
}

void EstimationEngine::set_params(const fabric::PhysicalParams& params) {
    params.validate();
    const bool same_fabric = params.topology == params_.topology &&
                             params.width == params_.width &&
                             params.height == params_.height;
    params_ = params;
    if (!same_fabric || topology_ == nullptr) {
        topology_ = fabric::make_topology(params_);
    }
}

std::vector<double> EstimationEngine::expected_surfaces(
    const CoverageHistogram& coverage, long long num_zones, long long terms) {
    LEQA_REQUIRE(num_zones >= 0, "zone count must be non-negative");
    LEQA_REQUIRE(terms >= 0 && terms <= num_zones, "terms must be in [0, Q]");

    // All distinct coverage probabilities run through ONE SoA Eq. 18
    // recursion: per q, a flat multiply/renormalize loop over contiguous
    // lanes (see mathx::BinomialRowBatch), then a multiplicity-weighted
    // reduction in bin order — the same accumulation order as the scalar
    // reference, so the sums are bit-identical.
    const std::size_t num_bins = coverage.bins().size();
    std::vector<double> probabilities(num_bins);
    std::vector<double> multiplicities(num_bins);
    for (std::size_t i = 0; i < num_bins; ++i) {
        probabilities[i] = coverage.bins()[i].probability;
        multiplicities[i] = coverage.bins()[i].multiplicity;
    }
    mathx::BinomialRowBatch rows(num_zones, probabilities);
    std::vector<double> lane_values(num_bins);

    std::vector<double> surfaces;
    surfaces.reserve(static_cast<std::size_t>(terms));
    for (long long q = 1; q <= terms; ++q) {
        rows.advance();
        rows.values(lane_values);
        double total = 0.0;
        for (std::size_t i = 0; i < num_bins; ++i) {
            total += multiplicities[i] * lane_values[i];
        }
        surfaces.push_back(total);
    }
    return surfaces;
}

std::vector<double> EstimationEngine::expected_surfaces_reference(
    const CoverageHistogram& coverage, long long num_zones, long long terms) {
    LEQA_REQUIRE(num_zones >= 0, "zone count must be non-negative");
    LEQA_REQUIRE(terms >= 0 && terms <= num_zones, "terms must be in [0, Q]");

    // One scalar Eq. 18 recursion object per distinct coverage probability;
    // each q advances every recursion by one multiplicative step.
    std::vector<mathx::BinomialTermRecursion> rows;
    rows.reserve(coverage.bins().size());
    for (const CoverageHistogram::Bin& bin : coverage.bins()) {
        rows.emplace_back(num_zones, bin.probability);
    }

    std::vector<double> surfaces;
    surfaces.reserve(static_cast<std::size_t>(terms));
    for (long long q = 1; q <= terms; ++q) {
        double total = 0.0;
        for (std::size_t r = 0; r < rows.size(); ++r) {
            rows[r].advance();
            total += coverage.bins()[r].multiplicity * rows[r].value();
        }
        surfaces.push_back(total);
    }
    return surfaces;
}

const std::vector<double>& EstimationEngine::SurfaceCache::get(
    const Key& key, const std::function<std::vector<double>()>& make) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].key == key) {
            ++stats_.hits;
            if (i != 0) {
                std::rotate(entries_.begin(), entries_.begin() + i,
                            entries_.begin() + i + 1);
            }
            return entries_.front().e_sq;
        }
    }
    ++stats_.recomputes;
    if (entries_.size() >= capacity_) {
        entries_.pop_back();
        ++stats_.evictions;
    }
    entries_.insert(entries_.begin(), Entry{key, make()});
    return entries_.front().e_sq;
}

LeqaEstimate EstimationEngine::estimate(const CircuitProfile& profile) const {
    LEQA_REQUIRE(profile.graph != nullptr, "profile has no QODG attached");
    const qodg::Qodg& graph = *profile.graph;

    LeqaEstimate out;
    out.num_qubits = profile.num_qubits;
    out.num_ops = profile.num_ops;
    out.l_one_qubit_avg_us = params_.one_qubit_routing_latency_us();

    const long long q_total = static_cast<long long>(profile.num_qubits);
    const fabric::Topology& topo = *topology_;
    const int a = topo.width();
    const int b = topo.height();

    // --- lines 1-3 came from the profile (Eqs. 6-7) ------------------------
    out.zone_area_b = profile.zone_area_b;

    // --- lines 4-8: d_uncongest (Eq. 12); v divides back in ----------------
    out.d_uncongest_us = profile.d_uncongest_v / params_.v;

    // --- lines 9-13: coverage histogram (Eq. 5, topology-provided) ---------
    // --- lines 14-17: E[S_q] (Eq. 4, via Eq. 18) and d_q (Eq. 8) -----------
    // --- line 18: L_CNOT^avg (Eq. 2) ---------------------------------------
    if (q_total > 0 && out.d_uncongest_us > 0.0) {
        const int side = topo.zone_extent(out.zone_area_b);
        const long long terms =
            options_.exact_sq ? q_total
                              : std::min<long long>(q_total, options_.sq_terms);
        out.e_sq = surface_cache_.get(
            SurfaceCache::Key{topo.kind(), a, b, side, q_total, terms}, [&] {
                return expected_surfaces(topo.coverage_histogram(side), q_total,
                                         terms);
            });
        out.d_q.reserve(static_cast<std::size_t>(terms));
        double weighted_delay = 0.0;
        for (long long q = 1; q <= terms; ++q) {
            const double surface = out.e_sq[static_cast<std::size_t>(q - 1)];
            const double delay = mathx::congested_delay(
                static_cast<double>(q), static_cast<double>(params_.nc),
                out.d_uncongest_us);
            out.d_q.push_back(delay);
            out.covered_area += surface;
            weighted_delay += surface * delay;
        }
        out.l_cnot_avg_us = out.covered_area > 0.0 ? weighted_delay / out.covered_area : 0.0;
    }

    // --- lines 19-20: update QODG delays, critical path, D (Eq. 1) ---------
    // Per-kind delay table instead of a per-node functor; only kinds the
    // circuit contains are queried (delay_us rejects non-FT kinds).
    std::array<double, circuit::kGateKindCount> delay_by_kind{};
    for (std::size_t k = 0; k < circuit::kGateKindCount; ++k) {
        if (profile.gate_counts[k] == 0) continue;
        const auto kind = static_cast<circuit::GateKind>(k);
        const double routing = kind == circuit::GateKind::Cnot
                                   ? out.l_cnot_avg_us
                                   : out.l_one_qubit_avg_us;
        delay_by_kind[k] = params_.delay_us(kind) + routing;
    }
    const std::vector<double> delays = graph.node_delays(delay_by_kind);
    const qodg::LongestPath lp = graph.longest_path(delays);
    const std::vector<qodg::NodeId> path = graph.critical_path(lp);
    out.critical_census = graph.census(path);
    out.critical_cnots = out.critical_census.of(circuit::GateKind::Cnot);
    out.critical_one_qubit = out.critical_census.total_ops - out.critical_cnots;
    out.latency_us = lp.length;

    for (std::size_t k = 0; k < circuit::kGateKindCount; ++k) {
        const auto kind = static_cast<circuit::GateKind>(k);
        const std::size_t count = out.critical_census.by_kind[k];
        if (count > 0) {
            out.critical_gate_delay_us += static_cast<double>(count) * params_.delay_us(kind);
        }
    }
    return out;
}

std::vector<LeqaEstimate> EstimationEngine::estimate_batch(
    const CircuitProfile& profile, std::span<const ParameterPoint> points,
    const std::function<void()>& before_point) const {
    LEQA_REQUIRE(profile.graph != nullptr, "profile has no QODG attached");
    std::vector<LeqaEstimate> out(points.size());
    if (points.empty()) return out;

    const qodg::Qodg& graph = *profile.graph;
    const long long q_total = static_cast<long long>(profile.num_qubits);
    const fabric::Topology& topo = *topology_;
    const int a = topo.width();
    const int b = topo.height();
    const double l_one_qubit = params_.one_qubit_routing_latency_us();
    const long long terms =
        options_.exact_sq ? q_total
                          : std::min<long long>(q_total, options_.sq_terms);

    // The surfaces depend only on the geometry and the circuit, never on
    // (Nc, v): one cache lookup serves the whole batch.  Looked up lazily —
    // a batch where every point has d_uncongest <= 0 never touches E[S_q],
    // matching the scalar guard.
    const std::vector<double>* e_sq = nullptr;
    const auto surfaces_for_batch = [&]() -> const std::vector<double>& {
        if (e_sq == nullptr) {
            const int side = topo.zone_extent(profile.zone_area_b);
            e_sq = &surface_cache_.get(
                SurfaceCache::Key{topo.kind(), a, b, side, q_total, terms}, [&] {
                    return expected_surfaces(topo.coverage_histogram(side),
                                             q_total, terms);
                });
        }
        return *e_sq;
    };

    // The per-kind delay table is (Nc, v)-invariant except for the CNOT
    // entry, whose routing term carries the congestion algebra.  Build the
    // shared part once; each lane then patches its own CNOT delay.
    constexpr std::size_t kCnot = static_cast<std::size_t>(circuit::GateKind::Cnot);
    std::array<double, circuit::kGateKindCount> shared_delays{};
    for (std::size_t k = 0; k < circuit::kGateKindCount; ++k) {
        if (profile.gate_counts[k] == 0) continue;
        const auto kind = static_cast<circuit::GateKind>(k);
        const double routing = kind == circuit::GateKind::Cnot ? 0.0 : l_one_qubit;
        shared_delays[k] = params_.delay_us(kind) + routing;
    }

    // Process the axis in fixed-width blocks: the per-point congestion
    // algebra stays scalar (it is O(terms) on a handful of doubles), and
    // the expensive critical-path pass runs once per block with one lane
    // per point.  The last block is padded by repeating its final point so
    // the lane kernel always runs at full width.
    constexpr std::size_t kLanes = 8;
    std::array<std::array<double, circuit::kGateKindCount>, kLanes> tables;
    std::array<qodg::PathCensus, kLanes> censuses;
    qodg::LongestPathLanes lanes;
    const qodg::NodeId end_node = graph.end();

    for (std::size_t block = 0; block < points.size(); block += kLanes) {
        const std::size_t width = std::min(kLanes, points.size() - block);
        for (std::size_t lane = 0; lane < width; ++lane) {
            const std::size_t index = block + lane;
            if (before_point) before_point();
            const ParameterPoint& point = points[index];
            LEQA_REQUIRE(point.nc >= 1, "channel capacity must be >= 1");
            LEQA_REQUIRE(point.v > 0.0, "speed must be positive");

            LeqaEstimate& est = out[index];
            est.num_qubits = profile.num_qubits;
            est.num_ops = profile.num_ops;
            est.l_one_qubit_avg_us = l_one_qubit;
            est.zone_area_b = profile.zone_area_b;
            est.d_uncongest_us = profile.d_uncongest_v / point.v;

            if (q_total > 0 && est.d_uncongest_us > 0.0) {
                est.e_sq = surfaces_for_batch();
                est.d_q.reserve(static_cast<std::size_t>(terms));
                double weighted_delay = 0.0;
                for (long long q = 1; q <= terms; ++q) {
                    const double surface = est.e_sq[static_cast<std::size_t>(q - 1)];
                    const double delay = mathx::congested_delay(
                        static_cast<double>(q), static_cast<double>(point.nc),
                        est.d_uncongest_us);
                    est.d_q.push_back(delay);
                    est.covered_area += surface;
                    weighted_delay += surface * delay;
                }
                est.l_cnot_avg_us = est.covered_area > 0.0
                                        ? weighted_delay / est.covered_area
                                        : 0.0;
            }

            tables[lane] = shared_delays;
            if (profile.gate_counts[kCnot] > 0) {
                tables[lane][kCnot] =
                    params_.delay_us(circuit::GateKind::Cnot) + est.l_cnot_avg_us;
            }
        }
        for (std::size_t lane = width; lane < kLanes; ++lane) {
            tables[lane] = tables[width - 1];
        }

        graph.longest_path_lanes(tables, lanes);
        graph.critical_census_lanes(lanes, {censuses.data(), width});

        for (std::size_t lane = 0; lane < width; ++lane) {
            LeqaEstimate& est = out[block + lane];
            est.latency_us = lanes.at(end_node, lane);
            est.critical_census = censuses[lane];
            est.critical_cnots = est.critical_census.of(circuit::GateKind::Cnot);
            est.critical_one_qubit =
                est.critical_census.total_ops - est.critical_cnots;
            for (std::size_t k = 0; k < circuit::kGateKindCount; ++k) {
                const std::size_t count = est.critical_census.by_kind[k];
                if (count > 0) {
                    est.critical_gate_delay_us +=
                        static_cast<double>(count) *
                        params_.delay_us(static_cast<circuit::GateKind>(k));
                }
            }
        }
    }
    return out;
}

} // namespace leqa::core

/// \file engine.h
/// \brief The staged estimation engine: circuit-invariant profile stage +
///        parameter-dependent stage.
///
/// LEQA's value proposition is being the fast inner loop of design-space
/// exploration, yet Algorithm 1 as written mixes circuit-sized work (IIG
/// statistics, the a x b coverage table) with parameter-dependent work.
/// The engine splits it:
///
///   stage 1 — `CircuitProfile` (per circuit, parameter-free):
///     QODG structure, IIG-derived statistics (B of Eq. 7 and the
///     circuit-only factor of d_uncongest, Eqs. 12/15/16 — v divides out),
///     per-kind gate counts.  Build once, reuse across every parameter
///     point; the pipeline caches it next to the graphs.
///
///   stage 2 — `EstimationEngine::estimate(profile)` (per parameter point):
///     the coverage table of Eq. 5 is compressed to its O(s^2) distinct
///     (probability, multiplicity) bins (`CoverageHistogram`; see DESIGN.md
///     for the counting argument), and E[S_q] (Eq. 4) is evaluated with the
///     paper's Eq. 18 running recursion — two multiplies per (bin, q)
///     instead of three lgammas, two logs and an exp per (cell, q).  The
///     remaining per-point work is the critical-path pass over the CSR
///     QODG.
///
/// `LeqaEstimator::estimate` delegates here; `estimate_reference` keeps the
/// pre-refactor O(a*b*T) evaluation as the golden path the parity tests
/// compare against.
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/leqa.h"
#include "fabric/params.h"
#include "fabric/topology.h"
#include "iig/iig.h"
#include "qodg/qodg.h"

namespace leqa::core {

/// Stage-1 artifact: everything Algorithm 1 needs that depends only on the
/// circuit, never on the fabric parameters.  Borrows the QODG (the pipeline
/// keeps graph and profile alive together).
struct CircuitProfile {
    std::size_t num_qubits = 0;
    std::size_t num_ops = 0;

    /// B, the average presence-zone area (Eq. 7).
    double zone_area_b = 1.0;

    /// The circuit-only factor of d_uncongest (Eq. 12): the W_i-weighted
    /// average of E[l_ham,i] / M_i (Eqs. 15-16).  The speed parameter v
    /// divides out of the average, so d_uncongest = d_uncongest_v / v.
    double d_uncongest_v = 0.0;

    /// Per-kind operation counts over the whole circuit.
    std::array<std::size_t, circuit::kGateKindCount> gate_counts{};

    /// Dependency structure for the critical-path stage (borrowed).
    const qodg::Qodg* graph = nullptr;

    /// Build from prebuilt graphs; the IIG is consumed statistically and
    /// not retained.
    [[nodiscard]] static CircuitProfile build(const qodg::Qodg& graph,
                                              const iig::Iig& iig);
};

/// The coverage table of Eq. 5 compressed to its distinct values (now a
/// fabric-layer type: every `fabric::Topology` supplies its own histogram).
/// On an a x b grid with zone side s the table holds at most s^2 distinct
/// probabilities regardless of fabric area; a torus collapses to one bin
/// and a line to at most s.  Summing multiplicity-weighted bins replaces
/// the O(a*b) per-q cell sweep.
using CoverageHistogram = fabric::CoverageHistogram;

/// One (Nc, v) point of a batched parameter-stage evaluation.  Geometry and
/// gate delays come from the engine's params; only the congestion inputs
/// vary per point, which is exactly what sweep/explore axes vary within a
/// fixed-geometry slice.
struct ParameterPoint {
    int nc = 1;     ///< channel capacity, >= 1
    double v = 0.0; ///< qubit movement speed, > 0
};

/// Counters for the engine's keyed E[S_q] cache (regression-tested: an
/// explore slice that alternates topology kinds must not recompute the
/// surfaces per point the way the old single-entry memo did).
struct SurfaceCacheStats {
    std::size_t hits = 0;
    std::size_t recomputes = 0;
    std::size_t evictions = 0;
};

/// Stage 2: runs Algorithm 1 against a profile at one parameter point.
///
/// The fabric shape enters only through `fabric::Topology`: the zone
/// extent and coverage histogram come from the params' topology, so the
/// same staged evaluation covers grid, torus and line fabrics (grid is
/// bit-compatible with the pre-topology code).
///
/// The engine caches E[S_q] vectors across estimate() calls: the surfaces
/// depend only on (topology, a, b, zone extent, Q, terms), which are
/// invariant across speed (v) and channel-capacity (Nc) sweeps and the
/// calibrator's entire v search, so those pay only the congestion algebra
/// and the critical-path pass per point.  The cache is a small keyed LRU
/// rather than a single entry, so an explore slice that interleaves
/// topology kinds (or a few fabric sides) keeps all of them warm instead
/// of recomputing on every alternation.  The cache makes concurrent calls
/// on one engine instance unsafe; use one engine per thread (the pipeline
/// constructs one per request).
class EstimationEngine {
public:
    explicit EstimationEngine(const fabric::PhysicalParams& params,
                              LeqaOptions options = {});

    /// Estimate at the engine's parameter point.  Bit-compatible with
    /// `LeqaEstimator::estimate` (which delegates here) and within 1e-9
    /// relative of `LeqaEstimator::estimate_reference`.
    [[nodiscard]] LeqaEstimate estimate(const CircuitProfile& profile) const;

    /// Batched parameter stage: estimate the profile at every (Nc, v) point
    /// against the engine's fixed geometry and gate delays, amortizing the
    /// shared work one scalar estimate() pays per point — the E[S_q] lookup
    /// is done once, and the critical-path pass runs lane-blocked (one CSR
    /// edge sweep updates up to 8 points' distances at a time).  Results
    /// are bit-identical to calling estimate() per point with params whose
    /// nc/v are overridden (the parity the tests assert).
    ///
    /// `before_point`, when set, is invoked once per point before that
    /// point's evaluation (sweep cancellation hooks); a throw from it
    /// aborts the batch.
    [[nodiscard]] std::vector<LeqaEstimate> estimate_batch(
        const CircuitProfile& profile, std::span<const ParameterPoint> points,
        const std::function<void()>& before_point = {}) const;

    /// Expected q-fold-covered surfaces E[S_q] for q = 1..terms (Eq. 4)
    /// over a compressed coverage table.  All histogram bins advance in
    /// lockstep through one SoA Eq. 18 recursion (`mathx::BinomialRowBatch`)
    /// — flat multiply/renormalize loops over contiguous lanes.
    [[nodiscard]] static std::vector<double> expected_surfaces(
        const CoverageHistogram& coverage, long long num_zones, long long terms);

    /// Pre-SoA evaluation: one scalar `BinomialTermRecursion` object per
    /// bin, advanced bin-by-bin.  Kept as the parity reference for the SoA
    /// kernel (tests assert bit-identity) and as the scalar side of the
    /// surfaces microbenchmarks.
    [[nodiscard]] static std::vector<double> expected_surfaces_reference(
        const CoverageHistogram& coverage, long long num_zones, long long terms);

    [[nodiscard]] const fabric::PhysicalParams& params() const { return params_; }
    [[nodiscard]] const LeqaOptions& options() const { return options_; }

    /// The topology instance the engine estimates on (rebuilt by
    /// set_params when the fabric description changes).
    [[nodiscard]] const fabric::Topology& topology() const { return *topology_; }

    /// Replace the parameter point (sweeps and the calibrator's v search).
    void set_params(const fabric::PhysicalParams& params);

    /// Lifetime counters of the E[S_q] cache (hits / recomputes / evictions).
    [[nodiscard]] const SurfaceCacheStats& surface_cache_stats() const {
        return surface_cache_.stats();
    }

private:
    /// Keyed LRU over E[S_q] vectors.  Capacity is small (an explore worker
    /// slice touches a handful of distinct geometries); lookup is a linear
    /// scan with move-to-front, which beats a hash map at this size.
    class SurfaceCache {
    public:
        struct Key {
            fabric::TopologyKind kind = fabric::TopologyKind::Grid;
            int a = -1;
            int b = -1;
            int side = -1;
            long long q_total = -1;
            long long terms = -1;
            [[nodiscard]] bool operator==(const Key&) const = default;
        };

        explicit SurfaceCache(std::size_t capacity) : capacity_(capacity) {}

        /// The cached vector for `key`, computing it with `make` on a miss
        /// (evicting the least recently used entry when full).  The
        /// returned reference is invalidated by the next get() call.
        const std::vector<double>& get(
            const Key& key, const std::function<std::vector<double>()>& make);

        [[nodiscard]] const SurfaceCacheStats& stats() const { return stats_; }

    private:
        struct Entry {
            Key key;
            std::vector<double> e_sq;
        };
        std::size_t capacity_;
        std::vector<Entry> entries_; ///< most recently used first
        SurfaceCacheStats stats_;
    };

    /// Default E[S_q] cache capacity: explore assigns whole geometry groups
    /// to workers, so a slice cycles through at most a few distinct keys.
    static constexpr std::size_t kSurfaceCacheCapacity = 8;

    fabric::PhysicalParams params_;
    LeqaOptions options_;
    std::shared_ptr<const fabric::Topology> topology_;
    mutable SurfaceCache surface_cache_{kSurfaceCacheCapacity};
};

} // namespace leqa::core

#include "core/explore.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <optional>
#include <thread>
#include <utility>

#include "util/error.h"
#include "util/thread_annotations.h"

namespace leqa::core {

namespace {

/// Width of the area-equivalent 1D row, validated against the int range
/// before the narrowing that used to silently wrap for large fabrics.
int line_width_for_area(long long area, const std::string& described_as) {
    if (area > static_cast<long long>(std::numeric_limits<int>::max())) {
        throw util::InputError(
            "line-topology area-equivalent width " + std::to_string(area) + " (from " +
            described_as + ") exceeds the int range; use a smaller fabric");
    }
    return static_cast<int>(area);
}

/// Apply one (topology, side) geometry choice onto a copy of the base
/// parameters.  side == 0 means "keep the base geometry" (internal
/// sentinel; user-supplied sides are validated >= 1 by the caller).
void apply_geometry(fabric::PhysicalParams& params, fabric::TopologyKind kind,
                    int side, const fabric::PhysicalParams& base) {
    params.topology = kind;
    if (side > 0) {
        if (kind == fabric::TopologyKind::Line) {
            // Area-equivalent row: a "side s" point is the s*s x 1 fabric.
            const long long area = static_cast<long long>(side) * side;
            params.width =
                line_width_for_area(area, "side " + std::to_string(side));
            params.height = 1;
        } else {
            params.width = side;
            params.height = side;
        }
    } else if (kind == fabric::TopologyKind::Line) {
        params.width = line_width_for_area(
            base.area(), "the " + std::to_string(base.width) + "x" +
                             std::to_string(base.height) + " base fabric");
        params.height = 1;
    } // else: grid/torus keep the base geometry
}

/// Contiguous [first, last) runs of identical (topology, width, height).
/// Geometry is the engine's E[S_q] memo key (together with the circuit), so
/// a worker that owns whole runs keeps hitting its memo across the (Nc, v)
/// points inside each run.
std::vector<std::pair<std::size_t, std::size_t>> geometry_groups(
    const std::vector<fabric::PhysicalParams>& configurations) {
    std::vector<std::pair<std::size_t, std::size_t>> groups;
    for (std::size_t i = 0; i < configurations.size(); ++i) {
        const fabric::PhysicalParams& params = configurations[i];
        if (!groups.empty()) {
            const fabric::PhysicalParams& previous = configurations[i - 1];
            if (params.topology == previous.topology &&
                params.width == previous.width && params.height == previous.height) {
                groups.back().second = i + 1;
                continue;
            }
        }
        groups.emplace_back(i, i + 1);
    }
    return groups;
}

/// The per-topology latency minima, in order of first appearance.
std::vector<TopologyBest> best_by_topology(const std::vector<SweepPoint>& points) {
    std::vector<TopologyBest> best;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const double latency = points[i].estimate.latency_us;
        if (!std::isfinite(latency)) continue;
        const fabric::TopologyKind kind = points[i].params.topology;
        auto it = std::find_if(best.begin(), best.end(),
                               [kind](const TopologyBest& entry) {
                                   return entry.kind == kind;
                               });
        if (it == best.end()) {
            best.push_back(TopologyBest{kind, i});
        } else if (latency < points[it->index].estimate.latency_us) {
            it->index = i;
        }
    }
    return best;
}

/// The latency/fabric-area Pareto front: indices of points no other point
/// beats on both axes (<= on both, < on one); duplicate (area, latency)
/// pairs keep the lowest index.  Sorted by area ascending, which makes the
/// latencies strictly decreasing.
std::vector<std::size_t> pareto_front_indices(const std::vector<SweepPoint>& points) {
    std::vector<std::size_t> order;
    order.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (std::isfinite(points[i].estimate.latency_us)) order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&points](std::size_t lhs, std::size_t rhs) {
        const long long area_l = points[lhs].params.area();
        const long long area_r = points[rhs].params.area();
        if (area_l != area_r) return area_l < area_r;
        const double latency_l = points[lhs].estimate.latency_us;
        const double latency_r = points[rhs].estimate.latency_us;
        if (latency_l != latency_r) return latency_l < latency_r;
        return lhs < rhs;
    });
    std::vector<std::size_t> front;
    double best_latency = std::numeric_limits<double>::infinity();
    for (const std::size_t index : order) {
        if (points[index].estimate.latency_us < best_latency) {
            front.push_back(index);
            best_latency = points[index].estimate.latency_us;
        }
    }
    return front;
}

} // namespace

const SweepPoint& ExplorationResult::best() const {
    LEQA_REQUIRE(has_best(), "exploration has no finite-latency point");
    return points.at(best_index);
}

std::vector<fabric::PhysicalParams> exploration_configurations(
    std::size_t num_qubits, const fabric::PhysicalParams& base,
    const ExplorationSpec& spec) {
    const std::vector<fabric::TopologyKind> kinds =
        spec.topologies.empty() ? std::vector<fabric::TopologyKind>{base.topology}
                                : spec.topologies;
    const bool explicit_sides = !spec.sides.empty();
    const std::vector<int> sides = explicit_sides ? spec.sides : std::vector<int>{0};
    const std::vector<int> capacities =
        spec.capacities.empty() ? std::vector<int>{base.nc} : spec.capacities;
    const std::vector<double> speeds =
        spec.speeds.empty() ? std::vector<double>{base.v} : spec.speeds;

    std::vector<fabric::PhysicalParams> configurations;
    configurations.reserve(kinds.size() * sides.size() * capacities.size() *
                           speeds.size());
    for (const fabric::TopologyKind kind : kinds) {
        for (const int side : sides) {
            if (explicit_sides) {
                LEQA_REQUIRE(side >= 1, "fabric side must be >= 1");
                if (static_cast<std::size_t>(side) * static_cast<std::size_t>(side) <
                    num_qubits) {
                    continue; // cannot host the circuit
                }
            }
            fabric::PhysicalParams geometry = base;
            apply_geometry(geometry, kind, explicit_sides ? side : 0, base);
            for (const int nc : capacities) {
                LEQA_REQUIRE(nc >= 1, "channel capacity must be >= 1");
                for (const double v : speeds) {
                    LEQA_REQUIRE(v > 0.0, "speed must be positive");
                    fabric::PhysicalParams params = geometry;
                    params.nc = nc;
                    params.v = v;
                    params.validate();
                    configurations.push_back(params);
                }
            }
        }
    }
    return configurations;
}

ExplorationResult evaluate_configurations(
    const CircuitProfile& profile,
    const std::vector<fabric::PhysicalParams>& configurations,
    const LeqaOptions& options, std::size_t threads,
    const std::function<void()>& between_points) {
    LEQA_REQUIRE(!configurations.empty(), "sweep has no feasible configurations");

    const std::vector<std::pair<std::size_t, std::size_t>> groups =
        geometry_groups(configurations);
    std::size_t workers = threads == 0
                              ? std::max<std::size_t>(
                                    1, std::thread::hardware_concurrency())
                              : threads;
    workers = std::max<std::size_t>(1, std::min(workers, groups.size()));

    ExplorationResult result;
    result.points.resize(configurations.size());
    result.threads_used = workers;

    // Every worker owns whole geometry groups (cyclic assignment) and its
    // own engine; slots are disjoint, so no synchronization is needed on
    // the results and the output is bit-identical to the serial order.
    // Each group shares one fabric geometry and varies only (Nc, v), which
    // is exactly the engine's batch axis: the whole group becomes a single
    // estimate_batch call that amortizes the E[S_q] lookup and runs the
    // critical-path pass lane-blocked.
    struct AbortRequested {}; // private unwind signal, never escapes run_slice
    std::atomic<bool> abort{false};
    /// First failure wins; the slot is the workers' only cross-thread write
    /// target (result.points slots are disjoint by construction), so it is
    /// the one piece of exploration state that needs a capability.
    struct FailureSlot {
        util::Mutex mutex;
        std::exception_ptr first LEQA_GUARDED_BY(mutex);
    };
    FailureSlot failure;
    // One slot per worker, summed after the join: the totals depend on how
    // the groups were partitioned (they are effectiveness counters, not
    // estimates), but for a fixed thread count they are deterministic.
    std::vector<SurfaceCacheStats> worker_surface(workers);
    const auto run_slice = [&](std::size_t worker) {
        try {
            std::optional<EstimationEngine> engine;
            std::vector<ParameterPoint> batch;
            for (std::size_t g = worker; g < groups.size(); g += workers) {
                const auto [first, last] = groups[g];
                if (!engine.has_value()) {
                    engine.emplace(configurations[first], options);
                } else {
                    engine->set_params(configurations[first]);
                }
                batch.clear();
                for (std::size_t i = first; i < last; ++i) {
                    batch.push_back(
                        ParameterPoint{configurations[i].nc, configurations[i].v});
                }
                // The cancellation contract is per point, not per batch:
                // the engine invokes this before each point's evaluation.
                const auto before_point = [&] {
                    if (abort.load(std::memory_order_relaxed)) throw AbortRequested{};
                    if (between_points) between_points();
                };
                std::vector<LeqaEstimate> estimates =
                    engine->estimate_batch(profile, batch, before_point);
                for (std::size_t i = first; i < last; ++i) {
                    result.points[i] = SweepPoint{configurations[i],
                                                  std::move(estimates[i - first])};
                }
            }
            if (engine.has_value()) worker_surface[worker] = engine->surface_cache_stats();
        } catch (const AbortRequested&) {
            // Another worker failed or cancelled; our partial results are
            // discarded with the grid.
        } catch (...) {
            const util::MutexLock lock(failure.mutex);
            if (failure.first == nullptr) failure.first = std::current_exception();
            abort.store(true, std::memory_order_relaxed);
        }
    };

    if (workers == 1) {
        run_slice(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers - 1);
        try {
            for (std::size_t w = 1; w < workers; ++w) {
                pool.emplace_back(run_slice, w);
            }
        } catch (...) {
            // A failed spawn (std::system_error under thread pressure) must
            // not unwind past joinable threads — that would std::terminate.
            // Spawned workers cover only their own slices, so stop them and
            // surface the failure instead of returning a partial grid.
            abort.store(true, std::memory_order_relaxed);
            for (std::thread& thread : pool) thread.join();
            throw;
        }
        run_slice(0);
        for (std::thread& thread : pool) thread.join();
    }
    // A cancelled/failed exploration publishes nothing, not a partial grid.
    // The workers are joined, but the capability contract holds everywhere:
    // read the slot under its lock.
    std::exception_ptr first_failure;
    {
        const util::MutexLock lock(failure.mutex);
        first_failure = failure.first;
    }
    if (first_failure != nullptr) std::rethrow_exception(first_failure);

    for (const SurfaceCacheStats& stats : worker_surface) {
        result.surface_cache.hits += stats.hits;
        result.surface_cache.recomputes += stats.recomputes;
        result.surface_cache.evictions += stats.evictions;
    }
    result.best_index = best_point_index(result.points, &result.non_finite_points);
    result.best_per_topology = best_by_topology(result.points);
    result.pareto_front = pareto_front_indices(result.points);
    return result;
}

ExplorationResult explore(const CircuitProfile& profile,
                          const fabric::PhysicalParams& base,
                          const ExplorationSpec& spec, const LeqaOptions& options,
                          const std::function<void()>& between_points) {
    return evaluate_configurations(
        profile, exploration_configurations(profile.num_qubits, base, spec), options,
        spec.threads, between_points);
}

} // namespace leqa::core

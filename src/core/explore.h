/// \file explore.h
/// \brief Parallel multi-dimensional design-space exploration.
///
/// The paper positions LEQA as the inner loop of design-space exploration
/// ("size of the fabric ... can be changed to find the optimal size"), and
/// the companion ion-trap mapping work explores a cross-product of fabric
/// knobs rather than one axis at a time.  `explore` evaluates the full
/// cross-product of an `ExplorationSpec` — topology kinds x fabric sides x
/// channel capacities Nc x qubit speeds v, each axis defaulting to the base
/// parameter point — over a shared thread pool:
///
///   - one `EstimationEngine` per worker (the engine's E[S_q] memo is
///     documented thread-unsafe), with points partitioned per-thread in
///     whole *geometry groups* (runs of identical topology/width/height) so
///     a worker's slice of the (Nc, v) axes keeps hitting its engine memo;
///   - cooperative cancellation: `between_points` runs before every point
///     on whichever worker owns it, an exception thrown from it (e.g. a
///     `RunControl` checkpoint) aborts the other workers at their next
///     checkpoint and is rethrown — a cancelled exploration publishes no
///     partial result;
///   - results are written into a preallocated slot per point, so the
///     output is bit-identical to a serial evaluation of the same
///     configurations regardless of the thread count.
///
/// The 1-D `core::sweep_*` helpers are thin wrappers over single-axis
/// specs, so this file owns the only evaluation loop.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/engine.h"
#include "core/leqa.h"
#include "core/sweep.h"
#include "fabric/params.h"

namespace leqa::core {

/// Axes of a multi-dimensional exploration.  An empty axis keeps the base
/// parameter's value; the evaluated set is the full cross-product (axis
/// order topology, side, Nc, v — v innermost).  A side s means an s x s
/// fabric on grid/torus and the area-equivalent s*s x 1 row on a line; with
/// no side axis the base geometry is kept (a line flattens the base area to
/// an (a*b) x 1 row).  Sides too small to host the circuit's qubits are
/// skipped, as in `sweep_fabric_sides`.
struct ExplorationSpec {
    std::vector<fabric::TopologyKind> topologies; ///< empty: base topology
    std::vector<int> sides;                       ///< empty: base geometry
    std::vector<int> capacities;                  ///< empty: base Nc
    std::vector<double> speeds;                   ///< empty: base v
    std::size_t threads = 1; ///< worker threads; 0 = hardware concurrency

    [[nodiscard]] bool operator==(const ExplorationSpec&) const = default;
};

/// The latency-minimal point of one topology kind.
struct TopologyBest {
    fabric::TopologyKind kind = fabric::TopologyKind::Grid;
    std::size_t index = 0; ///< into ExplorationResult::points
};

/// Everything an exploration produces.  `points` is in deterministic
/// cross-product order; `best_index` / `best_per_topology` consider only
/// points with finite latency (`non_finite_points` counts the skipped
/// ones); `pareto_front` holds the indices of the latency/fabric-area
/// Pareto front — points no other point beats on both area and latency
/// (ties keep the lowest index) — sorted by area ascending, i.e. latency
/// strictly decreasing.
struct ExplorationResult {
    std::vector<SweepPoint> points;
    std::size_t best_index = kNoBestPoint; ///< kNoBestPoint if none finite
    std::size_t non_finite_points = 0;
    std::vector<TopologyBest> best_per_topology; ///< first-appearance order
    std::vector<std::size_t> pareto_front;       ///< fabric-area ascending
    std::size_t threads_used = 1;
    /// Summed E[S_q] cache counters of the workers' engines (see
    /// SweepResult::surface_cache for the caveat on thread-count effects).
    SurfaceCacheStats surface_cache;

    [[nodiscard]] bool has_best() const { return best_index != kNoBestPoint; }
    /// Throws InputError when no point has a finite latency.
    [[nodiscard]] const SweepPoint& best() const;
};

/// Expand the cross-product of \p spec over \p base into concrete parameter
/// points (cross-product order, infeasible sides skipped).  Line-topology
/// area-equivalent widths are computed in 64-bit and validated against the
/// int range: a side whose s*s (or a base whose a*b) does not fit throws
/// InputError naming the offending side instead of silently wrapping.
[[nodiscard]] std::vector<fabric::PhysicalParams> exploration_configurations(
    std::size_t num_qubits, const fabric::PhysicalParams& base,
    const ExplorationSpec& spec);

/// The shared evaluation loop: estimate \p profile at every configuration
/// on \p threads workers (0 = hardware concurrency; the pool is capped at
/// the number of geometry groups).  Throws InputError("sweep has no
/// feasible configurations") on an empty list.  See the file comment for
/// the partitioning, cancellation, and determinism contract.
[[nodiscard]] ExplorationResult evaluate_configurations(
    const CircuitProfile& profile,
    const std::vector<fabric::PhysicalParams>& configurations,
    const LeqaOptions& options = {}, std::size_t threads = 1,
    const std::function<void()>& between_points = {});

/// Explore the full cross-product of \p spec over \p base.
[[nodiscard]] ExplorationResult explore(
    const CircuitProfile& profile, const fabric::PhysicalParams& base,
    const ExplorationSpec& spec, const LeqaOptions& options = {},
    const std::function<void()>& between_points = {});

} // namespace leqa::core

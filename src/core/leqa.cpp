#include "core/leqa.h"

#include <algorithm>
#include <cmath>

#include "core/engine.h"
#include "mathx/binomial.h"
#include "mathx/queueing.h"
#include "mathx/tsp.h"
#include "util/error.h"

namespace leqa::core {

LeqaEstimator::LeqaEstimator(const fabric::PhysicalParams& params, LeqaOptions options)
    : params_(params), options_(options) {
    params_.validate();
    LEQA_REQUIRE(options_.sq_terms >= 1, "sq_terms must be >= 1");
}

void LeqaEstimator::set_params(const fabric::PhysicalParams& params) {
    params.validate();
    params_ = params;
}

int LeqaEstimator::zone_side(double zone_area_b, int a, int b) {
    LEQA_REQUIRE(zone_area_b >= 0.0, "zone area must be non-negative");
    const int side = static_cast<int>(std::ceil(std::sqrt(zone_area_b) - 1e-12));
    return std::clamp(side, 1, std::min(a, b));
}

double LeqaEstimator::coverage_probability(int x, int y, int a, int b, int zone_side) {
    LEQA_REQUIRE(a >= 1 && b >= 1, "fabric dimensions must be >= 1");
    LEQA_REQUIRE(x >= 1 && x <= a && y >= 1 && y <= b, "ULB position out of range");
    LEQA_REQUIRE(zone_side >= 1 && zone_side <= std::min(a, b),
                 "zone side must be in [1, min(a, b)]");
    const int s = zone_side;
    // Eq. 5: placements of an s x s zone covering (x, y), over all
    // placements.  The min{} terms handle fabric-boundary truncation.
    const double nx = std::min({x, a - x + 1, s, a - s + 1});
    const double ny = std::min({y, b - y + 1, s, b - s + 1});
    const double denom = static_cast<double>(a - s + 1) * static_cast<double>(b - s + 1);
    return nx * ny / denom;
}

double LeqaEstimator::expected_surface(const std::vector<double>& coverage,
                                       long long num_zones, long long q) {
    LEQA_REQUIRE(num_zones >= 0, "zone count must be non-negative");
    LEQA_REQUIRE(q >= 0 && q <= num_zones, "q must be in [0, Q]");
    double total = 0.0;
    for (const double p : coverage) {
        total += mathx::binomial_pmf(num_zones, q, p);
    }
    return total;
}

LeqaEstimate LeqaEstimator::estimate(const circuit::Circuit& ft_circuit) const {
    LEQA_REQUIRE(ft_circuit.is_ft(),
                 "LEQA estimates FT circuits; run synth::ft_synthesize first");
    const qodg::Qodg graph(ft_circuit);
    const iig::Iig iig(ft_circuit);
    return estimate(graph, iig);
}

LeqaEstimate LeqaEstimator::estimate(const qodg::Qodg& graph, const iig::Iig& iig) const {
    const EstimationEngine engine(params_, options_);
    return engine.estimate(CircuitProfile::build(graph, iig));
}

LeqaEstimate LeqaEstimator::estimate_reference(const qodg::Qodg& graph,
                                               const iig::Iig& iig) const {
    LEQA_REQUIRE(params_.topology == fabric::TopologyKind::Grid,
                 "estimate_reference is the pre-topology golden path and only "
                 "evaluates grid fabrics; use LeqaEstimator::estimate (the "
                 "staged engine) for torus/line topologies");
    LeqaEstimate out;
    out.num_qubits = iig.num_qubits();
    out.num_ops = graph.num_ops();
    out.l_one_qubit_avg_us = params_.one_qubit_routing_latency_us();

    const long long q_total = static_cast<long long>(iig.num_qubits());
    const int a = params_.width;
    const int b = params_.height;

    // --- lines 1-3: IIG statistics and average zone area B (Eqs. 6-7) ----
    out.zone_area_b = iig.average_zone_area();

    // --- lines 4-8: d_uncongest (Eqs. 12, 15, 16) --------------------------
    {
        double numerator = 0.0;
        double denominator = 0.0;
        for (circuit::Qubit i = 0; i < iig.num_qubits(); ++i) {
            const double w = static_cast<double>(iig.adjacent_weight(i));
            if (w <= 0.0) continue; // no interactions: no presence-zone travel
            const double m = static_cast<double>(iig.degree(i));
            const double l_ham = mathx::expected_hamiltonian_path(iig.zone_area(i), m);
            const double d_uncongest_i = l_ham / (params_.v * m); // Eq. 16
            numerator += w * d_uncongest_i;
            denominator += w;
        }
        out.d_uncongest_us = denominator > 0.0 ? numerator / denominator : 0.0;
    }

    // --- lines 9-13: coverage probabilities P_xy (Eq. 5) -------------------
    // --- lines 14-17: E[S_q] (Eq. 4) and d_q (Eq. 8) -----------------------
    // --- line 18: L_CNOT^avg (Eq. 2) ---------------------------------------
    if (q_total > 0 && out.d_uncongest_us > 0.0) {
        const int side = zone_side(out.zone_area_b, a, b);
        std::vector<double> coverage;
        coverage.reserve(static_cast<std::size_t>(a) * static_cast<std::size_t>(b));
        for (int x = 1; x <= a; ++x) {
            for (int y = 1; y <= b; ++y) {
                coverage.push_back(coverage_probability(x, y, a, b, side));
            }
        }

        const long long terms =
            options_.exact_sq ? q_total
                              : std::min<long long>(q_total, options_.sq_terms);
        out.e_sq.reserve(static_cast<std::size_t>(terms));
        out.d_q.reserve(static_cast<std::size_t>(terms));
        double weighted_delay = 0.0;
        for (long long q = 1; q <= terms; ++q) {
            const double surface = expected_surface(coverage, q_total, q);
            const double delay = mathx::congested_delay(
                static_cast<double>(q), static_cast<double>(params_.nc),
                out.d_uncongest_us);
            out.e_sq.push_back(surface);
            out.d_q.push_back(delay);
            out.covered_area += surface;
            weighted_delay += surface * delay;
        }
        out.l_cnot_avg_us = out.covered_area > 0.0 ? weighted_delay / out.covered_area : 0.0;
    }

    // --- lines 19-20: update QODG delays, critical path, D (Eq. 1) ---------
    const std::vector<double> delays =
        graph.node_delays([&](circuit::GateKind kind) {
            const double routing = kind == circuit::GateKind::Cnot
                                       ? out.l_cnot_avg_us
                                       : out.l_one_qubit_avg_us;
            return params_.delay_us(kind) + routing;
        });
    const qodg::LongestPath lp = graph.longest_path(delays);
    const std::vector<qodg::NodeId> path = graph.critical_path(lp);
    out.critical_census = graph.census(path);
    out.critical_cnots = out.critical_census.of(circuit::GateKind::Cnot);
    out.critical_one_qubit = out.critical_census.total_ops - out.critical_cnots;
    out.latency_us = lp.length;

    for (std::size_t k = 0; k < circuit::kGateKindCount; ++k) {
        const auto kind = static_cast<circuit::GateKind>(k);
        const std::size_t count = out.critical_census.by_kind[k];
        if (count > 0) {
            out.critical_gate_delay_us += static_cast<double>(count) * params_.delay_us(kind);
        }
    }
    return out;
}

} // namespace leqa::core

/// \file leqa.h
/// \brief LEQA: the fast latency estimator (the paper's contribution).
///
/// Implements Algorithm 1 end to end:
///
///   1.  build the interaction intensity graph IIG(V,E);
///   2.  per-qubit neighborhood counts M_i and zone areas B_i (Eq. 6);
///   3.  average zone area B (Eq. 7);
///   4-7.  expected Hamiltonian path lengths E[l_ham,i] (Eq. 15) and
///         uncongested per-op routing latencies d_uncongest,i (Eq. 16);
///   8.  weighted-average d_uncongest (Eq. 12);
///   9-13.  per-ULB coverage probabilities P_xy (Eq. 5);
///   14-17.  expected q-fold-covered surfaces E[S_q] (Eq. 4, log-space
///           binomials; truncated at `sq_terms`, 20 by default as in the
///           paper) and congestion-aware delays d_q (Eq. 8, M/M/1);
///   18. the average CNOT routing latency L_CNOT^avg (Eq. 2);
///   19. update the QODG with per-kind delays d_g + L_g^avg and recompute
///       the critical path;
///   20. the estimated latency D (Eq. 1).
///
/// Runtime is O(|V| + |E| + T·A·logQ) with T = min(Q, sq_terms) (Eq. 17).
#pragma once

#include <vector>

#include "circuit/circuit.h"
#include "fabric/params.h"
#include "iig/iig.h"
#include "qodg/qodg.h"

namespace leqa::core {

struct LeqaOptions {
    /// Number of E[S_q] terms evaluated (the paper computes the first 20).
    int sq_terms = 20;
    /// Evaluate all Q terms regardless of sq_terms (the ablation reference).
    bool exact_sq = false;
};

/// Full estimator output, including every intermediate the paper defines —
/// useful for the breakdown report, the benches, and the tests.
struct LeqaEstimate {
    double latency_us = 0.0;            ///< D (Eq. 1)

    // Routing model intermediates.
    double zone_area_b = 1.0;           ///< B (Eq. 7)
    double d_uncongest_us = 0.0;        ///< d_uncongest (Eq. 12)
    double l_cnot_avg_us = 0.0;         ///< L_CNOT^avg (Eq. 2)
    double l_one_qubit_avg_us = 0.0;    ///< L_g^avg = 2 Tmove
    std::vector<double> e_sq;           ///< E[S_q], index i => q = i+1
    std::vector<double> d_q;            ///< d_q,   index i => q = i+1
    double covered_area = 0.0;          ///< sum of computed E[S_q]

    // Critical-path census (N^critical of Eq. 1).
    qodg::PathCensus critical_census;
    std::size_t critical_cnots = 0;
    std::size_t critical_one_qubit = 0;
    double critical_gate_delay_us = 0.0; ///< sum of d_g on the path (no routing)

    std::size_t num_qubits = 0;
    std::size_t num_ops = 0;

    /// Latency in seconds (the unit of the paper's Table 2).
    [[nodiscard]] double latency_seconds() const { return latency_us * 1e-6; }
};

class LeqaEstimator {
public:
    explicit LeqaEstimator(const fabric::PhysicalParams& params, LeqaOptions options = {});

    /// Estimate from an FT circuit (builds QODG and IIG internally).
    [[nodiscard]] LeqaEstimate estimate(const circuit::Circuit& ft_circuit) const;

    /// Estimate from prebuilt graphs (avoids rebuilding during calibration
    /// sweeps).  `iig.num_qubits()` supplies Q.  Delegates to the staged
    /// `EstimationEngine` (see engine.h), building a throwaway
    /// `CircuitProfile`; sweep-heavy callers should build the profile once
    /// and drive the engine directly.
    [[nodiscard]] LeqaEstimate estimate(const qodg::Qodg& graph, const iig::Iig& iig) const;

    /// The pre-refactor evaluation of Algorithm 1: full a x b coverage
    /// table, per-cell log-space binomial PMF.  O(a*b*T) per call — kept as
    /// the golden path the engine parity tests compare against.  Grid
    /// topology only (throws InputError otherwise); the staged engine is
    /// the topology-generic path.
    [[nodiscard]] LeqaEstimate estimate_reference(const qodg::Qodg& graph,
                                                  const iig::Iig& iig) const;

    [[nodiscard]] const fabric::PhysicalParams& params() const { return params_; }
    [[nodiscard]] const LeqaOptions& options() const { return options_; }

    /// Replace the physical parameters (used by the calibrator's v sweep).
    void set_params(const fabric::PhysicalParams& params);

    // --- exposed model pieces (unit-tested directly) -----------------------

    /// Eq. 5: probability that ULB (x, y) (1-based) is covered by one
    /// randomly placed zone of side `zone_side` on an a x b fabric.
    [[nodiscard]] static double coverage_probability(int x, int y, int a, int b,
                                                     int zone_side);

    /// Zone side ceil(sqrt(B)) clamped to [1, min(a, b)].
    [[nodiscard]] static int zone_side(double zone_area_b, int a, int b);

    /// Eq. 4 for one q: expected surface covered by exactly q zones.
    [[nodiscard]] static double expected_surface(
        const std::vector<double>& coverage, long long num_zones, long long q);

private:
    fabric::PhysicalParams params_;
    LeqaOptions options_;
};

} // namespace leqa::core

#include "core/optimize.h"

#include <cmath>
#include <utility>

#include "core/placed.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace leqa::core {

OptimizeMode parse_optimize_mode(const std::string& name) {
    if (name == "anneal") return OptimizeMode::Anneal;
    if (name == "greedy") return OptimizeMode::Greedy;
    throw util::InputError("unknown optimize mode '" + name +
                           "' (expected anneal or greedy)");
}

std::string optimize_mode_name(OptimizeMode mode) {
    return mode == OptimizeMode::Anneal ? "anneal" : "greedy";
}

OptimizeResult optimize_placement(const qodg::Qodg& graph,
                                  const circuit::Circuit& circ,
                                  const fabric::PhysicalParams& params,
                                  std::vector<fabric::UlbId> initial_homes,
                                  const OptimizeOptions& options,
                                  const std::function<void()>& between_moves) {
    LEQA_REQUIRE(options.max_moves >= 1, "move budget must be >= 1");
    LEQA_REQUIRE(options.max_seconds >= 0.0, "time budget must be >= 0");
    LEQA_REQUIRE(options.relocate_fraction >= 0.0 && options.relocate_fraction <= 1.0,
                 "relocate fraction must be in [0, 1]");
    LEQA_REQUIRE(options.initial_temperature_frac >= 0.0 &&
                     options.final_temperature_frac >= 0.0 &&
                     options.final_temperature_frac <=
                         options.initial_temperature_frac,
                 "temperature fractions must satisfy 0 <= final <= initial");

    const util::Stopwatch clock;
    PlacedTimer timer(graph, circ, params, std::move(initial_homes));

    OptimizeResult result;
    result.initial_homes = timer.homes();
    result.homes = timer.homes();
    result.initial_latency_us = timer.latency_us();
    result.final_latency_us = timer.latency_us();

    const std::size_t nq = timer.num_qubits();
    std::vector<fabric::UlbId> free_ulbs;
    for (std::size_t ulb = 0; ulb < timer.num_ulbs(); ++ulb) {
        const auto id = static_cast<fabric::UlbId>(ulb);
        if (timer.occupant(id) == PlacedTimer::kNoQubit) free_ulbs.push_back(id);
    }
    const bool can_swap = nq >= 2;
    const bool can_relocate = nq >= 1 && !free_ulbs.empty();
    if (!can_swap && !can_relocate) {
        result.seconds = clock.seconds();
        return result;
    }

    util::Rng rng(options.seed);
    double latency = timer.latency_us();
    double best_latency = latency;

    // Geometric cooling from T0 to T_end over the move budget; a pure
    // function of the move index, so runs are replayable.
    const double t0 = options.initial_temperature_frac * result.initial_latency_us;
    const double t_end = options.final_temperature_frac * result.initial_latency_us;
    const double cool = (options.max_moves > 1 && t0 > 0.0 && t_end > 0.0)
                            ? std::pow(t_end / t0,
                                       1.0 / static_cast<double>(options.max_moves - 1))
                            : 1.0;
    const bool anneal = options.mode == OptimizeMode::Anneal;
    double temperature = t0;

    for (std::size_t move = 0; move < options.max_moves; ++move, temperature *= cool) {
        if ((move & 255u) == 0u) {
            if (between_moves) between_moves();
            if (options.max_seconds > 0.0 && clock.seconds() >= options.max_seconds) {
                break;
            }
        }
        ++result.moves_attempted;

        const bool relocate =
            can_relocate && (!can_swap || rng.uniform() < options.relocate_fraction);
        // The Metropolis u is drawn before the bound screen: rejecting on
        // the bound with the same u the full test would use keeps the
        // accept distribution identical to a screen-free search.
        const double u = rng.uniform();

        std::size_t q1 = 0;
        std::size_t q2 = 0;
        std::size_t free_index = 0;
        fabric::UlbId from = 0;
        fabric::UlbId to = 0;
        double bound = 0.0;
        if (relocate) {
            q1 = rng.index(nq);
            free_index = rng.index(free_ulbs.size());
            from = timer.homes()[q1];
            to = free_ulbs[free_index];
            bound = timer.relocate_lower_bound(q1, to);
        } else {
            q1 = rng.index(nq);
            q2 = rng.index(nq - 1);
            if (q2 >= q1) ++q2;
            bound = timer.swap_lower_bound(q1, q2);
        }

        const double bound_delta = bound - latency;
        if (anneal ? (bound_delta > 0.0 &&
                      (temperature <= 0.0 ||
                       u >= std::exp(-bound_delta / temperature)))
                   : bound_delta >= 0.0) {
            ++result.moves_fast_rejected;
            continue;
        }

        const double moved = relocate ? timer.apply_relocate(q1, to)
                                      : timer.apply_swap(q1, q2);
        result.nodes_retimed += timer.last_retimed_nodes();
        const double delta = moved - latency;
        const bool accept =
            anneal ? (delta <= 0.0 ||
                      (temperature > 0.0 && u < std::exp(-delta / temperature)))
                   : delta < 0.0;
        if (accept) {
            ++result.moves_accepted;
            latency = moved;
            if (relocate) free_ulbs[free_index] = from;
            if (latency < best_latency) {
                best_latency = latency;
                result.homes = timer.homes();
            }
        } else {
            // The inverse move restores every arrival bit-for-bit.
            (void)(relocate ? timer.apply_relocate(q1, from)
                            : timer.apply_swap(q1, q2));
            result.nodes_retimed += timer.last_retimed_nodes();
        }
    }

    // Debug stage-boundary contract: after the whole move sequence the
    // incremental timer still agrees bit-for-bit with a from-scratch
    // evaluation (compiled out of Release).
    LEQA_DCHECK_OK(timer.audit());

    result.final_latency_us = best_latency;
    result.improved = best_latency < result.initial_latency_us;
    result.seconds = clock.seconds();
    return result;
}

} // namespace leqa::core

/// \file optimize.h
/// \brief Latency-driven placement optimization over the placed timing
///        model (see placed.h).
///
/// `optimize_placement` runs a seeded simulated-annealing (or greedy
/// refinement) search over swap + relocate moves, with `core::PlacedTimer`
/// as the incremental cost evaluator: a candidate move is first screened
/// against the O(1)-per-gate latency lower bound (most non-improving moves
/// die there without touching the graph), survivors are applied through
/// the affected-cone re-timing, and rejected survivors are reverted by
/// applying the inverse move — which restores every arrival bit-for-bit.
///
/// Everything is deterministic for a fixed seed: the move stream comes
/// from `util::Rng` (xoshiro256**, the same generator behind
/// `qspr::PlacementStrategy::Random`), the Metropolis u is drawn *before*
/// the bound screen so the fast path cannot shift the accept distribution,
/// and the cooling schedule is a pure function of the move index.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "fabric/geometry.h"
#include "fabric/params.h"
#include "qodg/qodg.h"

namespace leqa::core {

enum class OptimizeMode {
    Anneal, ///< Metropolis accepts with geometric cooling
    Greedy, ///< strictly-improving moves only
};

[[nodiscard]] OptimizeMode parse_optimize_mode(const std::string& name);
[[nodiscard]] std::string optimize_mode_name(OptimizeMode mode);

struct OptimizeOptions {
    std::size_t max_moves = 20000; ///< candidate-move budget
    double max_seconds = 0.0;      ///< wall-clock budget (0 = unbounded)
    std::uint64_t seed = 1;
    OptimizeMode mode = OptimizeMode::Anneal;
    /// Initial/final temperature as fractions of the initial latency; the
    /// schedule cools geometrically from T0 to T_end over max_moves.
    double initial_temperature_frac = 0.02;
    double final_temperature_frac = 1e-5;
    /// Probability a candidate move is a relocate-to-free-ULB (vs a swap).
    double relocate_fraction = 0.25;

    [[nodiscard]] bool operator==(const OptimizeOptions&) const = default;
};

struct OptimizeResult {
    std::vector<fabric::UlbId> homes;         ///< best placement found
    std::vector<fabric::UlbId> initial_homes; ///< the starting placement
    double initial_latency_us = 0.0;
    double final_latency_us = 0.0; ///< placed latency of `homes`
    bool improved = false;         ///< final < initial (strict)
    std::size_t moves_attempted = 0;
    std::size_t moves_accepted = 0;
    /// Candidates killed by the PlacedTimer bound alone (no re-timing).
    std::size_t moves_fast_rejected = 0;
    /// Total nodes re-relaxed by incremental re-timing (cone-size sum over
    /// applied moves, including reverts).
    std::size_t nodes_retimed = 0;
    double seconds = 0.0;
};

/// Optimize the placement of \p circ (the FT circuit \p graph was built
/// from) on the fabric of \p params, starting from \p initial_homes.
/// \p between_moves, when set, is invoked every few hundred moves — the
/// cancellation hook (it may throw to abort the search).
[[nodiscard]] OptimizeResult optimize_placement(
    const qodg::Qodg& graph, const circuit::Circuit& circ,
    const fabric::PhysicalParams& params, std::vector<fabric::UlbId> initial_homes,
    const OptimizeOptions& options = {},
    const std::function<void()>& between_moves = {});

} // namespace leqa::core

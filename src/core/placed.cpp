#include "core/placed.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "util/error.h"

namespace leqa::core {

namespace {

constexpr std::size_t kNoPartner = static_cast<std::size_t>(-1);

/// Relative tolerance of the candidate-bound arithmetic: criticality is
/// over-approximated and the through-bound shaved by this factor, so IEEE
/// rounding can only weaken the bound, never make it unsound.
constexpr double kRelSlop = 1e-9;

double one_qubit_delay(const fabric::PhysicalParams& params, circuit::GateKind kind) {
    return params.delay_us(kind) + params.one_qubit_routing_latency_us();
}

} // namespace

std::vector<double> placed_node_delays(const qodg::Qodg& graph,
                                       const circuit::Circuit& circ,
                                       const fabric::Topology& topology,
                                       const fabric::PhysicalParams& params,
                                       std::span<const fabric::UlbId> homes) {
    LEQA_REQUIRE(graph.num_ops() == circ.size(),
                 "QODG was not built from this circuit");
    LEQA_REQUIRE(homes.size() == circ.num_qubits(),
                 "one home ULB per logical qubit required");
    std::vector<double> delays(graph.num_nodes(), 0.0);
    for (std::size_t i = 0; i < circ.size(); ++i) {
        const circuit::Gate& gate = circ.gate(i);
        const qodg::NodeId node = graph.node_of_gate(i);
        if (gate.kind == circuit::GateKind::Cnot) {
            const int hops = topology.distance(
                topology.ulb_coord(homes[gate.controls.at(0)]),
                topology.ulb_coord(homes[gate.targets.at(0)]));
            delays[node] =
                params.d_cnot_us + params.t_move_us * static_cast<double>(hops);
        } else {
            delays[node] = one_qubit_delay(params, gate.kind);
        }
    }
    return delays;
}

PlacedTimer::PlacedTimer(const qodg::Qodg& graph, const circuit::Circuit& circ,
                         const fabric::PhysicalParams& params,
                         std::vector<fabric::UlbId> homes)
    : graph_(&graph),
      topology_(fabric::make_topology(params)),
      t_move_us_(params.t_move_us),
      d_cnot_us_(params.d_cnot_us),
      homes_(std::move(homes)) {
    params.validate();
    LEQA_REQUIRE(circ.is_ft(), "PlacedTimer prices FT circuits only");
    LEQA_REQUIRE(graph.num_ops() == circ.size(),
                 "QODG was not built from this circuit");
    LEQA_REQUIRE(homes_.size() == circ.num_qubits(),
                 "one home ULB per logical qubit required");

    const std::size_t ulbs = topology_->num_ulbs();
    occupant_.assign(ulbs, kNoQubit);
    coords_.resize(homes_.size());
    for (std::size_t q = 0; q < homes_.size(); ++q) {
        const fabric::UlbId home = homes_[q];
        LEQA_REQUIRE(home >= 0 && static_cast<std::size_t>(home) < ulbs,
                     "home ULB out of range");
        LEQA_REQUIRE(occupant_[static_cast<std::size_t>(home)] == kNoQubit,
                     "two qubits share a home ULB");
        occupant_[static_cast<std::size_t>(home)] = static_cast<std::int32_t>(q);
        coords_[q] = topology_->ulb_coord(home);
    }

    // Per-qubit -> CNOT-node CSR index + the CNOT operand tables.
    const std::size_t n = graph.num_nodes();
    cnot_control_.assign(n, 0);
    cnot_target_.assign(n, 0);
    qubit_cnot_offsets_.assign(homes_.size() + 1, 0);
    delay_.assign(n, 0.0);
    for (std::size_t i = 0; i < circ.size(); ++i) {
        const circuit::Gate& gate = circ.gate(i);
        const qodg::NodeId node = graph.node_of_gate(i);
        if (gate.kind == circuit::GateKind::Cnot) {
            cnot_control_[node] = gate.controls.at(0);
            cnot_target_[node] = gate.targets.at(0);
            ++qubit_cnot_offsets_[gate.controls[0] + 1];
            ++qubit_cnot_offsets_[gate.targets[0] + 1];
            delay_[node] = cnot_delay(node);
        } else {
            delay_[node] = one_qubit_delay(params, gate.kind);
        }
    }
    for (std::size_t q = 0; q < homes_.size(); ++q) {
        qubit_cnot_offsets_[q + 1] += qubit_cnot_offsets_[q];
    }
    qubit_cnot_nodes_.resize(qubit_cnot_offsets_.back());
    std::vector<std::uint32_t> cursor(qubit_cnot_offsets_.begin(),
                                      qubit_cnot_offsets_.end() - 1);
    for (std::size_t i = 0; i < circ.size(); ++i) {
        const circuit::Gate& gate = circ.gate(i);
        if (gate.kind != circuit::GateKind::Cnot) continue;
        const qodg::NodeId node = graph.node_of_gate(i);
        qubit_cnot_nodes_[cursor[gate.controls[0]]++] = node;
        qubit_cnot_nodes_[cursor[gate.targets[0]]++] = node;
    }

    // Full forward pass: the pull-based gather that is bit-identical to the
    // push-based graph::longest_path kernel (see qodg.h).
    arrival_.assign(n, -1.0);
    arrival_[0] = delay_[0];
    for (qodg::NodeId v = 1; v < n; ++v) {
        double acc = -1.0;
        for (const qodg::NodeId u : graph.predecessors(v)) {
            const double du = arrival_[u];
            if (du < 0.0) continue;
            const double candidate = du + delay_[v];
            if (candidate > acc) acc = candidate;
        }
        arrival_[v] = acc;
    }
    latency_ = arrival_[graph.end()];

    // Full backward pass: tail[v] = longest v -> end path minus v's delay.
    tail_.assign(n, 0.0);
    for (qodg::NodeId v = graph.end(); v-- > 0;) {
        double acc = -std::numeric_limits<double>::infinity();
        for (const qodg::NodeId w : graph.successors(v)) {
            const double candidate = delay_[w] + tail_[w];
            if (candidate > acc) acc = candidate;
        }
        tail_[v] = std::isfinite(acc) ? acc : 0.0;
    }

    in_fwd_.assign(n, 0);
    in_bwd_.assign(n, 0);

    // Debug stage-boundary contract: the from-scratch passes above agree
    // with the reference kernels (compiled out of Release).
    LEQA_DCHECK_OK(audit());
}

std::int32_t PlacedTimer::occupant(fabric::UlbId ulb) const {
    LEQA_REQUIRE(ulb >= 0 && static_cast<std::size_t>(ulb) < occupant_.size(),
                 "ULB out of range");
    return occupant_[static_cast<std::size_t>(ulb)];
}

double PlacedTimer::cnot_delay(qodg::NodeId node) const {
    const int hops =
        topology_->distance(coords_[cnot_control_[node]], coords_[cnot_target_[node]]);
    return d_cnot_us_ + t_move_us_ * static_cast<double>(hops);
}

void PlacedTimer::collect_changes(std::size_t q1, std::size_t q2) {
    scratch_changes_.clear();
    const auto visit = [&](std::size_t q) {
        for (std::uint32_t i = qubit_cnot_offsets_[q]; i < qubit_cnot_offsets_[q + 1];
             ++i) {
            const qodg::NodeId node = qubit_cnot_nodes_[i];
            // A CNOT between the two moved qubits appears in both lists;
            // keep its first occurrence only.
            if (q == q2 && (cnot_control_[node] == q1 || cnot_target_[node] == q1)) {
                continue;
            }
            const double fresh = cnot_delay(node);
            if (fresh != delay_[node]) {
                scratch_changes_.push_back(DelayChange{node, fresh});
            }
        }
    };
    visit(q1);
    if (q2 != kNoPartner) visit(q2);
}

double PlacedTimer::lower_bound_for_changes() const {
    const double current = latency_;
    double negative_sum = 0.0;
    bool shrinking_critical = false;
    for (const DelayChange& change : scratch_changes_) {
        const double delta = change.delay - delay_[change.node];
        if (delta < 0.0) {
            negative_sum += delta;
            const double through = arrival_[change.node] + tail_[change.node];
            if (through >= current - kRelSlop * std::abs(current)) {
                shrinking_critical = true;
            }
        }
    }
    // No critical path loses a node's delay => every critical path keeps
    // its (bit-exact) length and the latency cannot drop below `current`.
    double bound = shrinking_critical ? -std::numeric_limits<double>::infinity()
                                      : current;
    for (const DelayChange& change : scratch_changes_) {
        const double delta = change.delay - delay_[change.node];
        double through = arrival_[change.node] + tail_[change.node] + delta +
                         (negative_sum - std::min(0.0, delta));
        through -= kRelSlop * std::abs(through);
        bound = std::max(bound, through);
    }
    return bound;
}

double PlacedTimer::swap_lower_bound(std::size_t q1, std::size_t q2) {
    LEQA_REQUIRE(q1 < homes_.size() && q2 < homes_.size() && q1 != q2,
                 "swap needs two distinct qubits");
    flush_tails();
    std::swap(coords_[q1], coords_[q2]);
    collect_changes(q1, q2);
    const double bound = lower_bound_for_changes();
    std::swap(coords_[q1], coords_[q2]);
    return bound;
}

double PlacedTimer::relocate_lower_bound(std::size_t q, fabric::UlbId to) {
    LEQA_REQUIRE(q < homes_.size(), "qubit out of range");
    LEQA_REQUIRE(occupant(to) == kNoQubit, "destination ULB is occupied");
    flush_tails();
    const fabric::UlbCoord saved = coords_[q];
    coords_[q] = topology_->ulb_coord(to);
    collect_changes(q, kNoPartner);
    const double bound = lower_bound_for_changes();
    coords_[q] = saved;
    return bound;
}

const std::vector<double>& PlacedTimer::tails() {
    flush_tails();
    return tail_;
}

double PlacedTimer::apply_swap(std::size_t q1, std::size_t q2) {
    LEQA_REQUIRE(q1 < homes_.size() && q2 < homes_.size() && q1 != q2,
                 "swap needs two distinct qubits");
    std::swap(homes_[q1], homes_[q2]);
    std::swap(coords_[q1], coords_[q2]);
    occupant_[static_cast<std::size_t>(homes_[q1])] = static_cast<std::int32_t>(q1);
    occupant_[static_cast<std::size_t>(homes_[q2])] = static_cast<std::int32_t>(q2);
    if (last_kind_ == LastMove::Swap &&
        ((q1 == last_q1_ && q2 == last_q2_) || (q1 == last_q2_ && q2 == last_q1_))) {
        return restore_last_move();
    }
    collect_changes(q1, q2);
    last_kind_ = LastMove::Swap;
    last_q1_ = q1;
    last_q2_ = q2;
    return apply_changes();
}

double PlacedTimer::apply_relocate(std::size_t q, fabric::UlbId to) {
    LEQA_REQUIRE(q < homes_.size(), "qubit out of range");
    LEQA_REQUIRE(occupant(to) == kNoQubit, "destination ULB is occupied");
    const fabric::UlbId from = homes_[q];
    occupant_[static_cast<std::size_t>(from)] = kNoQubit;
    occupant_[static_cast<std::size_t>(to)] = static_cast<std::int32_t>(q);
    homes_[q] = to;
    coords_[q] = topology_->ulb_coord(to);
    if (last_kind_ == LastMove::Relocate && q == last_q1_ && to == last_from_) {
        return restore_last_move();
    }
    collect_changes(q, kNoPartner);
    last_kind_ = LastMove::Relocate;
    last_q1_ = q;
    last_from_ = from;
    return apply_changes();
}

void PlacedTimer::mark_forward(qodg::NodeId node) {
    if (in_fwd_[node]) return;
    in_fwd_[node] = 1;
    ++fwd_pending_;
    if (node < fwd_lo_) fwd_lo_ = node;
}

void PlacedTimer::mark_backward(qodg::NodeId node) {
    if (in_bwd_[node]) return;
    in_bwd_[node] = 1;
    ++bwd_pending_;
    if (node > bwd_hi_) bwd_hi_ = node;
}

double PlacedTimer::apply_changes() {
    // Settle any deferred tail scan first so the undo log opened below owns
    // every tail edit made during this move's lifetime (restore_last_move
    // then lands on exactly the pre-move bits).
    flush_tails();
    undo_delays_.clear();
    undo_arrivals_.clear();
    undo_tails_.clear();
    undo_latency_ = latency_;

    last_retimed_ = 0;
    fwd_lo_ = graph_->end();
    for (const DelayChange& change : scratch_changes_) {
        undo_delays_.push_back(DelayChange{change.node, delay_[change.node]});
        delay_[change.node] = change.delay;
        mark_forward(change.node);
        // tail[n] ignores n's own delay, but every predecessor's tail reads
        // delay[n]: seed the (deferred) backward scan there.
        for (const qodg::NodeId u : graph_->predecessors(change.node)) {
            mark_backward(u);
        }
    }

    // Forward cone: an ascending scan over the marked id span guarantees a
    // node's predecessors are final when it is recomputed (a changed node
    // only marks successors, which lie ahead of the scan).  The gather
    // matches the full pass above operation for operation — that is the
    // bit-exactness contract.
    const qodg::NodeId end = graph_->end();
    for (qodg::NodeId v = fwd_lo_; fwd_pending_ > 0; ++v) {
        if (!in_fwd_[v]) continue;
        in_fwd_[v] = 0;
        --fwd_pending_;
        ++last_retimed_;
        double fresh = delay_[0];
        if (v != 0) {
            fresh = -1.0;
            for (const qodg::NodeId u : graph_->predecessors(v)) {
                const double du = arrival_[u];
                if (du < 0.0) continue;
                const double candidate = du + delay_[v];
                if (candidate > fresh) fresh = candidate;
            }
        }
        if (fresh != arrival_[v]) {
            undo_arrivals_.push_back(DelayChange{v, arrival_[v]});
            arrival_[v] = fresh;
            for (const qodg::NodeId w : graph_->successors(v)) mark_forward(w);
        }
    }

    latency_ = arrival_[end];
    return latency_;
}

void PlacedTimer::flush_tails() {
    if (bwd_pending_ == 0) return;
    // Backward cone, mirror-image of the forward scan (descending ids,
    // successors final).  Stale seeds from a restored move recompute to the
    // values already in place and fall out without propagating.
    const qodg::NodeId end = graph_->end();
    qodg::NodeId v = bwd_hi_;
    while (bwd_pending_ > 0) {
        if (in_bwd_[v]) {
            in_bwd_[v] = 0;
            --bwd_pending_;
            double fresh = 0.0;
            if (v != end) {
                double acc = -std::numeric_limits<double>::infinity();
                for (const qodg::NodeId w : graph_->successors(v)) {
                    const double candidate = delay_[w] + tail_[w];
                    if (candidate > acc) acc = candidate;
                }
                fresh = std::isfinite(acc) ? acc : 0.0;
            }
            if (fresh != tail_[v]) {
                undo_tails_.push_back(DelayChange{v, tail_[v]});
                tail_[v] = fresh;
                for (const qodg::NodeId u : graph_->predecessors(v)) {
                    mark_backward(u);
                }
            }
        }
        if (v == 0) break;
        --v;
    }
    bwd_hi_ = 0;
}

std::string PlacedTimer::audit() {
    flush_tails();
    const qodg::NodeId end = graph_->end();
    const qodg::LongestPath reference = graph_->longest_path(delay_);
    for (std::size_t v = 0; v < arrival_.size(); ++v) {
        if (arrival_[v] != reference.distance[v]) {
            return "placed: arrival[" + std::to_string(v) + "] = " +
                   std::to_string(arrival_[v]) + " diverges from the "
                   "from-scratch longest path " +
                   std::to_string(reference.distance[v]);
        }
    }
    for (qodg::NodeId v = end + 1; v-- > 0;) {
        double fresh = 0.0;
        if (v != end) {
            double acc = -std::numeric_limits<double>::infinity();
            for (const qodg::NodeId w : graph_->successors(v)) {
                const double candidate = delay_[w] + tail_[w];
                if (candidate > acc) acc = candidate;
            }
            fresh = std::isfinite(acc) ? acc : 0.0;
        }
        if (tail_[v] != fresh) {
            return "placed: tail[" + std::to_string(v) + "] = " +
                   std::to_string(tail_[v]) + " violates the downstream "
                   "recurrence (expected " + std::to_string(fresh) + ")";
        }
    }
    if (latency_ != arrival_[end]) {
        return "placed: cached latency " + std::to_string(latency_) +
               " != arrival at end node " + std::to_string(arrival_[end]);
    }
    return {};
}

double PlacedTimer::restore_last_move() {
    // Reverse replay: a cell written twice (the deferred tail scan can
    // revisit a node across flushes) must end on its oldest logged value.
    for (auto it = undo_tails_.rbegin(); it != undo_tails_.rend(); ++it) {
        tail_[it->node] = it->delay;
    }
    for (auto it = undo_arrivals_.rbegin(); it != undo_arrivals_.rend(); ++it) {
        arrival_[it->node] = it->delay;
    }
    for (auto it = undo_delays_.rbegin(); it != undo_delays_.rend(); ++it) {
        delay_[it->node] = it->delay;
    }
    latency_ = undo_latency_;
    last_retimed_ = undo_arrivals_.size();
    last_kind_ = LastMove::None;
    return latency_;
}

} // namespace leqa::core

/// \file placed.h
/// \brief Placement-dependent timing model + incremental re-timing engine.
///
/// The staged estimator prices a CNOT with the *expected* operand distance
/// (Eq. 13's E[S_q] machinery).  Once qubits have concrete home ULBs, the
/// distance is not a distribution any more: a CNOT between qubits homed at
/// u and w costs its base FT latency plus `Topology::distance(u, w)` hops
/// of qubit motion.  `placed_node_delays` turns a placement into a per-QODG
/// -node delay vector under that model, and the placed latency is the
/// QODG's weighted longest path — exactly `Qodg::longest_path`.
///
/// `PlacedTimer` is the incremental version of that evaluation, built for
/// search loops (core::optimize_placement) where the placement changes one
/// swap/relocate at a time.  A move re-homes 1–2 qubits, so only the CNOT
/// nodes touching those qubits change delay; the timer re-relaxes the
/// affected cone only:
///
///   - a per-qubit -> CNOT-node index (CSR layout) finds the changed nodes
///     in O(gates touching the moved qubits);
///   - a forward dirty-scan in ascending node id (QODG ids are topological)
///     recomputes arrivals with the same pull-based gather
///     `Qodg::longest_path_lanes` documents (predecessors ascending,
///     `>= 0` reachability guard, strict `>`), which is bit-identical to
///     the push-based `graph::longest_path` kernel; successors are marked
///     dirty only when a node's arrival actually changed, so propagation
///     stops at the cone boundary.  A flat scan beats a heap worklist here:
///     search-move cones are dense in their id span, and the scan costs a
///     flag test per spanned node instead of log-cost heap traffic;
///   - a backward dirty-scan maintains `tail[v]` (longest path v -> end,
///     excluding v's own delay), the cached downstream-delay array that
///     prices "the longest path through v" as `arrival[v] + tail[v]` in
///     O(1) for candidate-move bounds.  Tails only feed those bounds, so
///     the backward scan is *deferred*: an apply just marks seed nodes, and
///     the scan runs at the next bound/tails() call — which never comes for
///     a move that is reverted, so a search loop pays one tail pass per
///     *kept* move instead of two per evaluated move;
///   - every apply keeps an undo log (old delay/arrival/tail of each cell
///     it wrote, plus the old latency).  Applying the exact inverse move
///     next restores the logged bits directly instead of re-timing — the
///     search loop's reject-and-revert hot path drops from two cone
///     propagations to one propagation plus an O(cone) copy-back.
///
/// The correctness contract is *bit-exact parity*: after any sequence of
/// moves, `arrivals()` and `latency_us()` equal a from-scratch
/// `Qodg::longest_path(delays())` down to the last bit (property-tested
/// with >= 10k randomized moves).  Exactness is possible — not just
/// approximation — because the incremental pass recomputes each affected
/// node with the identical gather order and comparison semantics as the
/// full kernel, and IEEE max/add are deterministic functions of their
/// operands; nodes outside the cone keep inputs unchanged, hence outputs
/// unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "circuit/circuit.h"
#include "fabric/params.h"
#include "fabric/topology.h"
#include "qodg/qodg.h"

namespace leqa::core {

/// One candidate per-node delay replacement (a move's timing footprint).
struct DelayChange {
    qodg::NodeId node = 0;
    double delay = 0.0;
};

/// Per-node delays of a circuit under a concrete placement: CNOT nodes pay
/// `d_cnot_us + distance(home[control], home[target]) * t_move_us`,
/// one-qubit nodes pay `delay_us(kind) + one_qubit_routing_latency_us()`,
/// start/end are zero.  `homes[q]` is qubit q's home ULB.
[[nodiscard]] std::vector<double> placed_node_delays(
    const qodg::Qodg& graph, const circuit::Circuit& circ,
    const fabric::Topology& topology, const fabric::PhysicalParams& params,
    std::span<const fabric::UlbId> homes);

/// Incremental placed-latency evaluator.  See the file comment.
///
/// Not thread-safe; one timer per search thread (like EstimationEngine).
class PlacedTimer {
public:
    static constexpr std::int32_t kNoQubit = -1;

    /// \p circ must be the FT circuit the QODG was built from; \p homes one
    /// distinct in-range home ULB per logical qubit.
    PlacedTimer(const qodg::Qodg& graph, const circuit::Circuit& circ,
                const fabric::PhysicalParams& params,
                std::vector<fabric::UlbId> homes);

    /// Placed critical latency (µs): the longest start->end path.
    [[nodiscard]] double latency_us() const { return latency_; }

    [[nodiscard]] const std::vector<fabric::UlbId>& homes() const { return homes_; }
    /// Qubit homed at \p ulb, or kNoQubit.
    [[nodiscard]] std::int32_t occupant(fabric::UlbId ulb) const;
    [[nodiscard]] std::size_t num_qubits() const { return homes_.size(); }
    [[nodiscard]] std::size_t num_ulbs() const { return occupant_.size(); }
    [[nodiscard]] const fabric::Topology& topology() const { return *topology_; }

    /// Current per-node delays / longest-path arrivals (parity: arrivals()
    /// is bit-identical to Qodg::longest_path(delays()).distance).
    [[nodiscard]] const std::vector<double>& delays() const { return delay_; }
    [[nodiscard]] const std::vector<double>& arrivals() const { return arrival_; }
    /// Longest path from each node to end, *excluding* the node's own delay.
    /// Non-const: runs the deferred backward scan if one is pending.
    [[nodiscard]] const std::vector<double>& tails();

    /// Exchange the homes of two distinct qubits and incrementally re-time;
    /// returns the new latency.  A second identical call reverts the move
    /// and restores every arrival bit-for-bit — and when it immediately
    /// follows the first (no other apply in between) it replays the undo
    /// log instead of re-timing, at O(cone) copy cost.
    double apply_swap(std::size_t q1, std::size_t q2);

    /// Move \p q to the free ULB \p to (throws InputError if occupied) and
    /// incrementally re-time; returns the new latency.  Relocating back
    /// reverts the move exactly (via the undo log when immediate, like
    /// apply_swap).
    double apply_relocate(std::size_t q, fabric::UlbId to);

    /// Conservative lower bound on the latency the move would produce,
    /// without applying it — O(gates touching the moved qubits).  Two
    /// ingredients, both safe against IEEE rounding:
    ///   - if no delay-shrinking node lies on a critical path (criticality
    ///     over-approximated with a 1e-9 relative tolerance), every
    ///     critical path keeps its length, so the bound is the current
    ///     latency itself — and that case is exact, not approximate:
    ///     growing delays propagate monotonically through fp max/add;
    ///   - the longest path through any changed node n is at least
    ///     arrival[n] + tail[n] + delta_n plus the other changes' negative
    ///     deltas, shaved by a 1e-9 relative slop for rounding.
    /// A search loop can reject a candidate on this bound alone (with the
    /// Metropolis u drawn *before* the bound test, the fast path rejects a
    /// superset-consistent subset and the accept distribution is unchanged).
    [[nodiscard]] double swap_lower_bound(std::size_t q1, std::size_t q2);
    [[nodiscard]] double relocate_lower_bound(std::size_t q, fabric::UlbId to);

    /// Nodes whose arrival was recomputed by the last apply_* (cone size).
    [[nodiscard]] std::size_t last_retimed_nodes() const { return last_retimed_; }

    /// Full consistency audit of the incremental state (a validator in the
    /// LEQA_DCHECK_OK shape): arrivals bit-identical to a from-scratch
    /// Qodg::longest_path(delays()), tails satisfying the descending
    /// recurrence tail[v] = max_w (delay[w] + tail[w]) (0 at end), and
    /// latency_us() == arrival at the end node.  Flushes any deferred tail
    /// scan first.  Returns the first violation, empty when consistent.
    [[nodiscard]] std::string audit();

private:
    /// Fill scratch_changes_ with the CNOT delay changes of re-homing; the
    /// caller has already (tentatively or actually) updated coords_.
    void collect_changes(std::size_t q1, std::size_t q2);
    [[nodiscard]] double cnot_delay(qodg::NodeId node) const;
    [[nodiscard]] double lower_bound_for_changes() const;
    /// Commit scratch_changes_: forward-scan the affected cone (logging
    /// every cell written), seed the deferred backward scan.
    double apply_changes();
    /// Reverse-replay the undo log of the last applied move.
    double restore_last_move();
    /// Run the deferred backward (tail) scan if seeds are pending.
    void flush_tails();
    void mark_forward(qodg::NodeId node);
    void mark_backward(qodg::NodeId node);

    const qodg::Qodg* graph_;
    std::shared_ptr<const fabric::Topology> topology_;
    double t_move_us_ = 0.0;
    double d_cnot_us_ = 0.0;

    std::vector<fabric::UlbId> homes_;
    std::vector<fabric::UlbCoord> coords_;  ///< coords_[q] = coord of homes_[q]
    std::vector<std::int32_t> occupant_;    ///< per ULB: qubit or kNoQubit

    /// Operands of CNOT nodes (by node id; unused slots for other nodes).
    std::vector<circuit::Qubit> cnot_control_;
    std::vector<circuit::Qubit> cnot_target_;
    /// CSR index: CNOT node ids touching qubit q, ascending.
    std::vector<std::uint32_t> qubit_cnot_offsets_;
    std::vector<qodg::NodeId> qubit_cnot_nodes_;

    std::vector<double> delay_;
    std::vector<double> arrival_;
    std::vector<double> tail_;
    double latency_ = 0.0;

    std::vector<DelayChange> scratch_changes_;
    std::vector<char> in_fwd_;        ///< forward dirty flags (scan order: ascending)
    std::vector<char> in_bwd_;        ///< backward dirty flags (scan order: descending)
    std::size_t fwd_pending_ = 0;     ///< set forward flags awaiting the scan
    std::size_t bwd_pending_ = 0;     ///< set backward flags awaiting flush_tails
    qodg::NodeId fwd_lo_ = 0;         ///< min marked forward node (scan start)
    qodg::NodeId bwd_hi_ = 0;         ///< max marked backward node (scan start)
    std::size_t last_retimed_ = 0;

    /// Undo log of the last applied move; `restore_last_move` replays the
    /// entries in reverse (each holds the *old* value of the cell written).
    enum class LastMove : std::uint8_t { None, Swap, Relocate };
    LastMove last_kind_ = LastMove::None;
    std::size_t last_q1_ = 0;
    std::size_t last_q2_ = 0;
    fabric::UlbId last_from_ = 0;     ///< relocate only: the origin ULB
    double undo_latency_ = 0.0;
    std::vector<DelayChange> undo_delays_;
    std::vector<DelayChange> undo_arrivals_;
    std::vector<DelayChange> undo_tails_;
};

} // namespace leqa::core

#include "core/sweep.h"

#include "util/error.h"

namespace leqa::core {

namespace {

SweepResult run_sweep(const CircuitProfile& profile,
                      const std::vector<fabric::PhysicalParams>& configurations,
                      const LeqaOptions& options,
                      const std::function<void()>& between_points = {}) {
    LEQA_REQUIRE(!configurations.empty(), "sweep has no feasible configurations");
    SweepResult result;
    result.points.reserve(configurations.size());
    EstimationEngine engine(configurations.front(), options);
    for (const auto& params : configurations) {
        if (between_points) between_points();
        engine.set_params(params);
        SweepPoint point{params, engine.estimate(profile)};
        result.points.push_back(std::move(point));
        if (result.points.back().estimate.latency_us <
            result.points[result.best_index].estimate.latency_us) {
            result.best_index = result.points.size() - 1;
        }
    }
    return result;
}

std::vector<fabric::PhysicalParams> side_configurations(
    std::size_t num_qubits, const fabric::PhysicalParams& base,
    const std::vector<int>& sides) {
    std::vector<fabric::PhysicalParams> configurations;
    for (const int side : sides) {
        LEQA_REQUIRE(side >= 1, "fabric side must be >= 1");
        if (static_cast<std::size_t>(side) * static_cast<std::size_t>(side) <
            num_qubits) {
            continue; // cannot host the circuit
        }
        fabric::PhysicalParams params = base;
        if (base.topology == fabric::TopologyKind::Line) {
            // Area-equivalent row: a "side s" point is the s*s x 1 fabric.
            params.width = side * side;
            params.height = 1;
        } else {
            params.width = side;
            params.height = side;
        }
        configurations.push_back(params);
    }
    return configurations;
}

std::vector<fabric::PhysicalParams> topology_configurations(
    const fabric::PhysicalParams& base, const std::vector<fabric::TopologyKind>& kinds) {
    std::vector<fabric::PhysicalParams> configurations;
    const long long area = static_cast<long long>(base.width) * base.height;
    for (const fabric::TopologyKind kind : kinds) {
        fabric::PhysicalParams params = base;
        params.topology = kind;
        if (kind == fabric::TopologyKind::Line) {
            params.width = static_cast<int>(area);
            params.height = 1;
        }
        params.validate();
        configurations.push_back(params);
    }
    return configurations;
}

std::vector<fabric::PhysicalParams> capacity_configurations(
    const fabric::PhysicalParams& base, const std::vector<int>& capacities) {
    std::vector<fabric::PhysicalParams> configurations;
    for (const int nc : capacities) {
        LEQA_REQUIRE(nc >= 1, "channel capacity must be >= 1");
        fabric::PhysicalParams params = base;
        params.nc = nc;
        configurations.push_back(params);
    }
    return configurations;
}

std::vector<fabric::PhysicalParams> speed_configurations(
    const fabric::PhysicalParams& base, const std::vector<double>& speeds) {
    std::vector<fabric::PhysicalParams> configurations;
    for (const double v : speeds) {
        LEQA_REQUIRE(v > 0.0, "speed must be positive");
        fabric::PhysicalParams params = base;
        params.v = v;
        configurations.push_back(params);
    }
    return configurations;
}

} // namespace

SweepResult sweep_fabric_sides(const CircuitProfile& profile,
                               const fabric::PhysicalParams& base,
                               const std::vector<int>& sides,
                               const LeqaOptions& options,
                               const std::function<void()>& between_points) {
    return run_sweep(profile, side_configurations(profile.num_qubits, base, sides),
                     options, between_points);
}

SweepResult sweep_topology(const CircuitProfile& profile,
                           const fabric::PhysicalParams& base,
                           const std::vector<fabric::TopologyKind>& kinds,
                           const LeqaOptions& options,
                           const std::function<void()>& between_points) {
    return run_sweep(profile, topology_configurations(base, kinds), options,
                     between_points);
}

SweepResult sweep_channel_capacity(const CircuitProfile& profile,
                                   const fabric::PhysicalParams& base,
                                   const std::vector<int>& capacities,
                                   const LeqaOptions& options,
                                   const std::function<void()>& between_points) {
    return run_sweep(profile, capacity_configurations(base, capacities), options,
                     between_points);
}

SweepResult sweep_speed(const CircuitProfile& profile,
                        const fabric::PhysicalParams& base,
                        const std::vector<double>& speeds,
                        const LeqaOptions& options,
                        const std::function<void()>& between_points) {
    return run_sweep(profile, speed_configurations(base, speeds), options,
                     between_points);
}

SweepResult sweep_fabric_sides(const qodg::Qodg& graph, const iig::Iig& iig,
                               const fabric::PhysicalParams& base,
                               const std::vector<int>& sides,
                               const LeqaOptions& options) {
    return sweep_fabric_sides(CircuitProfile::build(graph, iig), base, sides, options);
}

SweepResult sweep_channel_capacity(const qodg::Qodg& graph, const iig::Iig& iig,
                                   const fabric::PhysicalParams& base,
                                   const std::vector<int>& capacities,
                                   const LeqaOptions& options) {
    return sweep_channel_capacity(CircuitProfile::build(graph, iig), base, capacities,
                                  options);
}

SweepResult sweep_speed(const qodg::Qodg& graph, const iig::Iig& iig,
                        const fabric::PhysicalParams& base,
                        const std::vector<double>& speeds,
                        const LeqaOptions& options) {
    return sweep_speed(CircuitProfile::build(graph, iig), base, speeds, options);
}

} // namespace leqa::core

#include "core/sweep.h"

#include <cmath>
#include <utility>

#include "core/explore.h"
#include "util/error.h"

namespace leqa::core {

namespace {

/// Every 1-D sweep is a single-axis exploration; the extras (Pareto front,
/// per-topology best) are dropped, the points and best selection carry over.
SweepResult from_exploration(ExplorationResult&& explored) {
    SweepResult result;
    result.points = std::move(explored.points);
    result.best_index = explored.best_index;
    result.non_finite_points = explored.non_finite_points;
    result.surface_cache = explored.surface_cache;
    return result;
}

/// An explicitly empty axis list never was a valid sweep; keep the historic
/// error text instead of falling through to a one-point base evaluation.
void require_axis_values(bool non_empty) {
    LEQA_REQUIRE(non_empty, "sweep has no feasible configurations");
}

} // namespace

std::size_t best_point_index(const std::vector<SweepPoint>& points,
                             std::size_t* non_finite) {
    std::size_t best = kNoBestPoint;
    std::size_t bad = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const double latency = points[i].estimate.latency_us;
        if (!std::isfinite(latency)) {
            ++bad;
            continue;
        }
        if (best == kNoBestPoint || latency < points[best].estimate.latency_us) {
            best = i;
        }
    }
    if (non_finite != nullptr) *non_finite = bad;
    return best;
}

const SweepPoint& SweepResult::best() const {
    LEQA_REQUIRE(has_best(), "sweep has no finite-latency point");
    return points.at(best_index);
}

SweepResult sweep_fabric_sides(const CircuitProfile& profile,
                               const fabric::PhysicalParams& base,
                               const std::vector<int>& sides,
                               const LeqaOptions& options,
                               const std::function<void()>& between_points) {
    require_axis_values(!sides.empty());
    ExplorationSpec spec;
    spec.sides = sides;
    return from_exploration(explore(profile, base, spec, options, between_points));
}

SweepResult sweep_topology(const CircuitProfile& profile,
                           const fabric::PhysicalParams& base,
                           const std::vector<fabric::TopologyKind>& kinds,
                           const LeqaOptions& options,
                           const std::function<void()>& between_points) {
    require_axis_values(!kinds.empty());
    ExplorationSpec spec;
    spec.topologies = kinds;
    return from_exploration(explore(profile, base, spec, options, between_points));
}

SweepResult sweep_channel_capacity(const CircuitProfile& profile,
                                   const fabric::PhysicalParams& base,
                                   const std::vector<int>& capacities,
                                   const LeqaOptions& options,
                                   const std::function<void()>& between_points) {
    require_axis_values(!capacities.empty());
    ExplorationSpec spec;
    spec.capacities = capacities;
    return from_exploration(explore(profile, base, spec, options, between_points));
}

SweepResult sweep_speed(const CircuitProfile& profile,
                        const fabric::PhysicalParams& base,
                        const std::vector<double>& speeds,
                        const LeqaOptions& options,
                        const std::function<void()>& between_points) {
    require_axis_values(!speeds.empty());
    ExplorationSpec spec;
    spec.speeds = speeds;
    return from_exploration(explore(profile, base, spec, options, between_points));
}

SweepResult sweep_fabric_sides(const qodg::Qodg& graph, const iig::Iig& iig,
                               const fabric::PhysicalParams& base,
                               const std::vector<int>& sides,
                               const LeqaOptions& options) {
    return sweep_fabric_sides(CircuitProfile::build(graph, iig), base, sides, options);
}

SweepResult sweep_channel_capacity(const qodg::Qodg& graph, const iig::Iig& iig,
                                   const fabric::PhysicalParams& base,
                                   const std::vector<int>& capacities,
                                   const LeqaOptions& options) {
    return sweep_channel_capacity(CircuitProfile::build(graph, iig), base, capacities,
                                  options);
}

SweepResult sweep_speed(const qodg::Qodg& graph, const iig::Iig& iig,
                        const fabric::PhysicalParams& base,
                        const std::vector<double>& speeds,
                        const LeqaOptions& options) {
    return sweep_speed(CircuitProfile::build(graph, iig), base, speeds, options);
}

} // namespace leqa::core

#include "core/sweep.h"

#include "util/error.h"

namespace leqa::core {

namespace {

SweepResult run_sweep(const qodg::Qodg& graph, const iig::Iig& iig,
                      const std::vector<fabric::PhysicalParams>& configurations,
                      const LeqaOptions& options) {
    LEQA_REQUIRE(!configurations.empty(), "sweep has no feasible configurations");
    SweepResult result;
    result.points.reserve(configurations.size());
    for (const auto& params : configurations) {
        LeqaEstimator estimator(params, options);
        SweepPoint point{params, estimator.estimate(graph, iig)};
        result.points.push_back(std::move(point));
        if (result.points.back().estimate.latency_us <
            result.points[result.best_index].estimate.latency_us) {
            result.best_index = result.points.size() - 1;
        }
    }
    return result;
}

} // namespace

SweepResult sweep_fabric_sides(const qodg::Qodg& graph, const iig::Iig& iig,
                               const fabric::PhysicalParams& base,
                               const std::vector<int>& sides,
                               const LeqaOptions& options) {
    std::vector<fabric::PhysicalParams> configurations;
    for (const int side : sides) {
        LEQA_REQUIRE(side >= 1, "fabric side must be >= 1");
        if (static_cast<std::size_t>(side) * static_cast<std::size_t>(side) <
            iig.num_qubits()) {
            continue; // cannot host the circuit
        }
        fabric::PhysicalParams params = base;
        params.width = side;
        params.height = side;
        configurations.push_back(params);
    }
    return run_sweep(graph, iig, configurations, options);
}

SweepResult sweep_channel_capacity(const qodg::Qodg& graph, const iig::Iig& iig,
                                   const fabric::PhysicalParams& base,
                                   const std::vector<int>& capacities,
                                   const LeqaOptions& options) {
    std::vector<fabric::PhysicalParams> configurations;
    for (const int nc : capacities) {
        LEQA_REQUIRE(nc >= 1, "channel capacity must be >= 1");
        fabric::PhysicalParams params = base;
        params.nc = nc;
        configurations.push_back(params);
    }
    return run_sweep(graph, iig, configurations, options);
}

SweepResult sweep_speed(const qodg::Qodg& graph, const iig::Iig& iig,
                        const fabric::PhysicalParams& base,
                        const std::vector<double>& speeds,
                        const LeqaOptions& options) {
    std::vector<fabric::PhysicalParams> configurations;
    for (const double v : speeds) {
        LEQA_REQUIRE(v > 0.0, "speed must be positive");
        fabric::PhysicalParams params = base;
        params.v = v;
        configurations.push_back(params);
    }
    return run_sweep(graph, iig, configurations, options);
}

} // namespace leqa::core

/// \file sweep.h
/// \brief Design-space sweeps built on the staged estimation engine.
///
/// The paper positions LEQA as the inner loop of design exploration: "Size
/// of the fabric ... can be changed to find the optimal size for the
/// fabric which results in the minimum delay."  These helpers run the
/// estimator across one-parameter families (fabric side, channel capacity,
/// qubit speed) and report the latency-minimal point.
///
/// The profile-based overloads are the fast path: the circuit-invariant
/// `CircuitProfile` is built once and only the parameter-dependent stage
/// runs per point, so a sweep costs O(points) parameter-stage evaluations
/// rather than O(points x circuit) table rebuilds.  The graph-based
/// overloads build the profile internally and delegate.
///
/// Since the multi-dimensional explorer (core/explore.h) these are thin
/// wrappers over single-axis `ExplorationSpec`s: one evaluation loop serves
/// the 1-D sweeps and the parallel cross-product exploration.  That loop
/// feeds each fixed-geometry (Nc, v) run to `EstimationEngine::estimate_batch`
/// as one call, so capacity and speed sweeps evaluate through the SoA
/// batch parameter stage (bit-identical to per-point scalar estimation).
#pragma once

#include <functional>
#include <vector>

#include "core/engine.h"
#include "core/leqa.h"
#include "fabric/params.h"
#include "iig/iig.h"
#include "qodg/qodg.h"

namespace leqa::core {

struct SweepPoint {
    fabric::PhysicalParams params;
    LeqaEstimate estimate;
};

/// Sentinel best-point index: no point has a finite latency.
inline constexpr std::size_t kNoBestPoint = static_cast<std::size_t>(-1);

/// Index of the latency-minimal point among points with *finite* latency.
/// Non-finite estimates (NaN or infinity) never stick as the best: a NaN
/// first point would defeat every subsequent `<` comparison and shadow the
/// real minimum forever.  Returns kNoBestPoint when no point is finite;
/// \p non_finite (optional) receives the number of non-finite points.
[[nodiscard]] std::size_t best_point_index(const std::vector<SweepPoint>& points,
                                           std::size_t* non_finite = nullptr);

struct SweepResult {
    std::vector<SweepPoint> points;
    /// Index of the minimum-latency point among finite-latency points;
    /// kNoBestPoint when every point came back non-finite.
    std::size_t best_index = kNoBestPoint;
    /// Points whose latency was NaN/infinite (skipped for best selection).
    std::size_t non_finite_points = 0;
    /// Engine E[S_q] cache effectiveness over the sweep, summed across the
    /// workers' engines (counters only; not part of the bit-identity
    /// contract — different thread counts partition the work differently).
    SurfaceCacheStats surface_cache;

    [[nodiscard]] bool has_best() const { return best_index != kNoBestPoint; }
    /// Throws InputError when no point has a finite latency.
    [[nodiscard]] const SweepPoint& best() const;
};

// --- profile-based fast path ------------------------------------------------

/// Sweep fabrics of the given sides.  On grid/torus topologies a side s
/// means an s x s fabric; on a line it means the area-equivalent s*s x 1
/// row, so points stay comparable across topologies.  Sides too small to
/// host the circuit's qubits are skipped; throws InputError if none remain.
/// `between_points` (here and in the other profile-based sweeps) is called
/// before each point -- cancellation/deadline checkpoints may throw out of
/// it to abort the sweep.
[[nodiscard]] SweepResult sweep_fabric_sides(
    const CircuitProfile& profile, const fabric::PhysicalParams& base,
    const std::vector<int>& sides, const LeqaOptions& options = {},
    const std::function<void()>& between_points = {});

/// Sweep the fabric topology itself on a fixed area: grid/torus keep the
/// base geometry, line flattens it to the area-equivalent (a*b) x 1 row.
[[nodiscard]] SweepResult sweep_topology(
    const CircuitProfile& profile, const fabric::PhysicalParams& base,
    const std::vector<fabric::TopologyKind>& kinds, const LeqaOptions& options = {},
    const std::function<void()>& between_points = {});

/// Sweep channel capacities Nc.
[[nodiscard]] SweepResult sweep_channel_capacity(
    const CircuitProfile& profile, const fabric::PhysicalParams& base,
    const std::vector<int>& capacities, const LeqaOptions& options = {},
    const std::function<void()>& between_points = {});

/// Sweep the qubit-speed parameter v.
[[nodiscard]] SweepResult sweep_speed(
    const CircuitProfile& profile, const fabric::PhysicalParams& base,
    const std::vector<double>& speeds, const LeqaOptions& options = {},
    const std::function<void()>& between_points = {});

// --- graph-based convenience overloads (profile built once, internally) ----

[[nodiscard]] SweepResult sweep_fabric_sides(const qodg::Qodg& graph, const iig::Iig& iig,
                                             const fabric::PhysicalParams& base,
                                             const std::vector<int>& sides,
                                             const LeqaOptions& options = {});

[[nodiscard]] SweepResult sweep_channel_capacity(const qodg::Qodg& graph,
                                                 const iig::Iig& iig,
                                                 const fabric::PhysicalParams& base,
                                                 const std::vector<int>& capacities,
                                                 const LeqaOptions& options = {});

[[nodiscard]] SweepResult sweep_speed(const qodg::Qodg& graph, const iig::Iig& iig,
                                      const fabric::PhysicalParams& base,
                                      const std::vector<double>& speeds,
                                      const LeqaOptions& options = {});

} // namespace leqa::core

#include "fabric/geometry.h"

#include <cmath>
#include <cstdlib>

#include "util/error.h"

namespace leqa::fabric {

std::string UlbCoord::to_string() const {
    return "(" + std::to_string(x) + "," + std::to_string(y) + ")";
}

FabricGeometry::FabricGeometry(int width, int height) : width_(width), height_(height) {
    LEQA_REQUIRE(width >= 1 && height >= 1, "fabric dimensions must be >= 1");
}

std::size_t FabricGeometry::num_segments() const {
    return static_cast<std::size_t>(width_ - 1) * height_ +
           static_cast<std::size_t>(width_) * (height_ - 1);
}

bool FabricGeometry::in_bounds(UlbCoord c) const {
    return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
}

UlbId FabricGeometry::ulb_id(UlbCoord c) const {
    LEQA_REQUIRE(in_bounds(c), "ULB coordinate out of bounds: " + c.to_string());
    return static_cast<UlbId>(c.y) * width_ + c.x;
}

UlbCoord FabricGeometry::ulb_coord(UlbId id) const {
    LEQA_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < num_ulbs(),
                 "ULB id out of range");
    return UlbCoord{id % width_, id / width_};
}

SegmentId FabricGeometry::segment_between(UlbCoord a, UlbCoord b) const {
    LEQA_REQUIRE(in_bounds(a) && in_bounds(b), "ULB coordinate out of bounds");
    const int dx = b.x - a.x;
    const int dy = b.y - a.y;
    LEQA_REQUIRE(std::abs(dx) + std::abs(dy) == 1, "ULBs are not adjacent");
    if (dy == 0) {
        // Horizontal segment between (min_x, y) and (min_x + 1, y).
        const int min_x = std::min(a.x, b.x);
        return static_cast<SegmentId>(a.y) * (width_ - 1) + min_x;
    }
    // Vertical segments are indexed after all horizontal ones.
    const int horizontal_count = (width_ - 1) * height_;
    const int min_y = std::min(a.y, b.y);
    return static_cast<SegmentId>(horizontal_count) + min_y * width_ + a.x;
}

int FabricGeometry::manhattan(UlbCoord a, UlbCoord b) const {
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

std::vector<SegmentId> FabricGeometry::xy_route(UlbCoord a, UlbCoord b) const {
    LEQA_REQUIRE(in_bounds(a) && in_bounds(b), "ULB coordinate out of bounds");
    std::vector<SegmentId> route;
    route.reserve(static_cast<std::size_t>(manhattan(a, b)));
    UlbCoord cursor = a;
    const int step_x = b.x > a.x ? 1 : -1;
    while (cursor.x != b.x) {
        const UlbCoord next{cursor.x + step_x, cursor.y};
        route.push_back(segment_between(cursor, next));
        cursor = next;
    }
    const int step_y = b.y > a.y ? 1 : -1;
    while (cursor.y != b.y) {
        const UlbCoord next{cursor.x, cursor.y + step_y};
        route.push_back(segment_between(cursor, next));
        cursor = next;
    }
    return route;
}

std::vector<UlbCoord> FabricGeometry::ring(UlbCoord center, int r) const {
    LEQA_REQUIRE(r >= 0, "ring radius must be non-negative");
    std::vector<UlbCoord> out;
    if (r == 0) {
        if (in_bounds(center)) out.push_back(center);
        return out;
    }
    // Top and bottom rows of the ring, then the side columns.
    for (int x = center.x - r; x <= center.x + r; ++x) {
        const UlbCoord top{x, center.y - r};
        if (in_bounds(top)) out.push_back(top);
        const UlbCoord bottom{x, center.y + r};
        if (in_bounds(bottom)) out.push_back(bottom);
    }
    for (int y = center.y - r + 1; y <= center.y + r - 1; ++y) {
        const UlbCoord left{center.x - r, y};
        if (in_bounds(left)) out.push_back(left);
        const UlbCoord right{center.x + r, y};
        if (in_bounds(right)) out.push_back(right);
    }
    return out;
}

std::vector<UlbCoord> FabricGeometry::neighbors(UlbCoord c) const {
    std::vector<UlbCoord> out;
    for (const UlbCoord candidate : {UlbCoord{c.x + 1, c.y}, UlbCoord{c.x - 1, c.y},
                                     UlbCoord{c.x, c.y + 1}, UlbCoord{c.x, c.y - 1}}) {
        if (in_bounds(candidate)) out.push_back(candidate);
    }
    return out;
}

UlbCoord FabricGeometry::midpoint(UlbCoord a, UlbCoord b) const {
    return UlbCoord{(a.x + b.x) / 2, (a.y + b.y) / 2};
}

} // namespace leqa::fabric

#include "fabric/geometry.h"

#include "fabric/topology.h"
#include "util/error.h"

namespace leqa::fabric {

std::string UlbCoord::to_string() const {
    return "(" + std::to_string(x) + "," + std::to_string(y) + ")";
}

FabricGeometry::FabricGeometry(int width, int height)
    : FabricGeometry(make_topology(TopologyKind::Grid, width, height)) {}

FabricGeometry::FabricGeometry(std::shared_ptr<const Topology> topology)
    : topology_(std::move(topology)) {
    LEQA_REQUIRE(topology_ != nullptr, "fabric geometry needs a topology");
}

int FabricGeometry::width() const { return topology_->width(); }

int FabricGeometry::height() const { return topology_->height(); }

std::size_t FabricGeometry::num_ulbs() const { return topology_->num_ulbs(); }

std::size_t FabricGeometry::num_segments() const { return topology_->num_segments(); }

bool FabricGeometry::in_bounds(UlbCoord c) const { return topology_->in_bounds(c); }

UlbId FabricGeometry::ulb_id(UlbCoord c) const { return topology_->ulb_id(c); }

UlbCoord FabricGeometry::ulb_coord(UlbId id) const { return topology_->ulb_coord(id); }

SegmentId FabricGeometry::segment_between(UlbCoord a, UlbCoord b) const {
    return topology_->segment_between(topology_->ulb_id(a), topology_->ulb_id(b));
}

int FabricGeometry::manhattan(UlbCoord a, UlbCoord b) const {
    return topology_->distance(a, b);
}

std::vector<SegmentId> FabricGeometry::route(UlbCoord a, UlbCoord b) const {
    LEQA_REQUIRE(in_bounds(a) && in_bounds(b), "ULB coordinate out of bounds");
    return topology_->route(a, b);
}

std::vector<UlbCoord> FabricGeometry::ring(UlbCoord center, int r) const {
    return topology_->ring(center, r);
}

std::vector<UlbCoord> FabricGeometry::neighbors(UlbCoord c) const {
    std::vector<UlbCoord> out;
    for (const auto id : topology_->neighbors(topology_->ulb_id(c))) {
        out.push_back(topology_->ulb_coord(static_cast<UlbId>(id)));
    }
    return out;
}

UlbCoord FabricGeometry::midpoint(UlbCoord a, UlbCoord b) const {
    return topology_->midpoint(a, b);
}

} // namespace leqa::fabric

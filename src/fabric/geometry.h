/// \file geometry.h
/// \brief Fabric geometry of the tiled quantum architecture (paper Figure 1).
///
/// The fabric is a `width x height` coordinate space of ULBs separated by
/// routing channels.  We model each channel as the set of unit *segments*
/// between adjacent ULBs; quantum crossbars sit at the junctions and are
/// absorbed into the segment hop cost.
///
/// `FabricGeometry` is a coordinate-level view over a `fabric::Topology`
/// (see topology.h): which ULBs are adjacent, what the hop metric is, and
/// what a shortest route looks like all come from the topology's CSR
/// adjacency.  The historical `FabricGeometry(width, height)` constructor
/// keeps building the paper's square grid.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace leqa::fabric {

class Topology;

/// ULB coordinates (x column, y row), zero-based.
struct UlbCoord {
    int x = 0;
    int y = 0;

    [[nodiscard]] bool operator==(const UlbCoord&) const = default;
    [[nodiscard]] std::string to_string() const;
};

/// Dense ULB index.
using UlbId = std::int32_t;

/// Dense channel-segment index.
using SegmentId = std::int32_t;

class FabricGeometry {
public:
    /// The paper's open-boundary grid (back-compat constructor).
    FabricGeometry(int width, int height);

    /// A view over an explicit topology (grid, torus, line, ...).
    explicit FabricGeometry(std::shared_ptr<const Topology> topology);

    [[nodiscard]] const Topology& topology() const { return *topology_; }
    [[nodiscard]] const std::shared_ptr<const Topology>& topology_ptr() const {
        return topology_;
    }

    [[nodiscard]] int width() const;
    [[nodiscard]] int height() const;
    [[nodiscard]] std::size_t num_ulbs() const;
    /// Number of channel segments (topology-dependent; on a grid:
    /// (width-1)*height horizontal + width*(height-1) vertical).
    [[nodiscard]] std::size_t num_segments() const;

    [[nodiscard]] bool in_bounds(UlbCoord c) const;
    [[nodiscard]] UlbId ulb_id(UlbCoord c) const;
    [[nodiscard]] UlbCoord ulb_coord(UlbId id) const;

    /// Segment between two adjacent ULBs; throws InputError if not adjacent.
    [[nodiscard]] SegmentId segment_between(UlbCoord a, UlbCoord b) const;

    /// Hop count of a shortest route between ULBs (Manhattan distance on a
    /// grid; wrap-aware on a torus).
    [[nodiscard]] int manhattan(UlbCoord a, UlbCoord b) const;

    /// Deterministic shortest route a -> b as a segment sequence (empty
    /// when a == b).  Dimension-ordered XY on a grid; BFS next-hop tables
    /// on other topologies.
    [[nodiscard]] std::vector<SegmentId> route(UlbCoord a, UlbCoord b) const;

    /// Historical name for `route` (grid routes are XY dimension-ordered).
    [[nodiscard]] std::vector<SegmentId> xy_route(UlbCoord a, UlbCoord b) const {
        return route(a, b);
    }

    /// ULBs at ring radius r around center in deterministic order; r = 0
    /// yields {center}.  Rings for r = 0..max(width, height) cover every
    /// ULB exactly once.
    [[nodiscard]] std::vector<UlbCoord> ring(UlbCoord center, int r) const;

    /// The topology-adjacent neighbors of a ULB (ascending by ULB id).
    [[nodiscard]] std::vector<UlbCoord> neighbors(UlbCoord c) const;

    /// A ULB "between" two coordinates (componentwise average on a grid).
    [[nodiscard]] UlbCoord midpoint(UlbCoord a, UlbCoord b) const;

private:
    std::shared_ptr<const Topology> topology_;
};

} // namespace leqa::fabric

/// \file geometry.h
/// \brief Grid geometry of the tiled quantum architecture (paper Figure 1).
///
/// The fabric is a `width x height` grid of ULBs separated by routing
/// channels.  We model each channel as the set of unit *segments* between
/// horizontally or vertically adjacent ULBs; quantum crossbars sit at the
/// junctions and are absorbed into the segment hop cost.  A qubit route is
/// a sequence of segments produced by dimension-ordered (XY) routing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace leqa::fabric {

/// ULB coordinates (x column, y row), zero-based.
struct UlbCoord {
    int x = 0;
    int y = 0;

    [[nodiscard]] bool operator==(const UlbCoord&) const = default;
    [[nodiscard]] std::string to_string() const;
};

/// Dense ULB index.
using UlbId = std::int32_t;

/// Dense channel-segment index.
using SegmentId = std::int32_t;

class FabricGeometry {
public:
    FabricGeometry(int width, int height);

    [[nodiscard]] int width() const { return width_; }
    [[nodiscard]] int height() const { return height_; }
    [[nodiscard]] std::size_t num_ulbs() const {
        return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
    }
    /// Number of channel segments: (width-1)*height horizontal +
    /// width*(height-1) vertical.
    [[nodiscard]] std::size_t num_segments() const;

    [[nodiscard]] bool in_bounds(UlbCoord c) const;
    [[nodiscard]] UlbId ulb_id(UlbCoord c) const;
    [[nodiscard]] UlbCoord ulb_coord(UlbId id) const;

    /// Segment between two adjacent ULBs; throws InputError if not adjacent.
    [[nodiscard]] SegmentId segment_between(UlbCoord a, UlbCoord b) const;

    /// Manhattan distance between ULBs (hop count of a shortest route).
    [[nodiscard]] int manhattan(UlbCoord a, UlbCoord b) const;

    /// Dimension-ordered route a -> b: all X moves then all Y moves.
    /// Returns the segment sequence (empty when a == b).
    [[nodiscard]] std::vector<SegmentId> xy_route(UlbCoord a, UlbCoord b) const;

    /// ULBs at L-infinity ring radius r around center, clipped to bounds,
    /// in deterministic scan order.  r = 0 yields {center}.
    [[nodiscard]] std::vector<UlbCoord> ring(UlbCoord center, int r) const;

    /// The 2-4 orthogonal neighbors of a ULB.
    [[nodiscard]] std::vector<UlbCoord> neighbors(UlbCoord c) const;

    /// Midpoint ULB of two coordinates (componentwise average, floor).
    [[nodiscard]] UlbCoord midpoint(UlbCoord a, UlbCoord b) const;

private:
    int width_;
    int height_;
};

} // namespace leqa::fabric

#include "fabric/params.h"

#include <sstream>

#include "parser/io.h"
#include "util/error.h"
#include "util/strings.h"

namespace leqa::fabric {

TopologyKind parse_topology_kind(const std::string& name) {
    const std::string lowered = util::to_lower(name);
    if (lowered == "grid" || lowered == "mesh") return TopologyKind::Grid;
    if (lowered == "torus") return TopologyKind::Torus;
    if (lowered == "line" || lowered == "row" || lowered == "ion-trap-row") {
        return TopologyKind::Line;
    }
    throw util::InputError("unknown fabric topology: '" + name +
                           "' (expected grid, torus, or line)");
}

std::string topology_kind_name(TopologyKind kind) {
    switch (kind) {
        case TopologyKind::Grid: return "grid";
        case TopologyKind::Torus: return "torus";
        case TopologyKind::Line: return "line";
    }
    return "?";
}

double PhysicalParams::delay_us(circuit::GateKind kind) const {
    using circuit::GateKind;
    switch (kind) {
        case GateKind::H: return d_h_us;
        case GateKind::T:
        case GateKind::Tdg: return d_t_us;
        case GateKind::X:
        case GateKind::Y:
        case GateKind::Z: return d_pauli_us;
        case GateKind::S:
        case GateKind::Sdg: return d_s_us;
        case GateKind::Cnot: return d_cnot_us;
        default:
            throw util::InputError("no FT delay for gate kind '" +
                                   circuit::gate_name(kind) +
                                   "' (run FT synthesis first)");
    }
}

void PhysicalParams::validate() const {
    LEQA_REQUIRE(d_h_us > 0 && d_t_us > 0 && d_pauli_us > 0 && d_s_us > 0 && d_cnot_us > 0,
                 "gate delays must be positive");
    LEQA_REQUIRE(nc >= 1, "channel capacity Nc must be >= 1");
    LEQA_REQUIRE(v > 0, "qubit speed v must be positive");
    LEQA_REQUIRE(width >= 1 && height >= 1, "fabric dimensions must be >= 1");
    LEQA_REQUIRE(t_move_us > 0, "Tmove must be positive");
    LEQA_REQUIRE(topology != TopologyKind::Line || height == 1,
                 "line topology requires height = 1 (got height = " +
                     std::to_string(height) + "); use a " +
                     std::to_string(static_cast<long long>(width) * height) +
                     "x1 fabric for the same area");
}

std::string PhysicalParams::to_config() const {
    std::ostringstream out;
    out << "# TQA physical parameters (all delays in microseconds)\n";
    out << "d_h = " << d_h_us << '\n';
    out << "d_t = " << d_t_us << '\n';
    out << "d_pauli = " << d_pauli_us << '\n';
    out << "d_s = " << d_s_us << '\n';
    out << "d_cnot = " << d_cnot_us << '\n';
    out << "nc = " << nc << '\n';
    out << "v = " << v << '\n';
    out << "width = " << width << '\n';
    out << "height = " << height << '\n';
    out << "t_move = " << t_move_us << '\n';
    out << "topology = " << topology_kind_name(topology) << '\n';
    return out.str();
}

PhysicalParams PhysicalParams::from_config(const std::string& text) {
    PhysicalParams params;
    std::istringstream in(text);
    std::string raw_line;
    std::size_t line_number = 0;
    while (std::getline(in, raw_line)) {
        ++line_number;
        const auto hash = raw_line.find('#');
        const std::string line =
            util::trim(hash == std::string::npos ? raw_line : raw_line.substr(0, hash));
        if (line.empty()) continue;
        const auto eq = line.find('=');
        LEQA_REQUIRE(eq != std::string::npos,
                     "config line " + std::to_string(line_number) + ": expected 'key = value'");
        const std::string key = util::to_lower(util::trim(line.substr(0, eq)));
        const std::string value_text = util::trim(line.substr(eq + 1));
        if (key == "topology") { // the one non-numeric key
            params.topology = parse_topology_kind(value_text);
            continue;
        }
        const auto value = util::parse_double(value_text);
        LEQA_REQUIRE(value.has_value(),
                     "config line " + std::to_string(line_number) + ": bad number '" +
                         value_text + "'");
        if (key == "d_h") params.d_h_us = *value;
        else if (key == "d_t") params.d_t_us = *value;
        else if (key == "d_pauli") params.d_pauli_us = *value;
        else if (key == "d_s") params.d_s_us = *value;
        else if (key == "d_cnot") params.d_cnot_us = *value;
        else if (key == "nc") params.nc = static_cast<int>(*value);
        else if (key == "v") params.v = *value;
        else if (key == "width") params.width = static_cast<int>(*value);
        else if (key == "height") params.height = static_cast<int>(*value);
        else if (key == "t_move") params.t_move_us = *value;
        else {
            throw util::InputError("config line " + std::to_string(line_number) +
                                   ": unknown key '" + key + "'");
        }
    }
    params.validate();
    return params;
}

PhysicalParams PhysicalParams::load(const std::string& path) {
    return from_config(parser::read_file(path));
}

void PhysicalParams::save(const std::string& path) const {
    parser::write_file(path, to_config());
}

} // namespace leqa::fabric

/// \file params.h
/// \brief Physical parameters of the tiled quantum architecture (paper
///        Table 1).
///
/// Defaults reproduce the paper's setup: an ion-trap fabric with the
/// [[7,1,3]] Steane code, whose non-transversal T / T-dagger gates are
/// roughly twice as slow as the transversal gates, a 60x60 ULB grid,
/// channel capacity Nc = 5, qubit move time Tmove = 100 us, and the LEQA
/// speed/tuning parameter v = 0.001.  All delays are microseconds.
#pragma once

#include <string>

#include "circuit/circuit.h"

namespace leqa::fabric {

/// Interconnect topology of the ULB fabric (see fabric/topology.h).
enum class TopologyKind {
    Grid,  ///< a x b mesh with open boundaries (the paper's fabric)
    Torus, ///< a x b mesh with wraparound channels on both axes
    Line,  ///< 1D ion-trap row (height must be 1)
};

[[nodiscard]] TopologyKind parse_topology_kind(const std::string& name);
[[nodiscard]] std::string topology_kind_name(TopologyKind kind);

struct PhysicalParams {
    // --- FT operation delays (Table 1, left column) -----------------------
    double d_h_us = 5440.0;      ///< Hadamard
    double d_t_us = 10940.0;     ///< T and T-dagger (non-transversal in Steane)
    double d_pauli_us = 5240.0;  ///< X, Y, Z
    double d_s_us = 5240.0;      ///< S / S-dagger (transversal in Steane)
    double d_cnot_us = 4930.0;   ///< CNOT

    // --- TQA specification (Table 1, right column) ------------------------
    int nc = 5;                  ///< routing channel capacity
    double v = 0.001;            ///< logical-qubit speed / LEQA tuning knob
    int width = 60;              ///< fabric width a (ULBs)
    int height = 60;             ///< fabric height b (ULBs)
    double t_move_us = 100.0;    ///< single-hop move time Tmove
    TopologyKind topology = TopologyKind::Grid; ///< ULB interconnect shape

    /// Delay of one FT operation kind.  Throws InputError for non-FT kinds
    /// (Toffoli etc. must be synthesized away first).
    [[nodiscard]] double delay_us(circuit::GateKind kind) const;

    /// Total fabric area A = width * height (number of ULBs).
    [[nodiscard]] long long area() const {
        return static_cast<long long>(width) * height;
    }

    /// Average routing latency of one-qubit operations, L_g^avg = 2 * Tmove
    /// (the paper's empirical value, §3).
    [[nodiscard]] double one_qubit_routing_latency_us() const { return 2.0 * t_move_us; }

    /// Throws InputError when any parameter is non-physical.
    void validate() const;

    /// Serialize as "key = value" lines.
    [[nodiscard]] std::string to_config() const;

    /// Parse "key = value" lines ('#' comments allowed).  Unknown keys are
    /// an error; missing keys keep their defaults.
    static PhysicalParams from_config(const std::string& text);

    /// Convenience file round-trips.
    static PhysicalParams load(const std::string& path);
    void save(const std::string& path) const;

    [[nodiscard]] bool operator==(const PhysicalParams&) const = default;
};

} // namespace leqa::fabric

#include "fabric/topology.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <set>

#include "util/error.h"

namespace leqa::fabric {

namespace {

constexpr UlbId kNoUlb = -1;

/// Keep at most this many per-destination BFS next-hop tables alive; the
/// cache is cleared wholesale when it would outgrow the cap.
constexpr std::size_t kMaxCachedDestinations = 1024;

[[nodiscard]] std::uint64_t pack_pair(UlbId a, UlbId b) {
    const auto lo = static_cast<std::uint64_t>(std::min(a, b));
    const auto hi = static_cast<std::uint64_t>(std::max(a, b));
    return (hi << 32) | lo;
}

} // namespace

// ------------------------------------------------------ CoverageHistogram --

CoverageHistogram CoverageHistogram::build(int a, int b, int zone_side) {
    LEQA_REQUIRE(a >= 1 && b >= 1, "fabric dimensions must be >= 1");
    LEQA_REQUIRE(zone_side >= 1 && zone_side <= std::min(a, b),
                 "zone side must be in [1, min(a, b)]");
    const int s = zone_side;

    // Along one axis of length `len`, Eq. 5's count min{x, len-x+1, s,
    // len-s+1} takes at most min(s, len-s+1) distinct values; tally how
    // many coordinates produce each.
    const auto axis_counts = [s](int len) {
        const int cap = std::min(s, len - s + 1);
        std::vector<double> count(static_cast<std::size_t>(cap) + 1, 0.0);
        for (int x = 1; x <= len; ++x) {
            const int n = std::min({x, len - x + 1, s, len - s + 1});
            count[static_cast<std::size_t>(n)] += 1.0;
        }
        return count;
    };
    const std::vector<double> cx = axis_counts(a);
    const std::vector<double> cy = axis_counts(b);

    // Cross the two axes on the integer product nx * ny, merging products
    // that coincide (1*4 == 2*2): at most (cap_a * cap_b) <= s^2 bins.
    const std::size_t max_product = (cx.size() - 1) * (cy.size() - 1);
    std::vector<double> product_count(max_product + 1, 0.0);
    for (std::size_t i = 1; i < cx.size(); ++i) {
        if (cx[i] == 0.0) continue;
        for (std::size_t j = 1; j < cy.size(); ++j) {
            if (cy[j] == 0.0) continue;
            product_count[i * j] += cx[i] * cy[j];
        }
    }

    const double denom =
        static_cast<double>(a - s + 1) * static_cast<double>(b - s + 1);
    CoverageHistogram histogram;
    histogram.cells_ = static_cast<double>(a) * static_cast<double>(b);
    for (std::size_t product = 1; product <= max_product; ++product) {
        if (product_count[product] == 0.0) continue;
        histogram.bins_.push_back(
            Bin{static_cast<double>(product) / denom, product_count[product]});
    }
    return histogram;
}

CoverageHistogram CoverageHistogram::from_bins(std::vector<Bin> bins, double cells) {
    LEQA_REQUIRE(cells > 0.0, "coverage histogram needs a positive cell count");
    CoverageHistogram histogram;
    histogram.bins_ = std::move(bins);
    histogram.cells_ = cells;
    return histogram;
}

// --------------------------------------------------------------- Topology --

Topology::Topology(TopologyKind kind, int width, int height)
    : kind_(kind), width_(width), height_(height) {
    LEQA_REQUIRE(width >= 1 && height >= 1, "fabric dimensions must be >= 1");
}

UlbId Topology::ulb_id(UlbCoord c) const {
    LEQA_REQUIRE(in_bounds(c), "ULB coordinate out of bounds: " + c.to_string());
    return static_cast<UlbId>(c.y) * width_ + c.x;
}

UlbCoord Topology::ulb_coord(UlbId id) const {
    LEQA_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < num_ulbs(),
                 "ULB id out of range");
    return UlbCoord{id % width_, id / width_};
}

void Topology::ensure_adjacency() const {
    std::call_once(adjacency_once_, [&] {
        segment_ends_ = build_segments();
        graph::CsrBuilder builder(num_ulbs());
        builder.reserve_edges(2 * segment_ends_.size());
        std::unordered_map<std::uint64_t, SegmentId> segment_of;
        segment_of.reserve(segment_ends_.size());
        for (std::size_t s = 0; s < segment_ends_.size(); ++s) {
            const auto [u, v] = segment_ends_[s];
            builder.add_edge(static_cast<graph::NodeId>(u),
                             static_cast<graph::NodeId>(v));
            builder.add_edge(static_cast<graph::NodeId>(v),
                             static_cast<graph::NodeId>(u));
            const bool inserted =
                segment_of.emplace(pack_pair(u, v), static_cast<SegmentId>(s)).second;
            LEQA_CHECK(inserted, "duplicate segment between one ULB pair");
        }
        adjacency_ = builder.build(/*merge_parallel=*/false);

        // Align one segment id with every directed arc of the CSR.
        arc_segments_.resize(adjacency_.num_edges());
        for (graph::NodeId u = 0; u < adjacency_.num_nodes(); ++u) {
            const auto successors = adjacency_.successors(u);
            const std::size_t base =
                static_cast<std::size_t>(successors.data() -
                                         adjacency_.successors(0).data());
            for (std::size_t i = 0; i < successors.size(); ++i) {
                const auto key = pack_pair(static_cast<UlbId>(u),
                                           static_cast<UlbId>(successors[i]));
                arc_segments_[base + i] = segment_of.at(key);
            }
        }
    });
}

const graph::CsrDigraph& Topology::adjacency() const {
    ensure_adjacency();
    return adjacency_;
}

std::span<const graph::NodeId> Topology::neighbors(UlbId u) const {
    ensure_adjacency();
    LEQA_REQUIRE(u >= 0 && static_cast<std::size_t>(u) < num_ulbs(),
                 "ULB id out of range");
    return adjacency_.successors(static_cast<graph::NodeId>(u));
}

std::span<const SegmentId> Topology::neighbor_segments(UlbId u) const {
    ensure_adjacency();
    LEQA_REQUIRE(u >= 0 && static_cast<std::size_t>(u) < num_ulbs(),
                 "ULB id out of range");
    const auto successors = adjacency_.successors(static_cast<graph::NodeId>(u));
    const std::size_t base = static_cast<std::size_t>(
        successors.data() - adjacency_.successors(0).data());
    return {arc_segments_.data() + base, successors.size()};
}

SegmentId Topology::segment_between(UlbId a, UlbId b) const {
    const auto nodes = neighbors(a);
    const auto segments = neighbor_segments(a);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (static_cast<UlbId>(nodes[i]) == b) return segments[i];
    }
    throw util::InputError("ULBs are not adjacent: " + ulb_coord(a).to_string() +
                           " and " + ulb_coord(b).to_string());
}

bool Topology::adjacent(UlbId a, UlbId b) const {
    const auto nodes = neighbors(a);
    return std::find(nodes.begin(), nodes.end(), static_cast<graph::NodeId>(b)) !=
           nodes.end();
}

std::pair<UlbId, UlbId> Topology::segment_endpoints(SegmentId segment) const {
    ensure_adjacency();
    LEQA_REQUIRE(segment >= 0 &&
                     static_cast<std::size_t>(segment) < segment_ends_.size(),
                 "segment id out of range");
    return segment_ends_[static_cast<std::size_t>(segment)];
}

const Topology::NextHops& Topology::next_hops_toward(UlbId destination) const {
    // LEQA_REQUIRES(route_mutex_) enforces the caller-holds-the-lock
    // contract that used to live in a comment here.
    const auto cached = next_hop_cache_.find(destination);
    if (cached != next_hop_cache_.end()) return cached->second;
    if (next_hop_cache_.size() >= kMaxCachedDestinations) next_hop_cache_.clear();

    // BFS from the destination over the CSR adjacency: discovering node y
    // from node x means x is y's next hop toward the destination.  Neighbor
    // lists are ascending by id, so the table (and every route read off it)
    // is deterministic.
    NextHops table;
    table.via_node.assign(num_ulbs(), kNoUlb);
    table.via_segment.assign(num_ulbs(), -1);
    table.via_node[static_cast<std::size_t>(destination)] = destination;
    std::deque<UlbId> frontier{destination};
    while (!frontier.empty()) {
        const UlbId x = frontier.front();
        frontier.pop_front();
        const auto nodes = neighbors(x);
        const auto segments = neighbor_segments(x);
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            const auto y = static_cast<UlbId>(nodes[i]);
            auto& via = table.via_node[static_cast<std::size_t>(y)];
            if (via != kNoUlb) continue;
            via = x;
            table.via_segment[static_cast<std::size_t>(y)] = segments[i];
            frontier.push_back(y);
        }
    }
    return next_hop_cache_.emplace(destination, std::move(table)).first->second;
}

int Topology::square_zone_extent(double zone_area) const {
    LEQA_REQUIRE(zone_area >= 0.0, "zone area must be non-negative");
    const int side = static_cast<int>(std::ceil(std::sqrt(zone_area) - 1e-12));
    return std::clamp(side, 1, std::min(width_, height_));
}

std::vector<SegmentId> Topology::route(UlbCoord a, UlbCoord b) const {
    const UlbId source = ulb_id(a);
    const UlbId target = ulb_id(b);
    if (source == target) return {};

    const util::MutexLock lock(route_mutex_);
    const NextHops& table = next_hops_toward(target);
    std::vector<SegmentId> segments;
    segments.reserve(static_cast<std::size_t>(distance(a, b)));
    UlbId cursor = source;
    while (cursor != target) {
        const auto idx = static_cast<std::size_t>(cursor);
        LEQA_CHECK(table.via_node[idx] != kNoUlb,
                   "fabric topology is disconnected: no route " + a.to_string() +
                       " -> " + b.to_string());
        segments.push_back(table.via_segment[idx]);
        cursor = table.via_node[idx];
    }
    return segments;
}

// ----------------------------------------------------------- GridTopology --

GridTopology::GridTopology(int width, int height)
    : GridTopology(TopologyKind::Grid, width, height) {}

GridTopology::GridTopology(TopologyKind kind, int width, int height)
    : Topology(kind, width, height) {}

std::size_t GridTopology::num_segments() const {
    return static_cast<std::size_t>(width() - 1) * height() +
           static_cast<std::size_t>(width()) * (height() - 1);
}

std::vector<std::pair<UlbId, UlbId>> GridTopology::build_segments() const {
    // Canonical numbering preserved from the pre-topology FabricGeometry:
    // horizontal segment (x, y)-(x+1, y) has id y*(width-1) + x; vertical
    // segments follow with id H + y*width + x for (x, y)-(x, y+1).
    std::vector<std::pair<UlbId, UlbId>> segments;
    segments.reserve(num_segments());
    for (int y = 0; y < height(); ++y) {
        for (int x = 0; x + 1 < width(); ++x) {
            segments.emplace_back(ulb_id({x, y}), ulb_id({x + 1, y}));
        }
    }
    for (int y = 0; y + 1 < height(); ++y) {
        for (int x = 0; x < width(); ++x) {
            segments.emplace_back(ulb_id({x, y}), ulb_id({x, y + 1}));
        }
    }
    return segments;
}

int GridTopology::distance(UlbCoord a, UlbCoord b) const {
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

std::vector<SegmentId> GridTopology::route(UlbCoord a, UlbCoord b) const {
    LEQA_REQUIRE(in_bounds(a) && in_bounds(b), "ULB coordinate out of bounds");
    // Legacy dimension-ordered XY walk with closed-form segment ids: grid
    // routes (and therefore grid QSPR mappings) stay bit-exact.
    const int horizontal_count = (width() - 1) * height();
    std::vector<SegmentId> segments;
    segments.reserve(static_cast<std::size_t>(distance(a, b)));
    UlbCoord cursor = a;
    const int step_x = b.x > a.x ? 1 : -1;
    while (cursor.x != b.x) {
        const int min_x = std::min(cursor.x, cursor.x + step_x);
        segments.push_back(static_cast<SegmentId>(cursor.y) * (width() - 1) + min_x);
        cursor.x += step_x;
    }
    const int step_y = b.y > a.y ? 1 : -1;
    while (cursor.y != b.y) {
        const int min_y = std::min(cursor.y, cursor.y + step_y);
        segments.push_back(static_cast<SegmentId>(horizontal_count) +
                           min_y * width() + cursor.x);
        cursor.y += step_y;
    }
    return segments;
}

std::vector<UlbCoord> GridTopology::ring(UlbCoord center, int r) const {
    LEQA_REQUIRE(r >= 0, "ring radius must be non-negative");
    std::vector<UlbCoord> out;
    if (r == 0) {
        if (in_bounds(center)) out.push_back(center);
        return out;
    }
    // Top and bottom rows of the ring, then the side columns.
    for (int x = center.x - r; x <= center.x + r; ++x) {
        const UlbCoord top{x, center.y - r};
        if (in_bounds(top)) out.push_back(top);
        const UlbCoord bottom{x, center.y + r};
        if (in_bounds(bottom)) out.push_back(bottom);
    }
    for (int y = center.y - r + 1; y <= center.y + r - 1; ++y) {
        const UlbCoord left{center.x - r, y};
        if (in_bounds(left)) out.push_back(left);
        const UlbCoord right{center.x + r, y};
        if (in_bounds(right)) out.push_back(right);
    }
    return out;
}

UlbCoord GridTopology::midpoint(UlbCoord a, UlbCoord b) const {
    return UlbCoord{(a.x + b.x) / 2, (a.y + b.y) / 2};
}

int GridTopology::zone_extent(double zone_area) const {
    return square_zone_extent(zone_area);
}

CoverageHistogram GridTopology::coverage_histogram(int zone_extent) const {
    return CoverageHistogram::build(width(), height(), zone_extent);
}

// ---------------------------------------------------------- TorusTopology --

TorusTopology::TorusTopology(int width, int height)
    : Topology(TopologyKind::Torus, width, height) {}

std::size_t TorusTopology::num_segments() const {
    std::size_t count = static_cast<std::size_t>(width() - 1) * height() +
                        static_cast<std::size_t>(width()) * (height() - 1);
    // Wrap channels only along dimensions >= 3: on a dimension of 2 the
    // wrap would duplicate the direct segment, and on 1 it is a self loop.
    if (width() >= 3) count += static_cast<std::size_t>(height());
    if (height() >= 3) count += static_cast<std::size_t>(width());
    return count;
}

std::vector<std::pair<UlbId, UlbId>> TorusTopology::build_segments() const {
    // Grid segments first in the grid-canonical order, wrap channels after
    // (rows, then columns), so the grid sub-numbering is stable.
    std::vector<std::pair<UlbId, UlbId>> segments;
    segments.reserve(num_segments());
    for (int y = 0; y < height(); ++y) {
        for (int x = 0; x + 1 < width(); ++x) {
            segments.emplace_back(ulb_id({x, y}), ulb_id({x + 1, y}));
        }
    }
    for (int y = 0; y + 1 < height(); ++y) {
        for (int x = 0; x < width(); ++x) {
            segments.emplace_back(ulb_id({x, y}), ulb_id({x, y + 1}));
        }
    }
    if (width() >= 3) {
        for (int y = 0; y < height(); ++y) {
            segments.emplace_back(ulb_id({width() - 1, y}), ulb_id({0, y}));
        }
    }
    if (height() >= 3) {
        for (int x = 0; x < width(); ++x) {
            segments.emplace_back(ulb_id({x, height() - 1}), ulb_id({x, 0}));
        }
    }
    return segments;
}

int TorusTopology::distance(UlbCoord a, UlbCoord b) const {
    const int dx = std::abs(a.x - b.x);
    const int dy = std::abs(a.y - b.y);
    return std::min(dx, width() - dx) + std::min(dy, height() - dy);
}

std::vector<UlbCoord> TorusTopology::ring(UlbCoord center, int r) const {
    LEQA_REQUIRE(r >= 0, "ring radius must be non-negative");
    LEQA_REQUIRE(in_bounds(center), "ULB coordinate out of bounds");
    if (r == 0) return {center};

    // Walk the grid ring's offset pattern, wrap every coordinate, and keep
    // only cells whose *torus* L-infinity distance is exactly r: cells the
    // wrap brings closer belong to an earlier ring, and cells reachable
    // from two offsets are emitted once.
    const auto wrap = [](int value, int dim) {
        value %= dim;
        return value < 0 ? value + dim : value;
    };
    const auto torus_chebyshev = [&](UlbCoord c) {
        const int dx = std::abs(c.x - center.x);
        const int dy = std::abs(c.y - center.y);
        return std::max(std::min(dx, width() - dx), std::min(dy, height() - dy));
    };
    std::vector<UlbCoord> out;
    std::set<std::pair<int, int>> seen;
    const auto emit = [&](int dx, int dy) {
        const UlbCoord c{wrap(center.x + dx, width()), wrap(center.y + dy, height())};
        if (torus_chebyshev(c) != r) return;
        if (!seen.insert({c.x, c.y}).second) return;
        out.push_back(c);
    };
    for (int dx = -r; dx <= r; ++dx) {
        emit(dx, -r);
        emit(dx, r);
    }
    for (int dy = -r + 1; dy <= r - 1; ++dy) {
        emit(-r, dy);
        emit(r, dy);
    }
    return out;
}

int TorusTopology::wrap_delta(int d, int dim) const {
    // Reduce a coordinate delta to the shortest wrap direction, preferring
    // the positive direction on ties.
    d %= dim;
    if (d > dim / 2) d -= dim;
    if (d < -(dim - 1) / 2) d += dim;
    return d;
}

UlbCoord TorusTopology::midpoint(UlbCoord a, UlbCoord b) const {
    const auto wrap = [](int value, int dim) {
        value %= dim;
        return value < 0 ? value + dim : value;
    };
    const int dx = wrap_delta(b.x - a.x, width());
    const int dy = wrap_delta(b.y - a.y, height());
    return UlbCoord{wrap(a.x + dx / 2, width()), wrap(a.y + dy / 2, height())};
}

int TorusTopology::zone_extent(double zone_area) const {
    return square_zone_extent(zone_area);
}

CoverageHistogram TorusTopology::coverage_histogram(int zone_extent) const {
    LEQA_REQUIRE(zone_extent >= 1 && zone_extent <= std::min(width(), height()),
                 "zone extent must be in [1, min(a, b)]");
    // Translation invariance: an s x s zone anchored uniformly over all
    // a*b wrapped positions covers every ULB with the same probability
    // s^2 / (a*b) -- the entire Eq. 5 table is one bin.
    const double cells = static_cast<double>(width()) * height();
    const double probability =
        static_cast<double>(zone_extent) * static_cast<double>(zone_extent) / cells;
    return CoverageHistogram::from_bins(
        {CoverageHistogram::Bin{probability, cells}}, cells);
}

// ----------------------------------------------------------- LineTopology --

LineTopology::LineTopology(int width, int height)
    : GridTopology(TopologyKind::Line, width, height) {
    LEQA_REQUIRE(height == 1, "line topology requires height = 1 (got height = " +
                                  std::to_string(height) + ")");
}

int LineTopology::zone_extent(double zone_area) const {
    LEQA_REQUIRE(zone_area >= 0.0, "zone area must be non-negative");
    // A presence zone of area B occupies a 1 x ceil(B) interval of the row.
    const int extent = static_cast<int>(std::ceil(zone_area - 1e-12));
    return std::clamp(extent, 1, width());
}

CoverageHistogram LineTopology::coverage_histogram(int zone_extent) const {
    const int a = width();
    const int s = zone_extent;
    LEQA_REQUIRE(s >= 1 && s <= a, "zone extent must be in [1, width]");
    // The 1D analogue of Eq. 5: an interval of length s anchored uniformly
    // over the a-s+1 in-bounds positions covers cell x (1-based) with
    // probability min{x, a-x+1, s, a-s+1} / (a-s+1): at most min(s, a-s+1)
    // distinct values.
    const int cap = std::min(s, a - s + 1);
    std::vector<double> count(static_cast<std::size_t>(cap) + 1, 0.0);
    for (int x = 1; x <= a; ++x) {
        const int n = std::min({x, a - x + 1, s, a - s + 1});
        count[static_cast<std::size_t>(n)] += 1.0;
    }
    const double denom = static_cast<double>(a - s + 1);
    std::vector<CoverageHistogram::Bin> bins;
    for (int n = 1; n <= cap; ++n) {
        if (count[static_cast<std::size_t>(n)] == 0.0) continue;
        bins.push_back(CoverageHistogram::Bin{static_cast<double>(n) / denom,
                                              count[static_cast<std::size_t>(n)]});
    }
    return CoverageHistogram::from_bins(std::move(bins), static_cast<double>(a));
}

// ----------------------------------------------------------- validation --

std::string validate_coverage(const CoverageHistogram& histogram,
                              double expected_mass) {
    double multiplicity_sum = 0.0;
    double mass = 0.0;
    for (std::size_t i = 0; i < histogram.bins().size(); ++i) {
        const CoverageHistogram::Bin& bin = histogram.bins()[i];
        if (!(bin.probability > 0.0) || bin.probability > 1.0 + 1e-12) {
            return "coverage: bin " + std::to_string(i) + " probability " +
                   std::to_string(bin.probability) + " outside (0, 1]";
        }
        if (!(bin.multiplicity > 0.0)) {
            return "coverage: bin " + std::to_string(i) + " has non-positive "
                   "multiplicity " + std::to_string(bin.multiplicity);
        }
        multiplicity_sum += bin.multiplicity;
        mass += bin.probability * bin.multiplicity;
    }
    const auto rel_mismatch = [](double actual, double expected) {
        return std::abs(actual - expected) >
               1e-6 * std::max({std::abs(expected), std::abs(actual), 1.0});
    };
    if (rel_mismatch(multiplicity_sum, histogram.cells())) {
        return "coverage: bin multiplicities sum to " +
               std::to_string(multiplicity_sum) + ", expected cells() = " +
               std::to_string(histogram.cells());
    }
    if (rel_mismatch(mass, expected_mass)) {
        return "coverage: expected covered area " + std::to_string(mass) +
               " != zone area " + std::to_string(expected_mass) +
               " (Eq. 5 mass conservation)";
    }
    return {};
}

std::string validate_topology(const Topology& topology, std::size_t max_pairs) {
    // The adjacency is a symmetric encoding of an undirected graph, so it
    // is cyclic by construction — validate structure only.
    if (std::string err = graph::validate_csr(topology.adjacency().offsets(),
                                              topology.adjacency().targets(),
                                              /*topological=*/false,
                                              /*acyclic=*/false);
        !err.empty()) {
        return "topology adjacency: " + err;
    }
    const std::size_t n = topology.num_ulbs();
    if (topology.adjacency().num_nodes() != n) {
        return "topology: adjacency covers " +
               std::to_string(topology.adjacency().num_nodes()) + " nodes for " +
               std::to_string(n) + " ULBs";
    }
    if (topology.adjacency().num_edges() != 2 * topology.num_segments()) {
        return "topology: " + std::to_string(topology.num_segments()) +
               " segments must appear as " +
               std::to_string(2 * topology.num_segments()) + " arcs, found " +
               std::to_string(topology.adjacency().num_edges());
    }

    // Segment-table closure: every segment's endpoints resolve back to it,
    // and every arc's aligned segment id connects exactly its arc.
    for (SegmentId s = 0; static_cast<std::size_t>(s) < topology.num_segments();
         ++s) {
        const auto [u, v] = topology.segment_endpoints(s);
        if (u == v) return "topology: segment " + std::to_string(s) + " is a loop";
        if (!topology.adjacent(u, v) || !topology.adjacent(v, u)) {
            return "topology: segment " + std::to_string(s) +
                   " endpoints are not mutually adjacent";
        }
        if (topology.segment_between(u, v) != s ||
            topology.segment_between(v, u) != s) {
            return "topology: segment_between does not invert "
                   "segment_endpoints for segment " + std::to_string(s);
        }
    }

    // Route-table closure on a deterministic pair sample: each route is a
    // connected segment walk a -> b over the adjacency of the right length.
    const std::size_t total_pairs = n * n;
    const std::size_t stride =
        std::max<std::size_t>(1, total_pairs / std::max<std::size_t>(1, max_pairs));
    for (std::size_t k = 0; k < total_pairs; k += stride) {
        const auto a = static_cast<UlbId>(k / n);
        const auto b = static_cast<UlbId>(k % n);
        const UlbCoord ca = topology.ulb_coord(a);
        const UlbCoord cb = topology.ulb_coord(b);
        const std::vector<SegmentId> route = topology.route(ca, cb);
        const int hops = topology.distance(ca, cb);
        if (static_cast<int>(route.size()) != hops) {
            return "topology: route " + ca.to_string() + " -> " + cb.to_string() +
                   " has " + std::to_string(route.size()) + " segments but "
                   "distance is " + std::to_string(hops);
        }
        UlbId cursor = a;
        for (const SegmentId s : route) {
            const auto [u, v] = topology.segment_endpoints(s);
            if (cursor != u && cursor != v) {
                return "topology: route " + ca.to_string() + " -> " +
                       cb.to_string() + " is not a connected segment walk";
            }
            cursor = cursor == u ? v : u;
        }
        if (cursor != b) {
            return "topology: route " + ca.to_string() + " -> " + cb.to_string() +
                   " ends at ULB " + std::to_string(cursor);
        }
    }
    return {};
}

// ---------------------------------------------------------------- factory --

std::shared_ptr<const Topology> make_topology(TopologyKind kind, int width,
                                              int height) {
    std::shared_ptr<const Topology> topology;
    switch (kind) {
        case TopologyKind::Grid:
            topology = std::make_shared<const GridTopology>(width, height);
            break;
        case TopologyKind::Torus:
            topology = std::make_shared<const TorusTopology>(width, height);
            break;
        case TopologyKind::Line:
            topology = std::make_shared<const LineTopology>(width, height);
            break;
        default:
            throw util::InputError("unknown fabric topology kind");
    }
    // Debug stage-boundary contract: every topology entering the system is
    // structurally clean (compiled out of Release).  Skipped for huge
    // fabrics: validation forces the lazy adjacency, and e.g. a 50000-wide
    // analytic sweep never needs (and cannot afford) those arrays.
    if (static_cast<std::size_t>(topology->num_ulbs()) <= 65536) {
        LEQA_DCHECK_OK(validate_topology(*topology, /*max_pairs=*/32));
    }
    return topology;
}

std::shared_ptr<const Topology> make_topology(const PhysicalParams& params) {
    return make_topology(params.topology, params.width, params.height);
}

} // namespace leqa::fabric

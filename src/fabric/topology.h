/// \file topology.h
/// \brief Pluggable fabric topologies: the abstraction over ULB adjacency,
///        hop distance, and presence-zone coverage.
///
/// The paper fixes an a x b square-grid fabric; everything downstream of it
/// (XY routing, the Eq. 5 coverage table, ring searches) used to hardwire
/// that shape.  `Topology` factors the shape out into one interface with
/// three concrete instances:
///
///   - `GridTopology`:  the paper's open-boundary mesh.  Bit-compatible
///     with the pre-topology code: identical segment numbering, identical
///     XY routes, identical Eq. 5 coverage histogram.
///   - `TorusTopology`: the same mesh with wraparound channels on both
///     axes (wrap channels exist only along dimensions >= 3, so no ULB
///     pair is connected by parallel segments).  Coverage is translation
///     invariant, so the whole Eq. 5 table collapses to a single bin.
///   - `LineTopology`:  a 1D ion-trap row (height must be 1).  Presence
///     zones are 1 x ceil(B) intervals, so the coverage histogram is the
///     1D analogue of Eq. 5 with O(s) bins.
///
/// Adjacency is exposed as a CSR view (reusing `graph::CsrDigraph`): every
/// undirected channel segment becomes two directed arcs, and a parallel
/// per-arc array maps each arc back to its `SegmentId`.  The CSR is built
/// lazily — the estimation engine only touches the coverage interface, so
/// parameter sweeps never pay for adjacency construction.
///
/// Shortest routes on non-grid topologies come from per-destination BFS
/// next-hop tables (cached inside the topology); `GridTopology` overrides
/// `route` with the legacy dimension-ordered XY walk so grid mappings stay
/// bit-exact.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fabric/geometry.h"
#include "fabric/params.h"
#include "graph/csr.h"
#include "util/thread_annotations.h"

namespace leqa::fabric {

/// The Eq. 5 coverage table compressed to its distinct values: bins of
/// (coverage probability, number of ULBs sharing it).  On a grid with zone
/// side s the table holds at most s^2 distinct probabilities regardless of
/// fabric area (see DESIGN.md §3); a torus collapses to one bin and a line
/// to at most s.
class CoverageHistogram {
public:
    struct Bin {
        double probability = 0.0;
        double multiplicity = 0.0; ///< number of ULBs sharing this P_xy
    };

    /// Tabulate for an open-boundary a x b grid and zone side `zone_side`
    /// (the paper's Eq. 5; same preconditions as
    /// LeqaEstimator::coverage_probability).
    [[nodiscard]] static CoverageHistogram build(int a, int b, int zone_side);

    /// Assemble from explicit bins (the non-grid topologies).
    [[nodiscard]] static CoverageHistogram from_bins(std::vector<Bin> bins,
                                                     double cells);

    [[nodiscard]] const std::vector<Bin>& bins() const { return bins_; }

    /// Total multiplicity (= fabric area in ULBs).
    [[nodiscard]] double cells() const { return cells_; }

private:
    std::vector<Bin> bins_;
    double cells_ = 0.0;
};

/// Abstract fabric topology: a `width x height` coordinate space of ULBs
/// plus the three things the rest of the system needs from the shape —
/// channel adjacency, hop metric/routing, and presence-zone coverage.
class Topology {
public:
    Topology(TopologyKind kind, int width, int height);
    virtual ~Topology() = default;

    Topology(const Topology&) = delete;
    Topology& operator=(const Topology&) = delete;

    [[nodiscard]] TopologyKind kind() const { return kind_; }
    [[nodiscard]] std::string name() const { return topology_kind_name(kind_); }
    [[nodiscard]] int width() const { return width_; }
    [[nodiscard]] int height() const { return height_; }
    [[nodiscard]] std::size_t num_ulbs() const {
        return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
    }
    /// Total channel segments (closed form; does not force the adjacency).
    [[nodiscard]] virtual std::size_t num_segments() const = 0;

    // --- ULB coordinate space (row-major, shared by all topologies) --------
    [[nodiscard]] bool in_bounds(UlbCoord c) const {
        return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
    }
    [[nodiscard]] UlbId ulb_id(UlbCoord c) const;
    [[nodiscard]] UlbCoord ulb_coord(UlbId id) const;

    // --- CSR adjacency (built lazily, thread-safe) -------------------------

    /// Directed CSR over the undirected channel graph: each segment appears
    /// as two arcs.  Successor lists are ascending by ULB id.
    [[nodiscard]] const graph::CsrDigraph& adjacency() const;

    /// Neighbor ULBs of `u`, ascending by id.
    [[nodiscard]] std::span<const graph::NodeId> neighbors(UlbId u) const;

    /// Segment ids aligned index-for-index with `neighbors(u)`.
    [[nodiscard]] std::span<const SegmentId> neighbor_segments(UlbId u) const;

    /// Segment connecting two adjacent ULBs; throws InputError otherwise.
    [[nodiscard]] SegmentId segment_between(UlbId a, UlbId b) const;
    [[nodiscard]] bool adjacent(UlbId a, UlbId b) const;

    /// The two ULBs a segment connects (canonical order: lower id first).
    [[nodiscard]] std::pair<UlbId, UlbId> segment_endpoints(SegmentId segment) const;

    // --- hop metric and routing --------------------------------------------

    /// Hop count of a shortest route between two ULBs.
    [[nodiscard]] virtual int distance(UlbCoord a, UlbCoord b) const = 0;

    /// A deterministic shortest route a -> b as a segment sequence (empty
    /// when a == b).  Default: per-destination BFS next-hop tables over the
    /// CSR adjacency, cached inside the topology.
    [[nodiscard]] virtual std::vector<SegmentId> route(UlbCoord a, UlbCoord b) const;

    /// ULBs at ring radius r around `center` in deterministic order;
    /// r = 0 yields {center}.  Rings for r = 0..max(width, height) cover
    /// every ULB exactly once (the free-ULB search relies on this).
    [[nodiscard]] virtual std::vector<UlbCoord> ring(UlbCoord center, int r) const = 0;

    /// A ULB "between" two coordinates (the CNOT meeting-point seed).
    [[nodiscard]] virtual UlbCoord midpoint(UlbCoord a, UlbCoord b) const = 0;

    // --- presence-zone coverage (Eq. 5, generalized) -----------------------

    /// Zone extent hosting an average zone area B: the side of a square
    /// zone on 2D topologies, the interval length on a line.
    [[nodiscard]] virtual int zone_extent(double zone_area) const = 0;

    /// Coverage histogram of one randomly placed zone of the given extent.
    [[nodiscard]] virtual CoverageHistogram coverage_histogram(int zone_extent) const = 0;

protected:
    /// Undirected segment list in canonical segment-id order (index ==
    /// SegmentId).  At most one segment per ULB pair.
    [[nodiscard]] virtual std::vector<std::pair<UlbId, UlbId>> build_segments() const = 0;

    /// Side of a square zone of the given area, clamped to the fabric:
    /// ceil(sqrt(B)) in [1, min(width, height)] — the shared rule of the
    /// 2D topologies (and of the golden LeqaEstimator::zone_side).
    [[nodiscard]] int square_zone_extent(double zone_area) const;

private:
    void ensure_adjacency() const;

    TopologyKind kind_;
    int width_;
    int height_;

    mutable std::once_flag adjacency_once_;
    mutable graph::CsrDigraph adjacency_;
    mutable std::vector<SegmentId> arc_segments_;        ///< aligned with CSR targets
    mutable std::vector<std::pair<UlbId, UlbId>> segment_ends_;

    // Per-destination BFS next-hop tables for the default route(); lazily
    // filled and bounded (cleared wholesale when it outgrows the cap).
    struct NextHops {
        std::vector<UlbId> via_node;        ///< next ULB toward the destination
        std::vector<SegmentId> via_segment; ///< segment taken for that hop
    };
    mutable util::Mutex route_mutex_;
    mutable std::unordered_map<UlbId, NextHops> next_hop_cache_
        LEQA_GUARDED_BY(route_mutex_);

    [[nodiscard]] const NextHops& next_hops_toward(UlbId destination) const
        LEQA_REQUIRES(route_mutex_);
};

/// The paper's open-boundary mesh.  Segment numbering, XY routes, rings and
/// the coverage histogram are bit-compatible with the pre-topology code.
class GridTopology : public Topology {
public:
    GridTopology(int width, int height);

    [[nodiscard]] std::size_t num_segments() const override;
    [[nodiscard]] int distance(UlbCoord a, UlbCoord b) const override;
    [[nodiscard]] std::vector<SegmentId> route(UlbCoord a, UlbCoord b) const override;
    [[nodiscard]] std::vector<UlbCoord> ring(UlbCoord center, int r) const override;
    [[nodiscard]] UlbCoord midpoint(UlbCoord a, UlbCoord b) const override;
    [[nodiscard]] int zone_extent(double zone_area) const override;
    [[nodiscard]] CoverageHistogram coverage_histogram(int zone_extent) const override;

protected:
    GridTopology(TopologyKind kind, int width, int height);
    [[nodiscard]] std::vector<std::pair<UlbId, UlbId>> build_segments() const override;
};

/// Wraparound mesh: grid segments plus one wrap channel per row/column
/// along every dimension of size >= 3.
class TorusTopology : public Topology {
public:
    TorusTopology(int width, int height);

    [[nodiscard]] std::size_t num_segments() const override;
    [[nodiscard]] int distance(UlbCoord a, UlbCoord b) const override;
    [[nodiscard]] std::vector<UlbCoord> ring(UlbCoord center, int r) const override;
    [[nodiscard]] UlbCoord midpoint(UlbCoord a, UlbCoord b) const override;
    [[nodiscard]] int zone_extent(double zone_area) const override;
    [[nodiscard]] CoverageHistogram coverage_histogram(int zone_extent) const override;

protected:
    [[nodiscard]] std::vector<std::pair<UlbId, UlbId>> build_segments() const override;

private:
    [[nodiscard]] int wrap_delta(int d, int dim) const;
};

/// 1D ion-trap row: a grid of height 1 whose presence zones are intervals.
class LineTopology : public GridTopology {
public:
    explicit LineTopology(int width, int height = 1);

    [[nodiscard]] int zone_extent(double zone_area) const override;
    [[nodiscard]] CoverageHistogram coverage_histogram(int zone_extent) const override;
};

/// Factory keyed on the params' topology kind / geometry.
[[nodiscard]] std::shared_ptr<const Topology> make_topology(TopologyKind kind,
                                                            int width, int height);
[[nodiscard]] std::shared_ptr<const Topology> make_topology(
    const PhysicalParams& params);

// --- structural validation -------------------------------------------------

/// Coverage-mass conservation: every bin probability in (0, 1] with a
/// positive multiplicity, multiplicities summing to `cells()`, and the
/// expected covered area sum(p_i * m_i) equal to `expected_mass` (the zone
/// area: extent^2 on 2D topologies, extent on a line) within 1e-6 relative.
/// Returns the first violation, empty when clean (LEQA_DCHECK_OK shape).
[[nodiscard]] std::string validate_coverage(const CoverageHistogram& histogram,
                                            double expected_mass);

/// Structural audit of a topology instance: CSR adjacency validity
/// (graph::validate_csr), segment-table closure (segment_endpoints /
/// segment_between / neighbor_segments agree arc by arc), and route-table
/// closure over the CSR subgraph — for a deterministic sample of at most
/// `max_pairs` ULB pairs, `route(a, b)` must be a chain of adjacent
/// segments from a to b of length `distance(a, b)`.  Returns the first
/// violation, empty when clean.
[[nodiscard]] std::string validate_topology(const Topology& topology,
                                            std::size_t max_pairs = 64);

} // namespace leqa::fabric

#include "graph/csr.h"

#include <algorithm>
#include <string>

#include "util/error.h"

namespace leqa::graph {

std::vector<std::uint32_t> CsrDigraph::in_degrees() const {
    std::vector<std::uint32_t> degrees(num_nodes(), 0);
    for (const NodeId v : targets_) ++degrees[v];
    return degrees;
}

CsrDigraph CsrDigraph::reversed() const {
    CsrDigraph rev;
    const std::size_t n = num_nodes();
    rev.offsets_.assign(n + 1, 0);
    for (const NodeId v : targets_) ++rev.offsets_[v + 1];
    for (std::size_t v = 0; v < n; ++v) rev.offsets_[v + 1] += rev.offsets_[v];
    rev.targets_.resize(targets_.size());
    std::vector<std::uint32_t> cursor(rev.offsets_.begin(), rev.offsets_.end() - 1);
    // Scanning sources in ascending order keeps each reversed successor
    // list (= predecessor list of the original) ascending by id, which the
    // lane-path recovery in qodg relies on for its tie-break.
    for (NodeId u = 0; u < n; ++u) {
        for (const NodeId v : successors(u)) rev.targets_[cursor[v]++] = u;
    }
    rev.topological_ = num_edges() == 0 && topological_;
    return rev;
}

CsrBuilder::CsrBuilder(std::size_t num_nodes) : num_nodes_(num_nodes) {}

void CsrBuilder::reserve_edges(std::size_t count) {
    from_.reserve(count);
    to_.reserve(count);
}

void CsrBuilder::add_edge(NodeId from, NodeId to) {
    LEQA_REQUIRE(from < num_nodes_ && to < num_nodes_, "edge endpoint out of range");
    LEQA_REQUIRE(from != to, "self loops are not representable");
    if (from > to) topological_ = false;
    from_.push_back(from);
    to_.push_back(to);
}

CsrDigraph CsrBuilder::build(bool merge_parallel) {
    CsrDigraph g;
    g.topological_ = topological_;
    g.offsets_.assign(num_nodes_ + 1, 0);

    // Counting sort by source: count, prefix-sum, scatter.
    for (const NodeId u : from_) ++g.offsets_[u + 1];
    for (std::size_t u = 0; u < num_nodes_; ++u) g.offsets_[u + 1] += g.offsets_[u];
    g.targets_.resize(to_.size());
    std::vector<std::uint32_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
    for (std::size_t e = 0; e < from_.size(); ++e) {
        g.targets_[cursor[from_[e]]++] = to_[e];
    }

    // Sort each successor list; optionally drop parallel duplicates (the
    // QODG merge rule), compacting the arrays in place.
    std::uint32_t write = 0;
    std::uint32_t row_start = 0;
    for (std::size_t u = 0; u < num_nodes_; ++u) {
        const std::uint32_t row_end = g.offsets_[u + 1];
        auto* begin = g.targets_.data() + row_start;
        auto* end = g.targets_.data() + row_end;
        std::sort(begin, end);
        if (merge_parallel) end = std::unique(begin, end);
        for (auto* it = begin; it != end; ++it) g.targets_[write++] = *it;
        row_start = row_end;
        g.offsets_[u + 1] = write;
    }
    g.targets_.resize(write);

    from_.clear();
    to_.clear();
    return g;
}

LongestPathResult longest_path(const CsrDigraph& g, std::span<const double> delays,
                               NodeId source) {
    LEQA_REQUIRE(g.topologically_ordered(),
                 "longest_path requires a topologically ordered graph");
    LEQA_REQUIRE(delays.size() == g.num_nodes(),
                 "delay vector size must equal node count");
    LEQA_REQUIRE(source < g.num_nodes(), "source out of range");

    LongestPathResult lp;
    const std::size_t n = g.num_nodes();
    lp.distance.assign(n, -1.0);
    lp.predecessor.assign(n, source);
    lp.distance[source] = delays[source];

    for (NodeId u = source; u < n; ++u) {
        const double base = lp.distance[u];
        if (base < 0.0) continue; // unreachable from source
        for (const NodeId v : g.successors(u)) {
            const double candidate = base + delays[v];
            if (candidate > lp.distance[v]) {
                lp.distance[v] = candidate;
                lp.predecessor[v] = u;
            }
        }
    }
    return lp;
}

std::vector<NodeId> extract_path(std::span<const double> distance,
                                 std::span<const NodeId> predecessor, NodeId source,
                                 NodeId sink) {
    LEQA_REQUIRE(sink < distance.size() && source < distance.size(),
                 "path endpoint out of range");
    LEQA_REQUIRE(distance[sink] >= 0.0, "sink unreachable from source");
    std::vector<NodeId> path;
    NodeId cursor = sink;
    path.push_back(cursor);
    while (cursor != source) {
        cursor = predecessor[cursor];
        path.push_back(cursor);
    }
    std::reverse(path.begin(), path.end());
    return path;
}

std::string validate_csr(std::span<const std::uint32_t> offsets,
                         std::span<const NodeId> targets, bool topological,
                         bool acyclic) {
    if (offsets.empty()) {
        return targets.empty() ? std::string()
                               : "csr: targets without an offset array";
    }
    if (offsets.front() != 0) return "csr: offsets[0] must be 0";
    const std::size_t n = offsets.size() - 1;
    for (std::size_t u = 0; u < n; ++u) {
        if (offsets[u] > offsets[u + 1]) {
            return "csr: offsets not monotone at node " + std::to_string(u);
        }
    }
    if (offsets.back() != targets.size()) {
        return "csr: offsets end at " + std::to_string(offsets.back()) + " but " +
               std::to_string(targets.size()) + " targets are stored";
    }
    for (std::size_t u = 0; u < n; ++u) {
        for (std::uint32_t e = offsets[u]; e < offsets[u + 1]; ++e) {
            const NodeId v = targets[e];
            if (v >= n) {
                return "csr: edge " + std::to_string(u) + "->" + std::to_string(v) +
                       " targets a node out of range (n=" + std::to_string(n) + ")";
            }
            if (v == u) return "csr: self loop at node " + std::to_string(u);
            if (e > offsets[u] && targets[e - 1] >= v) {
                return "csr: successor list of node " + std::to_string(u) +
                       " is not sorted/duplicate-free";
            }
            if (topological && v < u) {
                return "csr: edge " + std::to_string(u) + "->" + std::to_string(v) +
                       " violates the claimed topological order";
            }
        }
    }
    if (acyclic && !topological) {
        // Kahn's algorithm: a DAG drains completely; leftovers are a cycle.
        std::vector<std::uint32_t> in_degree(n, 0);
        for (const NodeId v : targets) ++in_degree[v];
        std::vector<NodeId> frontier;
        for (std::size_t u = 0; u < n; ++u) {
            if (in_degree[u] == 0) frontier.push_back(static_cast<NodeId>(u));
        }
        std::size_t drained = 0;
        while (!frontier.empty()) {
            const NodeId u = frontier.back();
            frontier.pop_back();
            ++drained;
            for (std::uint32_t e = offsets[u]; e < offsets[u + 1]; ++e) {
                if (--in_degree[targets[e]] == 0) frontier.push_back(targets[e]);
            }
        }
        if (drained != n) {
            return "csr: cycle through " + std::to_string(n - drained) + " node(s)";
        }
    }
    return {};
}

std::string validate_csr(const CsrDigraph& g) {
    return validate_csr(g.offsets(), g.targets(), g.topologically_ordered());
}

std::vector<double> downstream_delay(const CsrDigraph& g,
                                     std::span<const double> delays) {
    LEQA_REQUIRE(g.topologically_ordered(),
                 "downstream_delay requires a topologically ordered graph");
    LEQA_REQUIRE(delays.size() == g.num_nodes(),
                 "delay vector size must equal node count");
    std::vector<double> downstream(g.num_nodes(), 0.0);
    for (NodeId u = static_cast<NodeId>(g.num_nodes()); u-- > 0;) {
        double best_successor = 0.0;
        for (const NodeId v : g.successors(u)) {
            best_successor = std::max(best_successor, downstream[v]);
        }
        downstream[u] = delays[u] + best_successor;
    }
    return downstream;
}

} // namespace leqa::graph

/// \file csr.h
/// \brief Immutable compressed-sparse-row digraph and its traversal kernels.
///
/// The QODG, the QSPR list scheduler, and the estimation engine all walk the
/// same dependency structure; this substrate gives them one flat
/// representation instead of per-module adjacency containers.  A
/// `CsrBuilder` collects (from, to) pairs, merges parallel edges, and
/// freezes them into two arrays (offsets + targets), after which traversal
/// is cache-friendly pointer arithmetic.
///
/// The kernels below require a *topologically ordered* graph (every edge
/// goes from a lower to a higher node id).  The builder records whether
/// that property holds; graphs built from circuits in program order (the
/// QODG) always satisfy it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace leqa::graph {

using NodeId = std::uint32_t;

class CsrBuilder;

/// Immutable digraph in compressed-sparse-row form.
class CsrDigraph {
public:
    CsrDigraph() = default;

    [[nodiscard]] std::size_t num_nodes() const {
        return offsets_.empty() ? 0 : offsets_.size() - 1;
    }
    [[nodiscard]] std::size_t num_edges() const { return targets_.size(); }

    /// Successors of `u`, ascending by id.
    [[nodiscard]] std::span<const NodeId> successors(NodeId u) const {
        return {targets_.data() + offsets_[u], targets_.data() + offsets_[u + 1]};
    }

    [[nodiscard]] std::size_t out_degree(NodeId u) const {
        return offsets_[u + 1] - offsets_[u];
    }

    /// True when every edge goes from a lower to a higher id (node ids form
    /// a topological order); precondition of the kernels below.
    [[nodiscard]] bool topologically_ordered() const { return topological_; }

    /// Raw CSR arrays (read-only views; validate_csr and serializers).
    [[nodiscard]] std::span<const std::uint32_t> offsets() const { return offsets_; }
    [[nodiscard]] std::span<const NodeId> targets() const { return targets_; }

    /// Per-node in-degree (one O(|E|) pass).
    [[nodiscard]] std::vector<std::uint32_t> in_degrees() const;

    /// The edge-reversed graph: `reversed().successors(v)` lists the
    /// predecessors of `v`, ascending by id.  On a topologically ordered
    /// graph the reverse edges all go high -> low, so the result reports
    /// `topologically_ordered() == false` and must not be fed to the
    /// order-dependent kernels below.
    [[nodiscard]] CsrDigraph reversed() const;

private:
    friend class CsrBuilder;

    std::vector<std::uint32_t> offsets_; ///< size num_nodes + 1
    std::vector<NodeId> targets_;        ///< concatenated successor lists
    bool topological_ = true;
};

/// Collects edges, then freezes them into a CsrDigraph.
class CsrBuilder {
public:
    explicit CsrBuilder(std::size_t num_nodes);

    void reserve_edges(std::size_t count);

    /// Add one directed edge.  Self loops are rejected.
    void add_edge(NodeId from, NodeId to);

    /// Freeze.  Parallel (from, to) duplicates are merged into one edge when
    /// `merge_parallel`; successor lists come out sorted either way.
    /// The builder is consumed.
    [[nodiscard]] CsrDigraph build(bool merge_parallel = true);

private:
    std::size_t num_nodes_;
    std::vector<NodeId> from_;
    std::vector<NodeId> to_;
    bool topological_ = true;
};

// --- topological-order kernels ---------------------------------------------
//
// All kernels take per-node delays (path length = sum of node delays along
// the path) and require `g.topologically_ordered()`.

/// Longest path from `source` to every node.  Nodes unreachable from
/// `source` keep distance -1.
struct LongestPathResult {
    std::vector<double> distance;    ///< per node; -1 when unreachable
    std::vector<NodeId> predecessor; ///< per node: predecessor on that path
};

[[nodiscard]] LongestPathResult longest_path(const CsrDigraph& g,
                                             std::span<const double> delays,
                                             NodeId source);

/// Walk predecessors back from `sink` to `source` and return the
/// source->sink node sequence.  `distance` is only consulted to reject an
/// unreachable sink.
[[nodiscard]] std::vector<NodeId> extract_path(std::span<const double> distance,
                                               std::span<const NodeId> predecessor,
                                               NodeId source, NodeId sink);

[[nodiscard]] inline std::vector<NodeId> extract_path(const LongestPathResult& lp,
                                                      NodeId source, NodeId sink) {
    return extract_path(lp.distance, lp.predecessor, source, sink);
}

/// Longest path from each node to any sink, inclusive of the node's own
/// delay (the priority function of list scheduling).
[[nodiscard]] std::vector<double> downstream_delay(const CsrDigraph& g,
                                                   std::span<const double> delays);

// --- structural validation -------------------------------------------------

/// Validate raw CSR arrays: monotone offsets ending at `targets.size()`,
/// in-bounds targets, sorted duplicate-free successor lists, no self loops,
/// and — unless `acyclic` is false (symmetric adjacency encodings are
/// cyclic by construction) — acyclicity, by the low->high edge rule when
/// `topological` is claimed, by Kahn's algorithm otherwise.  Returns a
/// description of the first violation, or an empty string when the
/// structure is clean (the convention LEQA_DCHECK_OK consumes).
[[nodiscard]] std::string validate_csr(std::span<const std::uint32_t> offsets,
                                       std::span<const NodeId> targets,
                                       bool topological, bool acyclic = true);

/// Validate a frozen digraph (same checks over its internal arrays).
[[nodiscard]] std::string validate_csr(const CsrDigraph& g);

} // namespace leqa::graph

#include "graph/weighted.h"

#include <algorithm>

#include "util/error.h"

namespace leqa::graph {

WeightedUndigraph WeightedUndigraph::from_pairs(
    std::size_t num_nodes, std::span<const std::pair<NodeId, NodeId>> pairs) {
    WeightedUndigraph g;

    // Canonicalize to packed (min << 32 | max) keys and sort: identical
    // pairs become adjacent runs whose lengths are the edge weights.
    std::vector<std::uint64_t> keys;
    keys.reserve(pairs.size());
    for (const auto& [a, b] : pairs) {
        LEQA_REQUIRE(a < num_nodes && b < num_nodes, "edge endpoint out of range");
        LEQA_REQUIRE(a != b, "self loops are not representable");
        const NodeId lo = std::min(a, b);
        const NodeId hi = std::max(a, b);
        keys.push_back((static_cast<std::uint64_t>(lo) << 32) | hi);
    }
    std::sort(keys.begin(), keys.end());

    g.offsets_.assign(num_nodes + 1, 0);
    g.adjacent_weight_.assign(num_nodes, 0);

    // Run-length encode into the unique edge list, accumulating per-node
    // degree (into offsets_, shifted by one) and adjacent weight as we go.
    for (std::size_t run = 0; run < keys.size();) {
        std::size_t end = run + 1;
        while (end < keys.size() && keys[end] == keys[run]) ++end;
        const auto i = static_cast<NodeId>(keys[run] >> 32);
        const auto j = static_cast<NodeId>(keys[run] & 0xFFFFFFFFULL);
        const auto weight = static_cast<std::uint64_t>(end - run);
        g.edges_.push_back(Edge{i, j, weight});
        ++g.offsets_[i + 1];
        ++g.offsets_[j + 1];
        g.adjacent_weight_[i] += weight;
        g.adjacent_weight_[j] += weight;
        run = end;
    }

    for (std::size_t u = 0; u < num_nodes; ++u) g.offsets_[u + 1] += g.offsets_[u];

    // Scatter the symmetric adjacency.  Edges are sorted by (i, j), so each
    // node's neighbor slice comes out ascending without a second sort: the
    // i-side fills in j-ascending order, and the j-side entries (neighbors
    // below the node) are appended before any i-side ones (neighbors above).
    g.neighbors_.resize(2 * g.edges_.size());
    g.weights_.resize(2 * g.edges_.size());
    std::vector<std::uint32_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
    for (const Edge& e : g.edges_) {
        g.neighbors_[cursor[e.i]] = e.j;
        g.weights_[cursor[e.i]++] = e.weight;
        g.neighbors_[cursor[e.j]] = e.i;
        g.weights_[cursor[e.j]++] = e.weight;
    }
    return g;
}

std::uint64_t WeightedUndigraph::weight_between(NodeId a, NodeId b) const {
    LEQA_REQUIRE(a < num_nodes() && b < num_nodes(), "node out of range");
    LEQA_REQUIRE(a != b, "self loops are not representable");
    const auto hood = neighbors(a);
    const auto it = std::lower_bound(hood.begin(), hood.end(), b);
    if (it == hood.end() || *it != b) return 0;
    return neighbor_weights(a)[static_cast<std::size_t>(it - hood.begin())];
}

} // namespace leqa::graph

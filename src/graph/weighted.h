/// \file weighted.h
/// \brief Flat undirected weighted graph (CSR adjacency, no hash maps).
///
/// Backing store of the interaction intensity graph: endpoint pairs are
/// collected, sorted, and run-length encoded into a unique edge list, from
/// which the symmetric CSR adjacency and the per-node statistics (degree,
/// adjacent weight) fall out in one pass.  Lookups are binary searches over
/// a node's sorted neighbor slice; no per-edge heap allocations, no
/// unordered_map.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.h"

namespace leqa::graph {

class WeightedUndigraph {
public:
    /// One undirected edge (i < j).
    struct Edge {
        NodeId i = 0;
        NodeId j = 0;
        std::uint64_t weight = 0;
    };

    WeightedUndigraph() = default;

    /// Build from endpoint pairs; repeated pairs accumulate weight 1 each.
    /// Orientation is ignored ((a, b) == (b, a)); self loops are rejected.
    [[nodiscard]] static WeightedUndigraph from_pairs(
        std::size_t num_nodes, std::span<const std::pair<NodeId, NodeId>> pairs);

    [[nodiscard]] std::size_t num_nodes() const {
        return offsets_.empty() ? 0 : offsets_.size() - 1;
    }
    /// Number of distinct undirected edges.
    [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

    /// Number of distinct neighbors of `u`.
    [[nodiscard]] std::size_t degree(NodeId u) const {
        return offsets_[u + 1] - offsets_[u];
    }

    /// Total weight of edges adjacent to `u`.
    [[nodiscard]] std::uint64_t adjacent_weight(NodeId u) const {
        return adjacent_weight_[u];
    }

    /// Weight between `a` and `b` (0 if absent); O(log degree).
    [[nodiscard]] std::uint64_t weight_between(NodeId a, NodeId b) const;

    /// Neighbors of `u`, ascending; index-aligned with neighbor_weights(u).
    [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const {
        return {neighbors_.data() + offsets_[u], neighbors_.data() + offsets_[u + 1]};
    }
    [[nodiscard]] std::span<const std::uint64_t> neighbor_weights(NodeId u) const {
        return {weights_.data() + offsets_[u], weights_.data() + offsets_[u + 1]};
    }

    /// All distinct edges, sorted by (i, j).
    [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

private:
    std::vector<std::uint32_t> offsets_;        ///< size num_nodes + 1
    std::vector<NodeId> neighbors_;             ///< symmetric adjacency
    std::vector<std::uint64_t> weights_;        ///< aligned with neighbors_
    std::vector<std::uint64_t> adjacent_weight_; ///< per node
    std::vector<Edge> edges_;                   ///< unique, sorted by (i, j)
};

} // namespace leqa::graph

#include "iig/iig.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"

namespace leqa::iig {

std::uint64_t Iig::key(circuit::Qubit a, circuit::Qubit b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
}

Iig::Iig(const circuit::Circuit& circ) {
    degree_.assign(circ.num_qubits(), 0);
    adjacent_weight_.assign(circ.num_qubits(), 0);

    for (const circuit::Gate& gate : circ.gates()) {
        const auto qubits = gate.qubits();
        if (qubits.size() < 2) continue;
        for (std::size_t a = 0; a < qubits.size(); ++a) {
            for (std::size_t b = a + 1; b < qubits.size(); ++b) {
                ++weights_[key(qubits[a], qubits[b])];
            }
        }
    }

    edges_.reserve(weights_.size());
    for (const auto& [packed, weight] : weights_) {
        const auto i = static_cast<circuit::Qubit>(packed >> 32);
        const auto j = static_cast<circuit::Qubit>(packed & 0xFFFFFFFFULL);
        edges_.push_back(Edge{i, j, weight});
        ++degree_[i];
        ++degree_[j];
        adjacent_weight_[i] += weight;
        adjacent_weight_[j] += weight;
    }
    std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
        return a.i != b.i ? a.i < b.i : a.j < b.j;
    });
}

std::size_t Iig::degree(circuit::Qubit q) const {
    LEQA_REQUIRE(q < degree_.size(), "qubit index out of range");
    return degree_[q];
}

std::uint64_t Iig::adjacent_weight(circuit::Qubit q) const {
    LEQA_REQUIRE(q < adjacent_weight_.size(), "qubit index out of range");
    return adjacent_weight_[q];
}

double Iig::zone_area(circuit::Qubit q) const {
    // Eq. 6: B_i = sqrt(M_i + 1) * sqrt(M_i + 1) = M_i + 1.
    return static_cast<double>(degree(q)) + 1.0;
}

double Iig::average_zone_area() const {
    // Eq. 7: B = sum_i W_i B_i / sum_i W_i.
    double numerator = 0.0;
    double denominator = 0.0;
    for (circuit::Qubit q = 0; q < degree_.size(); ++q) {
        const auto w = static_cast<double>(adjacent_weight_[q]);
        numerator += w * zone_area(q);
        denominator += w;
    }
    if (denominator == 0.0) return 1.0; // no interactions: single-ULB zones
    return numerator / denominator;
}

std::uint64_t Iig::total_adjacent_weight() const {
    std::uint64_t total = 0;
    for (const auto w : adjacent_weight_) total += w;
    return total;
}

std::uint64_t Iig::edge_weight(circuit::Qubit a, circuit::Qubit b) const {
    LEQA_REQUIRE(a < degree_.size() && b < degree_.size(), "qubit index out of range");
    LEQA_REQUIRE(a != b, "IIG has no self loops");
    const auto it = weights_.find(key(a, b));
    return it == weights_.end() ? 0 : it->second;
}

std::string Iig::to_dot(const circuit::Circuit& circ) const {
    std::ostringstream out;
    out << "graph iig {\n";
    for (circuit::Qubit q = 0; q < degree_.size(); ++q) {
        out << "  n" << q << " [label=\"" << circ.qubit_name(q) << "\"];\n";
    }
    for (const Edge& e : edges_) {
        out << "  n" << e.i << " -- n" << e.j << " [label=\"" << e.weight << "\"];\n";
    }
    out << "}\n";
    return out.str();
}

} // namespace leqa::iig

#include "iig/iig.h"

#include <sstream>
#include <utility>

#include "util/error.h"

namespace leqa::iig {

Iig::Iig(const circuit::Circuit& circ) {
    // One pass over the gates collects the interacting endpoint pairs; the
    // flat graph build then produces the unique edge list and the per-qubit
    // M_i / W_i arrays in one sort + scan.
    std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
    pairs.reserve(circ.size());
    for (const circuit::Gate& gate : circ.gates()) {
        const auto qubits = gate.qubits();
        if (qubits.size() < 2) continue;
        for (std::size_t a = 0; a < qubits.size(); ++a) {
            for (std::size_t b = a + 1; b < qubits.size(); ++b) {
                pairs.emplace_back(qubits[a], qubits[b]);
            }
        }
    }
    graph_ = graph::WeightedUndigraph::from_pairs(circ.num_qubits(), pairs);
}

std::size_t Iig::degree(circuit::Qubit q) const {
    LEQA_REQUIRE(q < num_qubits(), "qubit index out of range");
    return graph_.degree(q);
}

std::uint64_t Iig::adjacent_weight(circuit::Qubit q) const {
    LEQA_REQUIRE(q < num_qubits(), "qubit index out of range");
    return graph_.adjacent_weight(q);
}

double Iig::zone_area(circuit::Qubit q) const {
    // Eq. 6: B_i = sqrt(M_i + 1) * sqrt(M_i + 1) = M_i + 1.
    return static_cast<double>(degree(q)) + 1.0;
}

double Iig::average_zone_area() const {
    // Eq. 7: B = sum_i W_i B_i / sum_i W_i.
    double numerator = 0.0;
    double denominator = 0.0;
    for (circuit::Qubit q = 0; q < num_qubits(); ++q) {
        const auto w = static_cast<double>(graph_.adjacent_weight(q));
        numerator += w * zone_area(q);
        denominator += w;
    }
    if (denominator == 0.0) return 1.0; // no interactions: single-ULB zones
    return numerator / denominator;
}

std::uint64_t Iig::total_adjacent_weight() const {
    std::uint64_t total = 0;
    for (circuit::Qubit q = 0; q < num_qubits(); ++q) {
        total += graph_.adjacent_weight(q);
    }
    return total;
}

std::uint64_t Iig::edge_weight(circuit::Qubit a, circuit::Qubit b) const {
    LEQA_REQUIRE(a < num_qubits() && b < num_qubits(), "qubit index out of range");
    LEQA_REQUIRE(a != b, "IIG has no self loops");
    return graph_.weight_between(a, b);
}

std::string Iig::to_dot(const circuit::Circuit& circ) const {
    std::ostringstream out;
    out << "graph iig {\n";
    for (circuit::Qubit q = 0; q < num_qubits(); ++q) {
        out << "  n" << q << " [label=\"" << circ.qubit_name(q) << "\"];\n";
    }
    for (const Edge& e : edges()) {
        out << "  n" << e.i << " -- n" << e.j << " [label=\"" << e.weight << "\"];\n";
    }
    out << "}\n";
    return out.str();
}

} // namespace leqa::iig

/// \file iig.h
/// \brief The Interaction Intensity Graph IIG(V,E) of the paper (§3.1).
///
/// Nodes are logical qubits.  An undirected edge e_ij with weight w(e_ij)
/// counts the number of two-qubit operations between qubits i and j.  There
/// are no self loops (one-qubit operations add no edges).  From the IIG the
/// paper derives, per qubit i:
///   - M_i    = deg(n_i), the number of distinct interaction partners;
///   - W_i    = sum of adjacent edge weights (interaction intensity);
///   - B_i    = (sqrt(M_i + 1))^2 = M_i + 1, the presence-zone area (Eq. 6);
/// and the fabric-wide average presence-zone area B as the W_i-weighted
/// mean of B_i (Eq. 7).
///
/// The edge store is a flat `graph::WeightedUndigraph` (see
/// graph/weighted.h): endpoint pairs are collected in one pass over the
/// circuit and frozen into a sorted edge list plus CSR adjacency, with the
/// per-qubit statistics (M_i, W_i) coming out as arrays — no hash map.
///
/// The builder accepts any circuit; gates touching two qubits contribute
/// weight 1 to their pair.  Gates touching three or more qubits (permitted
/// only pre-FT-synthesis) contribute weight 1 to every qubit pair they
/// touch, a conservative generalization documented in DESIGN.md; FT
/// circuits — the paper's actual input — contain only CNOT as a multi-qubit
/// gate, where both definitions coincide.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "graph/weighted.h"

namespace leqa::iig {

/// An undirected weighted edge (i < j).
using Edge = graph::WeightedUndigraph::Edge;

class Iig {
public:
    /// Build from a circuit (typically the FT-synthesized netlist).
    explicit Iig(const circuit::Circuit& circ);

    /// Number of logical qubits Q.
    [[nodiscard]] std::size_t num_qubits() const { return graph_.num_nodes(); }

    /// Number of distinct interacting pairs |E|.
    [[nodiscard]] std::size_t num_edges() const { return graph_.num_edges(); }

    /// M_i: number of distinct neighbors of qubit i.
    [[nodiscard]] std::size_t degree(circuit::Qubit q) const;

    /// W_i: total weight of edges adjacent to qubit i.
    [[nodiscard]] std::uint64_t adjacent_weight(circuit::Qubit q) const;

    /// B_i = M_i + 1 (presence-zone area, Eq. 6).
    [[nodiscard]] double zone_area(circuit::Qubit q) const;

    /// B: the W_i-weighted average of B_i over all qubits (Eq. 7).
    /// Returns 1.0 (a single-ULB zone) when the circuit has no two-qubit
    /// interactions at all.
    [[nodiscard]] double average_zone_area() const;

    /// Sum over all i of W_i (= 2 * total edge weight).
    [[nodiscard]] std::uint64_t total_adjacent_weight() const;

    /// Weight of the edge between a and b (0 if absent).
    [[nodiscard]] std::uint64_t edge_weight(circuit::Qubit a, circuit::Qubit b) const;

    /// All edges, sorted by (i, j).
    [[nodiscard]] const std::vector<Edge>& edges() const { return graph_.edges(); }

    /// The underlying flat weighted graph.
    [[nodiscard]] const graph::WeightedUndigraph& graph() const { return graph_; }

    /// Graphviz DOT rendering (small graphs).
    [[nodiscard]] std::string to_dot(const circuit::Circuit& circ) const;

private:
    graph::WeightedUndigraph graph_;
};

} // namespace leqa::iig

#include "mathx/binomial.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/error.h"

namespace leqa::mathx {

double log_binomial(std::int64_t n, std::int64_t k) {
    LEQA_REQUIRE(n >= 0 && k >= 0 && k <= n, "log_binomial: need 0 <= k <= n");
    if (k == 0 || k == n) return 0.0;
    return std::lgamma(static_cast<double>(n) + 1.0) -
           std::lgamma(static_cast<double>(k) + 1.0) -
           std::lgamma(static_cast<double>(n - k) + 1.0);
}

double binomial(std::int64_t n, std::int64_t k) {
    return std::exp(log_binomial(n, k));
}

double binomial_pmf(std::int64_t n, std::int64_t k, double p) {
    LEQA_REQUIRE(n >= 0 && k >= 0 && k <= n, "binomial_pmf: need 0 <= k <= n");
    LEQA_REQUIRE(p >= 0.0 && p <= 1.0, "binomial_pmf: need 0 <= p <= 1");
    if (p == 0.0) return k == 0 ? 1.0 : 0.0;
    if (p == 1.0) return k == n ? 1.0 : 0.0;
    const double log_pmf = log_binomial(n, k) +
                           static_cast<double>(k) * std::log(p) +
                           static_cast<double>(n - k) * std::log1p(-p);
    return std::exp(log_pmf);
}

BinomialTermRecursion::BinomialTermRecursion(std::int64_t n, double p) : n_(n), p_(p) {
    LEQA_REQUIRE(n >= 0, "BinomialTermRecursion: need n >= 0");
    LEQA_REQUIRE(p >= 0.0 && p <= 1.0, "BinomialTermRecursion: need 0 <= p <= 1");
    if (p == 0.0 || p == 1.0) {
        degenerate_ = true;
        return;
    }
    ratio_ = p / (1.0 - p);
    // (1-p)^n split as mantissa * 2^exponent: the log-space start is the one
    // place a transcendental is unavoidable, and it keeps the start exactly
    // representable even when (1-p)^n underflows double range.
    const double log2_start =
        static_cast<double>(n) * std::log1p(-p) / 0.6931471805599453;
    exponent_ = static_cast<int>(std::floor(log2_start));
    mantissa_ = std::exp2(log2_start - static_cast<double>(exponent_));
}

double BinomialTermRecursion::value() const {
    if (degenerate_) {
        if (p_ == 0.0) return q_ == 0 ? 1.0 : 0.0;
        return q_ == n_ ? 1.0 : 0.0;
    }
    return std::ldexp(mantissa_, exponent_);
}

void BinomialTermRecursion::advance() {
    if (degenerate_) {
        ++q_;
        return;
    }
    if (q_ >= n_) {
        mantissa_ = 0.0;
        ++q_;
        return;
    }
    // Eq. 18 step: C(n,q+1) = C(n,q) * (n-q)/(q+1), times one extra
    // p/(1-p) to move the p^q (1-p)^(n-q) factor along with it.
    mantissa_ *= ratio_ * (static_cast<double>(n_ - q_) / static_cast<double>(q_ + 1));
    ++q_;
    int shift = 0;
    mantissa_ = std::frexp(mantissa_, &shift);
    exponent_ += shift;
}

BinomialRowBatch::BinomialRowBatch(std::int64_t n,
                                   std::span<const double> probabilities)
    : n_(n) {
    LEQA_REQUIRE(n >= 0, "BinomialRowBatch: need n >= 0");
    const std::size_t lanes = probabilities.size();
    ratio_.assign(lanes, 0.0);
    mantissa_.assign(lanes, 0.0);
    exponent_.assign(lanes, 0);
    for (std::size_t i = 0; i < lanes; ++i) {
        const double p = probabilities[i];
        LEQA_REQUIRE(p >= 0.0 && p <= 1.0, "BinomialRowBatch: need 0 <= p <= 1");
        if (p == 1.0) {
            one_lanes_.push_back(i); // ratio_ would be infinite; handled exactly
            continue;
        }
        // p == 0 needs no special lane: the start is exactly 1 and the first
        // advance multiplies by ratio 0, giving the exact indicator [q == 0].
        ratio_[i] = p / (1.0 - p);
        if (p == 0.0) {
            mantissa_[i] = 1.0;
            continue;
        }
        // Same (1-p)^n start split as the scalar recursion, so the two
        // trajectories begin with identical significands.
        const double log2_start =
            static_cast<double>(n) * std::log1p(-p) / 0.6931471805599453;
        exponent_[i] = static_cast<int>(std::floor(log2_start));
        mantissa_[i] = std::exp2(log2_start - static_cast<double>(exponent_[i]));
    }
}

void BinomialRowBatch::advance() {
    if (q_ >= n_) {
        std::fill(mantissa_.begin(), mantissa_.end(), 0.0);
        ++q_;
        return;
    }
    const double step =
        static_cast<double>(n_ - q_) / static_cast<double>(q_ + 1);
    double* mantissa = mantissa_.data();
    int* exponent = exponent_.data();
    const double* ratio = ratio_.data();
    const std::size_t lanes = mantissa_.size();
    for (std::size_t i = 0; i < lanes; ++i) {
        const double product = mantissa[i] * (ratio[i] * step);
        // Branch-free renormalization: pull the IEEE-754 exponent field out
        // of the product, accumulate it into the integer exponent lane, and
        // reset the stored mantissa to [1, 2).  A zero raw field (the lane
        // is exactly 0) passes through unchanged — ternary selects, no
        // per-lane control flow, so the loop auto-vectorizes.
        const std::uint64_t bits = std::bit_cast<std::uint64_t>(product);
        const int raw = static_cast<int>((bits >> 52) & 0x7ffu);
        const bool normal = raw != 0;
        exponent[i] += normal ? raw - 1022 : 0;
        const std::uint64_t renormalized =
            normal ? ((bits & 0x800fffffffffffffULL) | (0x3feULL << 52)) : bits;
        mantissa[i] = std::bit_cast<double>(renormalized);
    }
    ++q_;
}

void BinomialRowBatch::values(std::span<double> out) const {
    LEQA_REQUIRE(out.size() >= mantissa_.size(),
                 "BinomialRowBatch: output span too small");
    for (std::size_t i = 0; i < mantissa_.size(); ++i) {
        out[i] = std::ldexp(mantissa_[i], exponent_[i]);
    }
    for (const std::size_t lane : one_lanes_) {
        out[lane] = q_ == n_ ? 1.0 : 0.0;
    }
}

double BinomialRowBatch::value(std::size_t lane) const {
    LEQA_REQUIRE(lane < mantissa_.size(), "BinomialRowBatch: lane out of range");
    if (std::find(one_lanes_.begin(), one_lanes_.end(), lane) != one_lanes_.end()) {
        return q_ == n_ ? 1.0 : 0.0;
    }
    return std::ldexp(mantissa_[lane], exponent_[lane]);
}

std::vector<double> binomial_row_recursive(std::int64_t n, std::int64_t max_k) {
    LEQA_REQUIRE(n >= 0 && max_k >= 0 && max_k <= n,
                 "binomial_row_recursive: need 0 <= max_k <= n");
    std::vector<double> row(static_cast<std::size_t>(max_k) + 1);
    row[0] = 1.0; // f(n, 0) = 1
    for (std::int64_t q = 1; q <= max_k; ++q) {
        // f(n, q) = f(n, q-1) * (n - q + 1) / q   (paper Eq. 18)
        row[static_cast<std::size_t>(q)] =
            row[static_cast<std::size_t>(q - 1)] *
            (static_cast<double>(n - q + 1) / static_cast<double>(q));
    }
    return row;
}

} // namespace leqa::mathx

#include "mathx/binomial.h"

#include <cmath>

#include "util/error.h"

namespace leqa::mathx {

double log_binomial(std::int64_t n, std::int64_t k) {
    LEQA_REQUIRE(n >= 0 && k >= 0 && k <= n, "log_binomial: need 0 <= k <= n");
    if (k == 0 || k == n) return 0.0;
    return std::lgamma(static_cast<double>(n) + 1.0) -
           std::lgamma(static_cast<double>(k) + 1.0) -
           std::lgamma(static_cast<double>(n - k) + 1.0);
}

double binomial(std::int64_t n, std::int64_t k) {
    return std::exp(log_binomial(n, k));
}

double binomial_pmf(std::int64_t n, std::int64_t k, double p) {
    LEQA_REQUIRE(n >= 0 && k >= 0 && k <= n, "binomial_pmf: need 0 <= k <= n");
    LEQA_REQUIRE(p >= 0.0 && p <= 1.0, "binomial_pmf: need 0 <= p <= 1");
    if (p == 0.0) return k == 0 ? 1.0 : 0.0;
    if (p == 1.0) return k == n ? 1.0 : 0.0;
    const double log_pmf = log_binomial(n, k) +
                           static_cast<double>(k) * std::log(p) +
                           static_cast<double>(n - k) * std::log1p(-p);
    return std::exp(log_pmf);
}

std::vector<double> binomial_row_recursive(std::int64_t n, std::int64_t max_k) {
    LEQA_REQUIRE(n >= 0 && max_k >= 0 && max_k <= n,
                 "binomial_row_recursive: need 0 <= max_k <= n");
    std::vector<double> row(static_cast<std::size_t>(max_k) + 1);
    row[0] = 1.0; // f(n, 0) = 1
    for (std::int64_t q = 1; q <= max_k; ++q) {
        // f(n, q) = f(n, q-1) * (n - q + 1) / q   (paper Eq. 18)
        row[static_cast<std::size_t>(q)] =
            row[static_cast<std::size_t>(q - 1)] *
            (static_cast<double>(n - q + 1) / static_cast<double>(q));
    }
    return row;
}

} // namespace leqa::mathx

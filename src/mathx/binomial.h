/// \file binomial.h
/// \brief Binomial coefficients and binomial PMF evaluation.
///
/// LEQA's Eq. (4) evaluates C(Q,q) * P^q * (1-P)^(Q-q) with Q as large as
/// several thousand.  The direct product underflows/overflows in double
/// precision, so the primary implementation works in log space.  The paper's
/// supplemental material also gives a constant-time multiplicative recursion
/// for C(Q,q) (Eq. 18); it is provided for fidelity and cross-checked in the
/// tests against the log-space form.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace leqa::mathx {

/// ln C(n, k).  Requires 0 <= k <= n.
[[nodiscard]] double log_binomial(std::int64_t n, std::int64_t k);

/// C(n, k) as a double (may be +inf for huge n).  Requires 0 <= k <= n.
[[nodiscard]] double binomial(std::int64_t n, std::int64_t k);

/// Binomial PMF  C(n,k) p^k (1-p)^(n-k)  computed in log space.
/// Handles the p == 0 and p == 1 endpoints exactly.
/// Requires 0 <= k <= n and 0 <= p <= 1.
[[nodiscard]] double binomial_pmf(std::int64_t n, std::int64_t k, double p);

/// The paper's Eq. (18) recursion: returns the row C(n,0..max_k) computed by
/// f(n,0)=1, f(n,q)=f(n,q-1)*(n-q+1)/q.  Values may overflow to +inf for
/// large n; intended for small n and for validating log_binomial.
[[nodiscard]] std::vector<double> binomial_row_recursive(std::int64_t n, std::int64_t max_k);

/// Running evaluation of the binomial PMF row C(n,q) p^q (1-p)^(n-q) for
/// q = 0, 1, 2, ... via the paper's Eq. (18) multiplicative recursion:
///
///   pmf(n, 0)     = (1-p)^n
///   pmf(n, q + 1) = pmf(n, q) * (n-q)/(q+1) * p/(1-p)
///
/// Each step is two multiplies — no lgamma, log, or exp in the loop.  The
/// state is kept as mantissa * 2^exponent (renormalized with frexp) so that
/// an underflowing (1-p)^n start does not wipe out terms that re-enter
/// double range at larger q; terms whose true magnitude is below double
/// range come out as 0, matching what the log-space `binomial_pmf` returns
/// after its final exp.  The p == 0 and p == 1 endpoints are exact.
class BinomialTermRecursion {
public:
    /// Requires n >= 0 and 0 <= p <= 1.  Starts positioned at q = 0.
    BinomialTermRecursion(std::int64_t n, double p);

    /// PMF at the current q.
    [[nodiscard]] double value() const;

    /// Step q -> q+1.  Stepping past q == n pins the value to 0.
    void advance();

    [[nodiscard]] std::int64_t q() const { return q_; }

private:
    std::int64_t n_ = 0;
    std::int64_t q_ = 0;
    double ratio_ = 0.0;    ///< p / (1-p); unused at the exact endpoints
    double mantissa_ = 0.0; ///< value() = mantissa_ * 2^exponent_
    int exponent_ = 0;
    bool degenerate_ = false; ///< p == 0 or p == 1: exact indicator values
    double p_ = 0.0;          ///< retained for the degenerate endpoints
};

/// Structure-of-arrays form of `BinomialTermRecursion`: one Eq. 18 running
/// PMF recursion per probability lane, all lanes advanced in lockstep by a
/// single flat loop over contiguous mantissa / exponent / ratio arrays.
///
/// The per-step factor (n-q)/(q+1) is shared by every lane, so one advance()
/// is one multiply per lane plus a branch-free renormalization: instead of
/// frexp, the IEEE-754 exponent field is read out of the product's bit
/// pattern, accumulated into the integer exponent lane, and reset in place.
/// Both renormalizations rescale by exact powers of two, so each lane's
/// value() is bit-identical to a scalar `BinomialTermRecursion` over the
/// same (n, p) — the parity the engine tests assert.
///
/// Zero mantissas (a p == 0 lane after its first step, or a start that
/// underflowed all the way out of double range) have a zero raw exponent
/// field and are left untouched by the same branchless select.  p == 1
/// lanes cannot run through the recursion (ratio_ would be infinite); they
/// are tracked aside and overridden with the exact indicator [q == n].
class BinomialRowBatch {
public:
    /// Requires n >= 0 and 0 <= p <= 1 for every lane.  Starts at q = 0.
    BinomialRowBatch(std::int64_t n, std::span<const double> probabilities);

    /// Step every lane q -> q+1.  Stepping past q == n pins all lanes to 0.
    void advance();

    /// PMF of every lane at the current q, written into `out` (which must
    /// hold at least lanes() values).
    void values(std::span<double> out) const;

    /// PMF of one lane at the current q (for spot checks; bulk readers
    /// should use values()).
    [[nodiscard]] double value(std::size_t lane) const;

    [[nodiscard]] std::size_t lanes() const { return mantissa_.size(); }
    [[nodiscard]] std::int64_t q() const { return q_; }

private:
    std::int64_t n_ = 0;
    std::int64_t q_ = 0;
    std::vector<double> ratio_;    ///< p/(1-p) per lane; 0 for p in {0, 1}
    std::vector<double> mantissa_; ///< lane value = mantissa * 2^exponent
    std::vector<int> exponent_;
    std::vector<std::size_t> one_lanes_; ///< lanes with p == 1 (exact indicator)
};

} // namespace leqa::mathx

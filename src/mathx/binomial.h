/// \file binomial.h
/// \brief Binomial coefficients and binomial PMF evaluation.
///
/// LEQA's Eq. (4) evaluates C(Q,q) * P^q * (1-P)^(Q-q) with Q as large as
/// several thousand.  The direct product underflows/overflows in double
/// precision, so the primary implementation works in log space.  The paper's
/// supplemental material also gives a constant-time multiplicative recursion
/// for C(Q,q) (Eq. 18); it is provided for fidelity and cross-checked in the
/// tests against the log-space form.
#pragma once

#include <cstdint>
#include <vector>

namespace leqa::mathx {

/// ln C(n, k).  Requires 0 <= k <= n.
[[nodiscard]] double log_binomial(std::int64_t n, std::int64_t k);

/// C(n, k) as a double (may be +inf for huge n).  Requires 0 <= k <= n.
[[nodiscard]] double binomial(std::int64_t n, std::int64_t k);

/// Binomial PMF  C(n,k) p^k (1-p)^(n-k)  computed in log space.
/// Handles the p == 0 and p == 1 endpoints exactly.
/// Requires 0 <= k <= n and 0 <= p <= 1.
[[nodiscard]] double binomial_pmf(std::int64_t n, std::int64_t k, double p);

/// The paper's Eq. (18) recursion: returns the row C(n,0..max_k) computed by
/// f(n,0)=1, f(n,q)=f(n,q-1)*(n-q+1)/q.  Values may overflow to +inf for
/// large n; intended for small n and for validating log_binomial.
[[nodiscard]] std::vector<double> binomial_row_recursive(std::int64_t n, std::int64_t max_k);

} // namespace leqa::mathx

#include "mathx/gf2poly.h"

#include <algorithm>
#include <bit>
#include <map>
#include <sstream>

#include "util/error.h"
#include "util/thread_annotations.h"

namespace leqa::mathx {

namespace {
constexpr int kWordBits = 64;

std::vector<int> prime_factors(int n) {
    std::vector<int> factors;
    for (int p = 2; p * p <= n; ++p) {
        if (n % p == 0) {
            factors.push_back(p);
            while (n % p == 0) n /= p;
        }
    }
    if (n > 1) factors.push_back(n);
    return factors;
}
} // namespace

Gf2Poly Gf2Poly::monomial(int exponent) {
    LEQA_REQUIRE(exponent >= 0, "monomial exponent must be non-negative");
    Gf2Poly p;
    p.set_coeff(exponent, true);
    return p;
}

Gf2Poly Gf2Poly::from_exponents(const std::vector<int>& exponents) {
    Gf2Poly p;
    for (const int e : exponents) p.set_coeff(e, !p.coeff(e));
    return p;
}

int Gf2Poly::degree() const {
    for (std::size_t w = words_.size(); w > 0; --w) {
        const std::uint64_t word = words_[w - 1];
        if (word != 0) {
            return static_cast<int>((w - 1) * kWordBits) + (63 - std::countl_zero(word));
        }
    }
    return -1;
}

bool Gf2Poly::coeff(int exponent) const {
    LEQA_REQUIRE(exponent >= 0, "exponent must be non-negative");
    const auto word = static_cast<std::size_t>(exponent) / kWordBits;
    if (word >= words_.size()) return false;
    return ((words_[word] >> (exponent % kWordBits)) & 1ULL) != 0;
}

void Gf2Poly::set_coeff(int exponent, bool value) {
    LEQA_REQUIRE(exponent >= 0, "exponent must be non-negative");
    const auto word = static_cast<std::size_t>(exponent) / kWordBits;
    if (word >= words_.size()) {
        if (!value) return;
        words_.resize(word + 1, 0);
    }
    const std::uint64_t mask = 1ULL << (exponent % kWordBits);
    if (value) {
        words_[word] |= mask;
    } else {
        words_[word] &= ~mask;
    }
    trim();
}

std::vector<int> Gf2Poly::exponents() const {
    std::vector<int> out;
    for (int e = degree(); e >= 0; --e) {
        if (coeff(e)) out.push_back(e);
    }
    return out;
}

void Gf2Poly::operator^=(const Gf2Poly& other) {
    if (other.words_.size() > words_.size()) words_.resize(other.words_.size(), 0);
    for (std::size_t w = 0; w < other.words_.size(); ++w) words_[w] ^= other.words_[w];
    trim();
}

bool Gf2Poly::operator==(const Gf2Poly& other) const {
    const std::size_t common = std::min(words_.size(), other.words_.size());
    for (std::size_t w = 0; w < common; ++w) {
        if (words_[w] != other.words_[w]) return false;
    }
    for (std::size_t w = common; w < words_.size(); ++w) {
        if (words_[w] != 0) return false;
    }
    for (std::size_t w = common; w < other.words_.size(); ++w) {
        if (other.words_[w] != 0) return false;
    }
    return true;
}

Gf2Poly Gf2Poly::shifted(int k) const {
    LEQA_REQUIRE(k >= 0, "shift must be non-negative");
    if (is_zero() || k == 0) {
        Gf2Poly copy = *this;
        return copy;
    }
    Gf2Poly out;
    const int word_shift = k / kWordBits;
    const int bit_shift = k % kWordBits;
    out.words_.assign(words_.size() + static_cast<std::size_t>(word_shift) + 1, 0);
    for (std::size_t w = 0; w < words_.size(); ++w) {
        out.words_[w + word_shift] |= words_[w] << bit_shift;
        if (bit_shift != 0) {
            out.words_[w + word_shift + 1] |= words_[w] >> (kWordBits - bit_shift);
        }
    }
    out.trim();
    return out;
}

Gf2Poly Gf2Poly::mod(const Gf2Poly& modulus) const {
    LEQA_REQUIRE(!modulus.is_zero(), "modulus must be non-zero");
    Gf2Poly remainder = *this;
    const int mod_degree = modulus.degree();
    int deg = remainder.degree();
    while (deg >= mod_degree) {
        remainder ^= modulus.shifted(deg - mod_degree);
        deg = remainder.degree();
    }
    return remainder;
}

Gf2Poly Gf2Poly::mulmod(const Gf2Poly& a, const Gf2Poly& b, const Gf2Poly& modulus) {
    LEQA_REQUIRE(!modulus.is_zero(), "modulus must be non-zero");
    Gf2Poly result;
    const Gf2Poly a_reduced = a.mod(modulus);
    const Gf2Poly b_reduced = b.mod(modulus);
    // Horner style over the bits of a, high to low, reducing as we go so
    // the working degree stays < 2 * deg(modulus).
    for (int e = a_reduced.degree(); e >= 0; --e) {
        result = result.shifted(1);
        if (a_reduced.coeff(e)) result ^= b_reduced;
        result = result.mod(modulus);
    }
    return result;
}

Gf2Poly Gf2Poly::gcd(Gf2Poly a, Gf2Poly b) {
    while (!b.is_zero()) {
        Gf2Poly r = a.mod(b);
        a = b;
        b = r;
    }
    return a;
}

std::string Gf2Poly::to_string() const {
    if (is_zero()) return "0";
    std::ostringstream out;
    bool first = true;
    for (const int e : exponents()) {
        if (!first) out << " + ";
        if (e == 0) out << "1";
        else if (e == 1) out << "x";
        else out << "x^" << e;
        first = false;
    }
    return out.str();
}

void Gf2Poly::trim() {
    while (!words_.empty() && words_.back() == 0) words_.pop_back();
}

bool is_irreducible(const Gf2Poly& p) {
    const int n = p.degree();
    if (n <= 0) return false;
    if (n == 1) return true;
    if (!p.coeff(0)) return false; // divisible by x

    const Gf2Poly x = Gf2Poly::monomial(1);

    // x^(2^n) mod p must equal x.
    Gf2Poly cur = x;
    for (int i = 0; i < n; ++i) cur = Gf2Poly::mulmod(cur, cur, p);
    if (!(cur == x.mod(p))) return false;

    // For each prime divisor d of n: gcd(x^(2^(n/d)) - x, p) must be 1.
    for (const int d : prime_factors(n)) {
        Gf2Poly h = x;
        for (int i = 0; i < n / d; ++i) h = Gf2Poly::mulmod(h, h, p);
        h ^= x;
        const Gf2Poly g = Gf2Poly::gcd(h.mod(p), p);
        if (g.degree() != 0) return false;
    }
    return true;
}

std::optional<int> find_irreducible_trinomial(int n) {
    LEQA_REQUIRE(n >= 2, "degree must be >= 2");
    for (int t = 1; t < n; ++t) {
        if (is_irreducible(Gf2Poly::from_exponents({n, t, 0}))) return t;
    }
    return std::nullopt;
}

std::optional<std::vector<int>> find_irreducible_pentanomial(int n) {
    LEQA_REQUIRE(n >= 4, "degree must be >= 4");
    for (int t3 = 3; t3 < n; ++t3) {
        for (int t2 = 2; t2 < t3; ++t2) {
            for (int t1 = 1; t1 < t2; ++t1) {
                if (is_irreducible(Gf2Poly::from_exponents({n, t3, t2, t1, 0}))) {
                    return std::vector<int>{t3, t2, t1};
                }
            }
        }
    }
    return std::nullopt;
}

std::vector<int> irreducible_middle_terms(int n, bool force_pentanomial) {
    // The memo is process-wide shared state; a struct (rather than two
    // bare statics) lets the capability analysis tie the map to its mutex.
    struct TermCache {
        util::Mutex mutex;
        std::map<std::pair<int, bool>, std::vector<int>> terms
            LEQA_GUARDED_BY(mutex);
    };
    static TermCache cache;
    {
        const util::MutexLock lock(cache.mutex);
        const auto it = cache.terms.find({n, force_pentanomial});
        if (it != cache.terms.end()) return it->second;
    }

    std::vector<int> terms;
    if (!force_pentanomial) {
        if (const auto t = find_irreducible_trinomial(n)) {
            terms = {*t};
        }
    }
    if (terms.empty()) {
        const auto penta = find_irreducible_pentanomial(n);
        LEQA_REQUIRE(penta.has_value(),
                     "no irreducible trinomial/pentanomial of degree " + std::to_string(n));
        terms = *penta;
    }

    const util::MutexLock lock(cache.mutex);
    cache.terms[{n, force_pentanomial}] = terms;
    return terms;
}

} // namespace leqa::mathx

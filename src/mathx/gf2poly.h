/// \file gf2poly.h
/// \brief Dense polynomial arithmetic over GF(2) and irreducibility testing.
///
/// Supports the GF(2^n) multiplier benchmark generator: the reduction
/// structure of a Mastrovito-style multiplier is determined by an
/// irreducible trinomial x^n + x^t + 1 or pentanomial
/// x^n + x^t3 + x^t2 + x^t1 + 1.  Irreducibility is established with
/// Rabin's test (x^(2^n) = x mod p, and gcd(x^(2^(n/d)) - x, p) = 1 for
/// every prime divisor d of n).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace leqa::mathx {

/// Polynomial over GF(2); bit i of the backing words is the coefficient of
/// x^i.  The zero polynomial has degree -1.
class Gf2Poly {
public:
    Gf2Poly() = default;

    /// x^e.
    static Gf2Poly monomial(int exponent);

    /// Sum of monomials, e.g. from_exponents({16, 5, 3, 1, 0}).
    static Gf2Poly from_exponents(const std::vector<int>& exponents);

    [[nodiscard]] int degree() const;
    [[nodiscard]] bool is_zero() const { return degree() < 0; }
    [[nodiscard]] bool coeff(int exponent) const;
    void set_coeff(int exponent, bool value);

    /// Exponents with non-zero coefficients, descending.
    [[nodiscard]] std::vector<int> exponents() const;

    void operator^=(const Gf2Poly& other); ///< addition over GF(2)
    [[nodiscard]] bool operator==(const Gf2Poly& other) const;

    /// this * x^k.
    [[nodiscard]] Gf2Poly shifted(int k) const;

    /// Remainder of this modulo \p modulus (degree >= 0 required).
    [[nodiscard]] Gf2Poly mod(const Gf2Poly& modulus) const;

    /// (a * b) mod modulus.
    static Gf2Poly mulmod(const Gf2Poly& a, const Gf2Poly& b, const Gf2Poly& modulus);

    /// gcd(a, b).
    static Gf2Poly gcd(Gf2Poly a, Gf2Poly b);

    /// Human-readable form like "x^16 + x^5 + x^3 + x + 1".
    [[nodiscard]] std::string to_string() const;

private:
    void trim();
    std::vector<std::uint64_t> words_;
};

/// Rabin irreducibility test over GF(2).
[[nodiscard]] bool is_irreducible(const Gf2Poly& p);

/// Smallest t such that x^n + x^t + 1 is irreducible, if any (n >= 2).
[[nodiscard]] std::optional<int> find_irreducible_trinomial(int n);

/// Lexicographically smallest (t3, t2, t1), t3 > t2 > t1 >= 1, such that
/// x^n + x^t3 + x^t2 + x^t1 + 1 is irreducible, if any (n >= 4).
[[nodiscard]] std::optional<std::vector<int>> find_irreducible_pentanomial(int n);

/// Middle exponents (descending, excluding n and 0) of a cached irreducible
/// polynomial of degree n: 1 entry (trinomial) when force_pentanomial is
/// false and one exists, else 3 entries (pentanomial).  Throws InputError
/// when neither exists.
[[nodiscard]] std::vector<int> irreducible_middle_terms(int n, bool force_pentanomial);

} // namespace leqa::mathx

#include "mathx/queueing.h"

#include "util/error.h"

namespace leqa::mathx {

double Mm1Queue::utilization() const {
    LEQA_REQUIRE(mu > 0.0, "Mm1Queue: service rate must be positive");
    return lambda / mu;
}

double Mm1Queue::average_queue_length() const {
    LEQA_REQUIRE(mu > lambda, "Mm1Queue: queue is unstable (lambda >= mu)");
    LEQA_REQUIRE(lambda >= 0.0, "Mm1Queue: arrival rate must be non-negative");
    return lambda / (mu - lambda);
}

double Mm1Queue::average_wait() const {
    LEQA_REQUIRE(mu > lambda, "Mm1Queue: queue is unstable (lambda >= mu)");
    return 1.0 / (mu - lambda);
}

double channel_service_rate(double nc, double d_uncongest_us) {
    LEQA_REQUIRE(nc > 0.0, "channel capacity Nc must be positive");
    LEQA_REQUIRE(d_uncongest_us > 0.0, "d_uncongest must be positive");
    return nc / d_uncongest_us;
}

double arrival_rate_from_queue_length(double q, double nc, double d_uncongest_us) {
    LEQA_REQUIRE(q >= 0.0, "queue length must be non-negative");
    LEQA_REQUIRE(nc > 0.0, "channel capacity Nc must be positive");
    LEQA_REQUIRE(d_uncongest_us > 0.0, "d_uncongest must be positive");
    return q * nc / ((1.0 + q) * d_uncongest_us);
}

double average_wait_from_queue_length(double q, double nc, double d_uncongest_us) {
    LEQA_REQUIRE(q >= 0.0, "queue length must be non-negative");
    LEQA_REQUIRE(nc > 0.0, "channel capacity Nc must be positive");
    LEQA_REQUIRE(d_uncongest_us > 0.0, "d_uncongest must be positive");
    return (1.0 + q) * d_uncongest_us / nc;
}

double congested_delay(double q, double nc, double d_uncongest_us) {
    LEQA_REQUIRE(q >= 0.0, "queue length must be non-negative");
    LEQA_REQUIRE(nc > 0.0, "channel capacity Nc must be positive");
    LEQA_REQUIRE(d_uncongest_us > 0.0, "d_uncongest must be positive");
    if (q <= nc) return d_uncongest_us;
    return (1.0 + q) * d_uncongest_us / nc;
}

} // namespace leqa::mathx

/// \file queueing.h
/// \brief M/M/1 queue algebra for LEQA's congestion model (paper §3.1).
///
/// The paper models a routing channel as an M/M/1/inf queue: service rate
/// mu = Nc / d_uncongest (Nc qubits leave per uncongested transit time) and
/// an arrival rate lambda backed out from the observed queue length q via
/// Eq. (9)/(10).  Little's formula then gives the average waiting time
/// W_avg = (1+q) * d_uncongest / Nc  (Eq. 11), which is the congested branch
/// of the piecewise delay model d_q (Eq. 8).
#pragma once

namespace leqa::mathx {

/// M/M/1 steady-state helper functions.  All rates are per microsecond and
/// all times are microseconds, matching the rest of the library.
struct Mm1Queue {
    double lambda = 0.0; ///< arrival rate
    double mu = 0.0;     ///< service rate

    /// Utilization rho = lambda / mu.
    [[nodiscard]] double utilization() const;

    /// Average number of customers in the system, lambda / (mu - lambda).
    /// Requires lambda < mu (stable queue).
    [[nodiscard]] double average_queue_length() const;

    /// Average time in system via Little's formula, L / lambda.
    [[nodiscard]] double average_wait() const;
};

/// Service rate of a routing channel: mu = Nc / d_uncongest  (paper §3.1).
[[nodiscard]] double channel_service_rate(double nc, double d_uncongest_us);

/// Arrival rate recovered from queue length q (paper Eq. 10):
///   lambda = q * Nc / ((1 + q) * d_uncongest).
[[nodiscard]] double arrival_rate_from_queue_length(double q, double nc,
                                                    double d_uncongest_us);

/// Average waiting (service) time for q queued qubits (paper Eq. 11):
///   W_avg = (1 + q) * d_uncongest / Nc.
[[nodiscard]] double average_wait_from_queue_length(double q, double nc,
                                                    double d_uncongest_us);

/// Piecewise congestion-aware routing delay d_q (paper Eq. 8):
///   d_q = d_uncongest                     if q <= Nc
///       = (1 + q) * d_uncongest / Nc      otherwise.
[[nodiscard]] double congested_delay(double q, double nc, double d_uncongest_us);

} // namespace leqa::mathx

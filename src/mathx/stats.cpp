#include "mathx/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace leqa::mathx {

double mean(std::span<const double> values) {
    LEQA_REQUIRE(!values.empty(), "mean: empty input");
    double sum = 0.0;
    for (const double v : values) sum += v;
    return sum / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
    LEQA_REQUIRE(!values.empty(), "variance: empty input");
    const double mu = mean(values);
    double sum = 0.0;
    for (const double v : values) sum += (v - mu) * (v - mu);
    return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) { return std::sqrt(variance(values)); }

double min_value(std::span<const double> values) {
    LEQA_REQUIRE(!values.empty(), "min_value: empty input");
    return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
    LEQA_REQUIRE(!values.empty(), "max_value: empty input");
    return *std::max_element(values.begin(), values.end());
}

double percentile(std::vector<double> values, double p) {
    LEQA_REQUIRE(!values.empty(), "percentile: empty input");
    LEQA_REQUIRE(p >= 0.0 && p <= 100.0, "percentile: p must be in [0, 100]");
    std::sort(values.begin(), values.end());
    if (values.size() == 1) return values[0];
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double nearest_rank_percentile(std::vector<double> values, double fraction) {
    return nearest_rank_percentile_inplace(values, fraction);
}

double nearest_rank_percentile_inplace(std::vector<double>& scratch, double fraction) {
    LEQA_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
                 "nearest_rank_percentile: fraction must be in [0, 1]");
    if (scratch.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(
        std::ceil(fraction * static_cast<double>(scratch.size())));
    // Clamp to [1, N]: fraction 0 yields rank 0 (the minimum is the answer),
    // and rounding noise in fraction * N must never index past the end.
    const std::size_t index = std::min(std::max<std::size_t>(rank, 1), scratch.size()) - 1;
    std::nth_element(scratch.begin(),
                     scratch.begin() + static_cast<std::ptrdiff_t>(index), scratch.end());
    return scratch[index];
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
    LEQA_REQUIRE(x.size() == y.size(), "linear_fit: size mismatch");
    LEQA_REQUIRE(x.size() >= 2, "linear_fit: need at least two points");
    const double n = static_cast<double>(x.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
        sxx += x[i] * x[i];
        sxy += x[i] * y[i];
        syy += y[i] * y[i];
    }
    const double denom = n * sxx - sx * sx;
    LEQA_REQUIRE(std::abs(denom) > 0.0, "linear_fit: degenerate x values");
    LinearFit fit;
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
    const double ss_tot = syy - sy * sy / n;
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double r = y[i] - (fit.slope * x[i] + fit.intercept);
        ss_res += r * r;
    }
    fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
    return fit;
}

PowerLawFit power_law_fit(std::span<const double> x, std::span<const double> y) {
    LEQA_REQUIRE(x.size() == y.size(), "power_law_fit: size mismatch");
    std::vector<double> lx(x.size());
    std::vector<double> ly(y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        LEQA_REQUIRE(x[i] > 0.0 && y[i] > 0.0,
                     "power_law_fit: all values must be strictly positive");
        lx[i] = std::log(x[i]);
        ly[i] = std::log(y[i]);
    }
    const LinearFit linear = linear_fit(lx, ly);
    PowerLawFit fit;
    fit.exponent = linear.slope;
    fit.coefficient = std::exp(linear.intercept);
    fit.r_squared = linear.r_squared;
    return fit;
}

double power_law_eval(const PowerLawFit& fit, double x) {
    LEQA_REQUIRE(x > 0.0, "power_law_eval: x must be positive");
    return fit.coefficient * std::pow(x, fit.exponent);
}

} // namespace leqa::mathx

/// \file stats.h
/// \brief Descriptive statistics and least-squares fits used by the bench
///        harnesses (error summaries, runtime scaling exponents).
#pragma once

#include <span>
#include <vector>

namespace leqa::mathx {

[[nodiscard]] double mean(std::span<const double> values);
[[nodiscard]] double variance(std::span<const double> values); ///< population variance
[[nodiscard]] double stddev(std::span<const double> values);
[[nodiscard]] double min_value(std::span<const double> values);
[[nodiscard]] double max_value(std::span<const double> values);

/// Linear interpolated percentile; p in [0, 100].
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Nearest-rank percentile over \p values for \p fraction in [0, 1] (the
/// service latency summaries).  The pinned formula: over N samples, rank =
/// ceil(fraction * N) clamped to [1, N], and the result is the rank-th
/// smallest sample (1-based).  Consequences worth spelling out:
///   - empty input returns 0.0 (no samples, no latency);
///   - a single sample is returned for every fraction, including 0 and 1;
///   - fraction 0 returns the minimum (rank clamps up to 1);
///   - fraction 1 returns the maximum (rank = N exactly; the clamp also
///     keeps a fraction > 1 from indexing past the end);
///   - small windows saturate high fractions: with N < 100, fraction 0.99
///     has ceil(0.99 N) = N, i.e. p99 *is* the maximum until the ring
///     holds at least 100 samples.
[[nodiscard]] double nearest_rank_percentile(std::vector<double> values,
                                             double fraction);

/// In-place variant for callers extracting several ranks from one window:
/// reorders \p scratch (nth_element) instead of copying it per call.
[[nodiscard]] double nearest_rank_percentile_inplace(std::vector<double>& scratch,
                                                     double fraction);

/// Ordinary least squares fit  y = slope * x + intercept.
struct LinearFit {
    double slope = 0.0;
    double intercept = 0.0;
    double r_squared = 0.0;
};
[[nodiscard]] LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Power-law fit  y = c * x^alpha  via least squares in log-log space.
/// Requires all x and y strictly positive.  The scaling study uses this to
/// recover the paper's "QSPR ~ N^1.5, LEQA ~ N^1.0" exponents.
struct PowerLawFit {
    double exponent = 0.0;    ///< alpha
    double coefficient = 0.0; ///< c
    double r_squared = 0.0;
};
[[nodiscard]] PowerLawFit power_law_fit(std::span<const double> x, std::span<const double> y);

/// Evaluate a power-law fit at x.
[[nodiscard]] double power_law_eval(const PowerLawFit& fit, double x);

} // namespace leqa::mathx

/// \file stats.h
/// \brief Descriptive statistics and least-squares fits used by the bench
///        harnesses (error summaries, runtime scaling exponents).
#pragma once

#include <span>
#include <vector>

namespace leqa::mathx {

[[nodiscard]] double mean(std::span<const double> values);
[[nodiscard]] double variance(std::span<const double> values); ///< population variance
[[nodiscard]] double stddev(std::span<const double> values);
[[nodiscard]] double min_value(std::span<const double> values);
[[nodiscard]] double max_value(std::span<const double> values);

/// Linear interpolated percentile; p in [0, 100].
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Ordinary least squares fit  y = slope * x + intercept.
struct LinearFit {
    double slope = 0.0;
    double intercept = 0.0;
    double r_squared = 0.0;
};
[[nodiscard]] LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Power-law fit  y = c * x^alpha  via least squares in log-log space.
/// Requires all x and y strictly positive.  The scaling study uses this to
/// recover the paper's "QSPR ~ N^1.5, LEQA ~ N^1.0" exponents.
struct PowerLawFit {
    double exponent = 0.0;    ///< alpha
    double coefficient = 0.0; ///< c
    double r_squared = 0.0;
};
[[nodiscard]] PowerLawFit power_law_fit(std::span<const double> x, std::span<const double> y);

/// Evaluate a power-law fit at x.
[[nodiscard]] double power_law_eval(const PowerLawFit& fit, double x);

} // namespace leqa::mathx

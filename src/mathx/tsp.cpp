#include "mathx/tsp.h"

#include <cmath>

#include "util/error.h"

namespace leqa::mathx {

namespace {
// Beardwood-Halton-Hammersley style experimental constants used verbatim by
// the paper (which cites the Held-Karp experimental analysis literature).
constexpr double kLowerSlope = 0.708;
constexpr double kLowerIntercept = 0.551;
constexpr double kUpperSlope = 0.718;
constexpr double kUpperIntercept = 0.731;
constexpr double kMidSlope = 0.713;   // (0.708 + 0.718) / 2
constexpr double kMidIntercept = 0.641; // (0.551 + 0.731) / 2
} // namespace

double tsp_tour_lower_bound(double n_points) {
    LEQA_REQUIRE(n_points >= 0.0, "point count must be non-negative");
    return kLowerSlope * std::sqrt(n_points) + kLowerIntercept;
}

double tsp_tour_upper_bound(double n_points) {
    LEQA_REQUIRE(n_points >= 0.0, "point count must be non-negative");
    return kUpperSlope * std::sqrt(n_points) + kUpperIntercept;
}

double tsp_tour_estimate(double n_points) {
    LEQA_REQUIRE(n_points >= 0.0, "point count must be non-negative");
    return kMidSlope * std::sqrt(n_points) + kMidIntercept;
}

double expected_hamiltonian_path(double zone_area, double m_neighbors) {
    LEQA_REQUIRE(zone_area >= 0.0, "zone area must be non-negative");
    LEQA_REQUIRE(m_neighbors >= 1.0, "expected_hamiltonian_path: M_i must be >= 1");
    const double tour = tsp_tour_estimate(m_neighbors + 1.0);
    const double path_over_tour = (m_neighbors - 1.0) / m_neighbors;
    return std::sqrt(zone_area) * tour * path_over_tour;
}

} // namespace leqa::mathx

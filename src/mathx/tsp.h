/// \file tsp.h
/// \brief Expected random-TSP tour length bounds and the expected shortest
///        Hamiltonian path estimate of LEQA (paper Eqs. 13-15).
///
/// For n points uniform in the unit square, the expected optimal TSP tour
/// length is bracketed (for n >> 1) by
///   lower: 0.708 sqrt(n) + 0.551      (Eq. 13)
///   upper: 0.718 sqrt(n) + 0.731      (Eq. 14)
/// The paper averages the two (0.713 sqrt(n) + 0.641), scales by the zone
/// side length sqrt(B_i), and converts tour -> Hamiltonian path with the
/// factor (M_i - 1) / M_i  (one fewer edge than the tour), giving Eq. 15.
#pragma once

namespace leqa::mathx {

/// Expected-TSP-tour lower bound for n uniform points in the unit square.
[[nodiscard]] double tsp_tour_lower_bound(double n_points);

/// Expected-TSP-tour upper bound for n uniform points in the unit square.
[[nodiscard]] double tsp_tour_upper_bound(double n_points);

/// Midpoint of the two bounds: 0.713 sqrt(n) + 0.641.
[[nodiscard]] double tsp_tour_estimate(double n_points);

/// LEQA Eq. 15: expected shortest Hamiltonian path through (M_i + 1) points
/// in a presence zone of area B_i (side sqrt(B_i)):
///   E[l_ham,i] = sqrt(B_i) * (0.713 sqrt(M_i + 1) + 0.641) * (M_i - 1)/M_i.
/// Requires M_i >= 1 (qubits with no interactions carry no weight in the
/// caller's weighted average).  Note the formula vanishes for M_i == 1,
/// a documented artifact of the asymptotic bound the paper adopts.
[[nodiscard]] double expected_hamiltonian_path(double zone_area, double m_neighbors);

} // namespace leqa::mathx

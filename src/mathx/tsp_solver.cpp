#include "mathx/tsp_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace leqa::mathx {

double euclidean(const Point2D& a, const Point2D& b) {
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    return std::sqrt(dx * dx + dy * dy);
}

double path_length(const std::vector<Point2D>& points, const std::vector<int>& order) {
    LEQA_REQUIRE(order.size() == points.size(), "order size must match point count");
    double total = 0.0;
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
        total += euclidean(points[static_cast<std::size_t>(order[i])],
                           points[static_cast<std::size_t>(order[i + 1])]);
    }
    return total;
}

double tour_length(const std::vector<Point2D>& points, const std::vector<int>& order) {
    if (order.size() < 2) return 0.0;
    double total = path_length(points, order);
    total += euclidean(points[static_cast<std::size_t>(order.back())],
                       points[static_cast<std::size_t>(order.front())]);
    return total;
}

namespace {

std::vector<std::vector<double>> distance_matrix(const std::vector<Point2D>& points) {
    const std::size_t n = points.size();
    std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            dist[i][j] = dist[j][i] = euclidean(points[i], points[j]);
        }
    }
    return dist;
}

/// Held-Karp table: best[mask][last] = shortest path covering `mask`
/// (subset of points) ending at `last`, starting anywhere.
std::vector<std::vector<double>> held_karp(const std::vector<Point2D>& points) {
    const std::size_t n = points.size();
    LEQA_REQUIRE(n >= 1 && n <= 15, "exact solver supports 1..15 points");
    const auto dist = distance_matrix(points);
    const std::size_t full = std::size_t{1} << n;
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<std::vector<double>> best(full, std::vector<double>(n, kInf));
    for (std::size_t i = 0; i < n; ++i) best[std::size_t{1} << i][i] = 0.0;
    for (std::size_t mask = 1; mask < full; ++mask) {
        for (std::size_t last = 0; last < n; ++last) {
            if ((mask & (std::size_t{1} << last)) == 0) continue;
            const double base = best[mask][last];
            if (base == kInf) continue;
            for (std::size_t next = 0; next < n; ++next) {
                if (mask & (std::size_t{1} << next)) continue;
                const std::size_t next_mask = mask | (std::size_t{1} << next);
                const double candidate = base + dist[last][next];
                if (candidate < best[next_mask][next]) best[next_mask][next] = candidate;
            }
        }
    }
    return best;
}

} // namespace

double shortest_hamiltonian_path_exact(const std::vector<Point2D>& points) {
    const std::size_t n = points.size();
    if (n <= 1) return 0.0;
    const auto best = held_karp(points);
    const std::size_t full = (std::size_t{1} << n) - 1;
    double optimum = std::numeric_limits<double>::infinity();
    for (std::size_t last = 0; last < n; ++last) {
        optimum = std::min(optimum, best[full][last]);
    }
    return optimum;
}

double shortest_tour_exact(const std::vector<Point2D>& points) {
    const std::size_t n = points.size();
    if (n <= 2) {
        // Degenerate tours: 0 for <2 points, out-and-back for 2.
        return n == 2 ? 2.0 * euclidean(points[0], points[1]) : 0.0;
    }
    // Fix point 0 as the start; path must cover all and return to 0.
    const auto dist = distance_matrix(points);
    const auto best = held_karp(points); // start-anywhere table
    // Recompute with fixed start 0 for the classic tour DP.
    const std::size_t full = std::size_t{1} << n;
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<std::vector<double>> dp(full, std::vector<double>(n, kInf));
    dp[1][0] = 0.0;
    for (std::size_t mask = 1; mask < full; ++mask) {
        if ((mask & 1) == 0) continue;
        for (std::size_t last = 0; last < n; ++last) {
            if ((mask & (std::size_t{1} << last)) == 0) continue;
            const double base = dp[mask][last];
            if (base == kInf) continue;
            for (std::size_t next = 1; next < n; ++next) {
                if (mask & (std::size_t{1} << next)) continue;
                const std::size_t next_mask = mask | (std::size_t{1} << next);
                const double candidate = base + dist[last][next];
                if (candidate < dp[next_mask][next]) dp[next_mask][next] = candidate;
            }
        }
    }
    double optimum = kInf;
    for (std::size_t last = 1; last < n; ++last) {
        optimum = std::min(optimum, dp[full - 1][last] + dist[last][0]);
    }
    (void)best;
    return optimum;
}

double tour_heuristic(const std::vector<Point2D>& points) {
    const std::size_t n = points.size();
    if (n <= 1) return 0.0;
    if (n == 2) return 2.0 * euclidean(points[0], points[1]);
    const auto dist = distance_matrix(points);

    // Nearest-neighbor construction from point 0.
    std::vector<int> order;
    order.reserve(n);
    std::vector<bool> used(n, false);
    order.push_back(0);
    used[0] = true;
    for (std::size_t step = 1; step < n; ++step) {
        const auto last = static_cast<std::size_t>(order.back());
        double best = std::numeric_limits<double>::infinity();
        std::size_t pick = 0;
        for (std::size_t candidate = 0; candidate < n; ++candidate) {
            if (used[candidate]) continue;
            if (dist[last][candidate] < best) {
                best = dist[last][candidate];
                pick = candidate;
            }
        }
        order.push_back(static_cast<int>(pick));
        used[pick] = true;
    }

    // 2-opt improvement until no improving swap remains.
    bool improved = true;
    while (improved) {
        improved = false;
        for (std::size_t i = 0; i + 1 < n; ++i) {
            for (std::size_t j = i + 2; j < n; ++j) {
                const auto a = static_cast<std::size_t>(order[i]);
                const auto b = static_cast<std::size_t>(order[i + 1]);
                const auto c = static_cast<std::size_t>(order[j]);
                const auto d = static_cast<std::size_t>(order[(j + 1) % n]);
                if (a == d) continue; // adjacent wrap
                const double delta =
                    dist[a][c] + dist[b][d] - dist[a][b] - dist[c][d];
                if (delta < -1e-12) {
                    std::reverse(order.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                                 order.begin() + static_cast<std::ptrdiff_t>(j) + 1);
                    improved = true;
                }
            }
        }
    }
    return tour_length(points, order);
}

double hamiltonian_path_heuristic(const std::vector<Point2D>& points) {
    const std::size_t n = points.size();
    if (n <= 1) return 0.0;
    if (n == 2) return euclidean(points[0], points[1]);
    // A tour minus its longest edge is a Hamiltonian path; with the 2-opt
    // tour this is a tight upper bound on the optimal path.
    const auto dist = distance_matrix(points);
    // Re-run the heuristic, retaining the order (duplicated logic kept
    // minimal by calling tour_heuristic for the length only when the order
    // is not needed; here we need the order, so rebuild).
    std::vector<int> order;
    order.reserve(n);
    std::vector<bool> used(n, false);
    order.push_back(0);
    used[0] = true;
    for (std::size_t step = 1; step < n; ++step) {
        const auto last = static_cast<std::size_t>(order.back());
        double best = std::numeric_limits<double>::infinity();
        std::size_t pick = 0;
        for (std::size_t candidate = 0; candidate < n; ++candidate) {
            if (used[candidate]) continue;
            if (dist[last][candidate] < best) {
                best = dist[last][candidate];
                pick = candidate;
            }
        }
        order.push_back(static_cast<int>(pick));
        used[pick] = true;
    }
    bool improved = true;
    while (improved) {
        improved = false;
        for (std::size_t i = 0; i + 1 < n; ++i) {
            for (std::size_t j = i + 2; j < n; ++j) {
                const auto a = static_cast<std::size_t>(order[i]);
                const auto b = static_cast<std::size_t>(order[i + 1]);
                const auto c = static_cast<std::size_t>(order[j]);
                const auto d = static_cast<std::size_t>(order[(j + 1) % n]);
                if (a == d) continue;
                const double delta = dist[a][c] + dist[b][d] - dist[a][b] - dist[c][d];
                if (delta < -1e-12) {
                    std::reverse(order.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                                 order.begin() + static_cast<std::ptrdiff_t>(j) + 1);
                    improved = true;
                }
            }
        }
    }
    // Drop the longest tour edge.
    double longest = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const auto a = static_cast<std::size_t>(order[i]);
        const auto b = static_cast<std::size_t>(order[(i + 1) % n]);
        longest = std::max(longest, dist[a][b]);
    }
    return tour_length(points, order) - longest;
}

} // namespace leqa::mathx

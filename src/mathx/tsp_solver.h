/// \file tsp_solver.h
/// \brief Exact and heuristic TSP / shortest-Hamiltonian-path solvers.
///
/// LEQA's Eq. 15 rests on closed-form bounds for the expected length of the
/// optimal tour through random points (the BHH-style constants of Eqs.
/// 13-14).  These solvers let the test suite and the Monte Carlo validation
/// bench check those constants *empirically*:
///   - Held-Karp dynamic programming gives exact optima up to ~15 points;
///   - nearest-neighbor + 2-opt gives tight upper bounds at any size.
#pragma once

#include <vector>

namespace leqa::mathx {

/// A point in the unit square (or any plane).
struct Point2D {
    double x = 0.0;
    double y = 0.0;
};

[[nodiscard]] double euclidean(const Point2D& a, const Point2D& b);

/// Length of a path visiting the points in the given order (no return leg).
[[nodiscard]] double path_length(const std::vector<Point2D>& points,
                                 const std::vector<int>& order);

/// Length of the closed tour in the given order.
[[nodiscard]] double tour_length(const std::vector<Point2D>& points,
                                 const std::vector<int>& order);

/// Exact shortest Hamiltonian *path* (free endpoints) via Held-Karp DP.
/// Requires 1 <= n <= 15.  Returns the optimal length.
[[nodiscard]] double shortest_hamiltonian_path_exact(const std::vector<Point2D>& points);

/// Exact shortest closed *tour* via Held-Karp DP.  Requires 1 <= n <= 15.
[[nodiscard]] double shortest_tour_exact(const std::vector<Point2D>& points);

/// Heuristic tour: nearest-neighbor construction + 2-opt improvement.
/// Deterministic for a given input order.  Returns the tour length.
[[nodiscard]] double tour_heuristic(const std::vector<Point2D>& points);

/// Heuristic open path: heuristic tour with the longest edge removed.
[[nodiscard]] double hamiltonian_path_heuristic(const std::vector<Point2D>& points);

} // namespace leqa::mathx

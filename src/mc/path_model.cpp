#include "mc/path_model.h"

#include <cmath>
#include <vector>

#include "mathx/tsp_solver.h"
#include "util/error.h"

namespace leqa::mc {

PathModelResult empirical_path_model(const PathModelConfig& config, util::Rng& rng) {
    LEQA_REQUIRE(config.zone_area > 0.0, "zone area must be positive");
    LEQA_REQUIRE(config.num_points >= 1, "need at least one point");
    LEQA_REQUIRE(config.trials >= 1, "need at least one trial");

    const double side = std::sqrt(config.zone_area);
    const bool exact = config.num_points <= 12;

    PathModelResult result;
    result.exact = exact;
    std::vector<double> path_lengths;
    path_lengths.reserve(static_cast<std::size_t>(config.trials));
    double tour_sum = 0.0;

    std::vector<mathx::Point2D> points(static_cast<std::size_t>(config.num_points));
    for (int trial = 0; trial < config.trials; ++trial) {
        for (auto& p : points) {
            p.x = rng.uniform(0.0, side);
            p.y = rng.uniform(0.0, side);
        }
        const double path = exact ? mathx::shortest_hamiltonian_path_exact(points)
                                  : mathx::hamiltonian_path_heuristic(points);
        const double tour = exact ? mathx::shortest_tour_exact(points)
                                  : mathx::tour_heuristic(points);
        path_lengths.push_back(path);
        tour_sum += tour;
    }

    double path_sum = 0.0;
    for (const double v : path_lengths) path_sum += v;
    result.mean_path = path_sum / static_cast<double>(config.trials);
    result.mean_tour = tour_sum / static_cast<double>(config.trials);
    double var = 0.0;
    for (const double v : path_lengths) {
        var += (v - result.mean_path) * (v - result.mean_path);
    }
    result.stddev_path = std::sqrt(var / static_cast<double>(config.trials));
    return result;
}

} // namespace leqa::mc

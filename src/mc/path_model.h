/// \file path_model.h
/// \brief Monte Carlo validation of the Hamiltonian-path length model.
///
/// LEQA's Eq. 15 estimates the expected shortest Hamiltonian path through
/// M+1 uniform points in a presence zone from averaged TSP tour bounds
/// (Eqs. 13-14).  This module samples actual point sets and solves them
/// (exactly up to 15 points, 2-opt heuristic above), yielding empirical
/// expectations to compare against the closed form.
#pragma once

#include "util/rng.h"

namespace leqa::mc {

struct PathModelConfig {
    double zone_area = 16.0; ///< B_i; points live in a sqrt(B) x sqrt(B) square
    int num_points = 8;      ///< M_i + 1
    int trials = 400;
};

struct PathModelResult {
    double mean_path = 0.0;   ///< empirical E[shortest Hamiltonian path]
    double mean_tour = 0.0;   ///< empirical E[shortest tour]
    double stddev_path = 0.0;
    bool exact = false;       ///< true when the DP solver was used
};

/// Sample and solve; deterministic for a given rng state.
[[nodiscard]] PathModelResult empirical_path_model(const PathModelConfig& config,
                                                   util::Rng& rng);

} // namespace leqa::mc

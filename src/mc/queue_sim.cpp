#include "mc/queue_sim.h"

#include <algorithm>
#include <vector>

#include "util/error.h"

namespace leqa::mc {

QueueSimResult simulate_mm1(const QueueSimConfig& config, util::Rng& rng) {
    LEQA_REQUIRE(config.arrival_rate > 0.0, "arrival rate must be positive");
    LEQA_REQUIRE(config.service_rate > config.arrival_rate,
                 "queue must be stable (mu > lambda)");
    LEQA_REQUIRE(config.num_customers > config.warmup, "too few customers");

    // Lindley recursion: departure_i = max(arrival_i, departure_{i-1}) + s_i.
    double arrival = 0.0;
    double last_departure = 0.0;
    double measured_time = 0.0;        // measurement-window span
    double busy_time = 0.0;            // server busy within window
    double system_time_sum = 0.0;      // sum of (departure - arrival)
    double area_in_system = 0.0;       // integral of N(t) via per-customer time
    double window_start = 0.0;
    long long measured = 0;

    for (int i = 0; i < config.num_customers; ++i) {
        arrival += rng.exponential(config.arrival_rate);
        const double service = rng.exponential(config.service_rate);
        const double start = std::max(arrival, last_departure);
        const double departure = start + service;
        if (i == config.warmup) window_start = arrival;
        if (i >= config.warmup) {
            ++measured;
            system_time_sum += departure - arrival;
            busy_time += service;
            area_in_system += departure - arrival; // per-customer contribution
            measured_time = departure - window_start;
        }
        last_departure = departure;
    }

    QueueSimResult result;
    result.mean_system_time = system_time_sum / static_cast<double>(measured);
    // L = lambda_effective * W (Little); area/T gives the same estimate.
    result.mean_queue_length = area_in_system / measured_time;
    result.utilization = busy_time / measured_time;
    return result;
}

} // namespace leqa::mc

/// \file queue_sim.h
/// \brief Discrete-event M/M/1 queue simulation (the paper's Figure 5).
///
/// LEQA models a congested routing channel as an M/M/1 queue and backs the
/// congested-delay expression of Eq. 8 out of Little's formula (Eqs.
/// 9-11).  This simulator generates Poisson arrivals and exponential
/// service times and measures the empirical queue length and waiting time,
/// validating the closed forms.
#pragma once

#include "util/rng.h"

namespace leqa::mc {

struct QueueSimConfig {
    double arrival_rate = 0.004;  ///< lambda (per us)
    double service_rate = 0.005;  ///< mu (per us); must exceed lambda
    int num_customers = 200000;   ///< arrivals simulated
    int warmup = 5000;            ///< arrivals discarded before measuring
};

struct QueueSimResult {
    double mean_system_time = 0.0;   ///< E[time in system] (wait + service)
    double mean_queue_length = 0.0;  ///< time-averaged customers in system
    double utilization = 0.0;        ///< fraction of time server busy
};

/// Run the simulation; deterministic for a given rng state.
[[nodiscard]] QueueSimResult simulate_mm1(const QueueSimConfig& config, util::Rng& rng);

} // namespace leqa::mc

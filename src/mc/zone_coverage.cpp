#include "mc/zone_coverage.h"

#include "util/error.h"

namespace leqa::mc {

namespace {

void validate(const ZoneCoverageConfig& config) {
    LEQA_REQUIRE(config.width >= 1 && config.height >= 1, "bad fabric dimensions");
    LEQA_REQUIRE(config.zone_side >= 1 &&
                     config.zone_side <= std::min(config.width, config.height),
                 "zone side must fit the fabric");
    LEQA_REQUIRE(config.num_zones >= 0, "zone count must be non-negative");
    LEQA_REQUIRE(config.trials >= 1, "need at least one trial");
}

/// Sample the top-left corner of a uniformly placed s x s zone.
struct Corner {
    int x;
    int y;
};
Corner sample_corner(const ZoneCoverageConfig& config, util::Rng& rng) {
    const int max_x = config.width - config.zone_side;   // inclusive
    const int max_y = config.height - config.zone_side;
    return Corner{static_cast<int>(rng.uniform_int(0, max_x)),
                  static_cast<int>(rng.uniform_int(0, max_y))};
}

} // namespace

double empirical_coverage_probability(const ZoneCoverageConfig& config, int x, int y,
                                      util::Rng& rng) {
    validate(config);
    LEQA_REQUIRE(x >= 1 && x <= config.width && y >= 1 && y <= config.height,
                 "cell out of range");
    const int cx = x - 1;
    const int cy = y - 1;
    long long covered = 0;
    for (int trial = 0; trial < config.trials; ++trial) {
        const Corner corner = sample_corner(config, rng);
        const bool hit = cx >= corner.x && cx < corner.x + config.zone_side &&
                         cy >= corner.y && cy < corner.y + config.zone_side;
        if (hit) ++covered;
    }
    return static_cast<double>(covered) / static_cast<double>(config.trials);
}

std::vector<double> empirical_expected_surfaces(const ZoneCoverageConfig& config,
                                                long long max_q, util::Rng& rng) {
    validate(config);
    LEQA_REQUIRE(max_q >= 0 && max_q <= config.num_zones, "max_q must be in [0, Q]");
    const std::size_t cells =
        static_cast<std::size_t>(config.width) * static_cast<std::size_t>(config.height);
    std::vector<int> overlap(cells);
    std::vector<double> surfaces(static_cast<std::size_t>(max_q) + 1, 0.0);

    for (int trial = 0; trial < config.trials; ++trial) {
        std::fill(overlap.begin(), overlap.end(), 0);
        for (long long z = 0; z < config.num_zones; ++z) {
            const Corner corner = sample_corner(config, rng);
            for (int dy = 0; dy < config.zone_side; ++dy) {
                const std::size_t row =
                    static_cast<std::size_t>(corner.y + dy) *
                    static_cast<std::size_t>(config.width);
                for (int dx = 0; dx < config.zone_side; ++dx) {
                    ++overlap[row + static_cast<std::size_t>(corner.x + dx)];
                }
            }
        }
        for (const int count : overlap) {
            if (count <= max_q) ++surfaces[static_cast<std::size_t>(count)];
        }
    }
    for (double& s : surfaces) s /= static_cast<double>(config.trials);
    return surfaces;
}

} // namespace leqa::mc

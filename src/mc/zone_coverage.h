/// \file zone_coverage.h
/// \brief Monte Carlo validation of the presence-zone coverage model.
///
/// LEQA's Eqs. 4-5 derive, in closed form, the probability that a ULB is
/// covered by a randomly placed s x s presence zone and the expected fabric
/// surface covered by exactly q of Q zones (the geometry of the paper's
/// Figures 3-4).  This module measures both quantities by direct
/// simulation -- placing zones uniformly at random and counting -- so the
/// analytic forms can be validated empirically (tests and the
/// model_validation bench).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace leqa::mc {

struct ZoneCoverageConfig {
    int width = 60;      ///< fabric width a
    int height = 60;     ///< fabric height b
    int zone_side = 6;   ///< presence-zone side s
    long long num_zones = 48;  ///< Q
    int trials = 2000;   ///< random placements averaged
};

/// Empirical probability that the ULB at 1-based (x, y) is covered by one
/// uniformly placed zone (the Monte Carlo analogue of Eq. 5).
[[nodiscard]] double empirical_coverage_probability(const ZoneCoverageConfig& config,
                                                    int x, int y, util::Rng& rng);

/// Empirical E[S_q] for q = 0..max_q: the expected number of ULBs covered
/// by exactly q zones (the Monte Carlo analogue of Eq. 4).  Element i of
/// the result is E[S_i].
[[nodiscard]] std::vector<double> empirical_expected_surfaces(
    const ZoneCoverageConfig& config, long long max_q, util::Rng& rng);

} // namespace leqa::mc

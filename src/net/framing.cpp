#include "net/framing.h"

#include "util/error.h"

namespace leqa::net {

namespace {

/// How much of an overlong line to keep for the diagnostic event.
constexpr std::size_t kOverlongPrefix = 256;

} // namespace

LineReader::LineReader(std::size_t max_line_bytes) : max_line_(max_line_bytes) {
    LEQA_REQUIRE(max_line_ >= 2, "line cap must allow at least a 2-byte line");
}

void LineReader::feed(std::string_view data) {
    while (!data.empty()) {
        const std::size_t newline = data.find('\n');
        if (discarding_) {
            if (newline == std::string_view::npos) return; // still inside it
            discarding_ = false;
            data.remove_prefix(newline + 1);
            continue;
        }
        if (newline == std::string_view::npos) {
            partial_.append(data);
            data = {};
        } else {
            partial_.append(data.substr(0, newline));
            data.remove_prefix(newline + 1);
            // Strip a CR so "\r\n" clients frame identically to "\n" ones.
            if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
            if (partial_.size() > max_line_) {
                partial_.resize(kOverlongPrefix);
                ready_.push_back(WireLine{std::move(partial_), /*overlong=*/true});
            } else {
                ready_.push_back(WireLine{std::move(partial_), /*overlong=*/false});
            }
            partial_.clear();
            continue;
        }
        if (partial_.size() > max_line_) {
            // Cap blown mid-line: report once, then eat until the newline.
            partial_.resize(kOverlongPrefix);
            ready_.push_back(WireLine{std::move(partial_), /*overlong=*/true});
            partial_.clear();
            discarding_ = true;
        }
    }
}

void LineReader::finish() {
    if (discarding_) {
        discarding_ = false;
        return; // the overlong event already fired
    }
    if (partial_.empty()) return;
    if (partial_.size() > max_line_) {
        partial_.resize(kOverlongPrefix);
        ready_.push_back(WireLine{std::move(partial_), /*overlong=*/true});
    } else {
        ready_.push_back(WireLine{std::move(partial_), /*overlong=*/false});
    }
    partial_.clear();
}

std::optional<WireLine> LineReader::next() {
    if (ready_.empty()) return std::nullopt;
    WireLine line = std::move(ready_.front());
    ready_.pop_front();
    return line;
}

} // namespace leqa::net

#include "net/framing.h"

#include <algorithm>

#include "util/error.h"

namespace leqa::net {

namespace {

/// How much of an overlong line to keep for the diagnostic event.
constexpr std::size_t kOverlongPrefix = 256;

} // namespace

LineReader::LineReader(std::size_t max_line_bytes) : max_line_(max_line_bytes) {
    LEQA_REQUIRE(max_line_ >= 2, "line cap must allow at least a 2-byte line");
}

void LineReader::feed(std::string_view data) {
    // Diagnostic prefix kept for an overlong line: the first `kept` bytes of
    // the logical (CR-stripped) line.  Capping at max_line_ + 1 keeps the
    // prefix independent of how the stream is chunked — a mid-line overflow
    // is detected with at least that many bytes buffered, so whole-feed and
    // byte-at-a-time feeds frame byte-identical events.
    const std::size_t kept = std::min(kOverlongPrefix, max_line_ + 1);
    while (!data.empty()) {
        const std::size_t newline = data.find('\n');
        if (discarding_) {
            if (newline == std::string_view::npos) return; // still inside it
            discarding_ = false;
            data.remove_prefix(newline + 1);
            continue;
        }
        if (newline == std::string_view::npos) {
            partial_.append(data);
            data = {};
        } else {
            partial_.append(data.substr(0, newline));
            data.remove_prefix(newline + 1);
            // Strip a CR so "\r\n" clients frame identically to "\n" ones.
            if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
            if (partial_.size() > max_line_) {
                partial_.resize(std::min(partial_.size(), kept));
                ready_.push_back(WireLine{std::move(partial_), /*overlong=*/true});
            } else {
                ready_.push_back(WireLine{std::move(partial_), /*overlong=*/false});
            }
            partial_.clear();
            continue;
        }
        // Mid-line cap check.  A single trailing CR may still be stripped
        // when the newline arrives, so it does not count against the cap —
        // otherwise a "…\r\n" line landing its CR on a segment boundary
        // would frame as overlong chunked but clean whole.
        std::size_t effective = partial_.size();
        if (effective > 0 && partial_.back() == '\r') --effective;
        if (effective > max_line_) {
            // Cap blown mid-line: report once, then eat until the newline.
            partial_.resize(std::min(effective, kept));
            ready_.push_back(WireLine{std::move(partial_), /*overlong=*/true});
            partial_.clear();
            discarding_ = true;
        }
    }
}

void LineReader::finish() {
    if (discarding_) {
        discarding_ = false;
        return; // the overlong event already fired
    }
    if (partial_.empty()) return;
    if (partial_.size() > max_line_) {
        partial_.resize(
            std::min(partial_.size(), std::min(kOverlongPrefix, max_line_ + 1)));
        ready_.push_back(WireLine{std::move(partial_), /*overlong=*/true});
    } else {
        ready_.push_back(WireLine{std::move(partial_), /*overlong=*/false});
    }
    partial_.clear();
}

std::optional<WireLine> LineReader::next() {
    if (ready_.empty()) return std::nullopt;
    WireLine line = std::move(ready_.front());
    ready_.pop_front();
    return line;
}

} // namespace leqa::net

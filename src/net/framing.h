/// \file framing.h
/// \brief NDJSON line framing with a hard per-line length cap.
///
/// Both wire transports (the stdio daemon loop and the TCP reactor) feed
/// raw received bytes into a `LineReader` and pop complete lines out.  The
/// cap is the defense the stdio `std::getline` loop never had: a hostile
/// client streaming one unterminated line used to grow the buffer without
/// bound.  Here the moment a line exceeds `max_line_bytes` the reader emits
/// a single `overlong` event, drops what it buffered, and discards further
/// bytes until the terminating newline -- memory stays bounded by the cap
/// and the stream resynchronizes on the next line.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

namespace leqa::net {

/// One framed event: a complete line (without its '\n'), or the one-shot
/// marker that a line blew the length cap (text then holds the truncated
/// prefix, for diagnostics only -- never parse it).
struct WireLine {
    std::string text;
    bool overlong = false;
};

/// Incremental, bounded NDJSON splitter.  feed() bytes in any chunking;
/// next() pops framed events in arrival order.
class LineReader {
public:
    explicit LineReader(std::size_t max_line_bytes);

    void feed(std::string_view data);

    /// Signal end of stream: a non-empty unterminated tail becomes a final
    /// line event (matching std::getline's treatment of a missing trailing
    /// newline).
    void finish();

    [[nodiscard]] std::optional<WireLine> next();

    /// Bytes of the current unterminated line held in the buffer.
    [[nodiscard]] std::size_t buffered() const { return partial_.size(); }
    [[nodiscard]] std::size_t max_line_bytes() const { return max_line_; }

private:
    std::size_t max_line_;
    std::string partial_;
    bool discarding_ = false; ///< inside an overlong line, eating until '\n'
    std::deque<WireLine> ready_;
};

} // namespace leqa::net

#include "net/server.h"

#include <algorithm>
#include <cerrno>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/error.h"

namespace leqa::net {

namespace {

/// One recv() chunk.  Lines larger than this are assembled across chunks
/// by the LineReader, so the value only bounds per-call work, not line
/// length.
constexpr std::size_t kReadChunk = 65536;

std::pair<Socket, Socket> make_wake_pipe() {
    int fds[2];
    if (::pipe(fds) != 0) {
        throw util::Error("pipe: " + util::errno_message(errno));
    }
    set_nonblocking(fds[0]);
    set_nonblocking(fds[1]);
    return {Socket(fds[0]), Socket(fds[1])};
}

} // namespace

Server::Server(service::Service& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
    LEQA_REQUIRE(options_.max_connections >= 1, "server needs at least one connection");
    listener_ = listen_tcp(options_.host, options_.port, options_.backlog);
    port_ = local_port(listener_);
    auto [rd, wr] = make_wake_pipe();
    wake_rd_ = std::move(rd);
    wake_wr_ = std::move(wr);
}

Server::~Server() {
    // run() normally exits with no connections left; if it was abandoned
    // early (an exception, a never-started run), detach the survivors so
    // their late completion callbacks cannot touch this dead Server.
    for (auto& [fd, conn] : connections_) conn->session->detach();
}

void Server::stop() {
    stop_requested_.store(true);
    wake();
}

void Server::wake() {
    const char byte = 1;
    // EAGAIN means the pipe already holds a wakeup; that is all we need.
    [[maybe_unused]] const ssize_t rc = ::write(wake_wr_.fd(), &byte, 1);
}

void Server::drain_wake_pipe() {
    char buffer[256];
    while (::read(wake_rd_.fd(), buffer, sizeof(buffer)) > 0) {}
}

void Server::apply_completions() {
    std::vector<std::pair<std::uint64_t, std::string>> batch;
    {
        const util::MutexLock lock(completions_mutex_);
        batch.swap(completions_);
    }
    for (auto& [gen, line] : batch) {
        const auto it = by_gen_.find(gen);
        if (it == by_gen_.end()) continue; // connection died; drop the line
        it->second->out += line;
        it->second->out += '\n';
    }
}

void Server::begin_drain() {
    if (draining_) return;
    draining_ = true;
    listener_.close(); // stop accepting; pending connects get RST/refused
}

bool Server::can_close(const Connection& conn) {
    if (conn.out_off < conn.out.size()) return false;
    if (!conn.session->idle()) return false;
    // idle() means every completion was already pushed (Session::complete
    // emits before it erases); the push may still sit in the queue, so a
    // connection is only closable when no queued line names its gen.
    const util::MutexLock lock(completions_mutex_);
    return std::none_of(completions_.begin(), completions_.end(),
                        [&](const auto& entry) { return entry.first == conn.gen; });
}

void Server::accept_ready() {
    for (;;) {
        if (connections_.size() >= options_.max_connections) return;
        const int fd = ::accept(listener_.fd(), nullptr, nullptr);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            if (errno == EINTR || errno == ECONNABORTED) continue;
            return; // transient resource failure (EMFILE, ...); retry later
        }
        Socket socket(fd);
        set_nonblocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        const std::uint64_t gen = ++next_gen_;
        auto conn = std::make_unique<Connection>(std::move(socket), gen,
                                                 options_.max_line_bytes);
        SessionOptions session_options;
        session_options.reject_when_full = true; // the reactor never blocks
        conn->session = Session::make(
            service_,
            [this, gen](std::string line) {
                {
                    const util::MutexLock lock(completions_mutex_);
                    completions_.emplace_back(gen, std::move(line));
                }
                wake();
            },
            session_options);
        // Re-run the close-out sweep whenever a completion leaves the
        // session's in-flight table: the emit above fires *before* that
        // table shrinks, so the wake it triggers can find idle() still
        // false -- without this second nudge the reactor would never
        // re-evaluate and a drained connection would hang open.
        conn->session->set_on_settled([this] { wake(); });
        by_gen_[gen] = conn.get();
        connections_[fd] = std::move(conn);
        accepted_.fetch_add(1);
    }
}

void Server::read_ready(Connection& conn) {
    char buffer[kReadChunk];
    for (;;) {
        const ssize_t got = ::recv(conn.socket.fd(), buffer, sizeof(buffer), 0);
        if (got < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            doomed_.push_back(conn.socket.fd()); // reset mid-stream
            return;
        }
        if (got == 0) {
            // Orderly EOF: like stdio EOF, the client is done sending but
            // still gets every accepted response before we close.
            conn.read_closed = true;
            conn.reader.finish();
            break;
        }
        conn.reader.feed(std::string_view(buffer, static_cast<std::size_t>(got)));
        // Dispatch as we go so a pipelined burst cannot defer all parsing
        // to one giant post-read pass.
        while (std::optional<WireLine> line = conn.reader.next()) {
            if (line->overlong) {
                conn.session->handle_overlong();
            } else {
                conn.session->handle_line(line->text);
            }
        }
    }
    while (std::optional<WireLine> line = conn.reader.next()) {
        if (line->overlong) {
            conn.session->handle_overlong();
        } else {
            conn.session->handle_line(line->text);
        }
    }
}

void Server::flush_writes(Connection& conn) {
    while (conn.out_off < conn.out.size()) {
        const ssize_t sent =
            ::send(conn.socket.fd(), conn.out.data() + conn.out_off,
                   conn.out.size() - conn.out_off, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            if (errno == EINTR) continue;
            doomed_.push_back(conn.socket.fd()); // peer gone; EPIPE/ECONNRESET
            return;
        }
        conn.out_off += static_cast<std::size_t>(sent);
    }
    conn.out.clear();
    conn.out_off = 0;
}

void Server::destroy_connection(int fd) {
    const auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    // Detach first: emission goes dark and in-flight jobs are cancelled
    // (queued ones immediately, running ones at their next checkpoint), so
    // an abandoned connection cannot leak queue slots.
    it->second->session->detach();
    by_gen_.erase(it->second->gen);
    connections_.erase(it); // closes the socket
}

void Server::run() {
    std::vector<pollfd> fds;
    std::vector<Connection*> polled;
    for (;;) {
        if (stop_requested_.load()) begin_drain();
        if (draining_ && connections_.empty()) return;

        fds.clear();
        polled.clear();
        fds.push_back(pollfd{wake_rd_.fd(), POLLIN, 0});
        const bool watch_shutdown = options_.shutdown_fd >= 0 && !draining_;
        if (watch_shutdown) {
            fds.push_back(pollfd{options_.shutdown_fd, POLLIN, 0});
        }
        const bool watch_listener =
            !draining_ && connections_.size() < options_.max_connections;
        if (watch_listener) {
            fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
        }
        const std::size_t first_conn = fds.size();
        for (auto& [fd, conn] : connections_) {
            short events = 0;
            if (!draining_ && !conn->read_closed) events |= POLLIN;
            if (conn->out_off < conn->out.size()) events |= POLLOUT;
            fds.push_back(pollfd{fd, events, 0});
            polled.push_back(conn.get());
        }

        if (::poll(fds.data(), fds.size(), -1) < 0) {
            if (errno == EINTR) continue; // a signal; loop re-checks state
            throw util::Error("poll: " + util::errno_message(errno));
        }

        std::size_t index = 0;
        if (fds[index].revents & POLLIN) drain_wake_pipe();
        ++index;
        if (watch_shutdown) {
            if (fds[index].revents & POLLIN) begin_drain();
            ++index;
        }
        if (watch_listener) {
            if (fds[index].revents & POLLIN) accept_ready();
            ++index;
        }

        doomed_.clear();
        for (std::size_t c = 0; c < polled.size(); ++c) {
            Connection& conn = *polled[c];
            const short revents = fds[first_conn + c].revents;
            if (revents & (POLLIN | POLLHUP | POLLERR)) {
                if (!draining_ && !conn.read_closed) read_ready(conn);
                else if (revents & POLLERR) doomed_.push_back(conn.socket.fd());
            }
        }
        // Sessions may have completed inline work (stats, cancels, nowait
        // rejections) during the reads; fold those lines in before writing
        // so single-iteration request/response round trips stay possible.
        apply_completions();
        for (Connection* conn : polled) {
            if (std::find(doomed_.begin(), doomed_.end(), conn->socket.fd()) !=
                doomed_.end()) {
                continue;
            }
            if (conn->out_off < conn->out.size()) flush_writes(*conn);
        }
        for (const int fd : doomed_) destroy_connection(fd);
        doomed_.clear();

        // Close-out sweep: a connection departs once the peer stopped
        // sending (or we are draining), every job answered, and every byte
        // flushed -- exactly-once delivery, then the socket goes away.
        std::vector<int> closable;
        for (auto& [fd, conn] : connections_) {
            if ((conn->read_closed || draining_) && can_close(*conn)) {
                closable.push_back(fd);
            }
        }
        for (const int fd : closable) destroy_connection(fd);
    }
}

} // namespace leqa::net

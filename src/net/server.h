/// \file server.h
/// \brief Single-reactor TCP server: N concurrent NDJSON connections
///        multiplexed onto one service::Service job queue via poll(2).
///
/// Shape of the loop (one thread, never blocks on work):
///
///   - the listener, a wake pipe, an optional external shutdown fd, and
///     every connection sit in one poll set;
///   - reads are non-blocking and framed by net::LineReader under the hard
///     per-line cap (an overlong line answers ParseError and resyncs);
///   - each connection owns a net::Session, so wire ids are
///     connection-local and "cancel"/"stats" behave exactly like stdio;
///   - job submission uses the service's nowait mode: when the bounded
///     queue is full the request completes immediately with the retryable
///     `Unavailable` code instead of blocking the reactor;
///   - completions arrive on worker threads, are queued under a mutex, and
///     the wake pipe gets one byte -- the reactor drains the queue into
///     per-connection write buffers (partial writes resume on POLLOUT);
///   - a client that disconnects mid-request gets its in-flight jobs
///     cancelled (cooperatively -- running jobs stop at the next pipeline
///     checkpoint) and late completions are dropped by generation id, so a
///     dead connection can neither leak jobs nor crash the loop;
///   - stop() (or a readable shutdown fd, e.g. a SIGTERM self-pipe) closes
///     the listener, stops reading, lets every in-flight job finish,
///     flushes every response, then run() returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/framing.h"
#include "net/session.h"
#include "net/socket.h"
#include "service/service.h"
#include "util/thread_annotations.h"

namespace leqa::net {

struct ServerOptions {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0; ///< 0 = ephemeral; read back via Server::port()
    int backlog = 128;
    std::size_t max_connections = 1024;
    std::size_t max_line_bytes = 1 << 20; ///< per-request NDJSON line cap
    /// Optional *non-blocking* fd the reactor also polls; readable means
    /// "begin graceful shutdown" (the CLI points this at its signal
    /// self-pipe so SIGTERM/SIGINT drain instead of kill).
    int shutdown_fd = -1;
};

class Server {
public:
    /// Binds and listens immediately (throws util::Error on failure); the
    /// service must outlive the server.
    Server(service::Service& service, ServerOptions options = {});
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// The bound port (the ephemeral one when options.port was 0).
    [[nodiscard]] std::uint16_t port() const { return port_; }

    /// The reactor loop.  Returns only after a stop request has been seen
    /// AND every accepted request has been answered and flushed (or its
    /// connection died).  Call from exactly one thread.
    void run();

    /// Request graceful shutdown from any thread.  Safe to call more than
    /// once and before run().
    void stop();

    /// Lifetime connection count (observability; reactor-thread accurate
    /// after run() returns).
    [[nodiscard]] std::uint64_t connections_accepted() const {
        return accepted_.load();
    }

private:
    struct Connection {
        Socket socket;
        std::uint64_t gen = 0; ///< unique per accepted connection, never reused
        LineReader reader;
        std::shared_ptr<Session> session;
        std::string out;           ///< pending response bytes
        std::size_t out_off = 0;   ///< already-written prefix of out
        bool read_closed = false;  ///< peer EOF: no more requests, still drains

        Connection(Socket s, std::uint64_t g, std::size_t max_line)
            : socket(std::move(s)), gen(g), reader(max_line) {}
    };

    void wake();
    void drain_wake_pipe();
    void apply_completions() LEQA_EXCLUDES(completions_mutex_);
    void accept_ready();
    void read_ready(Connection& conn);
    void flush_writes(Connection& conn);
    void destroy_connection(int fd);
    void begin_drain();
    [[nodiscard]] bool can_close(const Connection& conn)
        LEQA_EXCLUDES(completions_mutex_);

    service::Service& service_;
    ServerOptions options_;
    Socket listener_;
    std::uint16_t port_ = 0;
    Socket wake_rd_, wake_wr_;

    std::unordered_map<int, std::unique_ptr<Connection>> connections_; ///< by fd
    std::unordered_map<std::uint64_t, Connection*> by_gen_;
    std::uint64_t next_gen_ = 0;
    std::atomic<std::uint64_t> accepted_{0};

    /// Completed-response lines from worker threads: (connection gen, line).
    util::Mutex completions_mutex_;
    std::vector<std::pair<std::uint64_t, std::string>> completions_
        LEQA_GUARDED_BY(completions_mutex_);

    std::atomic<bool> stop_requested_{false};
    bool draining_ = false; ///< reactor-thread state
    std::vector<int> doomed_; ///< fds to destroy after the poll sweep
};

} // namespace leqa::net

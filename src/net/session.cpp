#include "net/session.h"

#include <utility>

#include "util/strings.h"

namespace leqa::net {

namespace wire = service::wire;

std::shared_ptr<Session> Session::make(service::Service& service, Emit emit,
                                       SessionOptions options) {
    return std::shared_ptr<Session>(
        new Session(service, std::move(emit), options));
}

Session::Session(service::Service& service, Emit emit, SessionOptions options)
    : service_(service), options_(options), emit_(std::move(emit)) {}

void Session::set_on_settled(Notify notify) {
    const util::MutexLock lock(mutex_);
    on_settled_ = std::move(notify);
}

void Session::emit(std::string line) {
    Emit sink;
    {
        const util::MutexLock lock(mutex_);
        sink = emit_; // copy out: never hold our mutex inside the transport
    }
    if (sink) sink(std::move(line));
}

void Session::track(std::uint64_t id, service::JobHandle handle) {
    const util::MutexLock lock(mutex_);
    // The job may have completed (and fired its erase) before this insert
    // ran; only track handles that are still in flight.  A non-terminal
    // state here guarantees the completion erase is still to come.
    const service::JobState state = handle.poll();
    if (state != service::JobState::Done && state != service::JobState::Cancelled) {
        jobs_[id] = std::move(handle);
    }
}

void Session::complete(std::uint64_t id, const service::JobHandle& handle) {
    // Serialize on the worker thread -- keeps JSON formatting off the
    // transport thread (the reactor only ever copies bytes).  Emit BEFORE
    // erasing: the reactor closes a connection once its session is idle,
    // so "idle" must imply "every response already reached the transport
    // (or its queue)" -- erasing first would open a lost-response window.
    emit(wire::serialize_result(id, handle.wait()));
    Notify settled;
    {
        const util::MutexLock lock(mutex_);
        jobs_.erase(id);
        settled = on_settled_;
    }
    // The erase may have made idle() true; a transport waiting on that must
    // hear about it *after* the flip (an idle() probe between the emit above
    // and the erase reads false, and without this nudge nothing would ever
    // re-run it -- the reactor would sleep forever holding a finished,
    // flushed, closable connection).
    if (settled) settled();
}

void Session::detach() {
    std::unordered_map<std::uint64_t, service::JobHandle> orphans;
    {
        const util::MutexLock lock(mutex_);
        emit_ = nullptr;
        on_settled_ = nullptr;
        orphans.swap(jobs_);
    }
    // Cancel outside the lock: a queued job cancels synchronously, which
    // fires complete() -> emit() on this thread.
    for (auto& [id, handle] : orphans) (void)handle.cancel();
}

std::size_t Session::inflight() const {
    const util::MutexLock lock(mutex_);
    return jobs_.size();
}

void Session::handle_overlong() {
    emit(wire::serialize_error(
        0, util::Status(util::StatusCode::ParseError,
                        "request line exceeds the server line cap; bytes up to "
                        "the next newline were discarded",
                        "wire")));
}

void Session::handle_line(const std::string& line) {
    if (util::trim(line).empty()) return;
    const util::Result<wire::WireRequest> parsed = wire::parse_request(line);
    if (!parsed.ok()) {
        // Best-effort correlation -- but never duplicate an in-flight id:
        // if the recovered id already names a pending job, answer as
        // unidentifiable (id 0) so that job's eventual response stays the
        // only line with its id.
        std::uint64_t recovered = wire::extract_id(line);
        if (recovered != 0) {
            const util::MutexLock lock(mutex_);
            if (jobs_.count(recovered) != 0) recovered = 0;
        }
        emit(wire::serialize_error(recovered, parsed.status()));
        return;
    }
    const wire::WireRequest& request = parsed.value();
    const std::uint64_t id = request.id;
    {
        // Ids must be unique among this session's in-flight requests for
        // every op: a reused job id would make the older job uncancellable
        // and let its completion erase the newer entry, and even an inline
        // op reusing one would put two responses with the same id on the
        // wire.
        bool duplicate = false;
        {
            const util::MutexLock lock(mutex_);
            duplicate = jobs_.count(id) != 0;
        }
        if (duplicate) {
            emit(wire::serialize_error(
                id, util::Status(util::StatusCode::InvalidArgument,
                                 "request id " + std::to_string(id) +
                                     " is already in flight",
                                 "wire")));
            return;
        }
    }

    service::SubmitOptions options = wire::submit_options(request);
    options.nowait = options_.reject_when_full;
    options.on_complete = [self = shared_from_this(),
                           id](const service::JobHandle& handle) {
        self->complete(id, handle);
    };

    switch (request.op) {
        case wire::WireRequest::Op::Estimate:
        case wire::WireRequest::Op::Map:
        case wire::WireRequest::Op::Both: {
            std::optional<fabric::PhysicalParams> params;
            if (!request.params.empty()) {
                params = request.params.apply(service_.pipeline().config().params);
            }
            track(id, service_.submit(request.source, wire::run_mode_of(request.op),
                                      std::move(params), std::move(options)));
            break;
        }
        case wire::WireRequest::Op::Sweep: {
            service::SweepRequest sweep;
            sweep.source = request.source;
            sweep.axis = request.axis;
            sweep.values = request.values;
            sweep.kinds = request.kinds;
            track(id, service_.submit_sweep(std::move(sweep), std::move(options)));
            break;
        }
        case wire::WireRequest::Op::Explore: {
            service::ExploreRequest explore;
            explore.source = request.source;
            explore.spec = request.explore;
            track(id, service_.submit_explore(std::move(explore), std::move(options)));
            break;
        }
        case wire::WireRequest::Op::Optimize: {
            service::OptimizeRequest optimize;
            optimize.source = request.source;
            optimize.options = request.optimize;
            if (!request.params.empty()) {
                optimize.params =
                    request.params.apply(service_.pipeline().config().params);
            }
            track(id,
                  service_.submit_optimize(std::move(optimize), std::move(options)));
            break;
        }
        case wire::WireRequest::Op::Calibrate: {
            service::CalibrationRequest calibrate;
            calibrate.sources = request.sources;
            calibrate.apply = request.apply_calibration;
            track(id, service_.submit_calibration(std::move(calibrate),
                                                  std::move(options)));
            break;
        }
        case wire::WireRequest::Op::Cancel: {
            service::JobHandle target;
            {
                const util::MutexLock lock(mutex_);
                const auto it = jobs_.find(request.target);
                if (it != jobs_.end()) target = it->second;
            }
            if (!target.valid()) {
                emit(wire::serialize_error(
                    id, util::Status(util::StatusCode::NotFound,
                                     "no job with id " +
                                         std::to_string(request.target),
                                     "queue")));
            } else {
                emit(wire::serialize_cancel_ack(id, request.target, target.cancel()));
            }
            break;
        }
        case wire::WireRequest::Op::Stats:
            emit(wire::serialize_stats(id, service_.stats()));
            break;
    }
}

} // namespace leqa::net

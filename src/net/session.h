/// \file session.h
/// \brief One wire session: the per-client NDJSON dispatch shared by the
///        stdio daemon loop and every TCP connection of the reactor.
///
/// A Session owns a connection-local wire-id space: the ids a client picks
/// only need to be unique among *its own* in-flight requests, because the
/// session maps them onto the service's globally unique internal job keys
/// and keeps the id -> JobHandle table that "cancel" reaches into.  Two
/// clients can both be running request id 1 without interference.
///
/// Threading: handle_line() is called from exactly one transport thread
/// (the stdio reader or the reactor), while completions arrive on service
/// worker threads; the in-flight table takes an internal mutex, and the
/// emit callback must itself be thread-safe (the stdio emit locks stdout,
/// the reactor emit locks the completion queue).  Sessions are created via
/// make() because completion callbacks keep the session alive by
/// shared_ptr: a TCP connection can die while its jobs still run, so
/// detach() flips emission to a no-op and cancels the in-flight jobs, and
/// the late completions then touch only this (still-alive) session object.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "service/service.h"
#include "service/wire.h"
#include "util/thread_annotations.h"

namespace leqa::net {

/// Per-session policy knobs.
struct SessionOptions {
    /// Full-queue behavior: true rejects with the retryable Unavailable
    /// code (TCP -- the reactor must never block), false blocks the
    /// submitting thread (stdio -- backpressure propagates up the pipe).
    bool reject_when_full = false;
};

class Session : public std::enable_shared_from_this<Session> {
public:
    /// Thread-safe sink for one serialized response line (no '\n').
    using Emit = std::function<void(std::string line)>;
    /// Thread-safe post-settlement notification (see set_on_settled).
    using Notify = std::function<void()>;

    [[nodiscard]] static std::shared_ptr<Session> make(service::Service& service,
                                                       Emit emit,
                                                       SessionOptions options = {});

    /// Called (from the completing thread) each time a completion leaves
    /// the in-flight table, i.e. each time idle() may have turned true.  A
    /// transport that gates connection teardown on idle() needs this:
    /// completions emit *before* they erase (exactly-once delivery), so an
    /// idle() probe taken between the two reads false with no later event
    /// to re-trigger it -- the notify is that later event.  Cleared by
    /// detach().
    void set_on_settled(Notify notify) LEQA_EXCLUDES(mutex_);

    /// Dispatch one request line (already framed, may be malformed): zero
    /// or more responses go out through emit, now or on completion.
    void handle_line(const std::string& line) LEQA_EXCLUDES(mutex_);

    /// Answer the one-shot overlong-line event with a ParseError (id 0 --
    /// the line was never parsed, so its id is unknowable by design).
    void handle_overlong() LEQA_EXCLUDES(mutex_);

    /// Stop emitting and cancel every in-flight job (client went away).
    /// Idempotent.  Late completions become no-ops.
    void detach() LEQA_EXCLUDES(mutex_);

    /// In-flight request count (jobs submitted, response not yet emitted).
    [[nodiscard]] std::size_t inflight() const LEQA_EXCLUDES(mutex_);
    [[nodiscard]] bool idle() const LEQA_EXCLUDES(mutex_) {
        return inflight() == 0;
    }

private:
    Session(service::Service& service, Emit emit, SessionOptions options);

    void emit(std::string line) LEQA_EXCLUDES(mutex_);
    void track(std::uint64_t id, service::JobHandle handle) LEQA_EXCLUDES(mutex_);
    void complete(std::uint64_t id, const service::JobHandle& handle)
        LEQA_EXCLUDES(mutex_);

    service::Service& service_;
    SessionOptions options_;

    mutable util::Mutex mutex_; ///< guards emit_, on_settled_, jobs_
    /// Cleared by detach().
    Emit emit_ LEQA_GUARDED_BY(mutex_);
    /// Cleared by detach().
    Notify on_settled_ LEQA_GUARDED_BY(mutex_);
    std::unordered_map<std::uint64_t, service::JobHandle> jobs_
        LEQA_GUARDED_BY(mutex_);
};

} // namespace leqa::net

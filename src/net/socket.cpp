#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/error.h"

namespace leqa::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
    throw util::Error(what + ": " + util::errno_message(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        throw util::InputError("not an IPv4 address: \"" + host + "\"");
    }
    return addr;
}

} // namespace

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = other.release();
    }
    return *this;
}

int Socket::release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
}

void Socket::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Socket listen_tcp(const std::string& host, std::uint16_t port, int backlog) {
    Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
    if (!socket.valid()) fail("socket");
    const int one = 1;
    if (::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
        fail("setsockopt(SO_REUSEADDR)");
    }
    const sockaddr_in addr = make_addr(host, port);
    if (::bind(socket.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        fail("bind " + host + ":" + std::to_string(port));
    }
    if (::listen(socket.fd(), backlog) != 0) fail("listen");
    set_nonblocking(socket.fd());
    return socket;
}

std::uint16_t local_port(const Socket& socket) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
        fail("getsockname");
    }
    return ntohs(addr.sin_port);
}

Socket connect_tcp(const std::string& host, std::uint16_t port) {
    Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
    if (!socket.valid()) fail("socket");
    const sockaddr_in addr = make_addr(host, port);
    for (;;) {
        if (::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
            break;
        }
        if (errno == EINTR) continue;
        fail("connect " + host + ":" + std::to_string(port));
    }
    const int one = 1;
    // Best effort: latency tuning, not correctness.
    ::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return socket;
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
        fail("fcntl(O_NONBLOCK)");
    }
}

void send_all(const Socket& socket, std::string_view data) {
    while (!data.empty()) {
        const ssize_t sent = ::send(socket.fd(), data.data(), data.size(), MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR) continue;
            fail("send");
        }
        data.remove_prefix(static_cast<std::size_t>(sent));
    }
}

// ------------------------------------------------------------------ Client --

Client::Client(const std::string& host, std::uint16_t port, std::size_t max_line_bytes)
    : socket_(connect_tcp(host, port)), reader_(max_line_bytes) {}

void Client::send_line(const std::string& line) { send_raw(line + "\n"); }

void Client::send_raw(std::string_view data) { send_all(socket_, data); }

std::optional<std::string> Client::read_line() {
    for (;;) {
        if (std::optional<WireLine> line = reader_.next()) {
            // The server never sends overlong lines; treat one as a
            // protocol violation rather than silently skipping it.
            if (line->overlong) {
                throw util::Error("response line exceeded the client line cap");
            }
            return std::move(line->text);
        }
        if (eof_) return std::nullopt;
        char buffer[65536];
        const ssize_t got = ::recv(socket_.fd(), buffer, sizeof(buffer), 0);
        if (got < 0) {
            if (errno == EINTR) continue;
            fail("recv");
        }
        if (got == 0) {
            eof_ = true;
            reader_.finish();
            continue;
        }
        reader_.feed(std::string_view(buffer, static_cast<std::size_t>(got)));
    }
}

void Client::finish_writes() {
    if (socket_.valid()) ::shutdown(socket_.fd(), SHUT_WR);
}

void Client::close() { socket_.close(); }

} // namespace leqa::net

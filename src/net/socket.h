/// \file socket.h
/// \brief Thin POSIX TCP wrappers: an RAII fd, listener/connect helpers,
///        and a blocking NDJSON client used by the load harness and tests.
///
/// Everything here is deliberately small: the reactor (net/server.h) wants
/// non-blocking fds and raw send/recv; the client side wants a blocking
/// connect + line-oriented request/response.  Failures throw util::Error
/// with the errno text -- no error-code plumbing at this layer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/framing.h"

namespace leqa::net {

/// Move-only owner of one file descriptor; closes on destruction.
class Socket {
public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket();

    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;
    Socket(Socket&& other) noexcept : fd_(other.release()) {}
    Socket& operator=(Socket&& other) noexcept;

    [[nodiscard]] bool valid() const { return fd_ >= 0; }
    [[nodiscard]] int fd() const { return fd_; }
    /// Give up ownership without closing.
    int release();
    void close();

private:
    int fd_ = -1;
};

/// Bind + listen a non-blocking TCP socket on host:port (port 0 picks an
/// ephemeral port; read it back with local_port).  SO_REUSEADDR is set so
/// quick restarts do not trip TIME_WAIT.
[[nodiscard]] Socket listen_tcp(const std::string& host, std::uint16_t port,
                                int backlog);

/// The locally bound port of a listening (or connected) socket.
[[nodiscard]] std::uint16_t local_port(const Socket& socket);

/// Blocking client connect; TCP_NODELAY is set (one request per line --
/// Nagle would serialize the request/response rhythm).
[[nodiscard]] Socket connect_tcp(const std::string& host, std::uint16_t port);

/// Flip O_NONBLOCK on an accepted fd.
void set_nonblocking(int fd);

/// Blocking write of the whole buffer (client side); throws on error/EOF.
void send_all(const Socket& socket, std::string_view data);

/// Blocking NDJSON client: send request lines, read response lines.  Used
/// by the load harness's worker threads and the loopback tests.
class Client {
public:
    Client(const std::string& host, std::uint16_t port,
           std::size_t max_line_bytes = 1 << 20);

    /// Send one request line ('\n' appended).
    void send_line(const std::string& line);
    /// Send raw bytes verbatim (pipelined bursts, hostile framing tests).
    void send_raw(std::string_view data);

    /// Next response line; blocks. nullopt on orderly EOF.
    [[nodiscard]] std::optional<std::string> read_line();

    /// Half-close the write side (signals the server this client is done).
    void finish_writes();
    void close();

    [[nodiscard]] int fd() const { return socket_.fd(); }

private:
    Socket socket_;
    LineReader reader_;
    bool eof_ = false;
};

} // namespace leqa::net

#include "parser/diagnostics.h"

namespace leqa::parser {

std::string SourceLoc::to_string() const {
    return file + ":" + std::to_string(line);
}

ParseError::ParseError(const SourceLoc& loc, const std::string& message)
    : util::ParseError(loc.to_string() + ": " + message), loc_(loc) {}

} // namespace leqa::parser

/// \file diagnostics.h
/// \brief Parse errors with source locations.
#pragma once

#include <string>

#include "util/error.h"

namespace leqa::parser {

/// Location within a netlist source (1-based line).
struct SourceLoc {
    std::string file = "<string>";
    std::size_t line = 0;

    [[nodiscard]] std::string to_string() const;
};

/// Error raised by the netlist parsers; message carries "<file>:<line>".
/// Derives util::ParseError so the service boundary maps it to
/// StatusCode::ParseError rather than the generic InvalidArgument.
class ParseError : public util::ParseError {
public:
    ParseError(const SourceLoc& loc, const std::string& message);

    [[nodiscard]] const SourceLoc& location() const { return loc_; }

private:
    SourceLoc loc_;
};

} // namespace leqa::parser

#include "parser/io.h"

#include <fstream>
#include <sstream>

#include "parser/openqasm.h"
#include "parser/qasm.h"
#include "parser/real.h"
#include "util/error.h"
#include "util/strings.h"

namespace leqa::parser {

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw util::NotFoundError("cannot open file: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void write_file(const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw util::InputError("cannot open file for writing: " + path);
    out << text;
    if (!out) throw util::InputError("failed writing file: " + path);
}

circuit::Circuit load_netlist(const std::string& path) {
    const std::string text = read_file(path);
    if (util::ends_with(util::to_lower(path), ".real")) {
        return parse_real(text, path);
    }
    if (looks_like_openqasm(text)) {
        return parse_openqasm(text, path);
    }
    return parse_qasm(text, path);
}

void save_netlist(const circuit::Circuit& circ, const std::string& path) {
    if (util::ends_with(util::to_lower(path), ".real")) {
        write_file(path, write_real(circ));
    } else {
        write_file(path, write_qasm(circ));
    }
}

} // namespace leqa::parser

/// \file io.h
/// \brief File-level helpers: load a netlist by extension, save text.
#pragma once

#include <string>

#include "circuit/circuit.h"

namespace leqa::parser {

/// Read an entire file; throws InputError if it cannot be opened.
[[nodiscard]] std::string read_file(const std::string& path);

/// Write text to a file; throws InputError on failure.
void write_file(const std::string& path, const std::string& text);

/// Load a netlist choosing the parser from the extension:
/// ".real" -> RevLib parser, anything else -> QASM-subset parser.
[[nodiscard]] circuit::Circuit load_netlist(const std::string& path);

/// Save a circuit choosing the writer from the extension (as above).
void save_netlist(const circuit::Circuit& circ, const std::string& path);

} // namespace leqa::parser

#include "parser/openqasm.h"

#include <map>
#include <sstream>

#include "parser/diagnostics.h"
#include "util/strings.h"

namespace leqa::parser {

namespace {

/// A ';'-terminated statement with the line it started on.
struct Statement {
    std::string text;
    std::size_t line = 0;
};

std::vector<Statement> split_statements(const std::string& text,
                                        const std::string& source_name) {
    std::vector<Statement> statements;
    std::string current;
    std::size_t line = 1;
    std::size_t statement_line = 1;
    bool in_comment = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '\n') {
            ++line;
            in_comment = false;
            current += ' ';
            continue;
        }
        if (in_comment) continue;
        if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
            in_comment = true;
            ++i;
            continue;
        }
        if (c == ';') {
            const std::string trimmed = util::trim(current);
            if (!trimmed.empty()) statements.push_back({trimmed, statement_line});
            current.clear();
            statement_line = line;
            continue;
        }
        if (util::trim(current).empty()) statement_line = line;
        current += c;
    }
    const std::string trailing = util::trim(current);
    if (!trailing.empty()) {
        throw ParseError({source_name, statement_line},
                         "statement not terminated by ';': '" + trailing + "'");
    }
    return statements;
}

/// Operand: reg[index].
struct Operand {
    std::string reg;
    long long index = 0;
};

Operand parse_operand(const std::string& token, const SourceLoc& loc) {
    const auto open = token.find('[');
    const auto close = token.find(']');
    if (open == std::string::npos || close == std::string::npos || close < open ||
        close + 1 != token.size()) {
        throw ParseError(loc, "expected operand of the form reg[i], got '" + token + "'");
    }
    Operand operand;
    operand.reg = util::trim(token.substr(0, open));
    const auto index = util::parse_int(token.substr(open + 1, close - open - 1));
    if (operand.reg.empty() || !index || *index < 0) {
        throw ParseError(loc, "malformed operand '" + token + "'");
    }
    operand.index = *index;
    return operand;
}

std::vector<std::string> split_operand_list(const std::string& text) {
    std::vector<std::string> out;
    for (const auto& part : util::split(text, ',')) {
        const std::string trimmed = util::trim(part);
        if (!trimmed.empty()) out.push_back(trimmed);
    }
    return out;
}

} // namespace

bool looks_like_openqasm(const std::string& text) {
    for (const auto& raw_line : util::split(text, '\n')) {
        std::string line = util::trim(raw_line);
        const auto comment = line.find("//");
        if (comment != std::string::npos) line = util::trim(line.substr(0, comment));
        if (line.empty()) continue;
        return util::starts_with(util::to_lower(line), "openqasm");
    }
    return false;
}

circuit::Circuit parse_openqasm(const std::string& text, const std::string& source_name) {
    circuit::Circuit circ;
    std::map<std::string, std::pair<circuit::Qubit, long long>> registers; // base, size
    bool saw_header = false;

    const auto resolve = [&](const std::string& token,
                             const SourceLoc& loc) -> circuit::Qubit {
        const Operand operand = parse_operand(token, loc);
        const auto it = registers.find(operand.reg);
        if (it == registers.end()) {
            throw ParseError(loc, "unknown qreg '" + operand.reg + "'");
        }
        if (operand.index >= it->second.second) {
            throw ParseError(loc, "index out of range for qreg '" + operand.reg + "'");
        }
        return it->second.first + static_cast<circuit::Qubit>(operand.index);
    };

    for (const Statement& statement : split_statements(text, source_name)) {
        const SourceLoc loc{source_name, statement.line};
        const auto fields = util::split_whitespace(statement.text);
        const std::string head = util::to_lower(fields[0]);

        if (head == "openqasm") {
            saw_header = true;
            continue;
        }
        if (!saw_header) throw ParseError(loc, "missing OPENQASM 2.0 declaration");
        if (head == "include" || head == "creg" || head == "barrier" || head == "id") {
            continue; // accepted, irrelevant to the latency model
        }
        if (head == "measure" || head == "reset" || head == "if" || head == "gate" ||
            head == "u" || head == "u1" || head == "u2" || head == "u3" ||
            head == "rx" || head == "ry" || head == "rz" || head == "cu1") {
            throw ParseError(loc, "unsupported OpenQASM construct '" + fields[0] +
                                      "' (LEQA consumes FT Clifford+T netlists)");
        }
        if (head == "qreg") {
            if (fields.size() != 2) throw ParseError(loc, "qreg expects one declaration");
            const Operand decl = parse_operand(fields[1], loc);
            if (registers.count(decl.reg)) {
                throw ParseError(loc, "duplicate qreg '" + decl.reg + "'");
            }
            if (decl.index <= 0) {
                throw ParseError(loc, "qreg size must be positive");
            }
            const auto base = static_cast<circuit::Qubit>(circ.num_qubits());
            for (long long i = 0; i < decl.index; ++i) {
                circ.add_qubit(decl.reg + "[" + std::to_string(i) + "]");
            }
            registers[decl.reg] = {base, decl.index};
            continue;
        }

        // Gate application: mnemonic operand-list.
        static const std::map<std::string, circuit::GateKind> kGateMap = {
            {"x", circuit::GateKind::X},       {"y", circuit::GateKind::Y},
            {"z", circuit::GateKind::Z},       {"h", circuit::GateKind::H},
            {"s", circuit::GateKind::S},       {"sdg", circuit::GateKind::Sdg},
            {"t", circuit::GateKind::T},       {"tdg", circuit::GateKind::Tdg},
            {"cx", circuit::GateKind::Cnot},   {"cnot", circuit::GateKind::Cnot},
            {"ccx", circuit::GateKind::Toffoli},
            {"swap", circuit::GateKind::Swap}, {"cswap", circuit::GateKind::Fredkin},
        };
        const auto gate_it = kGateMap.find(head);
        if (gate_it == kGateMap.end()) {
            throw ParseError(loc, "unknown gate '" + fields[0] + "'");
        }
        const std::string operand_text =
            util::trim(statement.text.substr(fields[0].size()));
        const auto tokens = split_operand_list(operand_text);
        std::vector<circuit::Qubit> qubits;
        qubits.reserve(tokens.size());
        for (const auto& token : tokens) qubits.push_back(resolve(token, loc));

        const circuit::GateInfo& info = circuit::gate_info(gate_it->second);
        const std::size_t expected =
            static_cast<std::size_t>(info.targets) +
            static_cast<std::size_t>(std::max(info.min_controls, 0));
        // ccx: 2 controls; cswap: 1 control; others: min_controls.
        const std::size_t needed = head == "ccx" ? 3 : expected;
        if (qubits.size() != needed) {
            throw ParseError(loc, "'" + head + "' expects " + std::to_string(needed) +
                                      " operands, got " + std::to_string(qubits.size()));
        }
        try {
            switch (gate_it->second) {
                case circuit::GateKind::Cnot:
                    circ.cnot(qubits[0], qubits[1]);
                    break;
                case circuit::GateKind::Toffoli:
                    circ.toffoli(qubits[0], qubits[1], qubits[2]);
                    break;
                case circuit::GateKind::Swap:
                    circ.swap(qubits[0], qubits[1]);
                    break;
                case circuit::GateKind::Fredkin:
                    circ.fredkin(qubits[0], qubits[1], qubits[2]);
                    break;
                default:
                    circ.add_gate(circuit::Gate(gate_it->second, {}, {qubits[0]}));
                    break;
            }
        } catch (const util::InputError& e) {
            throw ParseError(loc, e.what());
        }
    }
    return circ;
}

std::string write_openqasm(const circuit::Circuit& circ) {
    std::ostringstream out;
    out << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
    for (const auto& comment : circ.comments()) out << "// " << comment << '\n';
    // A qubit-less circuit (legal: a program with no qreg statements) must
    // round-trip; "qreg q[0];" would be rejected on re-parse.
    if (circ.num_qubits() > 0) out << "qreg q[" << circ.num_qubits() << "];\n";
    for (const circuit::Gate& gate : circ.gates()) {
        std::string mnemonic;
        switch (gate.kind) {
            case circuit::GateKind::Cnot: mnemonic = "cx"; break;
            case circuit::GateKind::Toffoli:
                LEQA_REQUIRE(gate.controls.size() == 2,
                             "write_openqasm: lower multi-controlled Toffolis first");
                mnemonic = "ccx";
                break;
            case circuit::GateKind::Fredkin:
                LEQA_REQUIRE(gate.controls.size() == 1,
                             "write_openqasm: lower multi-controlled Fredkins first");
                mnemonic = "cswap";
                break;
            default: mnemonic = circuit::gate_name(gate.kind); break;
        }
        out << mnemonic;
        bool first = true;
        for (const circuit::Qubit q : gate.qubits()) {
            out << (first ? " q[" : ", q[") << q << ']';
            first = false;
        }
        out << ";\n";
    }
    return out.str();
}

} // namespace leqa::parser

/// \file openqasm.h
/// \brief Parser for an OpenQASM 2.0 subset.
///
/// Many circuit toolchains emit OpenQASM 2.0; this parser accepts the
/// fragment needed to feed LEQA:
///
///     OPENQASM 2.0;
///     include "qelib1.inc";      // accepted and ignored
///     qreg q[3];                 // multiple registers allowed
///     creg c[3];                 // accepted and ignored
///     x q[0];
///     cx q[0], q[1];
///     ccx q[0], q[1], q[2];
///     h q[2];  t q[0];  tdg q[1];  s q[0];  sdg q[1];  y q[0];  z q[1];
///     swap q[0], q[1];
///     cswap q[0], q[1], q[2];
///     id q[0];                   // accepted and ignored
///     barrier q[0], q[1];        // accepted and ignored
///
/// Out of scope (rejected with a diagnostic): parameterized U/rx/ry/rz
/// gates, measure/reset (LEQA's latency model has no measurement stage),
/// gate definitions, and classical control ("if").
#pragma once

#include <string>

#include "circuit/circuit.h"

namespace leqa::parser {

/// Parse OpenQASM 2.0 subset text.
[[nodiscard]] circuit::Circuit parse_openqasm(const std::string& text,
                                              const std::string& source_name = "<string>");

/// True when the text looks like OpenQASM (leading OPENQASM declaration).
[[nodiscard]] bool looks_like_openqasm(const std::string& text);

/// Serialize a circuit to OpenQASM 2.0.  Multi-controlled gates beyond
/// ccx/cswap are rejected (lower them with FT synthesis first).
[[nodiscard]] std::string write_openqasm(const circuit::Circuit& circ);

} // namespace leqa::parser

#include "parser/qasm.h"

#include <istream>
#include <sstream>

#include "parser/diagnostics.h"
#include "util/strings.h"

namespace leqa::parser {

namespace {

/// Strip "#"- and "//"-style comments.
std::string strip_comment(const std::string& line) {
    std::size_t cut = line.size();
    const auto hash = line.find('#');
    if (hash != std::string::npos) cut = std::min(cut, hash);
    const auto slashes = line.find("//");
    if (slashes != std::string::npos) cut = std::min(cut, slashes);
    return line.substr(0, cut);
}

/// Split a gate operand list on commas and/or whitespace.
std::vector<std::string> split_operands(const std::string& text) {
    std::vector<std::string> out;
    std::string current;
    for (const char c : text) {
        if (c == ',' || std::isspace(static_cast<unsigned char>(c))) {
            if (!current.empty()) {
                out.push_back(current);
                current.clear();
            }
        } else {
            current += c;
        }
    }
    if (!current.empty()) out.push_back(current);
    return out;
}

circuit::Qubit resolve_qubit(circuit::Circuit& circ, const std::string& token,
                             const SourceLoc& loc) {
    if (circ.has_qubit(token)) return circ.qubit_index(token);
    throw ParseError(loc, "unknown qubit '" + token + "'");
}

circuit::Gate build_gate(circuit::GateKind kind, std::vector<circuit::Qubit> operands,
                         const SourceLoc& loc) {
    const circuit::GateInfo& info = circuit::gate_info(kind);
    std::size_t n_targets = static_cast<std::size_t>(info.targets);
    if (operands.size() < n_targets) {
        throw ParseError(loc, std::string(info.name) + ": expected at least " +
                                  std::to_string(n_targets) + " operand(s)");
    }
    std::vector<circuit::Qubit> targets(operands.end() - static_cast<std::ptrdiff_t>(n_targets),
                                        operands.end());
    operands.resize(operands.size() - n_targets);
    circuit::Gate gate(kind, std::move(operands), std::move(targets));
    try {
        gate.validate();
    } catch (const util::InputError& e) {
        throw ParseError(loc, e.what());
    }
    return gate;
}

} // namespace

circuit::Circuit parse_qasm(const std::string& text, const std::string& source_name) {
    std::istringstream in(text);
    return parse_qasm_stream(in, source_name);
}

circuit::Circuit parse_qasm_stream(std::istream& in, const std::string& source_name) {
    circuit::Circuit circ;
    SourceLoc loc{source_name, 0};
    std::string raw_line;
    bool qubits_declared = false;

    while (std::getline(in, raw_line)) {
        ++loc.line;
        const std::string line = util::trim(strip_comment(raw_line));
        if (line.empty()) continue;

        if (line[0] == '.') {
            const auto fields = util::split_whitespace(line);
            const std::string directive = util::to_lower(fields[0]);
            if (directive == ".name") {
                if (fields.size() != 2) throw ParseError(loc, ".name expects one argument");
                circ.set_name(fields[1]);
            } else if (directive == ".qubits") {
                if (fields.size() != 2) throw ParseError(loc, ".qubits expects one argument");
                const auto count = util::parse_int(fields[1]);
                if (!count || *count < 0) {
                    throw ParseError(loc, ".qubits expects a non-negative integer");
                }
                if (qubits_declared || circ.num_qubits() > 0) {
                    throw ParseError(loc, "qubits already declared");
                }
                for (long long i = 0; i < *count; ++i) circ.add_qubit();
                qubits_declared = true;
            } else {
                throw ParseError(loc, "unknown directive '" + fields[0] + "'");
            }
            continue;
        }

        const auto fields = util::split_whitespace(line);
        const std::string keyword = util::to_lower(fields[0]);

        if (keyword == "qubit") {
            if (fields.size() != 2) throw ParseError(loc, "qubit expects one name");
            if (!util::is_identifier(fields[1])) {
                throw ParseError(loc, "invalid qubit name '" + fields[1] + "'");
            }
            try {
                circ.add_qubit(fields[1]);
            } catch (const util::InputError& e) {
                throw ParseError(loc, e.what());
            }
            continue;
        }

        if (!circuit::is_gate_name(keyword)) {
            throw ParseError(loc, "unknown gate or keyword '" + fields[0] + "'");
        }
        const circuit::GateKind kind = circuit::parse_gate_name(keyword);
        const std::string operand_text = util::trim(line.substr(fields[0].size()));
        const auto operand_tokens = split_operands(operand_text);
        std::vector<circuit::Qubit> operands;
        operands.reserve(operand_tokens.size());
        for (const auto& token : operand_tokens) {
            operands.push_back(resolve_qubit(circ, token, loc));
        }
        circ.add_gate(build_gate(kind, std::move(operands), loc));
    }
    return circ;
}

std::string write_qasm(const circuit::Circuit& circ) {
    std::ostringstream out;
    for (const auto& comment : circ.comments()) out << "# " << comment << '\n';
    if (!circ.name().empty()) out << ".name " << circ.name() << '\n';

    // If all qubit names are the default q0..qN-1 pattern, use the compact
    // .qubits directive; otherwise declare each name.
    bool default_names = true;
    for (circuit::Qubit q = 0; q < circ.num_qubits(); ++q) {
        if (circ.qubit_name(q) != "q" + std::to_string(q)) {
            default_names = false;
            break;
        }
    }
    if (default_names) {
        out << ".qubits " << circ.num_qubits() << '\n';
    } else {
        for (circuit::Qubit q = 0; q < circ.num_qubits(); ++q) {
            out << "qubit " << circ.qubit_name(q) << '\n';
        }
    }

    for (const circuit::Gate& g : circ.gates()) {
        out << circuit::gate_name(g.kind);
        bool first = true;
        for (const circuit::Qubit q : g.controls) {
            out << (first ? " " : ", ") << circ.qubit_name(q);
            first = false;
        }
        for (const circuit::Qubit q : g.targets) {
            out << (first ? " " : ", ") << circ.qubit_name(q);
            first = false;
        }
        out << '\n';
    }
    return out.str();
}

} // namespace leqa::parser

/// \file qasm.h
/// \brief Parser and writer for the LEQA QASM-subset netlist format.
///
/// The format is line-oriented:
///
///     # comment (also "//")
///     .name gf2^16mult          # optional circuit name
///     .qubits 48                # declare 48 qubits named q0..q47, or
///     qubit a0                  # declare one named qubit (repeatable)
///
///     h q0
///     cnot q0, q1               # commas between operands are optional
///     toffoli a0 b0 c0          # any number of controls; last is target
///     fredkin c, x, y           # controls..., then the two swapped qubits
///
/// Gate mnemonics are those of circuit::parse_gate_name (x/not, y, z, h, s,
/// sdg, t, tdg, cnot/cx, toffoli/ccx, fredkin/cswap, swap).  For Toffoli all
/// operands but the last are controls; for Fredkin all but the last two.
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/circuit.h"

namespace leqa::parser {

/// Parse QASM-subset text.  \p source_name is used in error messages.
[[nodiscard]] circuit::Circuit parse_qasm(const std::string& text,
                                          const std::string& source_name = "<string>");

/// Parse from a stream (reads to EOF).
[[nodiscard]] circuit::Circuit parse_qasm_stream(std::istream& in,
                                                 const std::string& source_name);

/// Serialize a circuit to the QASM-subset format (round-trips through
/// parse_qasm up to comments and auto-generated qubit names).
[[nodiscard]] std::string write_qasm(const circuit::Circuit& circ);

} // namespace leqa::parser

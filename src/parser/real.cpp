#include "parser/real.h"

#include <istream>
#include <sstream>

#include "parser/diagnostics.h"
#include "util/strings.h"

namespace leqa::parser {

namespace {

std::string strip_comment(const std::string& line) {
    const auto hash = line.find('#');
    return hash == std::string::npos ? line : line.substr(0, hash);
}

} // namespace

circuit::Circuit parse_real(const std::string& text, const std::string& source_name) {
    std::istringstream in(text);
    return parse_real_stream(in, source_name);
}

circuit::Circuit parse_real_stream(std::istream& in, const std::string& source_name) {
    circuit::Circuit circ;
    SourceLoc loc{source_name, 0};
    std::string raw_line;
    bool in_body = false;
    bool saw_end = false;
    long long declared_vars = -1;

    while (std::getline(in, raw_line)) {
        ++loc.line;
        const std::string line = util::trim(strip_comment(raw_line));
        if (line.empty()) continue;
        const auto fields = util::split_whitespace(line);
        const std::string head = util::to_lower(fields[0]);

        if (head[0] == '.') {
            if (head == ".version") {
                continue; // informational
            } else if (head == ".numvars") {
                if (fields.size() != 2) throw ParseError(loc, ".numvars expects one argument");
                const auto n = util::parse_int(fields[1]);
                if (!n || *n < 0) throw ParseError(loc, ".numvars expects a non-negative integer");
                declared_vars = *n;
            } else if (head == ".variables") {
                if (declared_vars >= 0 &&
                    static_cast<long long>(fields.size()) - 1 != declared_vars) {
                    throw ParseError(loc, ".variables count does not match .numvars");
                }
                for (std::size_t i = 1; i < fields.size(); ++i) {
                    if (!util::is_identifier(fields[i])) {
                        throw ParseError(loc, "invalid variable name '" + fields[i] + "'");
                    }
                    try {
                        circ.add_qubit(fields[i]);
                    } catch (const util::InputError& e) {
                        throw ParseError(loc, e.what());
                    }
                }
            } else if (head == ".inputs" || head == ".outputs" || head == ".constants" ||
                       head == ".garbage" || head == ".inputbus" || head == ".outputbus") {
                continue; // informational
            } else if (head == ".begin") {
                if (circ.num_qubits() == 0 && declared_vars > 0) {
                    // .numvars without .variables: generate default names.
                    for (long long i = 0; i < declared_vars; ++i) {
                        circ.add_qubit("x" + std::to_string(i));
                    }
                }
                in_body = true;
            } else if (head == ".end") {
                saw_end = true;
                break;
            } else {
                throw ParseError(loc, "unknown directive '" + fields[0] + "'");
            }
            continue;
        }

        if (!in_body) throw ParseError(loc, "gate line before .begin");

        // Gate lines: t<N> or f<N> followed by N operands.
        const char family = head[0];
        if (family != 't' && family != 'f') {
            throw ParseError(loc, "unknown gate '" + fields[0] + "' (expected tN or fN)");
        }
        const auto declared_arity = util::parse_int(head.substr(1));
        if (!declared_arity || *declared_arity < 1) {
            throw ParseError(loc, "malformed gate name '" + fields[0] + "'");
        }
        const std::size_t arity = static_cast<std::size_t>(*declared_arity);
        if (fields.size() - 1 != arity) {
            throw ParseError(loc, "gate '" + fields[0] + "' expects " + std::to_string(arity) +
                                      " operands, got " + std::to_string(fields.size() - 1));
        }
        std::vector<circuit::Qubit> operands;
        operands.reserve(arity);
        for (std::size_t i = 1; i < fields.size(); ++i) {
            if (!circ.has_qubit(fields[i])) {
                throw ParseError(loc, "unknown variable '" + fields[i] + "'");
            }
            operands.push_back(circ.qubit_index(fields[i]));
        }

        try {
            if (family == 't') {
                const circuit::Qubit target = operands.back();
                operands.pop_back();
                if (operands.empty()) {
                    circ.add_gate(circuit::make_x(target));
                } else {
                    circ.add_gate(circuit::make_mcx(std::move(operands), target));
                }
            } else { // 'f'
                if (arity < 2) throw ParseError(loc, "fN gates need at least 2 operands");
                const circuit::Qubit b = operands.back();
                operands.pop_back();
                const circuit::Qubit a = operands.back();
                operands.pop_back();
                if (operands.empty()) {
                    circ.add_gate(circuit::make_swap(a, b));
                } else {
                    circ.add_gate(circuit::make_mcswap(std::move(operands), a, b));
                }
            }
        } catch (const util::InputError& e) {
            throw ParseError(loc, e.what());
        }
    }

    if (in_body && !saw_end) {
        throw ParseError(loc, "missing .end");
    }
    return circ;
}

std::string write_real(const circuit::Circuit& circ) {
    LEQA_REQUIRE(circ.is_classical(),
                 "write_real: only classical reversible circuits (x/cnot/toffoli/"
                 "fredkin/swap) can be written as .real");
    std::ostringstream out;
    for (const auto& comment : circ.comments()) out << "# " << comment << '\n';
    out << ".version 1.0\n";
    out << ".numvars " << circ.num_qubits() << '\n';
    out << ".variables";
    for (circuit::Qubit q = 0; q < circ.num_qubits(); ++q) {
        out << ' ' << circ.qubit_name(q);
    }
    out << "\n.begin\n";
    for (const circuit::Gate& g : circ.gates()) {
        switch (g.kind) {
            case circuit::GateKind::X:
                out << "t1 " << circ.qubit_name(g.targets[0]) << '\n';
                break;
            case circuit::GateKind::Cnot:
                out << "t2 " << circ.qubit_name(g.controls[0]) << ' '
                    << circ.qubit_name(g.targets[0]) << '\n';
                break;
            case circuit::GateKind::Toffoli: {
                out << 't' << (g.controls.size() + 1);
                for (const circuit::Qubit q : g.controls) out << ' ' << circ.qubit_name(q);
                out << ' ' << circ.qubit_name(g.targets[0]) << '\n';
                break;
            }
            case circuit::GateKind::Swap:
                out << "f2 " << circ.qubit_name(g.targets[0]) << ' '
                    << circ.qubit_name(g.targets[1]) << '\n';
                break;
            case circuit::GateKind::Fredkin: {
                out << 'f' << (g.controls.size() + 2);
                for (const circuit::Qubit q : g.controls) out << ' ' << circ.qubit_name(q);
                out << ' ' << circ.qubit_name(g.targets[0]) << ' '
                    << circ.qubit_name(g.targets[1]) << '\n';
                break;
            }
            default:
                throw util::InputError("write_real: gate not representable: " + g.to_string());
        }
    }
    out << ".end\n";
    return out.str();
}

} // namespace leqa::parser

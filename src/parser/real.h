/// \file real.h
/// \brief Parser and writer for the RevLib ".real" reversible-circuit format
///        (the distribution format of the Maslov benchmark suite the paper
///        evaluates on).
///
/// Supported subset:
///
///     # comment
///     .version 1.0
///     .numvars 3
///     .variables a b c
///     .inputs a b c          (optional, informational)
///     .outputs a b c         (optional, informational)
///     .constants 0--         (optional, informational)
///     .garbage --1           (optional, informational)
///     .begin
///     t1 a                   # NOT a
///     t2 a b                 # CNOT a -> b
///     t3 a b c               # Toffoli a,b -> c (last operand is target)
///     tN ...                 # (N-1)-controlled NOT
///     f2 a b                 # SWAP a, b
///     f3 a b c               # Fredkin: a controls swap of b, c
///     fN ...                 # (N-2)-controlled SWAP
///     .end
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/circuit.h"

namespace leqa::parser {

[[nodiscard]] circuit::Circuit parse_real(const std::string& text,
                                          const std::string& source_name = "<string>");

[[nodiscard]] circuit::Circuit parse_real_stream(std::istream& in,
                                                 const std::string& source_name);

/// Serialize to .real.  Only classical-reversible circuits (X, CNOT,
/// Toffoli, Fredkin, SWAP) can be represented; throws InputError otherwise.
[[nodiscard]] std::string write_real(const circuit::Circuit& circ);

} // namespace leqa::parser

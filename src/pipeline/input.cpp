#include "pipeline/input.h"

#include <filesystem>

#include "benchgen/suite.h"
#include "parser/io.h"
#include "util/error.h"
#include "util/strings.h"

namespace leqa::pipeline {

namespace {

circuit::Circuit make_bench_circuit(const std::string& name) {
    // ham3 is the paper's Figure 2 circuit, kept outside the Tables 2-3
    // suite; everything else resolves through the suite factories.
    if (name == "ham3") return benchgen::ham3();
    return benchgen::make_benchmark(name);
}

bool is_bench_name(const std::string& name) {
    return name == "ham3" || benchgen::has_benchmark(name);
}

} // namespace

std::uint64_t circuit_fingerprint(const circuit::Circuit& circ) {
    // FNV-1a over the qubit count and the gate stream.
    constexpr std::uint64_t kOffset = 1469598103934665603ULL;
    constexpr std::uint64_t kPrime = 1099511628211ULL;
    std::uint64_t hash = kOffset;
    const auto mix = [&hash](std::uint64_t value) {
        for (int byte = 0; byte < 8; ++byte) {
            hash ^= (value >> (8 * byte)) & 0xFF;
            hash *= kPrime;
        }
    };
    mix(circ.num_qubits());
    for (const circuit::Gate& gate : circ.gates()) {
        mix(static_cast<std::uint64_t>(gate.kind));
        for (const circuit::Qubit q : gate.controls) mix(0x100000000ULL | q);
        for (const circuit::Qubit q : gate.targets) mix(0x200000000ULL | q);
    }
    return hash;
}

CircuitSource CircuitSource::from_path(std::string path) {
    std::string identity = "path:" + path;
    return CircuitSource(Kind::Path, std::move(path), std::move(identity));
}

CircuitSource CircuitSource::from_bench(std::string name) {
    if (!is_bench_name(name)) {
        throw util::NotFoundError("unknown suite benchmark \"" + name + "\"");
    }
    std::string identity = "bench:" + name;
    return CircuitSource(Kind::Bench, std::move(name), std::move(identity));
}

CircuitSource CircuitSource::from_circuit(circuit::Circuit circ) {
    std::string name = circ.name().empty() ? "(inline)" : circ.name();
    std::string identity =
        "inline:" + name + "#" + std::to_string(circuit_fingerprint(circ));
    CircuitSource source(Kind::Inline, std::move(name), std::move(identity));
    source.inline_circuit_ = std::make_shared<const circuit::Circuit>(std::move(circ));
    return source;
}

std::string CircuitSource::display_name() const {
    if (kind_ != Kind::Path) return spec_;
    return std::filesystem::path(spec_).filename().string();
}

circuit::Circuit CircuitSource::load() const {
    switch (kind_) {
        case Kind::Path:
            return parser::load_netlist(spec_);
        case Kind::Bench:
            return make_bench_circuit(spec_);
        case Kind::Inline:
            break;
    }
    LEQA_CHECK(inline_circuit_ != nullptr, "inline source without a circuit");
    return *inline_circuit_;
}

CircuitSource parse_source(const std::string& spec) {
    LEQA_REQUIRE(!spec.empty(), "empty circuit spec");
    if (util::starts_with(spec, "bench:")) {
        return CircuitSource::from_bench(spec.substr(6));
    }
    std::error_code ec;
    if (std::filesystem::exists(spec, ec)) {
        return CircuitSource::from_path(spec);
    }
    if (is_bench_name(spec)) {
        throw util::NotFoundError("no such file \"" + spec +
                                  "\"; generated suite benchmarks use the bench: "
                                  "namespace -- did you mean \"bench:" +
                                  spec + "\"?");
    }
    throw util::NotFoundError("no such file or bench: benchmark: \"" + spec + "\"");
}

void add_param_options(util::ArgParser& parser) {
    parser.add_option("params", "physical-parameter config file (Table 1 defaults)");
    parser.add_option("fabric", "fabric size as WxH, e.g. 60x60");
    parser.add_option("topology", "fabric topology: grid | torus | line");
    parser.add_option("nc", "routing channel capacity Nc");
    parser.add_option("v", "logical-qubit speed parameter v");
    parser.add_option("tmove", "per-hop move time in microseconds");
}

fabric::PhysicalParams params_from_args(const util::ArgParser& parser) {
    fabric::PhysicalParams params;
    if (parser.option_given("params")) {
        params = fabric::PhysicalParams::load(parser.option("params"));
    }
    const bool fabric_given = parser.option_given("fabric");
    if (fabric_given) {
        const auto parts = util::split(parser.option("fabric"), 'x');
        LEQA_REQUIRE(parts.size() == 2, "--fabric expects WxH, e.g. 60x60");
        const auto w = util::parse_int(parts[0]);
        const auto h = util::parse_int(parts[1]);
        LEQA_REQUIRE(w && h && *w > 0 && *h > 0, "--fabric expects positive integers");
        params.width = static_cast<int>(*w);
        params.height = static_cast<int>(*h);
    }
    if (parser.option_given("topology")) {
        params.topology = fabric::parse_topology_kind(parser.option("topology"));
        if (params.topology == fabric::TopologyKind::Line && !fabric_given &&
            !parser.option_given("params") && params.height != 1) {
            // Convenience: `--topology line` with the built-in default
            // geometry flattens it to the area-equivalent row.  Geometry
            // the user chose (--fabric or --params) is never rewritten;
            // validate() rejects it below if it is not a row.
            params.width = static_cast<int>(static_cast<long long>(params.width) *
                                            params.height);
            params.height = 1;
        }
    }
    if (parser.option_given("nc")) params.nc = static_cast<int>(parser.option_int("nc"));
    if (parser.option_given("v")) params.v = parser.option_double("v");
    if (parser.option_given("tmove")) params.t_move_us = parser.option_double("tmove");
    params.validate();
    return params;
}

} // namespace leqa::pipeline

/// \file input.h
/// \brief Circuit-source resolution for the pipeline facade.
///
/// A CircuitSource names the circuit a pipeline request operates on without
/// committing to when (or how often) it is materialized:
///   - Path:   a netlist file (.qasm / .real), parsed on first use;
///   - Bench:  a generated suite benchmark ("bench:<name>" in CLI syntax);
///   - Inline: an in-memory Circuit handed over by the caller.
///
/// `parse_source` is the single CLI entry point and fixes the historical
/// resolution ambiguity: an existing file always wins, and `bench:` is the
/// only namespace that reaches the generated suite.  A bare suite name that
/// does not exist on disk is an error with a "did you mean bench:<name>?"
/// hint rather than a silent fallback.
#pragma once

#include <memory>
#include <string>

#include "circuit/circuit.h"
#include "fabric/params.h"
#include "util/args.h"

namespace leqa::pipeline {

/// Where a request's circuit comes from.
class CircuitSource {
public:
    enum class Kind { Path, Bench, Inline };

    /// A netlist file on disk (.qasm or .real).
    [[nodiscard]] static CircuitSource from_path(std::string path);

    /// A generated suite benchmark by name (e.g. "gf2^16mult", "ham3").
    [[nodiscard]] static CircuitSource from_bench(std::string name);

    /// An in-memory circuit.  The circuit is shared (copied once here);
    /// its cache identity is a structural fingerprint plus its name.
    [[nodiscard]] static CircuitSource from_circuit(circuit::Circuit circ);

    [[nodiscard]] Kind kind() const { return kind_; }

    /// Path for Path sources, benchmark name for Bench sources, circuit
    /// name for Inline sources.
    [[nodiscard]] const std::string& spec() const { return spec_; }

    /// Human-readable display name (file stem, bench name, circuit name).
    [[nodiscard]] std::string display_name() const;

    /// Stable cache-identity string (excludes synthesis options; the
    /// pipeline appends those).
    [[nodiscard]] const std::string& identity() const { return identity_; }

    /// Materialize the pre-FT circuit (parses / generates / copies).
    [[nodiscard]] circuit::Circuit load() const;

private:
    CircuitSource(Kind kind, std::string spec, std::string identity)
        : kind_(kind), spec_(std::move(spec)), identity_(std::move(identity)) {}

    Kind kind_ = Kind::Bench;
    std::string spec_;
    std::string identity_;
    std::shared_ptr<const circuit::Circuit> inline_circuit_;
};

/// Structural fingerprint of a circuit (FNV-1a over qubit count and the
/// gate stream); the identity of Inline sources.
[[nodiscard]] std::uint64_t circuit_fingerprint(const circuit::Circuit& circ);

/// Resolve a CLI circuit spec:
///   - "bench:<name>"  -> the generated suite (the only suite namespace);
///   - an existing file path -> that netlist (always preferred);
///   - anything else -> InputError, with a bench: hint when the name
///     matches a suite benchmark.
[[nodiscard]] CircuitSource parse_source(const std::string& spec);

/// Register the shared fabric-parameter options on a CLI parser
/// (--params/--fabric/--nc/--v/--tmove).
void add_param_options(util::ArgParser& parser);

/// Build PhysicalParams from --params plus individual overrides.
[[nodiscard]] fabric::PhysicalParams params_from_args(const util::ArgParser& parser);

} // namespace leqa::pipeline

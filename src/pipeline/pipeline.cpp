#include "pipeline/pipeline.h"

#include <algorithm>
#include <thread>

#include "qspr/placement.h"
#include "util/error.h"
#include "util/stopwatch.h"

namespace leqa::pipeline {

// ---------------------------------------------------------- RunControl --

void RunControl::checkpoint(const char* stage) const {
    if (cancel.load(std::memory_order_relaxed)) {
        throw util::CancelledError(std::string("run cancelled before stage ") + stage);
    }
    if (deadline.has_value() && std::chrono::steady_clock::now() > *deadline) {
        throw util::DeadlineError(std::string("deadline exceeded before stage ") +
                                  stage);
    }
}

// ---------------------------------------------------------- CacheStats --

std::string CacheStats::to_string() const {
    return "circuits " + std::to_string(circuit_hits) + " hit / " +
           std::to_string(circuit_misses) + " miss, graphs " +
           std::to_string(graph_hits) + " hit / " + std::to_string(graph_misses) +
           " miss, evictions " + std::to_string(evictions) + ", surfaces " +
           std::to_string(surface_hits) + " hit / " +
           std::to_string(surface_recomputes) + " recompute / " +
           std::to_string(surface_evictions) + " evict";
}

// ------------------------------------------------------- CachedCircuit --

bool CachedCircuit::ensure_graphs() const {
    bool built_now = false;
    std::call_once(graphs_once_, [&] {
        qodg_ = std::make_unique<const qodg::Qodg>(ft_);
        iig_ = std::make_unique<const iig::Iig>(ft_);
        // The profile borrows the QODG; both live (and die) together here.
        profile_ = std::make_unique<const core::CircuitProfile>(
            core::CircuitProfile::build(*qodg_, *iig_));
        graphs_ready_.store(true);
        built_now = true;
    });
    return built_now;
}

const qodg::Qodg& CachedCircuit::qodg() const {
    ensure_graphs();
    return *qodg_;
}

const iig::Iig& CachedCircuit::iig() const {
    ensure_graphs();
    return *iig_;
}

const core::CircuitProfile& CachedCircuit::profile() const {
    ensure_graphs();
    return *profile_;
}

// ------------------------------------------------------------ Pipeline --

Pipeline::Pipeline(PipelineConfig config) : config_(std::move(config)) {
    config_.params.validate();
    LEQA_REQUIRE(config_.max_cached_circuits >= 1,
                 "pipeline cache must hold at least one circuit");
}

PipelineConfig Pipeline::config() const {
    const util::MutexLock lock(mutex_);
    return config_;
}

void Pipeline::set_params(const fabric::PhysicalParams& params) {
    params.validate();
    const util::MutexLock lock(mutex_);
    config_.params = params;
}

void Pipeline::set_leqa_options(const core::LeqaOptions& options) {
    const util::MutexLock lock(mutex_);
    config_.leqa = options;
}

void Pipeline::set_qspr_options(const qspr::QsprOptions& options) {
    const util::MutexLock lock(mutex_);
    config_.qspr = options;
}

std::string Pipeline::cache_key(const CircuitSource& source) const {
    std::string key = source.identity();
    key += "|synth:";
    if (!config_.auto_synthesize) {
        key += "off";
    } else {
        key += config_.synth.share_ancillas ? "share" : "fresh";
        if (config_.synth.keep_toffoli) key += ",toffoli";
        key += ",p=" + config_.synth.ancilla_prefix;
    }
    // The full fabric description of the session parameters.  The cached
    // intermediates are circuit-only today, but keying on the fabric means
    // a session whose geometry or topology moves (set_params) can never
    // serve a profile cached under a different fabric — per-request
    // parameter overrides still share the session entry by design.
    key += "|fabric:" + fabric::topology_kind_name(config_.params.topology) + ":" +
           std::to_string(config_.params.width) + "x" +
           std::to_string(config_.params.height);
    return key;
}

CachedCircuitPtr Pipeline::resolve(const CircuitSource& source) {
    return resolve_timed(source, nullptr);
}

CachedCircuitPtr Pipeline::resolve_timed(const CircuitSource& source, double* seconds) {
    std::string key;
    synth::FtSynthOptions synth_options;
    bool auto_synthesize = true;
    std::shared_future<CachedCircuitPtr> pending;
    std::promise<CachedCircuitPtr> promise;
    {
        const util::MutexLock lock(mutex_);
        key = cache_key(source); // reads config_: keyed under the lock
        const auto it = cache_.find(key);
        if (it != cache_.end()) {
            ++stats_.circuit_hits;
            lru_.splice(lru_.begin(), lru_, it->second.lru_pos); // refresh LRU
            if (seconds != nullptr) *seconds = 0.0;
            return it->second.entry;
        }
        const auto inflight = inflight_.find(key);
        if (inflight != inflight_.end()) {
            pending = inflight->second; // someone else is building this key
        } else {
            inflight_.emplace(key, promise.get_future().share());
            synth_options = config_.synth;
            auto_synthesize = config_.auto_synthesize;
        }
    }

    if (pending.valid()) {
        // Wait for the in-flight builder instead of duplicating the parse +
        // synthesis; a builder failure rethrows here too.
        const util::Stopwatch wait_clock;
        CachedCircuitPtr entry = pending.get();
        const util::MutexLock lock(mutex_);
        ++stats_.circuit_hits;
        if (seconds != nullptr) *seconds = wait_clock.seconds();
        return entry;
    }

    // Build outside the lock: parsing + synthesis dominate and must not
    // serialize unrelated batch work.
    const util::Stopwatch clock;
    CachedCircuitPtr entry;
    try {
        auto building = std::make_shared<CachedCircuit>();
        circuit::Circuit circ = source.load();
        building->info_.name = circ.name().empty() ? source.display_name() : circ.name();
        building->info_.cache_key = key;
        building->info_.pre_ft_gates = circ.size();
        if (auto_synthesize && !circ.is_ft()) {
            synth::FtSynthResult synthesized = synth::ft_synthesize(circ, synth_options);
            building->synth_stats_ = synthesized.stats;
            building->info_.synthesized = true;
            circ = std::move(synthesized.circuit);
        }
        building->info_.qubits = circ.num_qubits();
        building->info_.ft_ops = circ.size();
        building->ft_ = std::move(circ);
        entry = std::move(building);
    } catch (...) {
        {
            const util::MutexLock lock(mutex_);
            inflight_.erase(key);
        }
        promise.set_exception(std::current_exception());
        throw;
    }
    if (seconds != nullptr) *seconds = clock.seconds();

    {
        const util::MutexLock lock(mutex_);
        ++stats_.circuit_misses;
        inflight_.erase(key);
        lru_.push_front(key);
        cache_.emplace(key, Slot{entry, lru_.begin()});
        while (cache_.size() > config_.max_cached_circuits) {
            cache_.erase(lru_.back());
            lru_.pop_back();
            ++stats_.evictions;
        }
    }
    promise.set_value(entry);
    return entry;
}

void Pipeline::ensure_graphs(const CachedCircuit& entry) {
    const bool built = entry.ensure_graphs();
    const util::MutexLock lock(mutex_);
    if (built) {
        ++stats_.graph_misses;
    } else {
        ++stats_.graph_hits;
    }
}

void Pipeline::note_surface_stats(const core::SurfaceCacheStats& stats) {
    const util::MutexLock lock(mutex_);
    stats_.surface_hits += stats.hits;
    stats_.surface_recomputes += stats.recomputes;
    stats_.surface_evictions += stats.evictions;
}

EstimationResult Pipeline::run_impl(const EstimationRequest& request,
                                    const RunControl* control, const char*& stage) {
    const util::Stopwatch total;
    stage = "config";
    fabric::PhysicalParams params;
    core::LeqaOptions leqa_options;
    qspr::QsprOptions qspr_options;
    {
        const util::MutexLock lock(mutex_);
        params = request.params.value_or(config_.params);
        leqa_options = config_.leqa;
        qspr_options = config_.qspr;
    }
    params.validate();

    EstimationResult result;
    result.label = request.label.empty() ? request.source.display_name() : request.label;
    result.params = params;

    stage = "resolve";
    if (control != nullptr) control->checkpoint(stage);
    const CachedCircuitPtr entry = resolve_timed(request.source, &result.times.resolve_s);
    result.circuit = entry->info();

    if (request.mode != RunMode::Map) {
        stage = "estimate";
        if (control != nullptr) control->checkpoint(stage);
        const util::Stopwatch graphs_clock;
        ensure_graphs(*entry);
        result.times.graphs_s = graphs_clock.seconds();

        const core::EstimationEngine engine(params, leqa_options);
        const util::Stopwatch estimate_clock;
        result.estimate = engine.estimate(entry->profile());
        result.times.estimate_s = estimate_clock.seconds();
        note_surface_stats(engine.surface_cache_stats());
    }
    if (request.mode != RunMode::Estimate) {
        stage = "map";
        if (control != nullptr) control->checkpoint(stage);
        const qspr::QsprMapper mapper(params, qspr_options);
        const util::Stopwatch map_clock;
        result.mapping = mapper.map(entry->ft());
        result.times.map_s = map_clock.seconds();
    }
    result.times.total_s = total.seconds();
    return result;
}

EstimationResult Pipeline::run(const EstimationRequest& request,
                               const RunControl* control) {
    const char* stage = "config";
    return run_impl(request, control, stage);
}

util::Result<EstimationResult> Pipeline::run_result(const EstimationRequest& request,
                                                    const RunControl* control) {
    const char* stage = "config";
    try {
        return run_impl(request, control, stage);
    } catch (...) {
        return util::status_from_exception(std::current_exception(), stage);
    }
}

std::vector<util::Result<EstimationResult>> Pipeline::run_batch_results(
    const std::vector<EstimationRequest>& requests, std::size_t threads,
    const RunControl* control) {
    const std::size_t count = requests.size();
    if (threads == 0) {
        const std::size_t hardware =
            std::max<std::size_t>(1, std::thread::hardware_concurrency());
        threads = std::min(hardware, std::max<std::size_t>(count, 1));
    }

    std::vector<std::optional<util::Result<EstimationResult>>> slots(count);
    if (threads <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i) {
            slots[i] = run_result(requests[i], control);
        }
    } else {
        std::atomic<std::size_t> next{0};
        const auto worker = [&] {
            for (std::size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
                slots[i] = run_result(requests[i], control);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(threads - 1);
        for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
        worker();
        for (std::thread& t : pool) t.join();
    }

    std::vector<util::Result<EstimationResult>> results;
    results.reserve(count);
    for (std::optional<util::Result<EstimationResult>>& slot : slots) {
        results.push_back(std::move(*slot));
    }
    return results;
}

std::vector<EstimationResult> Pipeline::run_batch(
    const std::vector<EstimationRequest>& requests, std::size_t threads) {
    std::vector<util::Result<EstimationResult>> outcomes =
        run_batch_results(requests, threads);
    for (const util::Result<EstimationResult>& outcome : outcomes) {
        if (!outcome.ok()) util::throw_status(outcome.status()); // lowest index first
    }
    std::vector<EstimationResult> results;
    results.reserve(outcomes.size());
    for (util::Result<EstimationResult>& outcome : outcomes) {
        results.push_back(std::move(outcome).value());
    }
    return results;
}

// --------------------------------------------------------------- sweeps --

namespace {

/// Adapt an optional RunControl to the core sweeps' between-points hook.
std::function<void()> point_checkpoint(const RunControl* control,
                                       const char* stage = "sweep") {
    if (control == nullptr) return {};
    return [control, stage] { control->checkpoint(stage); };
}

} // namespace

core::SweepResult Pipeline::sweep_fabric_sides(const CircuitSource& source,
                                               const std::vector<int>& sides,
                                               const RunControl* control) {
    if (control != nullptr) control->checkpoint("resolve");
    const CachedCircuitPtr entry = resolve(source);
    ensure_graphs(*entry);
    const auto [params, leqa_options] = snapshot_estimation_config();
    core::SweepResult result =
        core::sweep_fabric_sides(entry->profile(), params, sides, leqa_options,
                                point_checkpoint(control));
    note_surface_stats(result.surface_cache);
    return result;
}

core::SweepResult Pipeline::sweep_channel_capacity(const CircuitSource& source,
                                                   const std::vector<int>& capacities,
                                                   const RunControl* control) {
    if (control != nullptr) control->checkpoint("resolve");
    const CachedCircuitPtr entry = resolve(source);
    ensure_graphs(*entry);
    const auto [params, leqa_options] = snapshot_estimation_config();
    core::SweepResult result =
        core::sweep_channel_capacity(entry->profile(), params, capacities,
                                    leqa_options, point_checkpoint(control));
    note_surface_stats(result.surface_cache);
    return result;
}

core::SweepResult Pipeline::sweep_speed(const CircuitSource& source,
                                        const std::vector<double>& speeds,
                                        const RunControl* control) {
    if (control != nullptr) control->checkpoint("resolve");
    const CachedCircuitPtr entry = resolve(source);
    ensure_graphs(*entry);
    const auto [params, leqa_options] = snapshot_estimation_config();
    core::SweepResult result =
        core::sweep_speed(entry->profile(), params, speeds, leqa_options,
                         point_checkpoint(control));
    note_surface_stats(result.surface_cache);
    return result;
}

core::SweepResult Pipeline::sweep_topology(
    const CircuitSource& source, const std::vector<fabric::TopologyKind>& kinds,
    const RunControl* control) {
    if (control != nullptr) control->checkpoint("resolve");
    const CachedCircuitPtr entry = resolve(source);
    ensure_graphs(*entry);
    const auto [params, leqa_options] = snapshot_estimation_config();
    core::SweepResult result =
        core::sweep_topology(entry->profile(), params, kinds, leqa_options,
                            point_checkpoint(control));
    note_surface_stats(result.surface_cache);
    return result;
}

core::ExplorationResult Pipeline::explore(const CircuitSource& source,
                                          const core::ExplorationSpec& spec,
                                          const RunControl* control) {
    if (control != nullptr) control->checkpoint("resolve");
    const CachedCircuitPtr entry = resolve(source);
    ensure_graphs(*entry);
    const auto [params, leqa_options] = snapshot_estimation_config();
    core::ExplorationResult result =
        core::explore(entry->profile(), params, spec, leqa_options,
                     point_checkpoint(control, "explore"));
    note_surface_stats(result.surface_cache);
    return result;
}

// --------------------------------------------------------- optimization --

core::OptimizeResult Pipeline::optimize(const CircuitSource& source,
                                        const core::OptimizeOptions& options,
                                        const std::optional<fabric::PhysicalParams>& params,
                                        const RunControl* control) {
    if (control != nullptr) control->checkpoint("resolve");
    const CachedCircuitPtr entry = resolve(source);
    ensure_graphs(*entry);

    fabric::PhysicalParams run_params;
    qspr::QsprOptions qspr_options;
    {
        const util::MutexLock lock(mutex_);
        run_params = params.value_or(config_.params);
        qspr_options = config_.qspr;
    }
    run_params.validate();
    LEQA_REQUIRE(entry->ft().num_qubits() <=
                     static_cast<std::size_t>(run_params.area()),
                 "circuit has more logical qubits than the fabric has ULBs");

    // Start from the same placement the session mapper would use, so the
    // result reads directly as "improvement over the mapper's start".
    std::vector<fabric::UlbId> homes =
        qspr_options.initial_homes.empty()
            ? qspr::initial_placement(
                  fabric::FabricGeometry(fabric::make_topology(run_params)),
                  entry->ft().num_qubits(), qspr_options.placement,
                  qspr_options.seed)
            : qspr_options.initial_homes;

    return core::optimize_placement(entry->qodg(), entry->ft(), run_params,
                                    std::move(homes), options,
                                    point_checkpoint(control, "optimize"));
}

// ---------------------------------------------------------- calibration --

Pipeline::TrainingSet Pipeline::training_samples(
    const std::vector<CircuitSource>& sources, const RunControl* control) {
    fabric::PhysicalParams params;
    qspr::QsprOptions qspr_options;
    {
        const util::MutexLock lock(mutex_);
        params = config_.params;
        qspr_options = config_.qspr;
    }
    const qspr::QsprMapper mapper(params, qspr_options);
    TrainingSet training;
    training.circuits.reserve(sources.size());
    training.samples.reserve(sources.size());
    training.graph_samples.reserve(sources.size());
    for (const CircuitSource& source : sources) {
        if (control != nullptr) control->checkpoint("calibrate");
        CachedCircuitPtr entry = resolve(source);
        ensure_graphs(*entry);
        const double actual_us = mapper.map(entry->ft()).latency_us;
        training.samples.push_back({&entry->ft(), actual_us});
        training.graph_samples.push_back({&entry->qodg(), &entry->iig(), actual_us});
        training.circuits.push_back(std::move(entry));
    }
    return training;
}

core::CalibrationResult Pipeline::calibrate(const std::vector<CircuitSource>& training,
                                            const core::CalibratorOptions& options,
                                            const RunControl* control) {
    return calibrate(training_samples(training, control), options);
}

core::CalibrationResult Pipeline::calibrate(const TrainingSet& training,
                                            const core::CalibratorOptions& options) {
    const auto [params, leqa_options] = snapshot_estimation_config();
    return core::calibrate_v(training.graph_samples, params, leqa_options, options);
}

std::pair<fabric::PhysicalParams, core::LeqaOptions>
Pipeline::snapshot_estimation_config() const {
    const util::MutexLock lock(mutex_);
    return {config_.params, config_.leqa};
}

void Pipeline::apply_calibration(const core::CalibrationResult& result) {
    const util::MutexLock lock(mutex_);
    config_.params.v = result.v;
}

// ------------------------------------------------------------ cache mgmt --

CacheStats Pipeline::cache_stats() const {
    const util::MutexLock lock(mutex_);
    return stats_;
}

std::size_t Pipeline::cached_circuits() const {
    const util::MutexLock lock(mutex_);
    return cache_.size();
}

void Pipeline::clear_cache() {
    const util::MutexLock lock(mutex_);
    cache_.clear();
    lru_.clear();
}

} // namespace leqa::pipeline

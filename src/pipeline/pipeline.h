/// \file pipeline.h
/// \brief The unified session facade: parse -> FT synthesis -> QODG/IIG ->
///        LEQA estimate and/or QSPR mapping, behind one API.
///
/// The paper positions LEQA as the fast inner loop of design-space
/// exploration ("more than four orders of magnitude" faster than a detailed
/// mapper).  Historically every consumer in this repo hand-wired the stage
/// plumbing and rebuilt the dependency graphs per parameter point; the
/// Pipeline owns that plumbing once:
///
///   - a keyed LRU cache of intermediates (FT circuit + lazily built
///     QODG/IIG + the circuit-invariant `core::CircuitProfile`) per circuit
///     identity, so fabric sweeps, QECC exploration and calibration reuse
///     the stage-1 artifacts instead of rebuilding them;
///   - `run(request)` for one circuit, `run_batch(requests)` with optional
///     thread-pool parallelism for many;
///   - `sweep_*` / `calibrate` entry points that re-home core/sweep and
///     core/calibrate onto the shared cache;
///   - per-stage wall times and cache statistics for the perf trajectory.
///
/// All cache access is mutex-guarded; `run_batch` is safe with any thread
/// count and bit-identical to sequential `run` calls.
#pragma once

#include <atomic>
#include <chrono>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

#include "circuit/circuit.h"
#include "core/calibrate.h"
#include "core/engine.h"
#include "core/explore.h"
#include "core/leqa.h"
#include "core/optimize.h"
#include "core/sweep.h"
#include "fabric/params.h"
#include "iig/iig.h"
#include "pipeline/input.h"
#include "qodg/qodg.h"
#include "qspr/qspr.h"
#include "synth/ft_synth.h"
#include "util/status.h"

namespace leqa::pipeline {

/// Everything a session holds fixed across requests.
struct PipelineConfig {
    fabric::PhysicalParams params;   ///< Table 1 defaults
    core::LeqaOptions leqa;          ///< estimator options
    qspr::QsprOptions qspr;          ///< detailed-mapper options
    synth::FtSynthOptions synth;     ///< FT synthesis toggles
    bool auto_synthesize = true;     ///< FT-synthesize non-FT inputs
    std::size_t max_cached_circuits = 64; ///< LRU bound on cached intermediates
};

/// What a request runs.
enum class RunMode {
    Estimate, ///< LEQA only (the fast path)
    Map,      ///< QSPR only (the detailed baseline)
    Both,     ///< both, e.g. for accuracy studies
};

/// One unit of work: a circuit source plus what to do with it.
struct EstimationRequest {
    CircuitSource source;
    RunMode mode = RunMode::Estimate;
    /// Per-request fabric-parameter override (the session default otherwise);
    /// this is how sweeps and QECC exploration share one cache.
    std::optional<fabric::PhysicalParams> params;
    std::string label; ///< echoed into the result / reports

    explicit EstimationRequest(CircuitSource src, RunMode run_mode = RunMode::Estimate)
        : source(std::move(src)), mode(run_mode) {}
};

/// Cooperative cancellation + deadline control for one run.  The pipeline
/// checks it at the stage boundaries (before resolve, before estimate,
/// before map): a set cancel flag raises util::CancelledError, a passed
/// deadline raises util::DeadlineError.  A running stage is never aborted
/// mid-flight -- cached intermediates stay consistent by construction.
struct RunControl {
    std::atomic<bool> cancel{false};
    std::optional<std::chrono::steady_clock::time_point> deadline;

    /// Throws CancelledError / DeadlineError when the run must stop.
    void checkpoint(const char* stage) const;
};

/// Wall-clock seconds per pipeline stage.  Cached stages report ~0.
struct StageTimes {
    double resolve_s = 0.0;  ///< parse/generate + FT synthesis (0 on cache hit)
    double graphs_s = 0.0;   ///< QODG + IIG construction (0 on cache hit)
    double estimate_s = 0.0; ///< LEQA Algorithm 1
    double map_s = 0.0;      ///< QSPR map-and-route
    double total_s = 0.0;
};

/// Identity and size of the circuit a result was computed on.
struct CircuitInfo {
    std::string name;          ///< display name
    std::string cache_key;     ///< full cache identity (source + synth options)
    std::size_t pre_ft_gates = 0; ///< reversible gates before synthesis
    std::size_t qubits = 0;       ///< logical qubits after synthesis
    std::size_t ft_ops = 0;       ///< FT operations after synthesis
    bool synthesized = false;     ///< whether FT synthesis ran
};

/// The facade's unit of output.
struct EstimationResult {
    std::string label;
    CircuitInfo circuit;
    fabric::PhysicalParams params; ///< parameters actually used
    std::optional<core::LeqaEstimate> estimate; ///< present for Estimate/Both
    std::optional<qspr::QsprResult> mapping;    ///< present for Map/Both
    StageTimes times;
};

/// Cache effectiveness counters (cumulative per Pipeline).
struct CacheStats {
    std::size_t circuit_hits = 0;   ///< FT circuit served from cache
    std::size_t circuit_misses = 0; ///< parse + synthesis performed
    std::size_t graph_hits = 0;     ///< QODG/IIG pair served from cache
    std::size_t graph_misses = 0;   ///< QODG/IIG pair built
    std::size_t evictions = 0;      ///< LRU evictions
    /// Engine E[S_q] surface-cache counters, summed over every engine the
    /// session ran (runs, sweeps, explorations).
    std::size_t surface_hits = 0;
    std::size_t surface_recomputes = 0;
    std::size_t surface_evictions = 0;

    [[nodiscard]] std::string to_string() const;
};

/// A cached, immutable FT circuit with lazily built dependency graphs and
/// the circuit-invariant estimation profile derived from them.  Handles
/// stay valid after eviction (shared ownership).
class CachedCircuit {
public:
    [[nodiscard]] const circuit::Circuit& ft() const { return ft_; }
    [[nodiscard]] const CircuitInfo& info() const { return info_; }
    [[nodiscard]] const synth::FtSynthStats& synth_stats() const { return synth_stats_; }

    /// Dependency graphs, built on first use (thread-safe).
    [[nodiscard]] const qodg::Qodg& qodg() const;
    [[nodiscard]] const iig::Iig& iig() const;

    /// The circuit-invariant stage-1 artifact (see core/engine.h), built
    /// together with the graphs: sweeps and calibration re-estimate from it
    /// without touching the circuit again.
    [[nodiscard]] const core::CircuitProfile& profile() const;

    /// True once the QODG/IIG pair (and profile) has been built.
    [[nodiscard]] bool graphs_built() const { return graphs_ready_.load(); }

private:
    friend class Pipeline;

    /// Force-build the graphs + profile; returns true when this call built
    /// them.
    bool ensure_graphs() const;

    circuit::Circuit ft_;
    CircuitInfo info_;
    synth::FtSynthStats synth_stats_;

    mutable std::once_flag graphs_once_;
    mutable std::atomic<bool> graphs_ready_{false};
    mutable std::unique_ptr<const qodg::Qodg> qodg_;
    mutable std::unique_ptr<const iig::Iig> iig_;
    mutable std::unique_ptr<const core::CircuitProfile> profile_;
};

using CachedCircuitPtr = std::shared_ptr<const CachedCircuit>;

/// The session facade.  Construct once, issue many requests.
class Pipeline {
public:
    explicit Pipeline(PipelineConfig config = {});

    /// Snapshot of the session configuration (a copy: the setters below may
    /// mutate it concurrently).
    [[nodiscard]] PipelineConfig config() const;

    /// Replace the session fabric parameters; cached circuits/graphs are
    /// parameter-independent and survive.
    void set_params(const fabric::PhysicalParams& params);
    /// Replace the estimator options (cache survives).
    void set_leqa_options(const core::LeqaOptions& options);
    /// Replace the mapper options (cache survives).
    void set_qspr_options(const qspr::QsprOptions& options);

    /// Resolve a source to its cached FT circuit (parsing / generating /
    /// synthesizing on first use).
    [[nodiscard]] CachedCircuitPtr resolve(const CircuitSource& source);

    /// Run one request.  With a non-null \p control the run observes its
    /// cancel flag / deadline at the stage boundaries.
    [[nodiscard]] EstimationResult run(const EstimationRequest& request,
                                       const RunControl* control = nullptr);

    /// Run one request without letting an exception escape: failures come
    /// back as a non-OK Status whose origin names the stage that failed
    /// ("config", "resolve", "estimate", "map").  This is the service
    /// boundary's entry point.
    [[nodiscard]] util::Result<EstimationResult> run_result(
        const EstimationRequest& request, const RunControl* control = nullptr);

    /// Run a batch with *per-request* outcomes: results are index-aligned
    /// with `requests`, successes identical to sequential `run` calls, and
    /// every failed request carries its own Status (nothing is swallowed).
    /// `threads` = 0 picks min(hardware threads, batch size); 1 forces
    /// sequential.
    [[nodiscard]] std::vector<util::Result<EstimationResult>> run_batch_results(
        const std::vector<EstimationRequest>& requests, std::size_t threads = 0,
        const RunControl* control = nullptr);

    /// Thin throwing wrapper over run_batch_results for back-compat: the
    /// first (lowest-index) failed request's Status is rethrown as the
    /// matching exception type after the pool drains.
    [[nodiscard]] std::vector<EstimationResult> run_batch(
        const std::vector<EstimationRequest>& requests, std::size_t threads = 0);

    // --- design-space sweeps on the shared cache --------------------------

    /// The sweeps observe an optional RunControl before the resolve and
    /// before every point, so a cancel/deadline aborts mid-sweep.
    [[nodiscard]] core::SweepResult sweep_fabric_sides(
        const CircuitSource& source, const std::vector<int>& sides,
        const RunControl* control = nullptr);
    [[nodiscard]] core::SweepResult sweep_channel_capacity(
        const CircuitSource& source, const std::vector<int>& capacities,
        const RunControl* control = nullptr);
    [[nodiscard]] core::SweepResult sweep_speed(const CircuitSource& source,
                                                const std::vector<double>& speeds,
                                                const RunControl* control = nullptr);
    /// Sweep the fabric topology on the session's (area-fixed) geometry.
    [[nodiscard]] core::SweepResult sweep_topology(
        const CircuitSource& source, const std::vector<fabric::TopologyKind>& kinds,
        const RunControl* control = nullptr);

    /// Multi-dimensional design-space exploration on the shared cache: the
    /// circuit profile is resolved (and reused) from the session cache, then
    /// the cross-product of \p spec evaluates on spec.threads workers (see
    /// core/explore.h).  Each worker hands its fixed-geometry (Nc, v) runs
    /// to the engine's SoA batch parameter stage in whole-group calls.  An
    /// optional RunControl is observed before the resolve and between
    /// points — on whichever worker owns the point.
    [[nodiscard]] core::ExplorationResult explore(const CircuitSource& source,
                                                  const core::ExplorationSpec& spec,
                                                  const RunControl* control = nullptr);

    // --- placement optimization on the shared cache -----------------------

    /// Latency-driven placement search (core::optimize_placement) for one
    /// circuit: resolve through the cache, seed with the session mapper's
    /// initial placement (`config().qspr.placement` / `.seed`, or its
    /// explicit `initial_homes` when set), then anneal/greedy-refine under
    /// the placed timing model.  \p params overrides the session fabric for
    /// this call.  An optional RunControl is observed every few hundred
    /// moves.  The result's homes slot into `QsprOptions::initial_homes`
    /// to drive the detailed mapper with the optimized placement.
    [[nodiscard]] core::OptimizeResult optimize(
        const CircuitSource& source, const core::OptimizeOptions& options = {},
        const std::optional<fabric::PhysicalParams>& params = std::nullopt,
        const RunControl* control = nullptr);

    // --- calibration on the shared cache ----------------------------------

    /// Training pairs for the given sources: each circuit is resolved
    /// through the cache and mapped with the session's QSPR configuration.
    /// `graph_samples` borrow the cached QODG/IIG pairs, so the calibrator's
    /// v sweep performs zero graph rebuilds; the handles keep everything
    /// borrowed alive.
    struct TrainingSet {
        std::vector<CachedCircuitPtr> circuits;
        std::vector<core::CalibrationSample> samples;
        std::vector<core::GraphSample> graph_samples;
    };
    [[nodiscard]] TrainingSet training_samples(const std::vector<CircuitSource>& sources,
                                               const RunControl* control = nullptr);

    /// Fit v against the session mapper on the given training circuits.  An
    /// optional RunControl is observed before each training circuit is
    /// resolved and mapped (the slow part), so a cancel/deadline aborts
    /// between circuits.
    [[nodiscard]] core::CalibrationResult calibrate(
        const std::vector<CircuitSource>& training,
        const core::CalibratorOptions& options = {},
        const RunControl* control = nullptr);

    /// Fit v on an already-built training set (no re-mapping): the path for
    /// callers that also need the samples themselves (e.g. error curves).
    [[nodiscard]] core::CalibrationResult calibrate(
        const TrainingSet& training, const core::CalibratorOptions& options = {});

    /// Adopt a calibration result into the session parameters.
    void apply_calibration(const core::CalibrationResult& result);

    // --- cache management --------------------------------------------------

    [[nodiscard]] CacheStats cache_stats() const;
    [[nodiscard]] std::size_t cached_circuits() const;
    void clear_cache();

private:
    /// Reads config_ for the synth/fabric identity: call under mutex_.
    [[nodiscard]] std::string cache_key(const CircuitSource& source) const
        LEQA_REQUIRES(mutex_);
    [[nodiscard]] std::pair<fabric::PhysicalParams, core::LeqaOptions>
    snapshot_estimation_config() const LEQA_EXCLUDES(mutex_);
    [[nodiscard]] CachedCircuitPtr resolve_timed(const CircuitSource& source,
                                                 double* seconds)
        LEQA_EXCLUDES(mutex_);
    /// Force graphs and account the hit/miss.
    void ensure_graphs(const CachedCircuit& entry) LEQA_EXCLUDES(mutex_);
    /// Fold one engine's E[S_q] cache counters into the session stats.
    void note_surface_stats(const core::SurfaceCacheStats& stats)
        LEQA_EXCLUDES(mutex_);
    /// The throwing core of run()/run_result(); \p stage tracks the stage
    /// in flight so run_result can attribute a failure's origin.
    [[nodiscard]] EstimationResult run_impl(const EstimationRequest& request,
                                            const RunControl* control,
                                            const char*& stage)
        LEQA_EXCLUDES(mutex_);

    /// Session configuration; mutable via the setters, snapshotted by every
    /// reader, hence guarded like the cache it keys.
    PipelineConfig config_ LEQA_GUARDED_BY(mutex_);

    mutable util::Mutex mutex_; ///< guards config_, cache_, lru_, inflight_, stats_
    struct Slot {
        CachedCircuitPtr entry;
        std::list<std::string>::iterator lru_pos;
    };
    std::unordered_map<std::string, Slot> cache_ LEQA_GUARDED_BY(mutex_);
    /// Most-recent first.
    std::list<std::string> lru_ LEQA_GUARDED_BY(mutex_);
    /// Keys being built right now; concurrent resolvers of the same key
    /// wait on the builder's future instead of duplicating parse+synthesis.
    std::unordered_map<std::string, std::shared_future<CachedCircuitPtr>>
        inflight_ LEQA_GUARDED_BY(mutex_);
    CacheStats stats_ LEQA_GUARDED_BY(mutex_);
};

} // namespace leqa::pipeline

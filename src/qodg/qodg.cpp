#include "qodg/qodg.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "util/error.h"

namespace leqa::qodg {

Qodg::Qodg(const circuit::Circuit& circ) {
    const std::size_t n_gates = circ.size();
    nodes_.reserve(n_gates + 2);

    nodes_.push_back(Node{NodeKind::Start, 0, circuit::GateKind::X});
    for (std::size_t i = 0; i < n_gates; ++i) {
        nodes_.push_back(Node{NodeKind::Op, i, circ.gate(i).kind});
    }
    nodes_.push_back(Node{NodeKind::End, 0, circuit::GateKind::X});
    const NodeId end_id = end();

    graph::CsrBuilder builder(nodes_.size());
    builder.reserve_edges(2 * n_gates + circ.num_qubits() + 1);

    // Last QODG node that touched each qubit (start initially).
    std::vector<NodeId> last(circ.num_qubits(), start());

    for (std::size_t i = 0; i < n_gates; ++i) {
        const NodeId me = static_cast<NodeId>(i + 1);
        const circuit::Gate& gate = circ.gate(i);
        // Parallel edges (a CNOT feeding both operands of another CNOT) are
        // merged by the builder at freeze time.
        for (const circuit::Qubit q : gate.controls) builder.add_edge(last[q], me);
        for (const circuit::Qubit q : gate.targets) builder.add_edge(last[q], me);
        for (const circuit::Qubit q : gate.controls) last[q] = me;
        for (const circuit::Qubit q : gate.targets) last[q] = me;
    }

    // Connect all last-level nodes (and untouched qubits' start) to end;
    // duplicates merge at freeze time.
    if (circ.num_qubits() == 0) {
        builder.add_edge(start(), end_id);
    } else {
        for (const NodeId t : last) builder.add_edge(t, end_id);
    }

    csr_ = builder.build(/*merge_parallel=*/true);
    rcsr_ = csr_.reversed();
    // Debug stage-boundary contract: the frozen QODG is a clean,
    // topologically ordered DAG (compiled out of Release).
    LEQA_DCHECK_OK(graph::validate_csr(csr_));

    constexpr auto kZeroRow = static_cast<std::uint16_t>(circuit::kGateKindCount);
    delay_row_.assign(nodes_.size(), kZeroRow);
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        if (nodes_[id].kind == NodeKind::Op) {
            delay_row_[id] = static_cast<std::uint16_t>(nodes_[id].gate_kind);
        }
    }
}

NodeId Qodg::node_of_gate(std::size_t gate_index) const {
    LEQA_REQUIRE(gate_index < nodes_.size() - 2, "gate index out of range");
    return static_cast<NodeId>(gate_index + 1);
}

std::vector<double> Qodg::node_delays(
    const std::function<double(circuit::GateKind)>& delay_of) const {
    std::vector<double> delays(nodes_.size(), 0.0);
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        if (nodes_[id].kind == NodeKind::Op) {
            delays[id] = delay_of(nodes_[id].gate_kind);
        }
    }
    return delays;
}

std::vector<double> Qodg::node_delays(
    const std::array<double, circuit::kGateKindCount>& delay_by_kind) const {
    std::vector<double> delays(nodes_.size(), 0.0);
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        if (nodes_[id].kind == NodeKind::Op) {
            delays[id] = delay_by_kind[static_cast<std::size_t>(nodes_[id].gate_kind)];
        }
    }
    return delays;
}

LongestPath Qodg::longest_path(const std::vector<double>& delays) const {
    LEQA_REQUIRE(delays.size() == nodes_.size(),
                 "delay vector size must equal node count");
    graph::LongestPathResult result = graph::longest_path(csr_, delays, start());
    LongestPath lp;
    lp.distance = std::move(result.distance);
    lp.predecessor = std::move(result.predecessor);
    lp.length = lp.distance[end()];
    return lp;
}

std::vector<NodeId> Qodg::critical_path(const LongestPath& lp) const {
    LEQA_REQUIRE(lp.distance.size() == nodes_.size(),
                 "longest-path result does not match this graph");
    return graph::extract_path(lp.distance, lp.predecessor, start(), end());
}

namespace {

/// One pull-based gather sweep with a compile-time lane count, so the lane
/// accumulators live in registers and the inner loop has a known trip
/// count the compiler unrolls and vectorizes.  Per lane this computes
/// exactly what graph::longest_path computes push-style: a node's
/// predecessors are visited in the same ascending-id order the forward
/// sweep relaxes them in, with the same reachability guard (`du >= 0`)
/// and the same strict `>` comparison, so the running max sees an
/// identical sequence of doubles and lands on identical bits.  NaN
/// candidates (a NaN delay lane) fail `>` both here and there, leaving
/// the node unreachable (-1) in that lane only.
template <std::size_t kLanes>
void gather_lanes(const graph::CsrDigraph& rcsr, std::size_t num_nodes,
                  const std::uint16_t* delay_row, const double* delay_soa,
                  double* distance) {
    for (std::size_t lane = 0; lane < kLanes; ++lane) distance[lane] = 0.0;
    for (NodeId v = 1; v < num_nodes; ++v) {
        const double* delay =
            delay_soa + static_cast<std::size_t>(delay_row[v]) * kLanes;
        double acc[kLanes];
        for (std::size_t lane = 0; lane < kLanes; ++lane) acc[lane] = -1.0;
        for (const NodeId u : rcsr.successors(v)) {
            const double* du = distance + static_cast<std::size_t>(u) * kLanes;
            for (std::size_t lane = 0; lane < kLanes; ++lane) {
                const double candidate = du[lane] + delay[lane];
                const bool better = du[lane] >= 0.0 && candidate > acc[lane];
                acc[lane] = better ? candidate : acc[lane];
            }
        }
        double* dv = distance + static_cast<std::size_t>(v) * kLanes;
        for (std::size_t lane = 0; lane < kLanes; ++lane) dv[lane] = acc[lane];
    }
}

} // namespace

void Qodg::longest_path_lanes(
    std::span<const std::array<double, circuit::kGateKindCount>> tables,
    LongestPathLanes& out) const {
    const std::size_t lanes = tables.size();
    LEQA_REQUIRE(lanes >= 1, "longest_path_lanes needs at least one delay table");
    const std::size_t n = nodes_.size();

    out.lanes = lanes;
    // Every slot is written by the gather (start explicitly, the rest once
    // each in topological order), so resize without a fill.
    out.distance.resize(n * lanes);

    // Kind-major delay SoA — delay of kind k in lane l at [k * lanes + l] —
    // with one extra all-zero row that start/end nodes index (see
    // delay_row_), replacing the per-node kind branch of node_delays()
    // with a row lookup.  Kept in `out` for critical_path_lane recovery.
    out.delay_soa.assign((circuit::kGateKindCount + 1) * lanes, 0.0);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
        for (std::size_t k = 0; k < circuit::kGateKindCount; ++k) {
            out.delay_soa[k * lanes + lane] = tables[lane][k];
        }
    }

    switch (lanes) {
        case 8:
            gather_lanes<8>(rcsr_, n, delay_row_.data(), out.delay_soa.data(),
                            out.distance.data());
            break;
        case 4:
            gather_lanes<4>(rcsr_, n, delay_row_.data(), out.delay_soa.data(),
                            out.distance.data());
            break;
        default: {
            std::vector<double> acc(lanes);
            for (std::size_t lane = 0; lane < lanes; ++lane) {
                out.distance[lane] = 0.0;
            }
            for (NodeId v = 1; v < n; ++v) {
                const double* delay =
                    &out.delay_soa[static_cast<std::size_t>(delay_row_[v]) * lanes];
                std::fill(acc.begin(), acc.end(), -1.0);
                for (const NodeId u : rcsr_.successors(v)) {
                    const double* du =
                        &out.distance[static_cast<std::size_t>(u) * lanes];
                    for (std::size_t lane = 0; lane < lanes; ++lane) {
                        const double candidate = du[lane] + delay[lane];
                        const bool better =
                            du[lane] >= 0.0 && candidate > acc[lane];
                        acc[lane] = better ? candidate : acc[lane];
                    }
                }
                std::copy(acc.begin(), acc.end(),
                          &out.distance[static_cast<std::size_t>(v) * lanes]);
            }
            break;
        }
    }
}

std::vector<NodeId> Qodg::critical_path_lane(const LongestPathLanes& lanes,
                                             std::size_t lane) const {
    const std::size_t width = lanes.lanes;
    LEQA_REQUIRE(lanes.distance.size() == nodes_.size() * width,
                 "lane-blocked result does not match this graph");
    LEQA_REQUIRE(lane < width, "lane index out of range");
    LEQA_REQUIRE(lanes.at(end(), lane) >= 0.0, "sink unreachable from source");
    std::vector<NodeId> path;
    NodeId cursor = end();
    path.push_back(cursor);
    while (cursor != start()) {
        const double target = lanes.at(cursor, lane);
        const double delay =
            lanes.delay_soa[static_cast<std::size_t>(delay_row_[cursor]) * width +
                            lane];
        NodeId next = cursor;
        for (const NodeId u : rcsr_.successors(cursor)) {
            const double du = lanes.at(u, lane);
            if (du >= 0.0 && du + delay == target) {
                next = u;
                break;
            }
        }
        LEQA_REQUIRE(next != cursor, "lane path recovery found no predecessor");
        cursor = next;
        path.push_back(cursor);
    }
    std::reverse(path.begin(), path.end());
    return path;
}

void Qodg::critical_census_lanes(const LongestPathLanes& lanes,
                                 std::span<PathCensus> out) const {
    const std::size_t width = lanes.lanes;
    LEQA_REQUIRE(lanes.distance.size() == nodes_.size() * width,
                 "lane-blocked result does not match this graph");
    LEQA_REQUIRE(out.size() <= width, "more censuses requested than lanes");
    const NodeId source = start();
    const NodeId sink = end();
    for (std::size_t lane = 0; lane < out.size(); ++lane) {
        LEQA_REQUIRE(lanes.at(sink, lane) >= 0.0, "sink unreachable from source");
        out[lane] = PathCensus{};
    }

    constexpr std::size_t kRows = circuit::kGateKindCount + 1;
    const std::size_t n = nodes_.size();
    const double* dist = lanes.distance.data();
    const double* delays = lanes.delay_soa.data();

    // Process at most 8 lanes per sweep so the mask array stays one byte
    // per node; the engine's block width never exceeds that anyway.
    std::vector<std::uint8_t> mark(n);
    // Census counts keyed by (lane mask, delay row): one increment per
    // visited node instead of one per (node, lane), unfolded to the lanes
    // after the sweep.  The table is 256 * kRows words — L1-resident.
    std::vector<std::uint32_t> mask_counts(kRows << 8);
    for (std::size_t base = 0; base < out.size(); base += 8) {
        const std::size_t group = std::min<std::size_t>(8, out.size() - base);
        std::fill(mark.begin(), mark.end(), 0);
        std::fill(mask_counts.begin(), mask_counts.end(), 0);
        mark[sink] = static_cast<std::uint8_t>((1u << group) - 1u);

        // Descending ids = reverse topological order: by the time v is
        // reached, every successor that could put v on its path has
        // already propagated its mask down to v.
        for (NodeId v = static_cast<NodeId>(n - 1); v != source; --v) {
            const std::uint8_t m = mark[v];
            if (m == 0) continue;
            const std::size_t row = delay_row_[v];
            ++mask_counts[(static_cast<std::size_t>(m) * kRows) + row];
            const std::span<const NodeId> preds = rcsr_.successors(v);
            if (preds.size() == 1) {
                // The only predecessor is the path predecessor in every
                // marked lane; no distance reads needed.
                mark[preds[0]] |= m;
                continue;
            }
            // All marked lanes scan the predecessors together.  Removing
            // matched lanes from `remaining` keeps first-match semantics
            // per lane; the per-predecessor compare runs branch-free over
            // the group's contiguous distance lanes.
            const double* tv = dist + static_cast<std::size_t>(v) * width;
            const double* drow = delays + row * width;
            std::uint8_t remaining = m;
            for (const NodeId u : preds) {
                const double* tu = dist + static_cast<std::size_t>(u) * width;
                std::uint8_t matched = 0;
                for (std::size_t slot = 0; slot < group; ++slot) {
                    const std::size_t lane = base + slot;
                    const bool match = tu[lane] >= 0.0 &&
                                       tu[lane] + drow[lane] == tv[lane];
                    matched |= static_cast<std::uint8_t>(
                        static_cast<unsigned>(match) << slot);
                }
                const std::uint8_t take = matched & remaining;
                mark[u] = static_cast<std::uint8_t>(mark[u] | take);
                remaining = static_cast<std::uint8_t>(remaining & ~take);
                if (remaining == 0) break;
            }
            LEQA_REQUIRE(remaining == 0,
                         "lane path recovery found no predecessor");
        }

        // Unfold the (mask, row) counts into per-lane censuses.  The zero
        // delay row (start/end nodes) is skipped, matching census()'s
        // Op-nodes-only rule.
        for (std::size_t mask = 1; mask < 256; ++mask) {
            const std::uint32_t* row_counts = &mask_counts[mask * kRows];
            for (std::size_t row = 0; row < circuit::kGateKindCount; ++row) {
                const std::uint32_t count = row_counts[row];
                if (count == 0) continue;
                for (std::uint8_t bits = static_cast<std::uint8_t>(mask);
                     bits != 0; bits &= bits - 1) {
                    PathCensus& census =
                        out[base +
                            static_cast<std::size_t>(std::countr_zero(bits))];
                    census.by_kind[row] += count;
                    census.total_ops += count;
                }
            }
        }
    }
}

PathCensus Qodg::census(const std::vector<NodeId>& path) const {
    PathCensus census;
    for (const NodeId id : path) {
        const Node& node = nodes_.at(id);
        if (node.kind != NodeKind::Op) continue;
        ++census.by_kind[static_cast<std::size_t>(node.gate_kind)];
        ++census.total_ops;
    }
    return census;
}

std::vector<double> Qodg::downstream_delay(const std::vector<double>& delays) const {
    LEQA_REQUIRE(delays.size() == nodes_.size(),
                 "delay vector size must equal node count");
    return graph::downstream_delay(csr_, delays);
}

Qodg::SlackAnalysis Qodg::slack_analysis(const std::vector<double>& delays) const {
    const LongestPath forward = longest_path(delays);
    const std::vector<double> backward = downstream_delay(delays);
    SlackAnalysis analysis;
    analysis.critical_length = forward.length;
    analysis.slack.resize(nodes_.size());
    for (NodeId u = 0; u < nodes_.size(); ++u) {
        // Longest start->end path through u = (longest to u, inclusive) +
        // (longest from u, inclusive) - delay(u) counted twice.
        const double through = forward.distance[u] + backward[u] - delays[u];
        analysis.slack[u] = std::max(0.0, forward.length - through);
        if (analysis.slack[u] <= 1e-9) ++analysis.zero_slack_nodes;
    }
    return analysis;
}

std::string Qodg::to_dot(const circuit::Circuit& circ) const {
    std::ostringstream out;
    out << "digraph qodg {\n  rankdir=LR;\n";
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const Node& node = nodes_[id];
        out << "  n" << id << " [label=\"";
        switch (node.kind) {
            case NodeKind::Start: out << "start"; break;
            case NodeKind::End: out << "end"; break;
            case NodeKind::Op:
                out << node.gate_index + 1 << ": "
                    << circuit::gate_name(circ.gate(node.gate_index).kind);
                break;
        }
        out << "\"";
        if (node.kind != NodeKind::Op) out << ", shape=box";
        out << "];\n";
    }
    for (NodeId u = 0; u < nodes_.size(); ++u) {
        for (const NodeId v : csr_.successors(u)) {
            out << "  n" << u << " -> n" << v << ";\n";
        }
    }
    out << "}\n";
    return out.str();
}

} // namespace leqa::qodg

#include "qodg/qodg.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"

namespace leqa::qodg {

Qodg::Qodg(const circuit::Circuit& circ) {
    const std::size_t n_gates = circ.size();
    nodes_.reserve(n_gates + 2);
    out_edges_.resize(n_gates + 2);

    nodes_.push_back(Node{NodeKind::Start, 0, circuit::GateKind::X});
    for (std::size_t i = 0; i < n_gates; ++i) {
        nodes_.push_back(Node{NodeKind::Op, i, circ.gate(i).kind});
    }
    nodes_.push_back(Node{NodeKind::End, 0, circuit::GateKind::X});
    const NodeId end_id = end();

    // Last QODG node that touched each qubit (start initially).
    std::vector<NodeId> last(circ.num_qubits(), start());

    std::vector<NodeId> preds; // scratch, deduplicated per gate
    for (std::size_t i = 0; i < n_gates; ++i) {
        const NodeId me = static_cast<NodeId>(i + 1);
        const circuit::Gate& gate = circ.gate(i);
        preds.clear();
        for (const circuit::Qubit q : gate.controls) preds.push_back(last[q]);
        for (const circuit::Qubit q : gate.targets) preds.push_back(last[q]);
        std::sort(preds.begin(), preds.end());
        preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
        for (const NodeId p : preds) {
            out_edges_[p].push_back(me); // merged: one edge per (p, me) pair
            ++edge_count_;
        }
        for (const circuit::Qubit q : gate.controls) last[q] = me;
        for (const circuit::Qubit q : gate.targets) last[q] = me;
    }

    // Connect all last-level nodes (and untouched qubits' start) to end,
    // merging duplicates.
    std::vector<NodeId> tails(last.begin(), last.end());
    if (circ.num_qubits() == 0) tails.push_back(start());
    std::sort(tails.begin(), tails.end());
    tails.erase(std::unique(tails.begin(), tails.end()), tails.end());
    for (const NodeId t : tails) {
        out_edges_[t].push_back(end_id);
        ++edge_count_;
    }
}

NodeId Qodg::node_of_gate(std::size_t gate_index) const {
    LEQA_REQUIRE(gate_index < nodes_.size() - 2, "gate index out of range");
    return static_cast<NodeId>(gate_index + 1);
}

std::vector<double> Qodg::node_delays(
    const std::function<double(circuit::GateKind)>& delay_of) const {
    std::vector<double> delays(nodes_.size(), 0.0);
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        if (nodes_[id].kind == NodeKind::Op) {
            delays[id] = delay_of(nodes_[id].gate_kind);
        }
    }
    return delays;
}

LongestPath Qodg::longest_path(const std::vector<double>& delays) const {
    LEQA_REQUIRE(delays.size() == nodes_.size(),
                 "delay vector size must equal node count");
    LongestPath lp;
    lp.distance.assign(nodes_.size(), -1.0);
    lp.predecessor.assign(nodes_.size(), start());
    lp.distance[start()] = delays[start()];

    // Node ids are already a topological order (edges go low -> high).
    for (NodeId u = 0; u < nodes_.size(); ++u) {
        if (lp.distance[u] < 0.0) continue; // unreachable (cannot happen)
        for (const NodeId v : out_edges_[u]) {
            const double candidate = lp.distance[u] + delays[v];
            if (candidate > lp.distance[v]) {
                lp.distance[v] = candidate;
                lp.predecessor[v] = u;
            }
        }
    }
    lp.length = lp.distance[end()];
    return lp;
}

std::vector<NodeId> Qodg::critical_path(const LongestPath& lp) const {
    LEQA_REQUIRE(lp.distance.size() == nodes_.size(),
                 "longest-path result does not match this graph");
    std::vector<NodeId> path;
    NodeId cursor = end();
    path.push_back(cursor);
    while (cursor != start()) {
        cursor = lp.predecessor[cursor];
        path.push_back(cursor);
    }
    std::reverse(path.begin(), path.end());
    return path;
}

PathCensus Qodg::census(const std::vector<NodeId>& path) const {
    PathCensus census;
    for (const NodeId id : path) {
        const Node& node = nodes_.at(id);
        if (node.kind != NodeKind::Op) continue;
        ++census.by_kind[static_cast<std::size_t>(node.gate_kind)];
        ++census.total_ops;
    }
    return census;
}

std::vector<double> Qodg::downstream_delay(const std::vector<double>& delays) const {
    LEQA_REQUIRE(delays.size() == nodes_.size(),
                 "delay vector size must equal node count");
    std::vector<double> downstream(nodes_.size(), 0.0);
    // Reverse topological order: node ids descend.
    for (NodeId u = static_cast<NodeId>(nodes_.size()); u-- > 0;) {
        double best_successor = 0.0;
        for (const NodeId v : out_edges_[u]) {
            best_successor = std::max(best_successor, downstream[v]);
        }
        downstream[u] = delays[u] + best_successor;
    }
    return downstream;
}

Qodg::SlackAnalysis Qodg::slack_analysis(const std::vector<double>& delays) const {
    const LongestPath forward = longest_path(delays);
    const std::vector<double> backward = downstream_delay(delays);
    SlackAnalysis analysis;
    analysis.critical_length = forward.length;
    analysis.slack.resize(nodes_.size());
    for (NodeId u = 0; u < nodes_.size(); ++u) {
        // Longest start->end path through u = (longest to u, inclusive) +
        // (longest from u, inclusive) - delay(u) counted twice.
        const double through = forward.distance[u] + backward[u] - delays[u];
        analysis.slack[u] = std::max(0.0, forward.length - through);
        if (analysis.slack[u] <= 1e-9) ++analysis.zero_slack_nodes;
    }
    return analysis;
}

std::string Qodg::to_dot(const circuit::Circuit& circ) const {
    std::ostringstream out;
    out << "digraph qodg {\n  rankdir=LR;\n";
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const Node& node = nodes_[id];
        out << "  n" << id << " [label=\"";
        switch (node.kind) {
            case NodeKind::Start: out << "start"; break;
            case NodeKind::End: out << "end"; break;
            case NodeKind::Op:
                out << node.gate_index + 1 << ": "
                    << circuit::gate_name(circ.gate(node.gate_index).kind);
                break;
        }
        out << "\"";
        if (node.kind != NodeKind::Op) out << ", shape=box";
        out << "];\n";
    }
    for (NodeId u = 0; u < nodes_.size(); ++u) {
        for (const NodeId v : out_edges_[u]) {
            out << "  n" << u << " -> n" << v << ";\n";
        }
    }
    out << "}\n";
    return out.str();
}

} // namespace leqa::qodg

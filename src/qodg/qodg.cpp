#include "qodg/qodg.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"

namespace leqa::qodg {

Qodg::Qodg(const circuit::Circuit& circ) {
    const std::size_t n_gates = circ.size();
    nodes_.reserve(n_gates + 2);

    nodes_.push_back(Node{NodeKind::Start, 0, circuit::GateKind::X});
    for (std::size_t i = 0; i < n_gates; ++i) {
        nodes_.push_back(Node{NodeKind::Op, i, circ.gate(i).kind});
    }
    nodes_.push_back(Node{NodeKind::End, 0, circuit::GateKind::X});
    const NodeId end_id = end();

    graph::CsrBuilder builder(nodes_.size());
    builder.reserve_edges(2 * n_gates + circ.num_qubits() + 1);

    // Last QODG node that touched each qubit (start initially).
    std::vector<NodeId> last(circ.num_qubits(), start());

    for (std::size_t i = 0; i < n_gates; ++i) {
        const NodeId me = static_cast<NodeId>(i + 1);
        const circuit::Gate& gate = circ.gate(i);
        // Parallel edges (a CNOT feeding both operands of another CNOT) are
        // merged by the builder at freeze time.
        for (const circuit::Qubit q : gate.controls) builder.add_edge(last[q], me);
        for (const circuit::Qubit q : gate.targets) builder.add_edge(last[q], me);
        for (const circuit::Qubit q : gate.controls) last[q] = me;
        for (const circuit::Qubit q : gate.targets) last[q] = me;
    }

    // Connect all last-level nodes (and untouched qubits' start) to end;
    // duplicates merge at freeze time.
    if (circ.num_qubits() == 0) {
        builder.add_edge(start(), end_id);
    } else {
        for (const NodeId t : last) builder.add_edge(t, end_id);
    }

    csr_ = builder.build(/*merge_parallel=*/true);
}

NodeId Qodg::node_of_gate(std::size_t gate_index) const {
    LEQA_REQUIRE(gate_index < nodes_.size() - 2, "gate index out of range");
    return static_cast<NodeId>(gate_index + 1);
}

std::vector<double> Qodg::node_delays(
    const std::function<double(circuit::GateKind)>& delay_of) const {
    std::vector<double> delays(nodes_.size(), 0.0);
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        if (nodes_[id].kind == NodeKind::Op) {
            delays[id] = delay_of(nodes_[id].gate_kind);
        }
    }
    return delays;
}

std::vector<double> Qodg::node_delays(
    const std::array<double, circuit::kGateKindCount>& delay_by_kind) const {
    std::vector<double> delays(nodes_.size(), 0.0);
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        if (nodes_[id].kind == NodeKind::Op) {
            delays[id] = delay_by_kind[static_cast<std::size_t>(nodes_[id].gate_kind)];
        }
    }
    return delays;
}

LongestPath Qodg::longest_path(const std::vector<double>& delays) const {
    LEQA_REQUIRE(delays.size() == nodes_.size(),
                 "delay vector size must equal node count");
    graph::LongestPathResult result = graph::longest_path(csr_, delays, start());
    LongestPath lp;
    lp.distance = std::move(result.distance);
    lp.predecessor = std::move(result.predecessor);
    lp.length = lp.distance[end()];
    return lp;
}

std::vector<NodeId> Qodg::critical_path(const LongestPath& lp) const {
    LEQA_REQUIRE(lp.distance.size() == nodes_.size(),
                 "longest-path result does not match this graph");
    return graph::extract_path(lp.distance, lp.predecessor, start(), end());
}

PathCensus Qodg::census(const std::vector<NodeId>& path) const {
    PathCensus census;
    for (const NodeId id : path) {
        const Node& node = nodes_.at(id);
        if (node.kind != NodeKind::Op) continue;
        ++census.by_kind[static_cast<std::size_t>(node.gate_kind)];
        ++census.total_ops;
    }
    return census;
}

std::vector<double> Qodg::downstream_delay(const std::vector<double>& delays) const {
    LEQA_REQUIRE(delays.size() == nodes_.size(),
                 "delay vector size must equal node count");
    return graph::downstream_delay(csr_, delays);
}

Qodg::SlackAnalysis Qodg::slack_analysis(const std::vector<double>& delays) const {
    const LongestPath forward = longest_path(delays);
    const std::vector<double> backward = downstream_delay(delays);
    SlackAnalysis analysis;
    analysis.critical_length = forward.length;
    analysis.slack.resize(nodes_.size());
    for (NodeId u = 0; u < nodes_.size(); ++u) {
        // Longest start->end path through u = (longest to u, inclusive) +
        // (longest from u, inclusive) - delay(u) counted twice.
        const double through = forward.distance[u] + backward[u] - delays[u];
        analysis.slack[u] = std::max(0.0, forward.length - through);
        if (analysis.slack[u] <= 1e-9) ++analysis.zero_slack_nodes;
    }
    return analysis;
}

std::string Qodg::to_dot(const circuit::Circuit& circ) const {
    std::ostringstream out;
    out << "digraph qodg {\n  rankdir=LR;\n";
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        const Node& node = nodes_[id];
        out << "  n" << id << " [label=\"";
        switch (node.kind) {
            case NodeKind::Start: out << "start"; break;
            case NodeKind::End: out << "end"; break;
            case NodeKind::Op:
                out << node.gate_index + 1 << ": "
                    << circuit::gate_name(circ.gate(node.gate_index).kind);
                break;
        }
        out << "\"";
        if (node.kind != NodeKind::Op) out << ", shape=box";
        out << "];\n";
    }
    for (NodeId u = 0; u < nodes_.size(); ++u) {
        for (const NodeId v : csr_.successors(u)) {
            out << "  n" << u << " -> n" << v << ";\n";
        }
    }
    out << "}\n";
    return out.str();
}

} // namespace leqa::qodg

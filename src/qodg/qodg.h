/// \file qodg.h
/// \brief The Quantum Operation Dependency Graph (QODG) of the paper (§2).
///
/// Nodes are FT operations; edges capture data dependencies through logical
/// qubits.  Following the paper:
///   - a dedicated `start` node precedes all first-level operations and an
///     `end` node succeeds all last-level operations;
///   - if two edges connect the same ordered node pair (a CNOT feeding both
///     operands of another CNOT) they are merged into one edge;
///   - node ids are a topological order by construction (gates are appended
///     in program order).
///
/// The dependency structure itself lives in a shared `graph::CsrDigraph`
/// (see graph/csr.h); this class adds the circuit-facing node metadata and
/// the weighted-longest-path machinery LEQA's Algorithm 1 (lines 19-20) and
/// the QSPR scheduler both build on: given a per-node delay vector, compute
/// the critical path, its length, and the per-gate-kind operation census
/// along it (N^critical of Eq. 1).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "graph/csr.h"

namespace leqa::qodg {

using NodeId = graph::NodeId;

enum class NodeKind : std::uint8_t { Start, Op, End };

/// One QODG node.  For `Op` nodes, `gate_index` refers into the source
/// circuit's gate list.
struct Node {
    NodeKind kind = NodeKind::Op;
    std::size_t gate_index = 0;
    circuit::GateKind gate_kind = circuit::GateKind::X; ///< valid for Op nodes
};

/// Result of a longest-path computation.
struct LongestPath {
    std::vector<double> distance;  ///< per node: longest path length ending at node
    std::vector<NodeId> predecessor; ///< per node: predecessor on that path
    double length = 0.0;           ///< distance at the end node
};

/// Per-kind census of operations on a path (plus the total).
struct PathCensus {
    std::array<std::size_t, circuit::kGateKindCount> by_kind{};
    std::size_t total_ops = 0;

    [[nodiscard]] std::size_t of(circuit::GateKind kind) const {
        return by_kind[static_cast<std::size_t>(kind)];
    }
};

class Qodg {
public:
    /// Build from a circuit.  Every gate becomes one node; edges follow the
    /// last-writer chain per qubit; parallel edges are merged.
    explicit Qodg(const circuit::Circuit& circ);

    [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
    [[nodiscard]] std::size_t num_edges() const { return csr_.num_edges(); }
    [[nodiscard]] std::size_t num_ops() const { return nodes_.size() - 2; }
    [[nodiscard]] NodeId start() const { return 0; }
    [[nodiscard]] NodeId end() const { return static_cast<NodeId>(nodes_.size() - 1); }
    [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id); }
    [[nodiscard]] std::span<const NodeId> successors(NodeId id) const {
        (void)nodes_.at(id); // bounds check; CSR indexing below is unchecked
        return csr_.successors(id);
    }
    /// The raw dependency structure (node ids are a topological order).
    [[nodiscard]] const graph::CsrDigraph& csr() const { return csr_; }

    /// Node id of the i-th gate: gates map to ids 1..N in program order, so
    /// this is a constant-time offset plus a bounds check.
    [[nodiscard]] NodeId node_of_gate(std::size_t gate_index) const;

    /// Build a per-node delay vector from a per-gate-kind delay functor;
    /// start/end get zero delay.
    [[nodiscard]] std::vector<double> node_delays(
        const std::function<double(circuit::GateKind)>& delay_of) const;

    /// As above from a per-kind delay table (no indirect call per node).
    [[nodiscard]] std::vector<double> node_delays(
        const std::array<double, circuit::kGateKindCount>& delay_by_kind) const;

    /// Longest path from start to every node where path length is the sum
    /// of node delays along the path.  `delays.size()` must equal
    /// num_nodes().
    [[nodiscard]] LongestPath longest_path(const std::vector<double>& delays) const;

    /// Extract the start->end critical path node sequence from a
    /// longest-path result.
    [[nodiscard]] std::vector<NodeId> critical_path(const LongestPath& lp) const;

    /// Count operations per gate kind along a node path (Op nodes only).
    [[nodiscard]] PathCensus census(const std::vector<NodeId>& path) const;

    /// Longest path from each node to the end (inclusive of the node's own
    /// delay).  Used as the priority function of list scheduling and for
    /// slack analysis.
    [[nodiscard]] std::vector<double> downstream_delay(
        const std::vector<double>& delays) const;

    /// Per-node scheduling slack: how much a node's delay could grow
    /// without lengthening the critical path.  Zero-slack nodes lie on a
    /// critical path.
    struct SlackAnalysis {
        std::vector<double> slack;
        double critical_length = 0.0;
        std::size_t zero_slack_nodes = 0; ///< includes start/end
    };
    [[nodiscard]] SlackAnalysis slack_analysis(const std::vector<double>& delays) const;

    /// Graphviz DOT rendering (regenerates the paper's Figure 2(b) for
    /// ham3-sized inputs; feasible for small graphs only).
    [[nodiscard]] std::string to_dot(const circuit::Circuit& circ) const;

private:
    std::vector<Node> nodes_;
    graph::CsrDigraph csr_;
};

} // namespace leqa::qodg

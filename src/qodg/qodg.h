/// \file qodg.h
/// \brief The Quantum Operation Dependency Graph (QODG) of the paper (§2).
///
/// Nodes are FT operations; edges capture data dependencies through logical
/// qubits.  Following the paper:
///   - a dedicated `start` node precedes all first-level operations and an
///     `end` node succeeds all last-level operations;
///   - if two edges connect the same ordered node pair (a CNOT feeding both
///     operands of another CNOT) they are merged into one edge;
///   - node ids are a topological order by construction (gates are appended
///     in program order).
///
/// The dependency structure itself lives in a shared `graph::CsrDigraph`
/// (see graph/csr.h); this class adds the circuit-facing node metadata and
/// the weighted-longest-path machinery LEQA's Algorithm 1 (lines 19-20) and
/// the QSPR scheduler both build on: given a per-node delay vector, compute
/// the critical path, its length, and the per-gate-kind operation census
/// along it (N^critical of Eq. 1).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "graph/csr.h"

namespace leqa::qodg {

using NodeId = graph::NodeId;

enum class NodeKind : std::uint8_t { Start, Op, End };

/// One QODG node.  For `Op` nodes, `gate_index` refers into the source
/// circuit's gate list.
struct Node {
    NodeKind kind = NodeKind::Op;
    std::size_t gate_index = 0;
    circuit::GateKind gate_kind = circuit::GateKind::X; ///< valid for Op nodes
};

/// Result of a longest-path computation.
struct LongestPath {
    std::vector<double> distance;  ///< per node: longest path length ending at node
    std::vector<NodeId> predecessor; ///< per node: predecessor on that path
    double length = 0.0;           ///< distance at the end node
};

/// Result of a lane-blocked longest-path computation: several per-kind
/// delay tables relaxed through one shared edge sweep.  Storage is
/// node-major — lane `l` of node `u` lives at index `u * lanes + l` — so
/// the per-edge inner loop touches one contiguous run per node.  No
/// per-node predecessors are materialized; critical_path_lane() recovers a
/// lane's path from the distances and the kind-major delay table kept here.
struct LongestPathLanes {
    std::size_t lanes = 0;
    std::vector<double> distance;  ///< node-major, [node * lanes + lane]
    /// Kind-major delay table the distances were computed with: delay of
    /// kind `k` in lane `l` at [k * lanes + l], plus one trailing all-zero
    /// row indexed by start/end nodes.
    std::vector<double> delay_soa;

    [[nodiscard]] double at(NodeId node, std::size_t lane) const {
        return distance[static_cast<std::size_t>(node) * lanes + lane];
    }
};

/// Per-kind census of operations on a path (plus the total).
struct PathCensus {
    std::array<std::size_t, circuit::kGateKindCount> by_kind{};
    std::size_t total_ops = 0;

    [[nodiscard]] std::size_t of(circuit::GateKind kind) const {
        return by_kind[static_cast<std::size_t>(kind)];
    }
};

class Qodg {
public:
    /// Build from a circuit.  Every gate becomes one node; edges follow the
    /// last-writer chain per qubit; parallel edges are merged.
    explicit Qodg(const circuit::Circuit& circ);

    [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
    [[nodiscard]] std::size_t num_edges() const { return csr_.num_edges(); }
    [[nodiscard]] std::size_t num_ops() const { return nodes_.size() - 2; }
    [[nodiscard]] NodeId start() const { return 0; }
    [[nodiscard]] NodeId end() const { return static_cast<NodeId>(nodes_.size() - 1); }
    [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id); }
    [[nodiscard]] std::span<const NodeId> successors(NodeId id) const {
        (void)nodes_.at(id); // bounds check; CSR indexing below is unchecked
        return csr_.successors(id);
    }
    /// Predecessors of a node, ascending by id (the reverse-CSR adjacency
    /// built at construction).  Gathering them in this order reproduces the
    /// relax order of the push-based longest-path sweep bit for bit — the
    /// contract core::PlacedTimer's incremental re-timing relies on.
    [[nodiscard]] std::span<const NodeId> predecessors(NodeId id) const {
        (void)nodes_.at(id);
        return rcsr_.successors(id);
    }
    /// The raw dependency structure (node ids are a topological order).
    [[nodiscard]] const graph::CsrDigraph& csr() const { return csr_; }

    /// Node id of the i-th gate: gates map to ids 1..N in program order, so
    /// this is a constant-time offset plus a bounds check.
    [[nodiscard]] NodeId node_of_gate(std::size_t gate_index) const;

    /// Build a per-node delay vector from a per-gate-kind delay functor;
    /// start/end get zero delay.
    [[nodiscard]] std::vector<double> node_delays(
        const std::function<double(circuit::GateKind)>& delay_of) const;

    /// As above from a per-kind delay table (no indirect call per node).
    [[nodiscard]] std::vector<double> node_delays(
        const std::array<double, circuit::kGateKindCount>& delay_by_kind) const;

    /// Longest path from start to every node where path length is the sum
    /// of node delays along the path.  `delays.size()` must equal
    /// num_nodes().
    [[nodiscard]] LongestPath longest_path(const std::vector<double>& delays) const;

    /// Extract the start->end critical path node sequence from a
    /// longest-path result.
    [[nodiscard]] std::vector<NodeId> critical_path(const LongestPath& lp) const;

    /// Lane-blocked longest path: relax `tables.size()` per-gate-kind delay
    /// tables (one per parameter point) through a SINGLE pass over the
    /// edges.  The sweep is pull-based — for each node in topological
    /// order, gather the max over its predecessors (reverse CSR built at
    /// construction) into lane accumulators that live in registers — so
    /// the inner loop is a pure double add/compare/select over contiguous
    /// lanes with one store per node, and no distance re-initialization
    /// between calls.  Each lane's distances are bit-identical to a scalar
    /// longest_path() over the matching node_delays() vector: the
    /// predecessors of a node are gathered in the same ascending-id order
    /// the push-based sweep relaxes them in.  Reuses `out`'s storage
    /// across calls.  Start/end nodes get zero delay, as in node_delays().
    void longest_path_lanes(
        std::span<const std::array<double, circuit::kGateKindCount>> tables,
        LongestPathLanes& out) const;

    /// Extract one lane's start->end critical path from a lane-blocked
    /// result (same node sequence as critical_path()).  Predecessors are
    /// not stored during the sweep; this walks the reverse edges from the
    /// end taking, at each node v, the first predecessor u (ascending id)
    /// with distance(u) + delay(v) == distance(v) — exactly the
    /// predecessor the push-based scalar sweep records, since it is the
    /// first node to reach v's final distance and later ties never
    /// overwrite it.
    [[nodiscard]] std::vector<NodeId> critical_path_lane(
        const LongestPathLanes& lanes, std::size_t lane) const;

    /// census(critical_path_lane(lanes, lane)) for lanes [0, out.size())
    /// at once, without materializing any path.  Instead of walking each
    /// lane's predecessor chain (a serial string of dependent loads), one
    /// reverse-topological sweep carries a per-node lane bitmask: a node's
    /// path membership is decided by its already-processed successors, so
    /// every access streams through the arrays in id order.  Nodes with a
    /// single predecessor — most of the narrow QODG — forward their mask
    /// without reading any distances at all; only join nodes run the
    /// first-match predecessor scan per marked lane.
    void critical_census_lanes(const LongestPathLanes& lanes,
                               std::span<PathCensus> out) const;

    /// Count operations per gate kind along a node path (Op nodes only).
    [[nodiscard]] PathCensus census(const std::vector<NodeId>& path) const;

    /// Longest path from each node to the end (inclusive of the node's own
    /// delay).  Used as the priority function of list scheduling and for
    /// slack analysis.
    [[nodiscard]] std::vector<double> downstream_delay(
        const std::vector<double>& delays) const;

    /// Per-node scheduling slack: how much a node's delay could grow
    /// without lengthening the critical path.  Zero-slack nodes lie on a
    /// critical path.
    struct SlackAnalysis {
        std::vector<double> slack;
        double critical_length = 0.0;
        std::size_t zero_slack_nodes = 0; ///< includes start/end
    };
    [[nodiscard]] SlackAnalysis slack_analysis(const std::vector<double>& delays) const;

    /// Graphviz DOT rendering (regenerates the paper's Figure 2(b) for
    /// ham3-sized inputs; feasible for small graphs only).
    [[nodiscard]] std::string to_dot(const circuit::Circuit& circ) const;

private:
    std::vector<Node> nodes_;
    graph::CsrDigraph csr_;
    /// Edge-reversed csr_: successors(v) are v's predecessors, ascending.
    graph::CsrDigraph rcsr_;
    /// Per-node row into a kind-major delay table: the gate kind for Op
    /// nodes, the trailing zero row (kGateKindCount) for start/end.
    std::vector<std::uint16_t> delay_row_;
};

} // namespace leqa::qodg

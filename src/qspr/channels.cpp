#include "qspr/channels.h"

#include <cmath>

#include "util/error.h"

namespace leqa::qspr {

ChannelReservations::ChannelReservations(std::size_t num_segments, int capacity,
                                         double slot_us)
    : occupancy_(num_segments), capacity_(capacity), slot_us_(slot_us) {
    LEQA_REQUIRE(capacity >= 1, "channel capacity must be >= 1");
    LEQA_REQUIRE(slot_us > 0.0, "slot duration must be positive");
}

double ChannelReservations::reserve(fabric::SegmentId segment, double earliest_us) {
    LEQA_REQUIRE(segment >= 0 && static_cast<std::size_t>(segment) < occupancy_.size(),
                 "segment id out of range");
    LEQA_REQUIRE(earliest_us >= 0.0, "reservation time must be non-negative");
    auto& slots = occupancy_[static_cast<std::size_t>(segment)];

    // First slot whose start is >= earliest (a qubit arriving mid-slot
    // enters at the next slot boundary).
    std::int64_t slot = static_cast<std::int64_t>(std::ceil(earliest_us / slot_us_ - 1e-9));
    auto it = slots.lower_bound(slot);
    while (it != slots.end() && it->first == slot && it->second >= capacity_) {
        ++slot;
        ++it;
    }
    const int count = ++slots[slot];
    stats_.max_occupancy = std::max(stats_.max_occupancy, count);
    ++stats_.reservations;

    const double start = static_cast<double>(slot) * slot_us_;
    if (start > earliest_us + 1e-9) {
        const double wait = start - earliest_us;
        // Quantization alignment (< one slot) is not congestion; only count
        // waits of at least a full slot as delayed hops.
        if (wait >= slot_us_ - 1e-9) {
            ++stats_.delayed_hops;
        }
        stats_.total_wait_us += wait;
    }
    return start;
}

double ChannelReservations::route(const std::vector<fabric::SegmentId>& path,
                                  double depart_us) {
    double now = depart_us;
    for (const fabric::SegmentId segment : path) {
        const double entry = reserve(segment, now);
        now = entry + slot_us_;
    }
    return now;
}

int ChannelReservations::occupancy_at(fabric::SegmentId segment, double time_us) const {
    LEQA_REQUIRE(segment >= 0 && static_cast<std::size_t>(segment) < occupancy_.size(),
                 "segment id out of range");
    const auto& slots = occupancy_[static_cast<std::size_t>(segment)];
    const auto slot = static_cast<std::int64_t>(std::floor(time_us / slot_us_));
    const auto it = slots.find(slot);
    return it == slots.end() ? 0 : it->second;
}

void ChannelReservations::prune_before(double time_us) {
    const std::int64_t keep_from = static_cast<std::int64_t>(std::floor(time_us / slot_us_)) - 1;
    for (auto& slots : occupancy_) {
        slots.erase(slots.begin(), slots.lower_bound(keep_from));
    }
}

std::size_t ChannelReservations::live_entries() const {
    std::size_t total = 0;
    for (const auto& slots : occupancy_) total += slots.size();
    return total;
}

} // namespace leqa::qspr

/// \file channels.h
/// \brief Time-slotted channel reservation table with capacity Nc.
///
/// Time is quantized into slots of one hop time (Tmove).  Each channel
/// segment admits at most Nc qubits per slot; a qubit that finds its next
/// segment full waits for the first slot with spare capacity -- this is the
/// pipelining behaviour LEQA's M/M/1 congestion model (Eq. 8) abstracts.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "fabric/geometry.h"

namespace leqa::qspr {

struct ChannelStats {
    std::uint64_t reservations = 0;   ///< total hops reserved
    std::uint64_t delayed_hops = 0;   ///< hops that had to wait for a slot
    double total_wait_us = 0.0;       ///< accumulated waiting time
    int max_occupancy = 0;            ///< densest slot ever seen
};

class ChannelReservations {
public:
    /// \param num_segments  total channel segments on the fabric
    /// \param capacity      Nc, qubits admitted per segment per slot
    /// \param slot_us       slot duration (= Tmove)
    ChannelReservations(std::size_t num_segments, int capacity, double slot_us);

    /// Reserve the earliest slot of \p segment starting at or after
    /// \p earliest_us; returns the slot's start time.
    double reserve(fabric::SegmentId segment, double earliest_us);

    /// Route along consecutive segments departing at \p depart_us; each hop
    /// takes one slot.  Returns arrival time at the final ULB.
    double route(const std::vector<fabric::SegmentId>& path, double depart_us);

    /// Drop bookkeeping for slots that end before \p time_us (no future
    /// reservation can land there).  Keeps memory bounded on long runs.
    void prune_before(double time_us);

    /// Current reservation count of a segment at the slot containing
    /// \p time_us (0 if none).  Used by the maze router as congestion
    /// pressure.
    [[nodiscard]] int occupancy_at(fabric::SegmentId segment, double time_us) const;

    /// Slot duration (= Tmove).
    [[nodiscard]] double slot_us() const { return slot_us_; }

    [[nodiscard]] const ChannelStats& stats() const { return stats_; }

    /// Currently retained slot entries (post-prune), for memory tests.
    [[nodiscard]] std::size_t live_entries() const;

private:
    std::vector<std::map<std::int64_t, int>> occupancy_; // slot -> count
    int capacity_;
    double slot_us_;
    ChannelStats stats_;
};

} // namespace leqa::qspr

#include "qspr/placement.h"

#include <cmath>

#include "util/error.h"
#include "util/rng.h"
#include "util/strings.h"

namespace leqa::qspr {

PlacementStrategy parse_placement_strategy(const std::string& name) {
    const std::string lowered = util::to_lower(name);
    if (lowered == "centered" || lowered == "centered-block") {
        return PlacementStrategy::CenteredBlock;
    }
    if (lowered == "row-major" || lowered == "rowmajor") return PlacementStrategy::RowMajor;
    if (lowered == "random") return PlacementStrategy::Random;
    throw util::InputError("unknown placement strategy: " + name);
}

std::string placement_strategy_name(PlacementStrategy strategy) {
    switch (strategy) {
        case PlacementStrategy::CenteredBlock: return "centered-block";
        case PlacementStrategy::RowMajor: return "row-major";
        case PlacementStrategy::Random: return "random";
    }
    return "?";
}

std::vector<fabric::UlbId> initial_placement(const fabric::FabricGeometry& geometry,
                                             std::size_t num_qubits,
                                             PlacementStrategy strategy,
                                             std::uint64_t seed) {
    LEQA_REQUIRE(num_qubits <= geometry.num_ulbs(),
                 "fabric too small: " + std::to_string(num_qubits) + " qubits on " +
                     std::to_string(geometry.num_ulbs()) + " ULBs");
    std::vector<fabric::UlbId> homes;
    homes.reserve(num_qubits);

    switch (strategy) {
        case PlacementStrategy::RowMajor: {
            for (std::size_t q = 0; q < num_qubits; ++q) {
                homes.push_back(static_cast<fabric::UlbId>(q));
            }
            break;
        }
        case PlacementStrategy::CenteredBlock: {
            // Block of ~ceil(sqrt(n)) columns, centered; widened when the
            // fabric is shorter than the square block would be.
            const int side =
                std::max(1, static_cast<int>(std::ceil(std::sqrt(static_cast<double>(num_qubits)))));
            const int min_w =
                (static_cast<int>(num_qubits) + geometry.height() - 1) / geometry.height();
            const int block_w = std::min(std::max(side, min_w), geometry.width());
            const int block_h =
                (static_cast<int>(num_qubits) + block_w - 1) / block_w;
            LEQA_CHECK(block_h <= geometry.height(),
                       "centered block does not fit the fabric");
            const int x0 = (geometry.width() - block_w) / 2;
            const int y0 = (geometry.height() - block_h) / 2;
            for (std::size_t q = 0; q < num_qubits; ++q) {
                const int dx = static_cast<int>(q) % block_w;
                const int dy = static_cast<int>(q) / block_w;
                homes.push_back(geometry.ulb_id({x0 + dx, y0 + dy}));
            }
            break;
        }
        case PlacementStrategy::Random: {
            util::Rng rng(seed);
            const auto picks =
                rng.sample_without_replacement(geometry.num_ulbs(), num_qubits);
            for (const auto pick : picks) {
                homes.push_back(static_cast<fabric::UlbId>(pick));
            }
            break;
        }
    }
    return homes;
}

} // namespace leqa::qspr

/// \file placement.h
/// \brief Initial placement of logical qubits onto ULBs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/geometry.h"

namespace leqa::qspr {

enum class PlacementStrategy {
    /// Pack qubits into a near-square block centered on the fabric,
    /// row-major within the block (deterministic; the default).
    CenteredBlock,
    /// Row-major from the fabric origin.
    RowMajor,
    /// Uniform random distinct ULBs (seeded).
    Random,
};

[[nodiscard]] PlacementStrategy parse_placement_strategy(const std::string& name);
[[nodiscard]] std::string placement_strategy_name(PlacementStrategy strategy);

/// Compute one home ULB per qubit (distinct).  Throws InputError when the
/// fabric has fewer ULBs than qubits.
[[nodiscard]] std::vector<fabric::UlbId> initial_placement(
    const fabric::FabricGeometry& geometry, std::size_t num_qubits,
    PlacementStrategy strategy, std::uint64_t seed = 1);

} // namespace leqa::qspr

#include "qspr/qspr.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <sstream>

#include "qodg/qodg.h"
#include "util/error.h"
#include "util/strings.h"

namespace leqa::qspr {

using fabric::FabricGeometry;
using fabric::SegmentId;
using fabric::UlbCoord;
using fabric::UlbId;

SchedulePolicy parse_schedule_policy(const std::string& name) {
    const std::string lowered = util::to_lower(name);
    if (lowered == "program" || lowered == "program-order") {
        return SchedulePolicy::ProgramOrder;
    }
    if (lowered == "priority" || lowered == "critical-path") {
        return SchedulePolicy::CriticalPathPriority;
    }
    throw util::InputError("unknown schedule policy: " + name);
}

std::string schedule_policy_name(SchedulePolicy policy) {
    switch (policy) {
        case SchedulePolicy::ProgramOrder: return "program-order";
        case SchedulePolicy::CriticalPathPriority: return "critical-path";
    }
    return "?";
}

std::string QsprStats::to_string() const {
    std::ostringstream out;
    out << "1q ops: " << one_qubit_ops << ", cnots: " << cnot_ops
        << ", hops: " << total_hops << ", evictions: " << evictions
        << ", relocations: " << relocations
        << ", route time: " << total_route_us << " us"
        << ", delayed hops: " << channels.delayed_hops
        << ", channel wait: " << channels.total_wait_us << " us"
        << ", max slot occupancy: " << channels.max_occupancy;
    return out.str();
}

namespace {

/// Mutable mapping state for one QSPR run.
class RunState {
public:
    RunState(const circuit::Circuit& circ, const fabric::PhysicalParams& params,
             const QsprOptions& options)
        : circ_(circ),
          params_(params),
          options_(options),
          geometry_(fabric::make_topology(params)),
          channels_(geometry_.num_segments(), params.nc, params.t_move_us),
          router_(geometry_, options.maze_margin),
          qubit_free_(circ.num_qubits(), 0.0),
          ulb_busy_(geometry_.num_ulbs(), 0.0),
          occupant_(geometry_.num_ulbs(), kNoQubit) {
        const auto homes =
            options.initial_homes.empty()
                ? initial_placement(geometry_, circ.num_qubits(), options.placement,
                                    options.seed)
                : options.initial_homes;
        LEQA_REQUIRE(homes.size() == circ.num_qubits(),
                     "initial_homes must hold one ULB per logical qubit");
        home_.resize(circ.num_qubits());
        for (circuit::Qubit q = 0; q < circ.num_qubits(); ++q) {
            const fabric::UlbId home = homes[q];
            LEQA_REQUIRE(home >= 0 &&
                             static_cast<std::size_t>(home) < geometry_.num_ulbs(),
                         "initial_homes ULB out of range");
            LEQA_REQUIRE(occupant_[static_cast<std::size_t>(home)] == kNoQubit,
                         "initial_homes assigns two qubits to one ULB");
            home_[q] = home;
            occupant_[static_cast<std::size_t>(home)] = static_cast<std::int32_t>(q);
        }
    }

    QsprResult run() {
        QsprResult result;
        if (options_.collect_schedule) result.schedule.reserve(circ_.size());

        std::size_t executed = 0;
        const auto execute = [&](std::size_t gate_index) {
            const circuit::Gate& gate = circ_.gate(gate_index);
            ScheduledOp op;
            op.gate_index = gate_index;
            if (gate.kind == circuit::GateKind::Cnot) {
                execute_cnot(gate, op);
                ++stats_.cnot_ops;
            } else {
                execute_one_qubit(gate, op);
                ++stats_.one_qubit_ops;
            }
            makespan_ = std::max(makespan_, op.finish_us);
            if (options_.collect_schedule) result.schedule.push_back(op);
            ++executed;
            if (options_.prune_interval > 0 && executed % options_.prune_interval == 0) {
                prune_reservations();
            }
        };

        if (options_.schedule == SchedulePolicy::ProgramOrder) {
            for (std::size_t i = 0; i < circ_.size(); ++i) execute(i);
        } else {
            run_priority_schedule(execute);
        }

        stats_.channels = channels_.stats();
        result.latency_us = makespan_;
        result.stats = stats_;
        return result;
    }

private:
    static constexpr std::int32_t kNoQubit = -1;

    void execute_one_qubit(const circuit::Gate& gate, ScheduledOp& op) {
        const circuit::Qubit q = gate.targets[0];
        const double ready = qubit_free_[q];
        UlbId host = home_[q];

        // The home ULB may still be executing an earlier operation (a CNOT
        // that met there).  Per the paper, the qubit then moves to the
        // nearest free ULB.
        double start = std::max(ready, ulb_busy_[static_cast<std::size_t>(host)]);
        if (ulb_busy_[static_cast<std::size_t>(host)] > ready + 1e-9) {
            const UlbId refuge = find_free_ulb(geometry_.ulb_coord(host), ready, q);
            if (refuge != host) {
                ++stats_.relocations;
                const double arrival = move_qubit(q, refuge, ready);
                start = std::max(arrival, ulb_busy_[static_cast<std::size_t>(refuge)]);
                host = refuge;
            }
        }

        const double finish = start + params_.delay_us(gate.kind);
        qubit_free_[q] = finish;
        ulb_busy_[static_cast<std::size_t>(host)] = finish;
        op.start_us = start;
        op.finish_us = finish;
        op.ulb = host;
    }

    void execute_cnot(const circuit::Gate& gate, ScheduledOp& op) {
        const circuit::Qubit control = gate.controls[0];
        const circuit::Qubit target = gate.targets[0];
        const UlbCoord c_home = geometry_.ulb_coord(home_[control]);
        const UlbCoord t_home = geometry_.ulb_coord(home_[target]);

        // Meeting ULB: nearest ULB to the midpoint that is either empty or
        // houses one of the two operands.
        const double earliest = std::min(qubit_free_[control], qubit_free_[target]);
        const UlbId meeting =
            find_meeting_ulb(geometry_.midpoint(c_home, t_home), earliest, control, target);

        // Both qubits travel (each departs when it is individually free).
        const double arrive_c = move_qubit(control, meeting, qubit_free_[control]);
        const double arrive_t = move_qubit(target, meeting, qubit_free_[target]);

        const double start =
            std::max({arrive_c, arrive_t, ulb_busy_[static_cast<std::size_t>(meeting)]});
        const double finish = start + params_.d_cnot_us;
        ulb_busy_[static_cast<std::size_t>(meeting)] = finish;

        // Target stays at the meeting ULB; control is evicted to the
        // nearest free ULB.
        qubit_free_[target] = finish;
        set_home(target, meeting);

        const UlbId refuge = find_free_ulb(geometry_.ulb_coord(meeting), finish, control);
        double control_free = finish;
        if (refuge != meeting) {
            ++stats_.evictions;
            control_free = move_qubit(control, refuge, finish);
        } else {
            set_home(control, meeting); // degenerate: fabric fully busy
        }
        qubit_free_[control] = control_free;

        op.start_us = start;
        op.finish_us = finish;
        op.ulb = meeting;
    }

    /// Critical-path list scheduling: ready operations (all QODG
    /// predecessors executed) issue in descending downstream-delay order.
    /// Runs on the QODG's CSR structure and the shared graph kernels.
    void run_priority_schedule(const std::function<void(std::size_t)>& execute) {
        const qodg::Qodg deps(circ_);
        const leqa::graph::CsrDigraph& csr = deps.csr();
        const std::vector<double> delays = deps.node_delays(
            [&](circuit::GateKind kind) { return params_.delay_us(kind); });
        const std::vector<double> priority = leqa::graph::downstream_delay(csr, delays);

        // Remaining-predecessor counts per node.
        std::vector<std::uint32_t> pending = csr.in_degrees();

        // Max-heap on (priority, lower gate index as tie-break).
        using Entry = std::pair<double, qodg::NodeId>;
        const auto worse = [](const Entry& a, const Entry& b) {
            if (a.first != b.first) return a.first < b.first;
            return a.second > b.second;
        };
        std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> ready(worse);

        const auto release = [&](qodg::NodeId node) {
            for (const qodg::NodeId v : csr.successors(node)) {
                if (--pending[v] == 0 && deps.node(v).kind == qodg::NodeKind::Op) {
                    ready.push({priority[v], v});
                }
            }
        };
        release(deps.start());
        while (!ready.empty()) {
            const qodg::NodeId node = ready.top().second;
            ready.pop();
            execute(deps.node(node).gate_index);
            release(node);
        }
    }

    /// Route a qubit to \p destination departing at \p depart; updates its
    /// home/occupancy and returns arrival time.
    double move_qubit(circuit::Qubit q, UlbId destination, double depart) {
        const UlbId source = home_[q];
        if (source == destination) return depart;
        const UlbCoord from = geometry_.ulb_coord(source);
        const UlbCoord to = geometry_.ulb_coord(destination);
        const auto path =
            options_.routing == RoutingAlgorithm::Maze
                ? router_.route(from, to, depart, channels_, params_.nc, params_.t_move_us)
                : geometry_.route(from, to);
        const double arrival = channels_.route(path, depart);
        stats_.total_hops += path.size();
        stats_.total_route_us += arrival - depart;
        set_home(q, destination);
        return arrival;
    }

    void set_home(circuit::Qubit q, UlbId destination) {
        const UlbId source = home_[q];
        if (source == destination) return;
        if (occupant_[static_cast<std::size_t>(source)] == static_cast<std::int32_t>(q)) {
            occupant_[static_cast<std::size_t>(source)] = kNoQubit;
        }
        home_[q] = destination;
        occupant_[static_cast<std::size_t>(destination)] = static_cast<std::int32_t>(q);
    }

    /// Nearest ULB around \p center that is empty (or already owned by
    /// \p mover) and idle by \p time.  Falls back to the relaxed rule
    /// (ignore busy) and finally to \p center itself on a saturated fabric.
    UlbId find_free_ulb(UlbCoord center, double time, circuit::Qubit mover) const {
        const int max_radius = std::max(geometry_.width(), geometry_.height());
        for (int pass = 0; pass < 2; ++pass) {
            const bool require_idle = pass == 0;
            for (int r = 0; r <= max_radius; ++r) {
                for (const UlbCoord c : geometry_.ring(center, r)) {
                    const auto id = geometry_.ulb_id(c);
                    const auto occupant = occupant_[static_cast<std::size_t>(id)];
                    const bool available =
                        occupant == kNoQubit || occupant == static_cast<std::int32_t>(mover);
                    if (!available) continue;
                    if (require_idle &&
                        ulb_busy_[static_cast<std::size_t>(id)] > time + 1e-9) {
                        continue;
                    }
                    return id;
                }
            }
        }
        return geometry_.ulb_id(center);
    }

    /// Meeting ULB for a CNOT: nearest to \p center that is empty or houses
    /// one of the operands.
    UlbId find_meeting_ulb(UlbCoord center, double time, circuit::Qubit a,
                           circuit::Qubit b) const {
        const int max_radius = std::max(geometry_.width(), geometry_.height());
        for (int pass = 0; pass < 2; ++pass) {
            const bool require_idle = pass == 0;
            for (int r = 0; r <= max_radius; ++r) {
                for (const UlbCoord c : geometry_.ring(center, r)) {
                    const auto id = geometry_.ulb_id(c);
                    const auto occupant = occupant_[static_cast<std::size_t>(id)];
                    const bool available = occupant == kNoQubit ||
                                           occupant == static_cast<std::int32_t>(a) ||
                                           occupant == static_cast<std::int32_t>(b);
                    if (!available) continue;
                    if (require_idle &&
                        ulb_busy_[static_cast<std::size_t>(id)] > time + 1e-9) {
                        continue;
                    }
                    return id;
                }
            }
        }
        return geometry_.ulb_id(center);
    }

    void prune_reservations() {
        double min_free = std::numeric_limits<double>::infinity();
        for (const double t : qubit_free_) min_free = std::min(min_free, t);
        if (std::isfinite(min_free)) channels_.prune_before(min_free);
    }

    const circuit::Circuit& circ_;
    const fabric::PhysicalParams& params_;
    const QsprOptions& options_;
    FabricGeometry geometry_;
    ChannelReservations channels_;
    MazeRouter router_;
    std::vector<double> qubit_free_;
    std::vector<double> ulb_busy_;
    std::vector<std::int32_t> occupant_;
    std::vector<UlbId> home_;
    QsprStats stats_;
    double makespan_ = 0.0;
};

} // namespace

QsprMapper::QsprMapper(const fabric::PhysicalParams& params, QsprOptions options)
    : params_(params), options_(options) {
    params_.validate();
}

QsprResult QsprMapper::map(const circuit::Circuit& circ) const {
    LEQA_REQUIRE(circ.is_ft(),
                 "QSPR maps FT circuits only; run synth::ft_synthesize first");
    LEQA_REQUIRE(circ.num_qubits() <= static_cast<std::size_t>(params_.area()),
                 "circuit has more logical qubits than the fabric has ULBs");
    if (circ.empty()) return QsprResult{};
    RunState state(circ, params_, options_);
    return state.run();
}

} // namespace leqa::qspr

/// \file qspr.h
/// \brief QSPR: the detailed scheduling / placement / routing baseline.
///
/// Re-implementation of the role played by the paper's QSPR tool (Dousti &
/// Pedram, DATE 2012), minimally adapted to the tiled architecture exactly
/// as the paper describes (§4.1).  It produces the "actual" latency that
/// LEQA's estimate is judged against:
///
///   - **placement**: every logical qubit gets a home ULB (centered block
///     by default); occupancy is one qubit per ULB;
///   - **scheduling**: operations issue in dependency (program) order; an
///     op starts when all operand qubits are free and its host ULB is idle
///     (this is the dataflow schedule the QODG induces);
///   - **routing**: for a CNOT both qubits travel to a meeting ULB near the
///     topology midpoint of their homes via maze (or fixed shortest-path)
///     routes on the fabric topology; every hop reserves a channel-segment
///     slot with capacity Nc, so congested segments serialize traffic (the
///     behaviour Eq. 8 models);
///   - one-qubit ops run in the qubit's home ULB, or hop to the nearest
///     free ULB when the home is occupied by an in-flight operation;
///   - after a CNOT the target qubit stays at the meeting ULB and the
///     control is evicted to the nearest free ULB.
///
/// The run is fully deterministic for a given (circuit, params, options).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "fabric/geometry.h"
#include "fabric/params.h"
#include "qspr/channels.h"
#include "qspr/placement.h"
#include "qspr/router.h"

namespace leqa::qspr {

/// Operation issue order of the list scheduler.
enum class SchedulePolicy {
    /// Dependency (program) order: the dataflow schedule the QODG induces.
    ProgramOrder,
    /// Classic critical-path list scheduling: ready operations issue by
    /// descending downstream-delay priority.
    CriticalPathPriority,
};

[[nodiscard]] SchedulePolicy parse_schedule_policy(const std::string& name);
[[nodiscard]] std::string schedule_policy_name(SchedulePolicy policy);

struct QsprOptions {
    PlacementStrategy placement = PlacementStrategy::CenteredBlock;
    /// Detailed congestion-aware maze routing by default (the behaviour of
    /// the original tool); Xy is the fast congestion-oblivious variant.
    RoutingAlgorithm routing = RoutingAlgorithm::Maze;
    SchedulePolicy schedule = SchedulePolicy::ProgramOrder;
    int maze_margin = 4;              ///< detour margin of the maze router
    std::uint64_t seed = 1;           ///< used by random placement
    bool collect_schedule = false;    ///< record per-op start/finish times
    std::size_t prune_interval = 8192; ///< gates between reservation prunes
    /// Explicit initial placement: when non-empty it must hold one
    /// distinct, in-range home ULB per logical qubit and takes precedence
    /// over `placement`/`seed`.  This is the handoff point for optimized
    /// placements (core::optimize_placement) into the detailed mapper.
    std::vector<fabric::UlbId> initial_homes;
};

/// Per-operation schedule record (optional output).
struct ScheduledOp {
    std::size_t gate_index = 0;
    double start_us = 0.0;
    double finish_us = 0.0;
    fabric::UlbId ulb = 0;
};

struct QsprStats {
    std::uint64_t one_qubit_ops = 0;
    std::uint64_t cnot_ops = 0;
    std::uint64_t total_hops = 0;       ///< data-motion hops (incl. evictions)
    std::uint64_t evictions = 0;        ///< control-qubit evictions after CNOTs
    std::uint64_t relocations = 0;      ///< one-qubit ops that had to move
    double total_route_us = 0.0;        ///< time spent in channels
    ChannelStats channels;              ///< congestion counters

    [[nodiscard]] std::string to_string() const;
};

struct QsprResult {
    double latency_us = 0.0;            ///< the "actual delay" of Table 2
    QsprStats stats;
    std::vector<ScheduledOp> schedule;  ///< filled when collect_schedule
};

class QsprMapper {
public:
    QsprMapper(const fabric::PhysicalParams& params, QsprOptions options = {});

    /// Map an FT circuit onto the fabric and return its actual latency.
    /// Throws InputError if the circuit is not FT-synthesized or has more
    /// qubits than the fabric has ULBs.
    [[nodiscard]] QsprResult map(const circuit::Circuit& circ) const;

private:
    fabric::PhysicalParams params_;
    QsprOptions options_;
};

} // namespace leqa::qspr

#include "qspr/router.h"

#include <algorithm>
#include <queue>

#include "util/error.h"
#include "util/strings.h"

namespace leqa::qspr {

RoutingAlgorithm parse_routing_algorithm(const std::string& name) {
    const std::string lowered = util::to_lower(name);
    if (lowered == "xy" || lowered == "shortest") return RoutingAlgorithm::Xy;
    if (lowered == "maze") return RoutingAlgorithm::Maze;
    throw util::InputError("unknown routing algorithm: " + name);
}

std::string routing_algorithm_name(RoutingAlgorithm algorithm) {
    switch (algorithm) {
        case RoutingAlgorithm::Xy: return "xy";
        case RoutingAlgorithm::Maze: return "maze";
    }
    return "?";
}

MazeRouter::MazeRouter(const fabric::FabricGeometry& geometry, int margin)
    : geometry_(geometry), margin_(margin) {
    LEQA_REQUIRE(margin >= 0, "router margin must be non-negative");
    cost_.resize(geometry.num_ulbs());
    via_segment_.resize(geometry.num_ulbs());
    via_node_.resize(geometry.num_ulbs());
    stamp_.assign(geometry.num_ulbs(), 0);
}

std::vector<fabric::SegmentId> MazeRouter::route(fabric::UlbCoord from,
                                                 fabric::UlbCoord to, double depart_us,
                                                 const ChannelReservations& channels,
                                                 int nc, double t_move_us) const {
    if (from == to) return {};
    LEQA_REQUIRE(nc >= 1, "channel capacity must be >= 1");
    LEQA_REQUIRE(t_move_us > 0.0, "hop time must be positive");

    const fabric::Topology& topology = geometry_.topology();

    // Detour window.  Grid: the legacy bounding box of the endpoints plus
    // the margin (bit-compatible with the pre-topology router).  Other
    // topologies: ULBs whose detour over the shortest route is at most
    // 2 * margin hops -- the metric generalization of that box.
    const bool is_grid = topology.kind() == fabric::TopologyKind::Grid;
    const int min_x = std::max(0, std::min(from.x, to.x) - margin_);
    const int max_x = std::min(topology.width() - 1, std::max(from.x, to.x) + margin_);
    const int min_y = std::max(0, std::min(from.y, to.y) - margin_);
    const int max_y = std::min(topology.height() - 1, std::max(from.y, to.y) + margin_);
    const int detour_budget = topology.distance(from, to) + 2 * margin_;
    const auto in_window = [&](fabric::UlbCoord c) {
        if (is_grid) {
            return c.x >= min_x && c.x <= max_x && c.y >= min_y && c.y <= max_y;
        }
        return topology.distance(from, c) + topology.distance(c, to) <= detour_budget;
    };

    ++current_stamp_;
    if (current_stamp_ == 0) { // stamp wrap: reset
        std::fill(stamp_.begin(), stamp_.end(), 0);
        current_stamp_ = 1;
    }

    using Entry = std::pair<double, fabric::UlbId>; // (cost, node)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;

    const fabric::UlbId source = topology.ulb_id(from);
    const fabric::UlbId target = topology.ulb_id(to);
    cost_[static_cast<std::size_t>(source)] = 0.0;
    via_node_[static_cast<std::size_t>(source)] = source;
    stamp_[static_cast<std::size_t>(source)] = current_stamp_;
    frontier.push({0.0, source});

    while (!frontier.empty()) {
        const auto [node_cost, node] = frontier.top();
        frontier.pop();
        if (node == target) break;
        if (node_cost > cost_[static_cast<std::size_t>(node)] + 1e-12) continue; // stale
        const auto adjacent = topology.neighbors(node);
        const auto segments = topology.neighbor_segments(node);
        for (std::size_t i = 0; i < adjacent.size(); ++i) {
            const auto next_id = static_cast<fabric::UlbId>(adjacent[i]);
            if (!in_window(topology.ulb_coord(next_id))) continue;
            const fabric::SegmentId segment = segments[i];
            // Congestion pressure: occupancy of the segment around the
            // estimated arrival time inflates the hop cost.
            const double eta = depart_us + node_cost;
            const int load = channels.occupancy_at(segment, eta);
            const double hop_cost =
                t_move_us * (1.0 + static_cast<double>(load) / static_cast<double>(nc));
            const double next_cost = node_cost + hop_cost;
            const auto idx = static_cast<std::size_t>(next_id);
            if (stamp_[idx] == current_stamp_ && cost_[idx] <= next_cost + 1e-12) {
                continue;
            }
            stamp_[idx] = current_stamp_;
            cost_[idx] = next_cost;
            via_node_[idx] = node;
            via_segment_[idx] = segment;
            frontier.push({next_cost, next_id});
        }
    }

    LEQA_CHECK(stamp_[static_cast<std::size_t>(target)] == current_stamp_,
               "maze router failed to reach the target");
    std::vector<fabric::SegmentId> path;
    for (fabric::UlbId cursor = target; cursor != source;
         cursor = via_node_[static_cast<std::size_t>(cursor)]) {
        path.push_back(via_segment_[static_cast<std::size_t>(cursor)]);
    }
    std::reverse(path.begin(), path.end());
    return path;
}

} // namespace leqa::qspr

/// \file router.h
/// \brief Congestion-aware maze routing on the TQA fabric.
///
/// The original QSPR performs detailed routing rather than fixed
/// dimension-ordered paths.  This router runs Dijkstra over the topology's
/// CSR adjacency, restricted to a detour window around source and
/// destination; each segment's edge cost is the hop time inflated by the
/// segment's current reservation pressure around the estimated arrival
/// slot, so traffic spreads around congested channels exactly the way a
/// detailed mapper's router would.
///
/// On a grid the window is the legacy bounding box (bit-compatible with the
/// pre-topology router); on other topologies it is the metric analogue:
/// ULBs whose detour over the shortest route stays within 2 * margin hops.
#pragma once

#include <vector>

#include "fabric/geometry.h"
#include "fabric/topology.h"
#include "qspr/channels.h"

namespace leqa::qspr {

enum class RoutingAlgorithm {
    Xy,    ///< fixed shortest-path routing (XY on a grid; BFS next-hop
           ///< tables on other topologies); fast, congestion-oblivious
    Maze,  ///< congestion-aware Dijkstra (the detailed-mapper default)
};

[[nodiscard]] RoutingAlgorithm parse_routing_algorithm(const std::string& name);
[[nodiscard]] std::string routing_algorithm_name(RoutingAlgorithm algorithm);

class MazeRouter {
public:
    /// \param margin  extra ULBs around the src/dst bounding box (grid) or
    ///                extra detour hops (other topologies) the search may
    ///                use.
    MazeRouter(const fabric::FabricGeometry& geometry, int margin = 4);

    /// Find a route from \p from to \p to departing at \p depart_us, using
    /// \p channels reservation counts as congestion pressure.  Returns the
    /// segment sequence (empty when from == to).
    [[nodiscard]] std::vector<fabric::SegmentId> route(
        fabric::UlbCoord from, fabric::UlbCoord to, double depart_us,
        const ChannelReservations& channels, int nc, double t_move_us) const;

private:
    const fabric::FabricGeometry& geometry_;
    int margin_;
    // Scratch buffers sized to the fabric, reused across calls to avoid
    // per-route allocation (mutable: route() is logically const).
    mutable std::vector<double> cost_;
    mutable std::vector<fabric::SegmentId> via_segment_;
    mutable std::vector<fabric::UlbId> via_node_;
    mutable std::vector<std::uint32_t> stamp_;
    mutable std::uint32_t current_stamp_ = 0;
};

} // namespace leqa::qspr

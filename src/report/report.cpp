#include "report/report.h"

#include <sstream>

#include "util/error.h"
#include "util/json.h"

namespace leqa::report {

void write_params_json(util::JsonWriter& json, const fabric::PhysicalParams& params) {
    json.key("fabric").begin_object();
    json.kv("topology", fabric::topology_kind_name(params.topology));
    json.kv("width", static_cast<long long>(params.width));
    json.kv("height", static_cast<long long>(params.height));
    json.kv("nc", static_cast<long long>(params.nc));
    json.kv("v", params.v);
    json.kv("t_move_us", params.t_move_us);
    json.key("gate_delays_us").begin_object();
    json.kv("h", params.d_h_us);
    json.kv("t", params.d_t_us);
    json.kv("pauli", params.d_pauli_us);
    json.kv("s", params.d_s_us);
    json.kv("cnot", params.d_cnot_us);
    json.end_object();
    json.end_object();
}

namespace {

void write_census(util::JsonWriter& json, const qodg::PathCensus& census) {
    json.begin_object();
    for (std::size_t k = 0; k < circuit::kGateKindCount; ++k) {
        if (census.by_kind[k] == 0) continue;
        json.kv(circuit::gate_name(static_cast<circuit::GateKind>(k)),
                census.by_kind[k]);
    }
    json.kv("total", census.total_ops);
    json.end_object();
}

/// The estimator's model/critical-path/latency fields (shared between the
/// standalone estimate document and the pipeline result documents).
void write_estimate_body(util::JsonWriter& json, const core::LeqaEstimate& estimate) {
    json.key("model").begin_object();
    json.kv("zone_area_b", estimate.zone_area_b);
    json.kv("d_uncongest_us", estimate.d_uncongest_us);
    json.kv("l_cnot_avg_us", estimate.l_cnot_avg_us);
    json.kv("l_one_qubit_avg_us", estimate.l_one_qubit_avg_us);
    json.kv("covered_area", estimate.covered_area);
    json.key("e_sq").begin_array();
    for (const double value : estimate.e_sq) json.value(value);
    json.end_array();
    json.key("d_q_us").begin_array();
    for (const double value : estimate.d_q) json.value(value);
    json.end_array();
    json.end_object();

    json.key("critical_path").begin_object();
    json.kv("cnots", estimate.critical_cnots);
    json.kv("one_qubit_ops", estimate.critical_one_qubit);
    json.kv("gate_delay_us", estimate.critical_gate_delay_us);
    json.key("census");
    write_census(json, estimate.critical_census);
    json.end_object();

    json.kv("latency_us", estimate.latency_us);
    json.kv("latency_s", estimate.latency_seconds());
}

/// The mapper's latency/stats fields (shared, as above).
void write_qspr_body(util::JsonWriter& json, const qspr::QsprResult& result) {
    json.kv("latency_us", result.latency_us);
    json.kv("latency_s", result.latency_us * 1e-6);
    json.key("stats").begin_object();
    json.kv("one_qubit_ops", result.stats.one_qubit_ops);
    json.kv("cnot_ops", result.stats.cnot_ops);
    json.kv("total_hops", result.stats.total_hops);
    json.kv("evictions", result.stats.evictions);
    json.kv("relocations", result.stats.relocations);
    json.kv("total_route_us", result.stats.total_route_us);
    json.key("channels").begin_object();
    json.kv("reservations", result.stats.channels.reservations);
    json.kv("delayed_hops", result.stats.channels.delayed_hops);
    json.kv("total_wait_us", result.stats.channels.total_wait_us);
    json.kv("max_occupancy", static_cast<long long>(result.stats.channels.max_occupancy));
    json.end_object();
    json.end_object();
    json.kv("scheduled_ops", result.schedule.size());
}

/// One pipeline result as an object (no document framing).
void write_result_object(util::JsonWriter& json,
                         const pipeline::EstimationResult& result) {
    json.begin_object();
    json.kv("label", result.label);

    json.key("circuit").begin_object();
    json.kv("name", result.circuit.name);
    json.kv("cache_key", result.circuit.cache_key);
    json.kv("pre_ft_gates", result.circuit.pre_ft_gates);
    json.kv("qubits", result.circuit.qubits);
    json.kv("ft_ops", result.circuit.ft_ops);
    json.kv("synthesized", result.circuit.synthesized);
    json.end_object();

    write_params_json(json, result.params);

    json.key("stage_times_s").begin_object();
    json.kv("resolve", result.times.resolve_s);
    json.kv("graphs", result.times.graphs_s);
    json.kv("estimate", result.times.estimate_s);
    json.kv("map", result.times.map_s);
    json.kv("total", result.times.total_s);
    json.end_object();

    json.key("estimate");
    if (result.estimate.has_value()) {
        json.begin_object();
        write_estimate_body(json, *result.estimate);
        json.end_object();
    } else {
        json.null();
    }

    json.key("mapping");
    if (result.mapping.has_value()) {
        json.begin_object();
        write_qspr_body(json, *result.mapping);
        json.end_object();
    } else {
        json.null();
    }
    json.end_object();
}

} // namespace

std::string estimate_to_json(const core::LeqaEstimate& estimate,
                             const fabric::PhysicalParams& params,
                             const std::string& circuit_name) {
    util::JsonWriter json;
    json.begin_object();
    json.kv("tool", "leqa");
    json.kv("circuit", circuit_name);
    json.kv("num_qubits", estimate.num_qubits);
    json.kv("num_ops", estimate.num_ops);
    write_params_json(json, params);
    write_estimate_body(json, estimate);
    json.end_object();
    return json.str();
}

std::string qspr_result_to_json(const qspr::QsprResult& result,
                                const fabric::PhysicalParams& params,
                                const std::string& circuit_name) {
    util::JsonWriter json;
    json.begin_object();
    json.kv("tool", "qspr");
    json.kv("circuit", circuit_name);
    write_params_json(json, params);
    write_qspr_body(json, result);
    json.end_object();
    return json.str();
}

std::string schedule_to_csv(const qspr::QsprResult& result, const circuit::Circuit& circ) {
    LEQA_REQUIRE(!result.schedule.empty(),
                 "schedule_to_csv: run the mapper with collect_schedule = true");
    std::ostringstream out;
    out << "gate_index,gate,start_us,finish_us,ulb\n";
    for (const qspr::ScheduledOp& op : result.schedule) {
        LEQA_REQUIRE(op.gate_index < circ.size(), "schedule references unknown gate");
        out << op.gate_index << ','
            << circuit::gate_name(circ.gate(op.gate_index).kind) << ','
            << op.start_us << ',' << op.finish_us << ',' << op.ulb << '\n';
    }
    return out.str();
}

std::string result_to_json(const pipeline::EstimationResult& result) {
    util::JsonWriter json;
    write_result_object(json, result);
    return json.str();
}

std::string batch_to_json(const std::vector<pipeline::EstimationResult>& results) {
    util::JsonWriter json;
    json.begin_object();
    json.kv("tool", "leqa-pipeline");
    json.kv("count", results.size());
    json.key("results").begin_array();
    for (const pipeline::EstimationResult& result : results) {
        write_result_object(json, result);
    }
    json.end_array();
    json.end_object();
    return json.str();
}

std::string status_to_json(const util::Status& status) {
    LEQA_REQUIRE(!status.ok(), "status_to_json: OK statuses have no error object");
    util::JsonWriter json;
    json.begin_object();
    json.kv("code", util::status_code_name(status.code()));
    json.kv("message", status.message());
    if (!status.origin().empty()) json.kv("origin", status.origin());
    json.end_object();
    return json.str();
}

std::string batch_results_to_json(
    const std::vector<util::Result<pipeline::EstimationResult>>& outcomes,
    const std::vector<std::string>& labels) {
    std::size_t failed = 0;
    for (const auto& outcome : outcomes) {
        if (!outcome.ok()) ++failed;
    }
    util::JsonWriter json;
    json.begin_object();
    json.kv("tool", "leqa-pipeline");
    json.kv("count", outcomes.size());
    json.kv("failed", failed);
    json.key("results").begin_array();
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const auto& outcome = outcomes[i];
        if (outcome.ok()) {
            write_result_object(json, outcome.value());
        } else {
            // Failed slots carry their input label too: without it the
            // report could not say *which* request the error belongs to.
            json.begin_object();
            if (i < labels.size()) json.kv("label", labels[i]);
            json.key("error").raw_value(status_to_json(outcome.status()));
            json.end_object();
        }
    }
    json.end_array();
    json.end_object();
    return json.str();
}

namespace {

void write_sweep_points(util::JsonWriter& json,
                        const std::vector<core::SweepPoint>& points) {
    json.key("points").begin_array();
    for (const core::SweepPoint& point : points) {
        json.begin_object();
        write_params_json(json, point.params);
        json.kv("latency_us", point.estimate.latency_us);
        json.kv("latency_s", point.estimate.latency_seconds());
        json.end_object();
    }
    json.end_array();
}

} // namespace

std::string sweep_to_json(const core::SweepResult& sweep) {
    util::JsonWriter json;
    json.begin_object();
    if (sweep.has_best()) json.kv("best_index", sweep.best_index);
    if (sweep.non_finite_points > 0) {
        json.kv("non_finite_points", sweep.non_finite_points);
    }
    write_sweep_points(json, sweep.points);
    json.end_object();
    return json.str();
}

std::string exploration_to_json(const core::ExplorationResult& exploration) {
    util::JsonWriter json;
    json.begin_object();
    json.kv("points_total", exploration.points.size());
    json.kv("threads_used", exploration.threads_used);
    if (exploration.has_best()) json.kv("best_index", exploration.best_index);
    if (exploration.non_finite_points > 0) {
        json.kv("non_finite_points", exploration.non_finite_points);
    }
    json.key("best_per_topology").begin_array();
    for (const core::TopologyBest& best : exploration.best_per_topology) {
        json.begin_object();
        json.kv("topology", fabric::topology_kind_name(best.kind));
        json.kv("index", best.index);
        json.kv("latency_us",
                exploration.points[best.index].estimate.latency_us);
        json.end_object();
    }
    json.end_array();
    json.key("pareto_front").begin_array();
    for (const std::size_t index : exploration.pareto_front) {
        const core::SweepPoint& point = exploration.points[index];
        json.begin_object();
        json.kv("index", index);
        json.kv("area", point.params.area());
        json.kv("latency_us", point.estimate.latency_us);
        json.end_object();
    }
    json.end_array();
    write_sweep_points(json, exploration.points);
    json.end_object();
    return json.str();
}

std::string calibration_to_json(const core::CalibrationResult& result) {
    util::JsonWriter json;
    json.begin_object();
    json.kv("v", result.v);
    json.kv("mean_abs_rel_error", result.mean_abs_rel_error);
    json.kv("evaluations", result.evaluations);
    json.end_object();
    return json.str();
}

std::string optimize_to_json(const core::OptimizeResult& result) {
    util::JsonWriter json;
    json.begin_object();
    json.kv("initial_latency_us", result.initial_latency_us);
    json.kv("final_latency_us", result.final_latency_us);
    json.kv("improved", result.improved);
    const double pct =
        result.initial_latency_us > 0.0
            ? 100.0 * (result.initial_latency_us - result.final_latency_us) /
                  result.initial_latency_us
            : 0.0;
    json.kv("improvement_pct", pct);
    json.key("moves").begin_object();
    json.kv("attempted", result.moves_attempted);
    json.kv("accepted", result.moves_accepted);
    json.kv("fast_rejected", result.moves_fast_rejected);
    json.end_object();
    json.kv("nodes_retimed", result.nodes_retimed);
    json.kv("seconds", result.seconds);
    json.key("homes").begin_array();
    for (const fabric::UlbId home : result.homes) {
        json.value(static_cast<long long>(home));
    }
    json.end_array();
    json.end_object();
    return json.str();
}

} // namespace leqa::report

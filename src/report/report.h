/// \file report.h
/// \brief Machine-readable reports: JSON for estimates and mapping results,
///        CSV for detailed schedules.
///
/// Downstream tooling (plotting scripts, regression dashboards, the QECC
/// exploration loop of the paper's introduction) consumes these rather
/// than scraping console tables.
#pragma once

#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "core/leqa.h"
#include "fabric/params.h"
#include "pipeline/pipeline.h"
#include "qspr/qspr.h"

namespace leqa::report {

/// Full LEQA estimate as a JSON document: inputs (fabric parameters,
/// circuit identity), the model intermediates (B, d_uncongest, L_CNOT,
/// E[S_q]/d_q series), the critical-path census, and the final latency.
[[nodiscard]] std::string estimate_to_json(const core::LeqaEstimate& estimate,
                                           const fabric::PhysicalParams& params,
                                           const std::string& circuit_name);

/// QSPR mapping result as JSON (latency + mapper statistics).
[[nodiscard]] std::string qspr_result_to_json(const qspr::QsprResult& result,
                                              const fabric::PhysicalParams& params,
                                              const std::string& circuit_name);

/// Detailed schedule as CSV: gate_index, mnemonic, start_us, finish_us, ulb.
/// Requires the result to have been produced with collect_schedule = true.
[[nodiscard]] std::string schedule_to_csv(const qspr::QsprResult& result,
                                          const circuit::Circuit& circ);

/// One pipeline result as a JSON document: circuit identity/stats, the
/// parameters used, per-stage wall times, and whichever of the LEQA
/// estimate / QSPR mapping the request produced.
[[nodiscard]] std::string result_to_json(const pipeline::EstimationResult& result);

/// A batch of pipeline results as one JSON document (the shape a sweep
/// dashboard or regression tracker ingests): {"tool": "leqa-pipeline",
/// "results": [...]}.
[[nodiscard]] std::string batch_to_json(
    const std::vector<pipeline::EstimationResult>& results);

} // namespace leqa::report

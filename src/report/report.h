/// \file report.h
/// \brief Machine-readable reports: JSON for estimates and mapping results,
///        CSV for detailed schedules.
///
/// Downstream tooling (plotting scripts, regression dashboards, the QECC
/// exploration loop of the paper's introduction) consumes these rather
/// than scraping console tables.
#pragma once

#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "core/calibrate.h"
#include "core/explore.h"
#include "core/leqa.h"
#include "core/optimize.h"
#include "core/sweep.h"
#include "fabric/params.h"
#include "pipeline/pipeline.h"
#include "qspr/qspr.h"
#include "util/json.h"
#include "util/status.h"

namespace leqa::report {

/// Write the fabric-parameter object (the "fabric" key) into an open JSON
/// object.  Shared by every document in this module and by service::wire.
void write_params_json(util::JsonWriter& json, const fabric::PhysicalParams& params);

/// Full LEQA estimate as a JSON document: inputs (fabric parameters,
/// circuit identity), the model intermediates (B, d_uncongest, L_CNOT,
/// E[S_q]/d_q series), the critical-path census, and the final latency.
[[nodiscard]] std::string estimate_to_json(const core::LeqaEstimate& estimate,
                                           const fabric::PhysicalParams& params,
                                           const std::string& circuit_name);

/// QSPR mapping result as JSON (latency + mapper statistics).
[[nodiscard]] std::string qspr_result_to_json(const qspr::QsprResult& result,
                                              const fabric::PhysicalParams& params,
                                              const std::string& circuit_name);

/// Detailed schedule as CSV: gate_index, mnemonic, start_us, finish_us, ulb.
/// Requires the result to have been produced with collect_schedule = true.
[[nodiscard]] std::string schedule_to_csv(const qspr::QsprResult& result,
                                          const circuit::Circuit& circ);

/// One pipeline result as a JSON document: circuit identity/stats, the
/// parameters used, per-stage wall times, and whichever of the LEQA
/// estimate / QSPR mapping the request produced.
[[nodiscard]] std::string result_to_json(const pipeline::EstimationResult& result);

/// A batch of pipeline results as one JSON document (the shape a sweep
/// dashboard or regression tracker ingests): {"tool": "leqa-pipeline",
/// "results": [...]}.
[[nodiscard]] std::string batch_to_json(
    const std::vector<pipeline::EstimationResult>& results);

/// A non-OK Status as {"code": "...", "message": "...", "origin": "..."}
/// (origin omitted when empty) -- the error object of the wire format.
[[nodiscard]] std::string status_to_json(const util::Status& status);

/// A per-request batch outcome document: each entry is either the result
/// object or {"label": ..., "error": {...}}; {"tool": "leqa-pipeline",
/// "failed": N}.  \p labels names each slot's input (same indexing as
/// \p outcomes) so failed entries stay attributable; pass empty to omit.
[[nodiscard]] std::string batch_results_to_json(
    const std::vector<util::Result<pipeline::EstimationResult>>& outcomes,
    const std::vector<std::string>& labels = {});

/// A design-space sweep as JSON: per-point parameters + latency and the
/// index of the latency-minimal point ("best_index" is omitted when no
/// point has a finite latency; "non_finite_points" appears when > 0).
[[nodiscard]] std::string sweep_to_json(const core::SweepResult& sweep);

/// A multi-dimensional exploration as JSON: every cross-product point, the
/// global best, the per-topology bests, and the latency/fabric-area Pareto
/// front (each front entry carries its point index, area, and latency).
[[nodiscard]] std::string exploration_to_json(
    const core::ExplorationResult& exploration);

/// A calibration fit as JSON (v, error at v, evaluations spent).
[[nodiscard]] std::string calibration_to_json(const core::CalibrationResult& result);

/// A placement-optimization outcome as JSON: initial/final placed latency,
/// improvement percentage, move statistics (attempted / accepted /
/// fast-rejected by the incremental bound), re-timing work, wall time, and
/// the best home-ULB assignment found.
[[nodiscard]] std::string optimize_to_json(const core::OptimizeResult& result);

} // namespace leqa::report

#include "service/service.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <queue>

#include "mathx/stats.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/thread_annotations.h"

namespace leqa::service {

namespace {

/// Bounded window for the latency percentile reservoirs.  16384 keeps p999
/// meaningful (nearest-rank needs >= 1000 samples before p999 separates
/// from max; at 16384 the p999 rank sits 17 samples below the top) while a
/// stats() snapshot still copies only ~256 KiB.
constexpr std::size_t kLatencyWindow = 16384;

std::chrono::steady_clock::duration seconds_duration(double seconds) {
    // duration_cast to the ns-backed steady duration is UB past ~292 years
    // (LLONG_MAX ns); a deadline that far out means "effectively none", so
    // clamp instead of wrapping negative and instantly expiring the job.
    constexpr double kMaxSeconds = 3.0e9; // ~95 years
    return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(std::min(seconds, kMaxSeconds)));
}

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
    return std::chrono::duration<double>(to - from).count();
}

LatencySummary summarize(std::vector<double> samples) {
    // Nearest-rank percentiles; the exact rank formula (and its small-window
    // saturation: p99 == max until the ring holds >= 100 samples) is pinned
    // in mathx::nearest_rank_percentile and its unit tests.
    LatencySummary summary;
    summary.count = samples.size();
    if (samples.empty()) return summary;
    summary.max_s = *std::max_element(samples.begin(), samples.end());
    summary.p50_s = mathx::nearest_rank_percentile_inplace(samples, 0.50);
    summary.p90_s = mathx::nearest_rank_percentile_inplace(samples, 0.90);
    summary.p99_s = mathx::nearest_rank_percentile_inplace(samples, 0.99);
    summary.p999_s = mathx::nearest_rank_percentile_inplace(samples, 0.999);
    return summary;
}

/// Integral sweep axis values with validation.
std::vector<int> to_int_values(const std::vector<double>& values, const char* axis) {
    std::vector<int> out;
    out.reserve(values.size());
    for (const double value : values) {
        const double rounded = std::nearbyint(value);
        if (rounded != value) {
            throw util::InputError(std::string("sweep axis ") + axis +
                                   " expects integers, got " +
                                   util::format_double(value, 12));
        }
        if (rounded < static_cast<double>(std::numeric_limits<int>::min()) ||
            rounded > static_cast<double>(std::numeric_limits<int>::max())) {
            throw util::InputError(std::string("sweep axis ") + axis +
                                   " value out of range: " +
                                   util::format_double(value, 12));
        }
        out.push_back(static_cast<int>(rounded));
    }
    return out;
}

} // namespace

namespace detail {

/// One submitted unit of work.  Completion state (result + wait cv) lives
/// here so handles stay usable after the Service drains away.
class Job {
public:
    std::uint64_t id = 0;
    std::string label;
    JobFn fn;
    pipeline::RunControl control;
    std::function<void(const JobHandle&)> on_complete;
    std::chrono::steady_clock::time_point submitted_at;
    /// For cancel-of-queued bookkeeping.  Shared, not raw: a handle's
    /// cancel() may race Service destruction, and the core must survive it.
    std::shared_ptr<ServiceCore> core;

    std::atomic<JobState> state{JobState::Queued};
    mutable util::Mutex wait_mutex;
    mutable util::CondVar wait_cv;
    /// Set exactly once; waiters re-check under wait_mutex.
    std::optional<JobResult> result LEQA_GUARDED_BY(wait_mutex);
};

/// The scheduler state shared between the Service and every Job: queue,
/// counters, and the condition variables.  Kept alive by shared_ptr from
/// both sides so JobHandle operations never touch freed state.
struct ServiceCore {
    mutable util::Mutex mutex; ///< guards queue, counters, stopping
    util::CondVar work_available;
    util::CondVar slot_available;
    util::CondVar drained;

    struct QueueEntry {
        int priority = 0;
        std::uint64_t seq = 0;
        std::shared_ptr<Job> job;
        /// Max-heap on priority; FIFO (lower seq first) within a level.
        [[nodiscard]] bool operator<(const QueueEntry& other) const {
            if (priority != other.priority) return priority < other.priority;
            return seq > other.seq;
        }
    };
    std::priority_queue<QueueEntry> queue LEQA_GUARDED_BY(mutex);
    std::uint64_t next_seq LEQA_GUARDED_BY(mutex) = 0;
    /// Workers parked on work_available.
    std::size_t idle_workers LEQA_GUARDED_BY(mutex) = 0;
    bool stopping LEQA_GUARDED_BY(mutex) = false;
    bool joined LEQA_GUARDED_BY(mutex) = false;

    ServiceStats stats LEQA_GUARDED_BY(mutex);
    /// Jobs whose on_complete has been delivered; gates drain()/shutdown()
    /// (stats.completed counts results, which land slightly earlier).
    std::size_t finished LEQA_GUARDED_BY(mutex) = 0;
    /// Bounded rings (kLatencyWindow).
    std::vector<double> queue_wait_samples LEQA_GUARDED_BY(mutex);
    std::vector<double> service_time_samples LEQA_GUARDED_BY(mutex);
    std::size_t sample_cursor LEQA_GUARDED_BY(mutex) = 0;

    /// Deliver a result, fire on_complete, and account the completion.
    void finish_job(const std::shared_ptr<Job>& job, JobResult result,
                    double queue_wait_s, double run_s)
        LEQA_EXCLUDES(mutex);
    /// Cancel-claim a still-queued job (JobHandle::cancel's slow path).
    bool cancel_queued(const std::shared_ptr<Job>& job) LEQA_EXCLUDES(mutex);
};

} // namespace detail

// ------------------------------------------------------------- JobHandle --

const std::string& job_state_name(JobState state) {
    static const std::string names[] = {"queued", "running", "done", "cancelled"};
    return names[static_cast<std::size_t>(state)];
}

std::uint64_t JobHandle::id() const {
    LEQA_REQUIRE(job_ != nullptr, "invalid job handle");
    return job_->id;
}

const std::string& JobHandle::label() const {
    LEQA_REQUIRE(job_ != nullptr, "invalid job handle");
    return job_->label;
}

JobState JobHandle::poll() const {
    LEQA_REQUIRE(job_ != nullptr, "invalid job handle");
    return job_->state.load();
}

bool JobHandle::cancel() const {
    LEQA_REQUIRE(job_ != nullptr, "invalid job handle");
    job_->control.cancel.store(true);
    if (job_->state.load() != JobState::Queued) return false; // running/terminal
    return job_->core->cancel_queued(job_);
}

const JobResult& JobHandle::wait() const& {
    LEQA_REQUIRE(job_ != nullptr, "invalid job handle");
    util::MutexLock lock(job_->wait_mutex);
    while (!job_->result.has_value()) job_->wait_cv.wait(job_->wait_mutex);
    // The result is write-once: the reference stays valid (and immutable)
    // after the lock drops, for as long as the job itself lives.
    return *job_->result;
}

JobResult JobHandle::wait() && {
    const JobHandle& self = *this;
    return self.wait(); // copy out before the temporary (and maybe the job) dies
}

bool JobHandle::wait_for(double seconds) const {
    LEQA_REQUIRE(job_ != nullptr, "invalid job handle");
    const auto deadline = std::chrono::steady_clock::now() + seconds_duration(seconds);
    util::MutexLock lock(job_->wait_mutex);
    while (!job_->result.has_value()) {
        if (job_->wait_cv.wait_until(job_->wait_mutex, deadline)) {
            return job_->result.has_value(); // deadline passed: last re-check
        }
    }
    return true;
}

// ------------------------------------------------------------ SweepAxis --

const std::string& sweep_axis_name(SweepAxis axis) {
    static const std::string names[] = {"fabric_sides", "nc", "v", "topology"};
    return names[static_cast<std::size_t>(axis)];
}

std::optional<SweepAxis> parse_sweep_axis(const std::string& name) {
    for (const auto axis : {SweepAxis::FabricSides, SweepAxis::ChannelCapacity,
                            SweepAxis::Speed, SweepAxis::Topology}) {
        if (sweep_axis_name(axis) == name) return axis;
    }
    return std::nullopt;
}

// --------------------------------------------------------- ServiceStats --

std::string ServiceStats::to_string() const {
    std::string text = "jobs " + std::to_string(submitted) + " submitted / " +
                       std::to_string(completed) + " completed (" +
                       std::to_string(succeeded) + " ok, " + std::to_string(failed) +
                       " failed, " + std::to_string(cancelled) + " cancelled, " +
                       std::to_string(deadline_expired) + " deadline, " +
                       std::to_string(rejected) + " rejected), queue " +
                       std::to_string(queue_depth) + " (peak " +
                       std::to_string(peak_queue_depth) + "), running " +
                       std::to_string(running);
    text += "; wait p50/p99 " + util::format_double(queue_wait.p50_s * 1e3, 3) + "/" +
            util::format_double(queue_wait.p99_s * 1e3, 3) + " ms, service p50/p99 " +
            util::format_double(service_time.p50_s * 1e3, 3) + "/" +
            util::format_double(service_time.p99_s * 1e3, 3) + " ms";
    text += "; cache: " + cache.to_string();
    return text;
}

// -------------------------------------------------------------- Service --

Service::Service(pipeline::PipelineConfig config, ServiceOptions options)
    : Service(std::make_shared<pipeline::Pipeline>(std::move(config)), options) {}

Service::Service(std::shared_ptr<pipeline::Pipeline> pipeline, ServiceOptions options)
    : pipeline_(std::move(pipeline)), options_(options),
      core_(std::make_shared<detail::ServiceCore>()) {
    LEQA_REQUIRE(pipeline_ != nullptr, "service requires a pipeline");
    LEQA_REQUIRE(options_.max_queue >= 1, "service queue must hold at least one job");
    std::size_t threads = options_.threads;
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    options_.threads = threads;
    workers_.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

Service::~Service() { shutdown(); }

JobHandle Service::submit_fn(JobFn fn, SubmitOptions options) {
    LEQA_REQUIRE(fn != nullptr, "submit_fn requires a job body");
    auto job = std::make_shared<detail::Job>();
    job->label = std::move(options.label);
    job->fn = std::move(fn);
    job->on_complete = std::move(options.on_complete);
    job->submitted_at = std::chrono::steady_clock::now();
    if (options.deadline_s.has_value()) {
        job->control.deadline = job->submitted_at + seconds_duration(*options.deadline_s);
    }
    job->core = core_;

    bool rejected = false;
    bool queue_full = false;
    bool wake_worker = false;
    {
        const util::MutexLock lock(core_->mutex);
        job->id = ++core_->next_seq;
        if (options.nowait) {
            // Backpressure without blocking: a full queue is an immediate,
            // retryable rejection (the caller is an event loop that must
            // not stall here).
            queue_full = !core_->stopping &&
                         core_->stats.queue_depth >= options_.max_queue;
        } else {
            // Backpressure: block the submitter until the queue has room.
            while (!core_->stopping &&
                   core_->stats.queue_depth >= options_.max_queue) {
                core_->slot_available.wait(core_->mutex);
            }
        }
        ++core_->stats.submitted;
        if (core_->stopping) {
            rejected = true;
        } else if (queue_full) {
            // fall through: completed below, outside the lock
        } else {
            core_->queue.push(
                detail::ServiceCore::QueueEntry{options.priority, job->id, job});
            ++core_->stats.queue_depth;
            core_->stats.peak_queue_depth =
                std::max(core_->stats.peak_queue_depth, core_->stats.queue_depth);
            // Busy workers re-check the queue before parking, so a wakeup
            // is only needed when someone is actually parked.
            wake_worker = core_->idle_workers > 0;
        }
    }
    if (rejected) {
        // The job was never queued; complete it here, on the boundary.  The
        // state is stored terminal *before* finish_job so a racing
        // JobHandle::cancel can never mistake it for a queued job.
        job->state.store(JobState::Cancelled);
        core_->finish_job(job,
                          util::Status(util::StatusCode::Cancelled,
                                       "service is shut down", "queue"),
                          0.0, 0.0);
        return JobHandle(job);
    }
    if (queue_full) {
        // Same cancel-race guard as above: leave Queued before completing.
        job->state.store(JobState::Running);
        core_->finish_job(job,
                          util::Status(util::StatusCode::Unavailable,
                                       "service queue is full (" +
                                           std::to_string(options_.max_queue) +
                                           " jobs); retry later",
                                       "queue"),
                          0.0, 0.0);
        return JobHandle(job);
    }
    if (wake_worker) core_->work_available.notify_one();
    return JobHandle(job);
}

JobHandle Service::submit(pipeline::EstimationRequest request, SubmitOptions options) {
    if (request.label.empty()) {
        request.label =
            options.label.empty() ? request.source.display_name() : options.label;
    }
    if (options.label.empty()) options.label = request.label;
    return submit_fn(
        [request = std::move(request)](pipeline::Pipeline& pipe,
                                       const pipeline::RunControl& control) -> JobResult {
            util::Result<pipeline::EstimationResult> run = pipe.run_result(request, &control);
            if (!run.ok()) return run.status();
            return JobOutput{std::move(run).value()};
        },
        std::move(options));
}

JobHandle Service::submit(const std::string& source_spec, pipeline::RunMode mode,
                          std::optional<fabric::PhysicalParams> params,
                          SubmitOptions options) {
    if (options.label.empty()) options.label = source_spec;
    const std::string label = options.label;
    return submit_fn(
        [source_spec, mode, params = std::move(params), label](
            pipeline::Pipeline& pipe, const pipeline::RunControl& control) -> JobResult {
            try {
                pipeline::EstimationRequest request(pipeline::parse_source(source_spec),
                                                    mode);
                request.params = params;
                request.label = label;
                util::Result<pipeline::EstimationResult> run =
                    pipe.run_result(request, &control);
                if (!run.ok()) return run.status();
                return JobOutput{std::move(run).value()};
            } catch (...) {
                // parse_source failures (bad spec, unknown bench).
                return util::status_from_exception(std::current_exception(), "resolve");
            }
        },
        std::move(options));
}

JobHandle Service::submit_sweep(SweepRequest request, SubmitOptions options) {
    if (options.label.empty()) {
        options.label = "sweep:" + sweep_axis_name(request.axis) + ":" + request.source;
    }
    return submit_fn(
        [request = std::move(request)](pipeline::Pipeline& pipe,
                                       const pipeline::RunControl& control) -> JobResult {
            try {
                control.checkpoint("sweep");
                const pipeline::CircuitSource source =
                    pipeline::parse_source(request.source);
                core::SweepResult sweep;
                switch (request.axis) {
                    case SweepAxis::FabricSides:
                        sweep = pipe.sweep_fabric_sides(
                            source, to_int_values(request.values, "fabric_sides"),
                            &control);
                        break;
                    case SweepAxis::ChannelCapacity:
                        sweep = pipe.sweep_channel_capacity(
                            source, to_int_values(request.values, "nc"), &control);
                        break;
                    case SweepAxis::Speed:
                        sweep = pipe.sweep_speed(source, request.values, &control);
                        break;
                    case SweepAxis::Topology:
                        sweep = pipe.sweep_topology(source, request.kinds, &control);
                        break;
                }
                return JobOutput{std::move(sweep)};
            } catch (...) {
                return util::status_from_exception(std::current_exception(), "sweep");
            }
        },
        std::move(options));
}

JobHandle Service::submit_explore(ExploreRequest request, SubmitOptions options) {
    if (options.label.empty()) options.label = "explore:" + request.source;
    return submit_fn(
        [request = std::move(request)](pipeline::Pipeline& pipe,
                                       const pipeline::RunControl& control) -> JobResult {
            try {
                control.checkpoint("explore");
                return JobOutput{pipe.explore(pipeline::parse_source(request.source),
                                              request.spec, &control)};
            } catch (...) {
                return util::status_from_exception(std::current_exception(), "explore");
            }
        },
        std::move(options));
}

JobHandle Service::submit_optimize(OptimizeRequest request, SubmitOptions options) {
    if (options.label.empty()) options.label = "optimize:" + request.source;
    return submit_fn(
        [request = std::move(request)](pipeline::Pipeline& pipe,
                                       const pipeline::RunControl& control) -> JobResult {
            try {
                control.checkpoint("optimize");
                return JobOutput{pipe.optimize(pipeline::parse_source(request.source),
                                               request.options, request.params,
                                               &control)};
            } catch (...) {
                return util::status_from_exception(std::current_exception(), "optimize");
            }
        },
        std::move(options));
}

JobHandle Service::submit_calibration(CalibrationRequest request, SubmitOptions options) {
    if (options.label.empty()) options.label = "calibrate";
    return submit_fn(
        [request = std::move(request)](pipeline::Pipeline& pipe,
                                       const pipeline::RunControl& control) -> JobResult {
            try {
                control.checkpoint("calibrate");
                std::vector<pipeline::CircuitSource> sources;
                sources.reserve(request.sources.size());
                for (const std::string& spec : request.sources) {
                    sources.push_back(pipeline::parse_source(spec));
                }
                core::CalibrationResult fit =
                    pipe.calibrate(sources, request.options, &control);
                if (request.apply) pipe.apply_calibration(fit);
                return JobOutput{fit};
            } catch (...) {
                return util::status_from_exception(std::current_exception(), "calibrate");
            }
        },
        std::move(options));
}

void Service::worker_loop() {
    detail::ServiceCore& core = *core_;
    for (;;) {
        std::shared_ptr<detail::Job> job;
        {
            const util::MutexLock lock(core.mutex);
            ++core.idle_workers;
            while (!core.stopping && core.queue.empty()) {
                core.work_available.wait(core.mutex);
            }
            --core.idle_workers;
            if (core.queue.empty()) return; // stopping and drained dry
            job = core.queue.top().job;
            core.queue.pop();
            if (job->state.load() != JobState::Queued) {
                continue; // cancelled while queued; completed by the canceller
            }
            job->state.store(JobState::Running);
            --core.stats.queue_depth;
            ++core.stats.running;
        }
        core.slot_available.notify_one();

        const auto dequeued_at = std::chrono::steady_clock::now();
        const double queue_wait_s = seconds_between(job->submitted_at, dequeued_at);
        std::optional<JobResult> result;
        if (job->control.deadline.has_value() && dequeued_at > *job->control.deadline) {
            // Expired while queued: never execute it.
            result.emplace(util::Status(util::StatusCode::DeadlineExceeded,
                                        "deadline exceeded while queued", "queue"));
        } else if (job->control.cancel.load()) {
            // cancel() raced the claim: honor it before doing any work.
            result.emplace(util::Status(util::StatusCode::Cancelled,
                                        "cancelled before start", "queue"));
        } else {
            try {
                result.emplace(job->fn(*pipeline_, job->control));
            } catch (...) {
                // Job bodies return Results; anything thrown is a bug we
                // still refuse to let across the boundary.
                result.emplace(
                    util::status_from_exception(std::current_exception(), "job"));
            }
        }
        const double run_s = seconds_between(dequeued_at, std::chrono::steady_clock::now());
        {
            const util::MutexLock lock(core.mutex);
            --core.stats.running;
        }
        core.finish_job(job, std::move(*result), queue_wait_s, run_s);
    }
}

void detail::ServiceCore::finish_job(const std::shared_ptr<detail::Job>& job,
                                     JobResult result, double queue_wait_s,
                                     double run_s) {
    const bool ok = result.ok();
    const util::StatusCode code = result.status().code();
    // Account first, so a waiter that wakes on the result already observes
    // this completion in stats().
    {
        const util::MutexLock lock(mutex);
        ++stats.completed;
        if (ok) {
            ++stats.succeeded;
        } else if (code == util::StatusCode::Cancelled) {
            ++stats.cancelled;
        } else if (code == util::StatusCode::DeadlineExceeded) {
            ++stats.deadline_expired;
        } else if (code == util::StatusCode::Unavailable) {
            ++stats.rejected;
        } else {
            ++stats.failed;
        }
        // Bounded reservoirs: overwrite the oldest sample pairwise.
        if (queue_wait_samples.size() < kLatencyWindow) {
            queue_wait_samples.push_back(queue_wait_s);
            service_time_samples.push_back(run_s);
        } else {
            queue_wait_samples[sample_cursor] = queue_wait_s;
            service_time_samples[sample_cursor] = run_s;
            sample_cursor = (sample_cursor + 1) % kLatencyWindow;
        }
    }
    {
        const util::MutexLock lock(job->wait_mutex);
        job->result.emplace(std::move(result));
        job->state.store(code == util::StatusCode::Cancelled ? JobState::Cancelled
                                                             : JobState::Done);
    }
    job->wait_cv.notify_all();
    if (job->on_complete) {
        try {
            job->on_complete(JobHandle(job));
        } catch (...) {
            // The boundary holds for callbacks too.
        }
    }
    // Only now may drain()/shutdown() move past this job: its callback has
    // been delivered.
    {
        const util::MutexLock lock(mutex);
        ++finished;
        drained.notify_all();
    }
}

bool detail::ServiceCore::cancel_queued(const std::shared_ptr<detail::Job>& job) {
    {
        const util::MutexLock lock(mutex);
        if (job->state.load() != JobState::Queued) return false; // a worker won
        job->state.store(JobState::Cancelled);
        --stats.queue_depth;
        // The queue entry stays (workers skip non-Queued jobs on pop), which
        // would let a submit-then-cancel loop grow the heap past max_queue
        // while every worker is pinned: compact once tombstones dominate.
        const std::size_t tombstones = queue.size() - stats.queue_depth;
        if (tombstones > 64 && tombstones > stats.queue_depth) {
            std::priority_queue<QueueEntry> live;
            while (!queue.empty()) {
                if (queue.top().job->state.load() == JobState::Queued) {
                    live.push(queue.top());
                }
                queue.pop();
            }
            queue.swap(live);
        }
    }
    slot_available.notify_one();
    const double waited_s =
        seconds_between(job->submitted_at, std::chrono::steady_clock::now());
    finish_job(job,
               util::Status(util::StatusCode::Cancelled, "cancelled while queued",
                            "queue"),
               waited_s, 0.0);
    return true;
}

void Service::drain() {
    const util::MutexLock lock(core_->mutex);
    while (core_->finished != core_->stats.submitted) {
        core_->drained.wait(core_->mutex);
    }
}

void Service::shutdown() {
    bool join_now = false;
    {
        const util::MutexLock lock(core_->mutex);
        core_->stopping = true;
        if (!core_->joined) {
            core_->joined = true;
            join_now = true;
        }
    }
    core_->work_available.notify_all();
    core_->slot_available.notify_all();
    if (join_now) {
        for (std::thread& worker : workers_) worker.join();
    }
}

ServiceStats Service::stats() const {
    ServiceStats out;
    std::vector<double> queue_wait;
    std::vector<double> service_time;
    {
        const util::MutexLock lock(core_->mutex);
        out = core_->stats;
        queue_wait = core_->queue_wait_samples;
        service_time = core_->service_time_samples;
    }
    out.queue_wait = summarize(std::move(queue_wait));
    out.service_time = summarize(std::move(service_time));
    out.cache = pipeline_->cache_stats();
    return out;
}

} // namespace leqa::service

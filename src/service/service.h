/// \file service.h
/// \brief Service-grade async API over the pipeline: a fixed worker pool, a
///        priority job queue, cancellable/deadlined jobs, and a non-throwing
///        Status/Result boundary.
///
/// The paper positions LEQA as the fast inner loop of design-space
/// exploration; a long-lived estimator answering many concurrent what-if
/// queries (fabric sweeps, QECC exploration, HAQA-style hardware-guided
/// search) needs lifecycle and error handling that the synchronous,
/// exception-throwing `Pipeline::run` does not provide.  `Service` owns
/// that once:
///
///   - `submit(...) -> JobHandle`: enqueue work with a priority, an
///     optional deadline, and a completion callback; higher priority runs
///     first, FIFO within a priority level;
///   - `JobHandle::wait()/poll()/cancel()`: cancellation is cooperative --
///     a queued job is cancelled immediately (it never executes), a running
///     job observes the flag at the pipeline's stage checkpoints and stops
///     between stages;
///   - no exception ever escapes the boundary: every failure surfaces as a
///     `util::Status` (code + message + origin stage) inside the job's
///     `Result`;
///   - `drain()` / `shutdown()` for graceful lifecycle, `stats()` for
///     queue depth, latency percentiles, and pipeline-cache passthrough.
///
/// Estimate/map jobs, design-space sweeps, and calibration fits all run
/// through the same queue, so one daemon (see cli/leqa_server.cpp) serves
/// every request kind the pipeline facade supports.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "core/calibrate.h"
#include "core/explore.h"
#include "core/sweep.h"
#include "pipeline/pipeline.h"
#include "util/status.h"

namespace leqa::service {

/// Fixed configuration of one Service instance.
struct ServiceOptions {
    std::size_t threads = 0;     ///< worker threads; 0 = hardware concurrency
    std::size_t max_queue = 1024; ///< queued-job bound; submit blocks when
                                  ///< full (or rejects, see SubmitOptions::nowait)
};

/// What a job can produce: one pipeline run, a design-space sweep, a
/// calibration fit, a multi-dimensional exploration, or a placement
/// optimization.
using JobOutput = std::variant<pipeline::EstimationResult, core::SweepResult,
                               core::CalibrationResult, core::ExplorationResult,
                               core::OptimizeResult>;

/// Every job completes with exactly one of these: a JobOutput or a non-OK
/// Status.  Nothing throws across the boundary.
using JobResult = util::Result<JobOutput>;

/// Observable lifecycle of a job.  `Cancelled` is terminal and means the
/// job's result carries StatusCode::Cancelled (whether it was cancelled in
/// the queue or between pipeline stages).
enum class JobState { Queued, Running, Done, Cancelled };

[[nodiscard]] const std::string& job_state_name(JobState state);

class Service;
namespace detail {
class Job;
struct ServiceCore;
} // namespace detail

/// Shared, copyable handle to one submitted job.  Valid after the Service
/// drains or shuts down (completion state is owned by the job itself).
class JobHandle {
public:
    JobHandle() = default;

    [[nodiscard]] bool valid() const { return job_ != nullptr; }
    [[nodiscard]] std::uint64_t id() const;
    [[nodiscard]] const std::string& label() const;
    [[nodiscard]] JobState poll() const;

    /// Request cancellation.  A job still in the queue is completed as
    /// Cancelled right here (it will never execute) and true is returned.
    /// A running job keeps the cooperative flag set -- it stops at the next
    /// pipeline stage checkpoint -- and false is returned (as for jobs that
    /// already completed).
    bool cancel() const;

    /// Block until the job completes; the result stays owned by the job.
    [[nodiscard]] const JobResult& wait() const&;

    /// wait() on a temporary handle -- `service.submit(...).wait()`.  The
    /// temporary may be the job's only owner, so returning the reference
    /// above would dangle the moment the statement ends; this overload
    /// copies the result out instead.
    [[nodiscard]] JobResult wait() &&;

    /// Wait with a timeout; true when the job completed in time.
    [[nodiscard]] bool wait_for(double seconds) const;

private:
    friend class Service;
    friend struct detail::ServiceCore;
    explicit JobHandle(std::shared_ptr<detail::Job> job) : job_(std::move(job)) {}

    std::shared_ptr<detail::Job> job_;
};

/// Per-job submission knobs.
struct SubmitOptions {
    int priority = 0; ///< higher runs first; FIFO within a level
    std::optional<double> deadline_s; ///< relative deadline from submit time
    std::string label; ///< echoed into results and stats
    /// Backpressure policy when the bounded queue is full: false (default)
    /// blocks the submitting thread until a slot frees up; true never
    /// blocks -- the job completes immediately with StatusCode::Unavailable
    /// (the retryable rejection a network reactor must answer instead of
    /// stalling its event loop).
    bool nowait = false;
    /// Fired exactly once when the job completes (any outcome), from the
    /// completing thread, before drain()/shutdown() can return.  Must not
    /// throw; exceptions are swallowed at the boundary.
    std::function<void(const JobHandle&)> on_complete;
};

/// Parameter axis of a sweep job.
enum class SweepAxis { FabricSides, ChannelCapacity, Speed, Topology };

[[nodiscard]] const std::string& sweep_axis_name(SweepAxis axis);
[[nodiscard]] std::optional<SweepAxis> parse_sweep_axis(const std::string& name);

/// A design-space sweep over one axis.  The source spec is resolved inside
/// the job (a bad spec becomes a NotFound/ParseError status, not a throw).
struct SweepRequest {
    std::string source; ///< circuit spec ("bench:<name>" or a path)
    SweepAxis axis = SweepAxis::FabricSides;
    std::vector<double> values; ///< sides / capacities / speeds
    std::vector<fabric::TopologyKind> kinds; ///< for SweepAxis::Topology
};

/// A multi-dimensional design-space exploration (the cross-product axes and
/// worker count live in the spec; see core/explore.h).  As with sweeps, the
/// source spec is resolved inside the job.
struct ExploreRequest {
    std::string source; ///< circuit spec ("bench:<name>" or a path)
    core::ExplorationSpec spec;
};

/// A latency-driven placement optimization (see core/optimize.h and
/// pipeline::Pipeline::optimize).  The source spec is resolved inside the
/// job.
struct OptimizeRequest {
    std::string source; ///< circuit spec ("bench:<name>" or a path)
    core::OptimizeOptions options;
    /// Per-request fabric override (the session default otherwise).
    std::optional<fabric::PhysicalParams> params;
};

/// A calibration fit against the session mapper.
struct CalibrationRequest {
    std::vector<std::string> sources; ///< training circuit specs
    core::CalibratorOptions options;
    bool apply = false; ///< adopt the fitted v into the session parameters
};

/// A job body: runs on a worker with the shared pipeline and this job's
/// run control; returns a JobResult and must not throw (the service still
/// catches as a last resort and maps to StatusCode::Internal).
using JobFn = std::function<JobResult(pipeline::Pipeline&, const pipeline::RunControl&)>;

/// Latency percentile summary in seconds, over a bounded window of the
/// most recent completions.
struct LatencySummary {
    std::size_t count = 0;
    double p50_s = 0.0;
    double p90_s = 0.0;
    double p99_s = 0.0;
    double p999_s = 0.0; ///< saturates to max until the ring holds >= 1000
    double max_s = 0.0;
};

/// Cumulative service counters + current queue occupancy.
struct ServiceStats {
    std::size_t submitted = 0;
    std::size_t completed = 0;        ///< all terminal outcomes
    std::size_t succeeded = 0;
    std::size_t failed = 0;           ///< non-OK other than cancel/deadline/reject
    std::size_t cancelled = 0;
    std::size_t deadline_expired = 0;
    std::size_t rejected = 0;         ///< Unavailable: queue full under nowait
    std::size_t queue_depth = 0;      ///< currently queued
    std::size_t running = 0;          ///< currently executing
    std::size_t peak_queue_depth = 0;
    LatencySummary queue_wait;        ///< submit -> dequeue
    LatencySummary service_time;      ///< dequeue -> completion
    pipeline::CacheStats cache;       ///< pipeline cache passthrough

    [[nodiscard]] std::string to_string() const;
};

/// The async boundary.  Construct once, submit many jobs, shut down (or let
/// the destructor do it -- it drains queued work first).
class Service {
public:
    explicit Service(pipeline::PipelineConfig config = {}, ServiceOptions options = {});
    Service(std::shared_ptr<pipeline::Pipeline> pipeline, ServiceOptions options = {});
    ~Service();

    Service(const Service&) = delete;
    Service& operator=(const Service&) = delete;

    /// The wrapped session (e.g. for cache statistics or direct sync use).
    [[nodiscard]] pipeline::Pipeline& pipeline() { return *pipeline_; }

    /// Enqueue one pipeline run.
    [[nodiscard]] JobHandle submit(pipeline::EstimationRequest request,
                                   SubmitOptions options = {});

    /// Enqueue one pipeline run from a raw circuit spec; the spec is parsed
    /// inside the job so that unknown benches / missing files surface as a
    /// Status instead of throwing on the submitting thread.
    [[nodiscard]] JobHandle submit(const std::string& source_spec,
                                   pipeline::RunMode mode,
                                   std::optional<fabric::PhysicalParams> params = {},
                                   SubmitOptions options = {});

    /// Enqueue a design-space sweep.
    [[nodiscard]] JobHandle submit_sweep(SweepRequest request, SubmitOptions options = {});

    /// Enqueue a multi-dimensional design-space exploration.
    [[nodiscard]] JobHandle submit_explore(ExploreRequest request,
                                           SubmitOptions options = {});

    /// Enqueue a placement optimization.
    [[nodiscard]] JobHandle submit_optimize(OptimizeRequest request,
                                            SubmitOptions options = {});

    /// Enqueue a calibration fit.
    [[nodiscard]] JobHandle submit_calibration(CalibrationRequest request,
                                               SubmitOptions options = {});

    /// Enqueue an arbitrary job body (the primitive the typed submits use).
    [[nodiscard]] JobHandle submit_fn(JobFn fn, SubmitOptions options = {});

    /// Block until every job submitted so far has completed.
    void drain();

    /// Stop accepting new work, run the queue dry, join the workers.
    /// Idempotent; jobs submitted afterwards complete as Cancelled.
    void shutdown();

    [[nodiscard]] ServiceStats stats() const;

private:
    void worker_loop();

    std::shared_ptr<pipeline::Pipeline> pipeline_;
    ServiceOptions options_;
    /// The queue, counters, and condition variables live behind a shared
    /// pointer that every Job also holds: a JobHandle operation (cancel of
    /// a queued job, in particular) can then never race Service destruction
    /// into freed state.
    std::shared_ptr<detail::ServiceCore> core_;
    std::vector<std::thread> workers_;
};

} // namespace leqa::service

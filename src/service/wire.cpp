#include "service/wire.h"

#include <limits>
#include <utility>

#include "report/report.h"
#include "util/error.h"
#include "util/json.h"

namespace leqa::service::wire {

namespace {

using util::JsonValue;
using util::Status;
using util::StatusCode;

/// Field-level validation failure (mapped to InvalidArgument at the
/// boundary; distinct from malformed JSON which is ParseError).
[[noreturn]] void bad_request(const std::string& what) {
    throw util::InputError("wire request: " + what);
}

/// A JSON integer that must fit an int (fabric dimensions, priorities).
int as_int32(const JsonValue& value, const char* key) {
    const long long parsed = value.as_int();
    if (parsed < std::numeric_limits<int>::min() ||
        parsed > std::numeric_limits<int>::max()) {
        bad_request(std::string("\"") + key + "\" out of range");
    }
    return static_cast<int>(parsed);
}

/// JSON numbers are doubles, which are exact only up to 2^53: a larger id
/// would be silently rounded and the response would no longer correlate
/// with the request, so reject it loudly instead.  The cap is 2^53 - 1
/// because 2^53 itself is ambiguous (2^53 + 1 rounds onto it).
constexpr long long kMaxExactId = 9007199254740991LL; // 2^53 - 1

/// Requests must use ids >= 1: 0 is reserved for error responses to lines
/// whose own id could not be recovered (see extract_id), so a response
/// carrying 0 is never ambiguous with real traffic.  parse_response still
/// accepts 0, since the daemon emits exactly such lines.
std::uint64_t parse_id(const JsonValue& root, bool allow_zero = false) {
    const JsonValue* id = root.find("id");
    if (id == nullptr) bad_request("missing \"id\"");
    const long long value = id->as_int();
    if (value < 0 || (value == 0 && !allow_zero)) {
        bad_request("\"id\" must be positive (0 is reserved for responses to "
                    "unidentifiable lines)");
    }
    if (value > kMaxExactId) bad_request("\"id\" exceeds 2^53 - 1");
    return static_cast<std::uint64_t>(value);
}

ParamsPatch parse_params_patch(const JsonValue& object) {
    ParamsPatch patch;
    for (const auto& [key, value] : object.members()) {
        if (key == "width") {
            patch.width = as_int32(value, "width");
        } else if (key == "height") {
            patch.height = as_int32(value, "height");
        } else if (key == "nc") {
            patch.nc = as_int32(value, "nc");
        } else if (key == "v") {
            patch.v = value.as_number();
        } else if (key == "t_move_us") {
            patch.t_move_us = value.as_number();
        } else if (key == "topology") {
            patch.topology = fabric::parse_topology_kind(value.as_string());
        } else {
            bad_request("unknown params key \"" + key + "\"");
        }
    }
    return patch;
}

WireRequest parse_request_object(const JsonValue& root) {
    if (!root.is_object()) bad_request("request must be a JSON object");
    WireRequest request;
    request.id = parse_id(root);

    const JsonValue* op = root.find("op");
    if (op == nullptr) bad_request("missing \"op\"");
    const std::optional<WireRequest::Op> parsed_op = parse_op(op->as_string());
    if (!parsed_op.has_value()) bad_request("unknown op \"" + op->as_string() + "\"");
    request.op = *parsed_op;

    if (const JsonValue* priority = root.find("priority")) {
        request.priority = as_int32(*priority, "priority");
    }
    if (const JsonValue* deadline = root.find("deadline_s")) {
        const double seconds = deadline->as_number();
        if (seconds <= 0.0) bad_request("\"deadline_s\" must be positive");
        request.deadline_s = seconds;
    }
    if (const JsonValue* label = root.find("label")) {
        request.label = label->as_string();
    }

    const bool needs_source = request.op == WireRequest::Op::Estimate ||
                              request.op == WireRequest::Op::Map ||
                              request.op == WireRequest::Op::Both ||
                              request.op == WireRequest::Op::Sweep ||
                              request.op == WireRequest::Op::Explore ||
                              request.op == WireRequest::Op::Optimize;
    if (needs_source) {
        const JsonValue* source = root.find("source");
        if (source == nullptr || source->as_string().empty()) {
            bad_request("op \"" + op_name(request.op) + "\" requires a \"source\"");
        }
        request.source = source->as_string();
    }

    switch (request.op) {
        case WireRequest::Op::Estimate:
        case WireRequest::Op::Map:
        case WireRequest::Op::Both:
            if (const JsonValue* params = root.find("params")) {
                request.params = parse_params_patch(*params);
            }
            break;
        case WireRequest::Op::Sweep: {
            const JsonValue* axis = root.find("axis");
            if (axis == nullptr) bad_request("op \"sweep\" requires an \"axis\"");
            const std::optional<SweepAxis> parsed_axis =
                parse_sweep_axis(axis->as_string());
            if (!parsed_axis.has_value()) {
                bad_request("unknown sweep axis \"" + axis->as_string() + "\"");
            }
            request.axis = *parsed_axis;
            if (request.axis == SweepAxis::Topology) {
                const JsonValue* kinds = root.find("kinds");
                if (kinds == nullptr || kinds->items().empty()) {
                    bad_request("topology sweep requires non-empty \"kinds\"");
                }
                for (const JsonValue& kind : kinds->items()) {
                    request.kinds.push_back(
                        fabric::parse_topology_kind(kind.as_string()));
                }
            } else {
                const JsonValue* values = root.find("values");
                if (values == nullptr || values->items().empty()) {
                    bad_request("sweep requires non-empty \"values\"");
                }
                for (const JsonValue& value : values->items()) {
                    request.values.push_back(value.as_number());
                }
            }
            break;
        }
        case WireRequest::Op::Calibrate: {
            const JsonValue* sources = root.find("sources");
            if (sources == nullptr || sources->items().empty()) {
                bad_request("op \"calibrate\" requires non-empty \"sources\"");
            }
            for (const JsonValue& source : sources->items()) {
                request.sources.push_back(source.as_string());
            }
            if (const JsonValue* apply = root.find("apply")) {
                request.apply_calibration = apply->as_bool();
            }
            break;
        }
        case WireRequest::Op::Cancel: {
            const JsonValue* target = root.find("target");
            if (target == nullptr) bad_request("op \"cancel\" requires a \"target\"");
            const long long value = target->as_int();
            if (value < 0) bad_request("\"target\" must be non-negative");
            if (value > kMaxExactId) bad_request("\"target\" exceeds 2^53 - 1");
            request.target = static_cast<std::uint64_t>(value);
            break;
        }
        case WireRequest::Op::Explore: {
            if (const JsonValue* topologies = root.find("topologies")) {
                for (const JsonValue& kind : topologies->items()) {
                    request.explore.topologies.push_back(
                        fabric::parse_topology_kind(kind.as_string()));
                }
            }
            if (const JsonValue* sides = root.find("sides")) {
                for (const JsonValue& side : sides->items()) {
                    request.explore.sides.push_back(as_int32(side, "sides"));
                }
            }
            if (const JsonValue* capacities = root.find("nc")) {
                for (const JsonValue& nc : capacities->items()) {
                    request.explore.capacities.push_back(as_int32(nc, "nc"));
                }
            }
            if (const JsonValue* speeds = root.find("v")) {
                for (const JsonValue& v : speeds->items()) {
                    request.explore.speeds.push_back(v.as_number());
                }
            }
            if (request.explore.topologies.empty() && request.explore.sides.empty() &&
                request.explore.capacities.empty() && request.explore.speeds.empty()) {
                bad_request("op \"explore\" requires at least one non-empty axis "
                            "(\"topologies\"/\"sides\"/\"nc\"/\"v\")");
            }
            if (const JsonValue* threads = root.find("threads")) {
                const int parsed = as_int32(*threads, "threads");
                // Bounded like every other wire integer: one hostile line
                // must not make the daemon spawn an arbitrary thread count
                // (0 = hardware concurrency remains the "as parallel as the
                // box allows" spelling).
                constexpr int kMaxExploreThreads = 256;
                if (parsed < 0 || parsed > kMaxExploreThreads) {
                    bad_request("\"threads\" must be in [0, " +
                                std::to_string(kMaxExploreThreads) + "]");
                }
                request.explore.threads = static_cast<std::size_t>(parsed);
            }
            break;
        }
        case WireRequest::Op::Optimize: {
            if (const JsonValue* params = root.find("params")) {
                request.params = parse_params_patch(*params);
            }
            if (const JsonValue* moves = root.find("moves")) {
                const long long parsed = moves->as_int();
                // Bounded like "threads": one hostile line must not buy an
                // effectively unbounded annealing run on a worker thread.
                constexpr long long kMaxOptimizeMoves = 10000000;
                if (parsed < 1 || parsed > kMaxOptimizeMoves) {
                    bad_request("\"moves\" must be in [1, " +
                                std::to_string(kMaxOptimizeMoves) + "]");
                }
                request.optimize.max_moves = static_cast<std::size_t>(parsed);
            }
            if (const JsonValue* seed = root.find("seed")) {
                const long long parsed = seed->as_int();
                if (parsed < 0) bad_request("\"seed\" must be non-negative");
                request.optimize.seed = static_cast<std::uint64_t>(parsed);
            }
            if (const JsonValue* mode = root.find("mode")) {
                // parse_optimize_mode throws InputError for unknown names,
                // which maps to InvalidArgument at this boundary.
                request.optimize.mode = core::parse_optimize_mode(mode->as_string());
            }
            if (const JsonValue* seconds = root.find("max_seconds")) {
                const double parsed = seconds->as_number();
                if (parsed < 0.0) bad_request("\"max_seconds\" must be non-negative");
                request.optimize.max_seconds = parsed;
            }
            break;
        }
        case WireRequest::Op::Stats:
            break;
    }
    return request;
}

} // namespace

// ----------------------------------------------------------- ParamsPatch --

bool ParamsPatch::empty() const {
    return !width.has_value() && !height.has_value() && !nc.has_value() &&
           !v.has_value() && !t_move_us.has_value() && !topology.has_value();
}

fabric::PhysicalParams ParamsPatch::apply(fabric::PhysicalParams base) const {
    if (width.has_value()) base.width = *width;
    if (height.has_value()) base.height = *height;
    if (nc.has_value()) base.nc = *nc;
    if (v.has_value()) base.v = *v;
    if (t_move_us.has_value()) base.t_move_us = *t_move_us;
    if (topology.has_value()) base.topology = *topology;
    return base;
}

// ------------------------------------------------------------------- ops --

const std::string& op_name(WireRequest::Op op) {
    static const std::string names[] = {"estimate", "map",     "both",
                                        "sweep",    "calibrate", "cancel",
                                        "stats",    "explore", "optimize"};
    return names[static_cast<std::size_t>(op)];
}

std::optional<WireRequest::Op> parse_op(const std::string& name) {
    for (const auto op :
         {WireRequest::Op::Estimate, WireRequest::Op::Map, WireRequest::Op::Both,
          WireRequest::Op::Sweep, WireRequest::Op::Calibrate, WireRequest::Op::Cancel,
          WireRequest::Op::Stats, WireRequest::Op::Explore,
          WireRequest::Op::Optimize}) {
        if (op_name(op) == name) return op;
    }
    return std::nullopt;
}

pipeline::RunMode run_mode_of(WireRequest::Op op) {
    switch (op) {
        case WireRequest::Op::Estimate: return pipeline::RunMode::Estimate;
        case WireRequest::Op::Map: return pipeline::RunMode::Map;
        case WireRequest::Op::Both: return pipeline::RunMode::Both;
        default: break;
    }
    throw util::InternalError("run_mode_of: op \"" + op_name(op) + "\" is not a run");
}

// -------------------------------------------------------------- requests --

util::Result<WireRequest> parse_request(const std::string& line) {
    try {
        return parse_request_object(util::json_parse(line));
    } catch (...) {
        return util::status_from_exception(std::current_exception(), "wire");
    }
}

std::string serialize_request(const WireRequest& request) {
    util::JsonWriter json;
    json.begin_object();
    json.kv("id", request.id);
    json.kv("op", op_name(request.op));
    if (!request.source.empty()) json.kv("source", request.source);
    if (!request.params.empty()) {
        json.key("params").begin_object();
        if (request.params.width) json.kv("width", static_cast<long long>(*request.params.width));
        if (request.params.height) json.kv("height", static_cast<long long>(*request.params.height));
        if (request.params.nc) json.kv("nc", static_cast<long long>(*request.params.nc));
        if (request.params.v) json.kv("v", *request.params.v);
        if (request.params.t_move_us) json.kv("t_move_us", *request.params.t_move_us);
        if (request.params.topology) {
            json.kv("topology", fabric::topology_kind_name(*request.params.topology));
        }
        json.end_object();
    }
    if (request.priority != 0) json.kv("priority", static_cast<long long>(request.priority));
    if (request.deadline_s.has_value()) json.kv("deadline_s", *request.deadline_s);
    if (!request.label.empty()) json.kv("label", request.label);
    if (request.op == WireRequest::Op::Sweep) {
        json.kv("axis", sweep_axis_name(request.axis));
        if (request.axis == SweepAxis::Topology) {
            json.key("kinds").begin_array();
            for (const auto kind : request.kinds) {
                json.value(fabric::topology_kind_name(kind));
            }
            json.end_array();
        } else {
            json.key("values").begin_array();
            for (const double value : request.values) json.value(value);
            json.end_array();
        }
    }
    if (request.op == WireRequest::Op::Calibrate) {
        json.key("sources").begin_array();
        for (const std::string& source : request.sources) json.value(source);
        json.end_array();
        if (request.apply_calibration) json.kv("apply", true);
    }
    if (request.op == WireRequest::Op::Cancel) json.kv("target", request.target);
    if (request.op == WireRequest::Op::Optimize) {
        const core::OptimizeOptions defaults;
        if (request.optimize.max_moves != defaults.max_moves) {
            json.kv("moves", static_cast<long long>(request.optimize.max_moves));
        }
        if (request.optimize.seed != defaults.seed) {
            json.kv("seed", request.optimize.seed);
        }
        if (request.optimize.mode != defaults.mode) {
            json.kv("mode", core::optimize_mode_name(request.optimize.mode));
        }
        if (request.optimize.max_seconds != defaults.max_seconds) {
            json.kv("max_seconds", request.optimize.max_seconds);
        }
    }
    if (request.op == WireRequest::Op::Explore) {
        if (!request.explore.topologies.empty()) {
            json.key("topologies").begin_array();
            for (const auto kind : request.explore.topologies) {
                json.value(fabric::topology_kind_name(kind));
            }
            json.end_array();
        }
        if (!request.explore.sides.empty()) {
            json.key("sides").begin_array();
            for (const int side : request.explore.sides) {
                json.value(static_cast<long long>(side));
            }
            json.end_array();
        }
        if (!request.explore.capacities.empty()) {
            json.key("nc").begin_array();
            for (const int nc : request.explore.capacities) {
                json.value(static_cast<long long>(nc));
            }
            json.end_array();
        }
        if (!request.explore.speeds.empty()) {
            json.key("v").begin_array();
            for (const double v : request.explore.speeds) json.value(v);
            json.end_array();
        }
        if (request.explore.threads != 1) {
            json.kv("threads", request.explore.threads);
        }
    }
    json.end_object();
    return json.str();
}

std::uint64_t extract_id(const std::string& line) {
    try {
        const JsonValue root = util::json_parse(line);
        const JsonValue* id = root.find("id");
        if (id == nullptr) return 0;
        const long long value = id->as_int();
        // Out-of-range ids are unidentifiable: a rounded echo would
        // correlate with the wrong request.
        return value >= 1 && value <= kMaxExactId
                   ? static_cast<std::uint64_t>(value)
                   : 0;
    } catch (...) {
        return 0;
    }
}

SubmitOptions submit_options(const WireRequest& request) {
    SubmitOptions options;
    options.priority = request.priority;
    options.deadline_s = request.deadline_s;
    options.label = request.label;
    return options;
}

// ------------------------------------------------------------- responses --

std::string serialize_result(std::uint64_t id, const JobResult& result) {
    if (!result.ok()) return serialize_error(id, result.status());
    util::JsonWriter json;
    json.begin_object();
    json.kv("id", id);
    json.key("result");
    if (const auto* run = std::get_if<pipeline::EstimationResult>(&result.value())) {
        // The exact document a direct Pipeline::run caller would serialize.
        json.raw_value(report::result_to_json(*run));
    } else if (const auto* sweep = std::get_if<core::SweepResult>(&result.value())) {
        json.begin_object();
        json.key("sweep").raw_value(report::sweep_to_json(*sweep));
        json.end_object();
    } else if (const auto* exploration =
                   std::get_if<core::ExplorationResult>(&result.value())) {
        json.begin_object();
        json.key("exploration").raw_value(report::exploration_to_json(*exploration));
        json.end_object();
    } else if (const auto* optimized =
                   std::get_if<core::OptimizeResult>(&result.value())) {
        json.begin_object();
        json.key("optimize").raw_value(report::optimize_to_json(*optimized));
        json.end_object();
    } else {
        const auto& fit = std::get<core::CalibrationResult>(result.value());
        json.begin_object();
        json.key("calibration").raw_value(report::calibration_to_json(fit));
        json.end_object();
    }
    json.end_object();
    return json.str();
}

std::string serialize_error(std::uint64_t id, const util::Status& status) {
    util::JsonWriter json;
    json.begin_object();
    json.kv("id", id);
    json.key("error").raw_value(report::status_to_json(status));
    json.end_object();
    return json.str();
}

std::string serialize_cancel_ack(std::uint64_t id, std::uint64_t target,
                                 bool cancelled) {
    util::JsonWriter json;
    json.begin_object();
    json.kv("id", id);
    json.key("result").begin_object();
    json.kv("target", target);
    json.kv("cancelled", cancelled);
    json.end_object();
    json.end_object();
    return json.str();
}

std::string serialize_stats(std::uint64_t id, const ServiceStats& stats) {
    const auto write_summary = [](util::JsonWriter& json, const LatencySummary& summary) {
        json.begin_object();
        json.kv("count", summary.count);
        json.kv("p50_s", summary.p50_s);
        json.kv("p90_s", summary.p90_s);
        json.kv("p99_s", summary.p99_s);
        json.kv("p999_s", summary.p999_s);
        json.kv("max_s", summary.max_s);
        json.end_object();
    };
    util::JsonWriter json;
    json.begin_object();
    json.kv("id", id);
    json.key("result").begin_object();
    json.key("stats").begin_object();
    json.kv("submitted", stats.submitted);
    json.kv("completed", stats.completed);
    json.kv("succeeded", stats.succeeded);
    json.kv("failed", stats.failed);
    json.kv("cancelled", stats.cancelled);
    json.kv("deadline_expired", stats.deadline_expired);
    json.kv("rejected", stats.rejected);
    json.kv("queue_depth", stats.queue_depth);
    json.kv("running", stats.running);
    json.kv("peak_queue_depth", stats.peak_queue_depth);
    json.key("queue_wait");
    write_summary(json, stats.queue_wait);
    json.key("service_time");
    write_summary(json, stats.service_time);
    json.key("cache").begin_object();
    json.kv("circuit_hits", stats.cache.circuit_hits);
    json.kv("circuit_misses", stats.cache.circuit_misses);
    json.kv("graph_hits", stats.cache.graph_hits);
    json.kv("graph_misses", stats.cache.graph_misses);
    json.kv("evictions", stats.cache.evictions);
    json.kv("surface_hits", stats.cache.surface_hits);
    json.kv("surface_recomputes", stats.cache.surface_recomputes);
    json.kv("surface_evictions", stats.cache.surface_evictions);
    json.end_object();
    json.end_object();
    json.end_object();
    json.end_object();
    return json.str();
}

util::Result<WireResponse> parse_response(const std::string& line) {
    try {
        JsonValue root = util::json_parse(line);
        if (!root.is_object()) bad_request("response must be a JSON object");
        WireResponse response;
        response.id = parse_id(root, /*allow_zero=*/true);
        if (const JsonValue* error = root.find("error")) {
            const std::optional<StatusCode> code =
                util::parse_status_code(error->at("code").as_string());
            if (!code.has_value()) {
                bad_request("unknown status code \"" + error->at("code").as_string() +
                            "\"");
            }
            const JsonValue* origin = error->find("origin");
            response.status = Status(*code, error->at("message").as_string(),
                                     origin != nullptr ? origin->as_string() : "");
            if (response.status.ok()) bad_request("error object with code Ok");
        } else if (const JsonValue* result = root.find("result")) {
            response.result = *result;
        } else {
            bad_request("response carries neither \"result\" nor \"error\"");
        }
        return response;
    } catch (...) {
        return util::status_from_exception(std::current_exception(), "wire");
    }
}

std::string serialize_response(const WireResponse& response) {
    util::JsonWriter json;
    json.begin_object();
    json.kv("id", response.id);
    if (response.status.ok()) {
        json.key("result").raw_value(response.result.dump());
    } else {
        json.key("error").raw_value(report::status_to_json(response.status));
    }
    json.end_object();
    return json.str();
}

} // namespace leqa::service::wire

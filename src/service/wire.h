/// \file wire.h
/// \brief NDJSON wire format for the service boundary: one JSON object per
///        line, id-correlated requests and responses.
///
/// Requests (one per line; unknown top-level keys are ignored, but unknown
/// "params" keys are rejected as InvalidArgument so a typo cannot silently
/// leave a parameter unapplied; ids must be >= 1 and unique among in-flight
/// requests -- 0 is reserved for error responses to lines whose id could
/// not be recovered):
///
///   {"id":1,"op":"estimate","source":"bench:ham3"}
///   {"id":2,"op":"map","source":"circuits/adder.qasm",
///    "params":{"width":50,"height":50,"nc":3,"v":0.002,"topology":"torus"},
///    "priority":5,"deadline_s":2.5,"label":"what-if-50x50"}
///   {"id":3,"op":"both","source":"bench:ham3"}
///   {"id":4,"op":"sweep","source":"bench:ham3","axis":"fabric_sides",
///    "values":[40,50,60]}
///   {"id":5,"op":"calibrate","sources":["bench:ham3"],"apply":true}
///   {"id":6,"op":"cancel","target":2}
///   {"id":7,"op":"stats"}
///   {"id":8,"op":"explore","source":"bench:ham3",
///    "topologies":["grid","torus"],"sides":[40,50,60],"nc":[3,5],
///    "v":[0.001,0.002],"threads":4}
///   {"id":9,"op":"optimize","source":"bench:ham3","moves":5000,"seed":7,
///    "mode":"anneal","params":{"topology":"torus"}}
///
/// Responses (order of completion, correlated by id):
///
///   {"id":1,"result":{...report::result_to_json object...}}
///   {"id":4,"result":{"sweep":{"best_index":1,"points":[...]}}}
///   {"id":8,"result":{"exploration":{"best_index":2,"pareto_front":[...],
///    "points":[...]}}}
///   {"id":2,"error":{"code":"Cancelled","message":"...","origin":"queue"}}
///
/// `parse_request` never throws: malformed lines come back as a non-OK
/// Result (code ParseError / InvalidArgument) so the daemon can answer with
/// an error object instead of dying.  Success payloads embed the exact
/// report::result_to_json document, which keeps server responses
/// bit-identical to what a direct Pipeline::run caller would serialize.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/optimize.h"
#include "fabric/params.h"
#include "pipeline/pipeline.h"
#include "service/service.h"
#include "util/json_value.h"
#include "util/status.h"

namespace leqa::service::wire {

/// Sparse per-request fabric-parameter override; unset fields keep the
/// session defaults.
struct ParamsPatch {
    std::optional<int> width;
    std::optional<int> height;
    std::optional<int> nc;
    std::optional<double> v;
    std::optional<double> t_move_us;
    std::optional<fabric::TopologyKind> topology;

    [[nodiscard]] bool empty() const;
    /// Overlay onto \p base (validation happens inside the job).
    [[nodiscard]] fabric::PhysicalParams apply(fabric::PhysicalParams base) const;

    [[nodiscard]] bool operator==(const ParamsPatch&) const = default;
};

/// One decoded request line.
struct WireRequest {
    enum class Op {
        Estimate,
        Map,
        Both,
        Sweep,
        Calibrate,
        Cancel,
        Stats,
        Explore,
        Optimize
    };

    std::uint64_t id = 0;
    Op op = Op::Estimate;
    std::string source;       ///< estimate/map/both/sweep/explore/optimize
    ParamsPatch params;       ///< estimate/map/both/optimize
    int priority = 0;
    std::optional<double> deadline_s;
    std::string label;
    SweepAxis axis = SweepAxis::FabricSides; ///< sweep
    std::vector<double> values;              ///< sweep (sides / nc / v)
    std::vector<fabric::TopologyKind> kinds; ///< sweep (topology axis)
    std::vector<std::string> sources;        ///< calibrate
    bool apply_calibration = false;          ///< calibrate
    std::uint64_t target = 0;                ///< cancel
    /// Explore cross-product axes + worker threads ("topologies"/"sides"/
    /// "nc"/"v"/"threads" keys; at least one axis must be non-empty).
    core::ExplorationSpec explore;
    /// Optimize budget/seed/schedule ("moves"/"seed"/"mode"/"max_seconds"
    /// keys; unset keys keep the core::OptimizeOptions defaults).
    core::OptimizeOptions optimize;

    [[nodiscard]] bool operator==(const WireRequest&) const = default;
};

[[nodiscard]] const std::string& op_name(WireRequest::Op op);
[[nodiscard]] std::optional<WireRequest::Op> parse_op(const std::string& name);

/// The RunMode of an estimate/map/both op; throws InternalError otherwise.
[[nodiscard]] pipeline::RunMode run_mode_of(WireRequest::Op op);

/// Decode one request line.  Never throws: malformed JSON is a ParseError
/// status, a structurally valid object with bad fields is InvalidArgument
/// (both with origin "wire").
[[nodiscard]] util::Result<WireRequest> parse_request(const std::string& line);

/// Encode a request (only non-default fields); parse_request round-trips it.
[[nodiscard]] std::string serialize_request(const WireRequest& request);

/// Best-effort id recovery from a line parse_request rejected, so the error
/// response can still be correlated; 0 when unrecoverable.
[[nodiscard]] std::uint64_t extract_id(const std::string& line);

/// Scheduling options carried by a request (priority/deadline/label).
[[nodiscard]] SubmitOptions submit_options(const WireRequest& request);

// --- responses -------------------------------------------------------------

/// A completed job as a response line: success embeds the result payload
/// ({...} / {"sweep":...} / {"calibration":...}), failure the error object.
[[nodiscard]] std::string serialize_result(std::uint64_t id, const JobResult& result);

/// An error as a response line: {"id":...,"error":{...}}.
[[nodiscard]] std::string serialize_error(std::uint64_t id, const util::Status& status);

/// Ack of a cancel request: whether the target was still queued.
[[nodiscard]] std::string serialize_cancel_ack(std::uint64_t id, std::uint64_t target,
                                               bool cancelled);

/// Service statistics as a response line.
[[nodiscard]] std::string serialize_stats(std::uint64_t id, const ServiceStats& stats);

/// One decoded response line: OK status iff a result payload is present.
struct WireResponse {
    std::uint64_t id = 0;
    util::Status status;
    util::JsonValue result;
};

/// Decode one response line (the client side; also the round-trip tests).
[[nodiscard]] util::Result<WireResponse> parse_response(const std::string& line);

/// Re-encode a decoded response; textually identical to the line it was
/// parsed from (the wire's lossless round-trip guarantee).
[[nodiscard]] std::string serialize_response(const WireResponse& response);

} // namespace leqa::service::wire

#include "sim/classical.h"

#include <string>

#include "util/error.h"

namespace leqa::sim {

BasisState::BasisState(std::size_t num_qubits) : bits_(num_qubits, false) {}

BasisState BasisState::from_integer(std::size_t num_qubits, std::uint64_t value) {
    LEQA_REQUIRE(num_qubits >= 64 || value < (1ULL << num_qubits),
                 "from_integer: value does not fit in register");
    BasisState state(num_qubits);
    for (std::size_t i = 0; i < num_qubits && i < 64; ++i) {
        state.bits_[i] = ((value >> i) & 1ULL) != 0;
    }
    return state;
}

bool BasisState::get(circuit::Qubit q) const {
    LEQA_REQUIRE(q < bits_.size(), "qubit index out of range");
    return bits_[q];
}

void BasisState::set(circuit::Qubit q, bool value) {
    LEQA_REQUIRE(q < bits_.size(), "qubit index out of range");
    bits_[q] = value;
}

void BasisState::flip(circuit::Qubit q) {
    LEQA_REQUIRE(q < bits_.size(), "qubit index out of range");
    bits_[q] = !bits_[q];
}

std::uint64_t BasisState::to_integer() const {
    LEQA_REQUIRE(bits_.size() <= 64, "register too wide for to_integer");
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < bits_.size(); ++i) {
        if (bits_[i]) value |= (1ULL << i);
    }
    return value;
}

std::uint64_t BasisState::slice(circuit::Qubit first, std::size_t width) const {
    LEQA_REQUIRE(width <= 64, "slice too wide");
    LEQA_REQUIRE(first + width <= bits_.size(), "slice out of range");
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < width; ++i) {
        if (bits_[first + i]) value |= (1ULL << i);
    }
    return value;
}

void BasisState::set_slice(circuit::Qubit first, std::size_t width, std::uint64_t value) {
    LEQA_REQUIRE(width <= 64, "slice too wide");
    LEQA_REQUIRE(first + width <= bits_.size(), "slice out of range");
    LEQA_REQUIRE(width >= 64 || value < (1ULL << width), "value does not fit in slice");
    for (std::size_t i = 0; i < width; ++i) {
        bits_[first + i] = ((value >> i) & 1ULL) != 0;
    }
}

std::string BasisState::to_string() const {
    std::string out;
    out.reserve(bits_.size());
    for (const bool b : bits_) out += b ? '1' : '0';
    return out;
}

void apply_classical_gate(const circuit::Gate& gate, BasisState& state) {
    LEQA_REQUIRE(circuit::gate_info(gate.kind).is_classical,
                 "apply_classical_gate: non-classical gate " + gate.to_string());
    bool controls_active = true;
    for (const circuit::Qubit c : gate.controls) {
        if (!state.get(c)) {
            controls_active = false;
            break;
        }
    }
    if (!controls_active) return;

    switch (gate.kind) {
        case circuit::GateKind::X:
        case circuit::GateKind::Cnot:
        case circuit::GateKind::Toffoli:
            state.flip(gate.targets[0]);
            break;
        case circuit::GateKind::Swap:
        case circuit::GateKind::Fredkin: {
            const bool a = state.get(gate.targets[0]);
            const bool b = state.get(gate.targets[1]);
            state.set(gate.targets[0], b);
            state.set(gate.targets[1], a);
            break;
        }
        default:
            throw util::InternalError("unhandled classical gate kind");
    }
}

void run_classical(const circuit::Circuit& circ, BasisState& state) {
    LEQA_REQUIRE(state.num_qubits() == circ.num_qubits(),
                 "run_classical: state width does not match circuit");
    for (const circuit::Gate& g : circ.gates()) {
        apply_classical_gate(g, state);
    }
}

std::uint64_t run_classical(const circuit::Circuit& circ, std::uint64_t input) {
    BasisState state = BasisState::from_integer(circ.num_qubits(), input);
    run_classical(circ, state);
    return state.to_integer();
}

std::vector<std::uint64_t> truth_table(const circuit::Circuit& circ) {
    LEQA_REQUIRE(circ.num_qubits() <= 20, "truth_table: too many qubits");
    const std::uint64_t size = 1ULL << circ.num_qubits();
    std::vector<std::uint64_t> table(size);
    for (std::uint64_t value = 0; value < size; ++value) {
        table[value] = run_classical(circ, value);
    }
    return table;
}

} // namespace leqa::sim

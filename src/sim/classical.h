/// \file classical.h
/// \brief Classical reversible simulation of basis states.
///
/// Circuits made only of X, CNOT, Toffoli, Fredkin, and SWAP permute
/// computational basis states, so they can be simulated on plain bit
/// vectors.  The benchmark generators (GF(2^n) multipliers, adders) are
/// verified functionally with this simulator -- something a statevector
/// simulator could never do at 768 qubits.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"

namespace leqa::sim {

/// A computational basis state over n qubits (bit i = qubit i).
class BasisState {
public:
    explicit BasisState(std::size_t num_qubits);

    /// Build from an unsigned integer, qubit 0 = least significant bit.
    static BasisState from_integer(std::size_t num_qubits, std::uint64_t value);

    [[nodiscard]] std::size_t num_qubits() const { return bits_.size(); }
    [[nodiscard]] bool get(circuit::Qubit q) const;
    void set(circuit::Qubit q, bool value);
    void flip(circuit::Qubit q);

    /// Value of the whole register as an integer (requires <= 64 qubits).
    [[nodiscard]] std::uint64_t to_integer() const;

    /// Value of a sub-register [first, first+width), bit 0 = `first`.
    [[nodiscard]] std::uint64_t slice(circuit::Qubit first, std::size_t width) const;

    /// Store an integer into a sub-register.
    void set_slice(circuit::Qubit first, std::size_t width, std::uint64_t value);

    [[nodiscard]] bool operator==(const BasisState& other) const = default;

    /// Bit string, qubit 0 leftmost, e.g. "0110".
    [[nodiscard]] std::string to_string() const;

private:
    std::vector<bool> bits_;
};

/// Apply one classical gate in place.  Throws InputError on non-classical
/// gates (H, T, ...) or out-of-range qubits.
void apply_classical_gate(const circuit::Gate& gate, BasisState& state);

/// Run a whole classical circuit on a state (in place).
void run_classical(const circuit::Circuit& circ, BasisState& state);

/// Convenience: run on an integer input, return integer output
/// (requires <= 64 qubits).
[[nodiscard]] std::uint64_t run_classical(const circuit::Circuit& circ, std::uint64_t input);

/// Exhaustively compute the permutation implemented by a classical circuit
/// (requires num_qubits <= 20; 2^n entries).
[[nodiscard]] std::vector<std::uint64_t> truth_table(const circuit::Circuit& circ);

} // namespace leqa::sim

#include "sim/statevector.h"

#include <cmath>
#include <numbers>

#include "util/error.h"

namespace leqa::sim {

namespace {
constexpr Amplitude kI{0.0, 1.0};

struct OneQubitMatrix {
    Amplitude m[2][2];
};

OneQubitMatrix matrix_for(circuit::GateKind kind) {
    const double inv_sqrt2 = 1.0 / std::numbers::sqrt2;
    const Amplitude t_phase = std::exp(kI * (std::numbers::pi / 4.0));
    const Amplitude tdg_phase = std::exp(-kI * (std::numbers::pi / 4.0));
    switch (kind) {
        case circuit::GateKind::X:
            return {{{0, 1}, {1, 0}}};
        case circuit::GateKind::Y:
            return {{{0, -kI}, {kI, 0}}};
        case circuit::GateKind::Z:
            return {{{1, 0}, {0, -1}}};
        case circuit::GateKind::H:
            return {{{inv_sqrt2, inv_sqrt2}, {inv_sqrt2, -inv_sqrt2}}};
        case circuit::GateKind::S:
            return {{{1, 0}, {0, kI}}};
        case circuit::GateKind::Sdg:
            return {{{1, 0}, {0, -kI}}};
        case circuit::GateKind::T:
            return {{{1, 0}, {0, t_phase}}};
        case circuit::GateKind::Tdg:
            return {{{1, 0}, {0, tdg_phase}}};
        default:
            throw util::InternalError("matrix_for: not a one-qubit gate");
    }
}
} // namespace

StateVector::StateVector(std::size_t num_qubits) : num_qubits_(num_qubits) {
    LEQA_REQUIRE(num_qubits <= 24, "statevector simulator supports at most 24 qubits");
    amplitudes_.assign(std::size_t{1} << num_qubits, Amplitude{0.0, 0.0});
    amplitudes_[0] = Amplitude{1.0, 0.0};
}

StateVector StateVector::basis(std::size_t num_qubits, std::uint64_t value) {
    StateVector sv(num_qubits);
    LEQA_REQUIRE(value < sv.amplitudes_.size(), "basis state out of range");
    sv.amplitudes_[0] = Amplitude{0.0, 0.0};
    sv.amplitudes_[value] = Amplitude{1.0, 0.0};
    return sv;
}

Amplitude StateVector::amplitude(std::uint64_t index) const {
    LEQA_REQUIRE(index < amplitudes_.size(), "amplitude index out of range");
    return amplitudes_[index];
}

void StateVector::apply_one_qubit(const Amplitude m[2][2], circuit::Qubit target,
                                  const std::vector<circuit::Qubit>& controls) {
    const std::uint64_t target_bit = 1ULL << target;
    std::uint64_t control_mask = 0;
    for (const circuit::Qubit c : controls) control_mask |= 1ULL << c;

    for (std::uint64_t index = 0; index < amplitudes_.size(); ++index) {
        if ((index & target_bit) != 0) continue;          // visit each pair once
        if ((index & control_mask) != control_mask) continue;
        const std::uint64_t paired = index | target_bit;
        const Amplitude a0 = amplitudes_[index];
        const Amplitude a1 = amplitudes_[paired];
        amplitudes_[index] = m[0][0] * a0 + m[0][1] * a1;
        amplitudes_[paired] = m[1][0] * a0 + m[1][1] * a1;
    }
}

void StateVector::apply_swap(circuit::Qubit a, circuit::Qubit b,
                             const std::vector<circuit::Qubit>& controls) {
    const std::uint64_t bit_a = 1ULL << a;
    const std::uint64_t bit_b = 1ULL << b;
    std::uint64_t control_mask = 0;
    for (const circuit::Qubit c : controls) control_mask |= 1ULL << c;

    for (std::uint64_t index = 0; index < amplitudes_.size(); ++index) {
        // Visit only states with qubit a = 1, qubit b = 0 to touch each
        // swapped pair exactly once.
        if ((index & bit_a) == 0 || (index & bit_b) != 0) continue;
        if ((index & control_mask) != control_mask) continue;
        const std::uint64_t paired = (index & ~bit_a) | bit_b;
        std::swap(amplitudes_[index], amplitudes_[paired]);
    }
}

void StateVector::apply(const circuit::Gate& gate) {
    gate.validate_against(num_qubits_);
    switch (gate.kind) {
        case circuit::GateKind::Cnot:
        case circuit::GateKind::Toffoli: {
            const OneQubitMatrix x = matrix_for(circuit::GateKind::X);
            apply_one_qubit(x.m, gate.targets[0], gate.controls);
            break;
        }
        case circuit::GateKind::Swap:
        case circuit::GateKind::Fredkin:
            apply_swap(gate.targets[0], gate.targets[1], gate.controls);
            break;
        default: {
            const OneQubitMatrix m = matrix_for(gate.kind);
            apply_one_qubit(m.m, gate.targets[0], gate.controls);
            break;
        }
    }
}

void StateVector::run(const circuit::Circuit& circ) {
    LEQA_REQUIRE(circ.num_qubits() == num_qubits_,
                 "statevector width does not match circuit");
    for (const circuit::Gate& g : circ.gates()) apply(g);
}

double StateVector::norm() const {
    double sum = 0.0;
    for (const Amplitude& a : amplitudes_) sum += std::norm(a);
    return std::sqrt(sum);
}

double StateVector::fidelity(const StateVector& other) const {
    LEQA_REQUIRE(num_qubits_ == other.num_qubits_, "fidelity: width mismatch");
    Amplitude overlap{0.0, 0.0};
    for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
        overlap += std::conj(amplitudes_[i]) * other.amplitudes_[i];
    }
    return std::abs(overlap);
}

double StateVector::max_difference(const StateVector& other) const {
    LEQA_REQUIRE(num_qubits_ == other.num_qubits_, "max_difference: width mismatch");
    double max_diff = 0.0;
    for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
        max_diff = std::max(max_diff, std::abs(amplitudes_[i] - other.amplitudes_[i]));
    }
    return max_diff;
}

double max_unitary_difference(const circuit::Circuit& a, const circuit::Circuit& b) {
    LEQA_REQUIRE(a.num_qubits() == b.num_qubits(),
                 "max_unitary_difference: qubit count mismatch");
    LEQA_REQUIRE(a.num_qubits() <= 12, "max_unitary_difference: too many qubits");
    const std::uint64_t dim = 1ULL << a.num_qubits();
    double max_diff = 0.0;
    for (std::uint64_t basis = 0; basis < dim; ++basis) {
        StateVector sa = StateVector::basis(a.num_qubits(), basis);
        StateVector sb = StateVector::basis(b.num_qubits(), basis);
        sa.run(a);
        sb.run(b);
        max_diff = std::max(max_diff, sa.max_difference(sb));
    }
    return max_diff;
}

double max_unitary_difference_with_ancilla(const circuit::Circuit& a,
                                           const circuit::Circuit& b,
                                           double ancilla_tolerance) {
    LEQA_REQUIRE(b.num_qubits() >= a.num_qubits(),
                 "expanded circuit must not have fewer qubits");
    LEQA_REQUIRE(b.num_qubits() <= 16, "max_unitary_difference_with_ancilla: too many qubits");
    const std::size_t data_qubits = a.num_qubits();
    const std::uint64_t data_dim = 1ULL << data_qubits;

    double max_diff = 0.0;
    for (std::uint64_t basis = 0; basis < data_dim; ++basis) {
        StateVector sa = StateVector::basis(data_qubits, basis);
        StateVector sb = StateVector::basis(b.num_qubits(), basis); // ancillas |0>
        sa.run(a);
        sb.run(b);
        // Check ancillas returned to |0>: all amplitude mass must lie in
        // indices whose high bits are zero.
        for (std::uint64_t index = 0; index < sb.dimension(); ++index) {
            const bool ancilla_zero = (index >> data_qubits) == 0;
            const double magnitude = std::abs(sb.amplitude(index));
            if (!ancilla_zero && magnitude > ancilla_tolerance) {
                throw util::InternalError(
                    "ancilla qubits not restored to |0> (residual amplitude " +
                    std::to_string(magnitude) + ")");
            }
            if (ancilla_zero) {
                max_diff = std::max(max_diff,
                                    std::abs(sb.amplitude(index) - sa.amplitude(index)));
            }
        }
    }
    return max_diff;
}

} // namespace leqa::sim

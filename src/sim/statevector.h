/// \file statevector.h
/// \brief Small dense statevector simulator.
///
/// Used by the test suite to verify synthesis passes at the unitary level
/// (e.g. that the 15-gate FT realization of the Toffoli gate implements the
/// Toffoli unitary exactly).  Supports up to ~20 qubits; this is a
/// verification tool, not a performance simulator.
#pragma once

#include <complex>
#include <vector>

#include "circuit/circuit.h"

namespace leqa::sim {

using Amplitude = std::complex<double>;

/// Dense statevector over n qubits (qubit 0 = least significant bit of the
/// amplitude index).
class StateVector {
public:
    /// Initialize to |0...0>.
    explicit StateVector(std::size_t num_qubits);

    /// Initialize to a computational basis state |value>.
    static StateVector basis(std::size_t num_qubits, std::uint64_t value);

    [[nodiscard]] std::size_t num_qubits() const { return num_qubits_; }
    [[nodiscard]] std::size_t dimension() const { return amplitudes_.size(); }
    [[nodiscard]] const std::vector<Amplitude>& amplitudes() const { return amplitudes_; }
    [[nodiscard]] Amplitude amplitude(std::uint64_t index) const;

    /// Apply a single gate (any GateKind, including multi-controlled).
    void apply(const circuit::Gate& gate);

    /// Apply every gate of a circuit in order.
    void run(const circuit::Circuit& circ);

    /// Sum of |amplitude|^2 (should stay 1 within rounding).
    [[nodiscard]] double norm() const;

    /// |<this|other>|: 1 for identical physical states (phase-insensitive).
    [[nodiscard]] double fidelity(const StateVector& other) const;

    /// Max |a_i - b_i| over all amplitudes (phase-sensitive comparison).
    [[nodiscard]] double max_difference(const StateVector& other) const;

private:
    void apply_one_qubit(const Amplitude m[2][2], circuit::Qubit target,
                         const std::vector<circuit::Qubit>& controls);
    void apply_swap(circuit::Qubit a, circuit::Qubit b,
                    const std::vector<circuit::Qubit>& controls);

    std::size_t num_qubits_;
    std::vector<Amplitude> amplitudes_;
};

/// Compare two circuits as unitaries by running both on every basis state;
/// returns the maximum amplitude difference (phase-sensitive).  Requires
/// equal qubit counts and <= 12 qubits.
[[nodiscard]] double max_unitary_difference(const circuit::Circuit& a,
                                            const circuit::Circuit& b);

/// Like max_unitary_difference, but treats circuit \p b as acting on the
/// first `a.num_qubits()` qubits of a larger register whose remaining
/// (ancilla) qubits start and must end in |0>.  Returns max difference on
/// the embedded subspace and throws InternalError if the ancillas do not
/// return to |0> (within tolerance).
[[nodiscard]] double max_unitary_difference_with_ancilla(const circuit::Circuit& a,
                                                         const circuit::Circuit& b,
                                                         double ancilla_tolerance = 1e-9);

} // namespace leqa::sim

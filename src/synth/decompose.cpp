#include "synth/decompose.h"

#include "util/error.h"

namespace leqa::synth {

using circuit::Gate;
using circuit::GateKind;
using circuit::Qubit;

void emit_toffoli_ft(Qubit a, Qubit b, Qubit t, const GateSink& sink) {
    // Standard CNOT-optimal network (6 CNOT, 7 T/T-dagger, 2 H); this is the
    // circuit depicted in the paper's Figure 2(a).
    sink(circuit::make_h(t));
    sink(circuit::make_cnot(b, t));
    sink(circuit::make_tdg(t));
    sink(circuit::make_cnot(a, t));
    sink(circuit::make_t(t));
    sink(circuit::make_cnot(b, t));
    sink(circuit::make_tdg(t));
    sink(circuit::make_cnot(a, t));
    sink(circuit::make_t(b));
    sink(circuit::make_t(t));
    sink(circuit::make_cnot(a, b));
    sink(circuit::make_h(t));
    sink(circuit::make_t(a));
    sink(circuit::make_tdg(b));
    sink(circuit::make_cnot(a, b));
}

void emit_fredkin_as_toffoli(Qubit c, Qubit a, Qubit b, const GateSink& sink) {
    // Controlled SWAP = the three-CNOT swap with every CNOT promoted to a
    // Toffoli by the extra control (the paper replaces each 3-input Fredkin
    // by three 3-input Toffolis).
    sink(circuit::make_toffoli(c, a, b));
    sink(circuit::make_toffoli(c, b, a));
    sink(circuit::make_toffoli(c, a, b));
}

void emit_swap_as_cnot(Qubit a, Qubit b, const GateSink& sink) {
    sink(circuit::make_cnot(a, b));
    sink(circuit::make_cnot(b, a));
    sink(circuit::make_cnot(a, b));
}

namespace {

/// Compute the AND of all controls into a fresh ancilla chain; returns the
/// qubit holding the final conjunction and the gates needed to uncompute.
Qubit emit_and_chain(const std::vector<Qubit>& controls, const AncillaAllocator& alloc,
                     const GateSink& sink, std::vector<Gate>& uncompute) {
    LEQA_CHECK(controls.size() >= 2, "AND chain needs at least two controls");
    Qubit acc = alloc();
    Gate first = circuit::make_toffoli(controls[0], controls[1], acc);
    sink(first);
    uncompute.push_back(first);
    for (std::size_t i = 2; i < controls.size(); ++i) {
        const Qubit next = alloc();
        Gate step = circuit::make_toffoli(controls[i], acc, next);
        sink(step);
        uncompute.push_back(step);
        acc = next;
    }
    return acc;
}

void emit_uncompute(const std::vector<Gate>& uncompute, const GateSink& sink) {
    // All chain gates are self-inverse Toffolis; replay them in reverse.
    for (auto it = uncompute.rbegin(); it != uncompute.rend(); ++it) sink(*it);
}

} // namespace

void emit_mcx_chain(const std::vector<Qubit>& controls, Qubit target,
                    const AncillaAllocator& alloc, const GateSink& sink) {
    LEQA_REQUIRE(controls.size() >= 3,
                 "emit_mcx_chain: use plain CNOT/Toffoli below three controls");
    std::vector<Gate> uncompute;
    const Qubit conjunction = emit_and_chain(controls, alloc, sink, uncompute);
    sink(circuit::make_cnot(conjunction, target));
    emit_uncompute(uncompute, sink);
}

void emit_mcswap_chain(const std::vector<Qubit>& controls, Qubit a, Qubit b,
                       const AncillaAllocator& alloc, const GateSink& sink) {
    LEQA_REQUIRE(controls.size() >= 2,
                 "emit_mcswap_chain: use plain Fredkin below two controls");
    std::vector<Gate> uncompute;
    const Qubit conjunction = emit_and_chain(controls, alloc, sink, uncompute);
    sink(circuit::make_fredkin(conjunction, a, b));
    emit_uncompute(uncompute, sink);
}

std::size_t ft_ops_for_mcx(std::size_t num_controls) {
    if (num_controls <= 1) return 1;
    if (num_controls == 2) return 15;
    return 2 * (num_controls - 1) * 15 + 1;
}

std::size_t ancillas_for_mcx(std::size_t num_controls) {
    return num_controls >= 3 ? num_controls - 1 : 0;
}

std::size_t ft_ops_for_mcswap(std::size_t num_controls) {
    if (num_controls == 0) return 3;
    if (num_controls == 1) return 45;
    return 2 * (num_controls - 1) * 15 + 45;
}

std::size_t ancillas_for_mcswap(std::size_t num_controls) {
    return num_controls >= 2 ? num_controls - 1 : 0;
}

} // namespace leqa::synth

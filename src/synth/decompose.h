/// \file decompose.h
/// \brief Elementary decomposition building blocks used by FT synthesis.
///
/// These are the per-gate rewrites of the paper's benchmark preparation
/// (§4.1):
///   - n-input Toffoli (n > 3) -> 3-input Toffolis via the "simple method"
///     of Nielsen & Chuang: an AND-chain over fresh ancilla qubits, followed
///     by uncomputation (2(k-1) Toffolis + 1 CNOT, k-1 ancillas for k
///     controls);
///   - n-input Fredkin -> AND-chain + 3-input Fredkin;
///   - 3-input Fredkin -> three 3-input Toffolis (controlled-SWAP expanded
///     like the three-CNOT SWAP);
///   - SWAP -> three CNOTs;
///   - 3-input Toffoli -> the 15-gate {H, T, T-dagger, CNOT} network shown
///     in the paper's Figure 2 (Shende & Markov's CNOT-optimal realization).
#pragma once

#include <functional>

#include "circuit/circuit.h"

namespace leqa::synth {

/// Sink receiving rewritten gates in program order.
using GateSink = std::function<void(const circuit::Gate&)>;

/// Allocator returning a fresh |0> ancilla qubit index on each call.
using AncillaAllocator = std::function<circuit::Qubit()>;

/// Emit the 15-gate FT realization of Toffoli(c0, c1 -> t).
void emit_toffoli_ft(circuit::Qubit c0, circuit::Qubit c1, circuit::Qubit t,
                     const GateSink& sink);

/// Emit Fredkin(c; a, b) as three Toffolis:
/// Tof(c,a->b) Tof(c,b->a) Tof(c,a->b).
void emit_fredkin_as_toffoli(circuit::Qubit c, circuit::Qubit a, circuit::Qubit b,
                             const GateSink& sink);

/// Emit SWAP(a, b) as three CNOTs.
void emit_swap_as_cnot(circuit::Qubit a, circuit::Qubit b, const GateSink& sink);

/// Emit a k-controlled X (k >= 3) as an AND-chain with k-1 fresh ancillas:
/// 2(k-1) Toffolis + 1 CNOT.  Ancillas are uncomputed back to |0>.
void emit_mcx_chain(const std::vector<circuit::Qubit>& controls, circuit::Qubit target,
                    const AncillaAllocator& alloc, const GateSink& sink);

/// Emit a k-controlled SWAP (k >= 2) as an AND-chain plus one 3-input
/// Fredkin on the chain output.  k-1 fresh ancillas, uncomputed.
void emit_mcswap_chain(const std::vector<circuit::Qubit>& controls, circuit::Qubit a,
                       circuit::Qubit b, const AncillaAllocator& alloc,
                       const GateSink& sink);

/// Gate-count bookkeeping for the closed-form count checks in the tests:
/// FT op count of one k-controlled X after full synthesis (fresh ancillas):
///   k = 0 -> 1 (X),  k = 1 -> 1 (CNOT),  k = 2 -> 15,
///   k >= 3 -> 2(k-1)*15 + 1.
[[nodiscard]] std::size_t ft_ops_for_mcx(std::size_t num_controls);

/// Ancillas consumed by one k-controlled X:  k >= 3 -> k-1, else 0.
[[nodiscard]] std::size_t ancillas_for_mcx(std::size_t num_controls);

/// FT op count of one k-controlled SWAP after full synthesis:
///   k = 0 (plain SWAP) -> 3,  k = 1 -> 45 (three Toffolis),
///   k >= 2 -> 2(k-1)*15 + 45.
[[nodiscard]] std::size_t ft_ops_for_mcswap(std::size_t num_controls);

/// Ancillas consumed by one k-controlled SWAP:  k >= 2 -> k-1, else 0.
[[nodiscard]] std::size_t ancillas_for_mcswap(std::size_t num_controls);

} // namespace leqa::synth

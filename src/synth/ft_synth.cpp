#include "synth/ft_synth.h"

#include <sstream>

#include "synth/decompose.h"
#include "util/error.h"

namespace leqa::synth {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using circuit::Qubit;

std::string FtSynthStats::to_string() const {
    std::ostringstream out;
    out << "gates " << input_gates << " -> " << output_gates
        << ", qubits " << input_qubits << " -> " << (input_qubits + ancillas_added)
        << " (+" << ancillas_added << " ancilla)"
        << ", toffolis lowered: " << toffolis_lowered
        << ", fredkins lowered: " << fredkins_lowered
        << ", chains expanded: " << chains_expanded;
    return out.str();
}

namespace {

/// Allocates ancillas either fresh per request or from a reusable pool.
class AncillaManager {
public:
    AncillaManager(Circuit& circ, bool share, std::string prefix)
        : circ_(circ), share_(share), prefix_(std::move(prefix)) {}

    /// Start a new gate scope; in sharing mode previously used ancillas
    /// become reusable (they were uncomputed back to |0>).
    void begin_gate() { next_shared_ = 0; }

    Qubit allocate() {
        if (share_ && next_shared_ < pool_.size()) {
            return pool_[next_shared_++];
        }
        const Qubit q = circ_.add_qubit(prefix_ + std::to_string(total_allocated_));
        ++total_allocated_;
        if (share_) {
            pool_.push_back(q);
            ++next_shared_;
        }
        return q;
    }

    [[nodiscard]] std::size_t total_allocated() const { return total_allocated_; }

private:
    Circuit& circ_;
    bool share_;
    std::string prefix_;
    std::vector<Qubit> pool_;
    std::size_t next_shared_ = 0;
    std::size_t total_allocated_ = 0;
};

} // namespace

FtSynthResult ft_synthesize(const Circuit& input, const FtSynthOptions& options) {
    input.validate();

    FtSynthResult result;
    Circuit& out = result.circuit;
    out.set_name(input.name());
    for (const auto& comment : input.comments()) out.add_comment(comment);
    out.add_comment("ft-synthesized (ancilla sharing: " +
                    std::string(options.share_ancillas ? "on" : "off") + ")");
    for (Qubit q = 0; q < input.num_qubits(); ++q) out.add_qubit(input.qubit_name(q));

    AncillaManager ancillas(out, options.share_ancillas, options.ancilla_prefix);
    FtSynthStats& stats = result.stats;
    stats.input_gates = input.size();
    stats.input_qubits = input.num_qubits();

    // Stage-2 sink: lowers 3-input Toffolis to the FT network unless
    // keep_toffoli is set; everything else is appended as-is.
    const GateSink lower_sink = [&](const Gate& g) {
        if (g.kind == GateKind::Toffoli && g.controls.size() == 2 && !options.keep_toffoli) {
            ++stats.toffolis_lowered;
            emit_toffoli_ft(g.controls[0], g.controls[1], g.targets[0],
                            [&](const Gate& ft) { out.add_gate(ft); });
        } else {
            out.add_gate(g);
        }
    };

    // Stage-1 sink: 3-input Fredkin -> three Toffolis, then stage 2.
    const GateSink stage1_sink = [&](const Gate& g) {
        if (g.kind == GateKind::Fredkin && g.controls.size() == 1) {
            ++stats.fredkins_lowered;
            emit_fredkin_as_toffoli(g.controls[0], g.targets[0], g.targets[1], lower_sink);
        } else {
            lower_sink(g);
        }
    };

    const AncillaAllocator alloc = [&] { return ancillas.allocate(); };

    for (const Gate& g : input.gates()) {
        ancillas.begin_gate();
        switch (g.kind) {
            case GateKind::X:
            case GateKind::Y:
            case GateKind::Z:
            case GateKind::H:
            case GateKind::S:
            case GateKind::Sdg:
            case GateKind::T:
            case GateKind::Tdg:
            case GateKind::Cnot:
                out.add_gate(g);
                break;
            case GateKind::Swap:
                emit_swap_as_cnot(g.targets[0], g.targets[1], stage1_sink);
                break;
            case GateKind::Toffoli:
                if (g.controls.size() <= 2) {
                    stage1_sink(g);
                } else {
                    ++stats.chains_expanded;
                    emit_mcx_chain(g.controls, g.targets[0], alloc, stage1_sink);
                }
                break;
            case GateKind::Fredkin:
                if (g.controls.size() == 1) {
                    stage1_sink(g);
                } else {
                    ++stats.chains_expanded;
                    emit_mcswap_chain(g.controls, g.targets[0], g.targets[1], alloc,
                                      stage1_sink);
                }
                break;
        }
    }

    stats.output_gates = out.size();
    stats.ancillas_added = ancillas.total_allocated();
    if (!options.keep_toffoli) {
        LEQA_CHECK(out.is_ft(), "ft_synthesize produced a non-FT gate");
    }
    return result;
}

std::size_t predicted_ft_ops(const Circuit& input) {
    std::size_t total = 0;
    for (const Gate& g : input.gates()) {
        switch (g.kind) {
            case GateKind::Toffoli:
                total += ft_ops_for_mcx(g.controls.size() + 0);
                break;
            case GateKind::Fredkin:
                total += ft_ops_for_mcswap(g.controls.size());
                break;
            case GateKind::Swap:
                total += 3;
                break;
            default:
                total += 1;
                break;
        }
    }
    return total;
}

std::size_t predicted_ancillas(const Circuit& input) {
    std::size_t total = 0;
    for (const Gate& g : input.gates()) {
        switch (g.kind) {
            case GateKind::Toffoli:
                total += ancillas_for_mcx(g.controls.size());
                break;
            case GateKind::Fredkin:
                total += ancillas_for_mcswap(g.controls.size());
                break;
            default:
                break;
        }
    }
    return total;
}

} // namespace leqa::synth

/// \file ft_synth.h
/// \brief The FT synthesis pipeline: lower a reversible netlist to the
///        fault-tolerant operation set {X, Y, Z, H, S, Sdg, T, Tdg, CNOT}.
///
/// Mirrors the paper's benchmark preparation (§4.1):
///   1. n-input Toffoli / Fredkin gates (n > 3) are decomposed to 3-input
///      gates via AND-chains over *fresh* ancilla qubits ("no ancillary
///      sharing is performed among the decomposed gates");
///   2. 3-input Fredkins are replaced by three 3-input Toffolis;
///   3. 3-input Toffolis are lowered to the 15-gate FT network of Figure 2;
///   4. SWAP becomes three CNOTs; NOT becomes X; FT gates pass through.
///
/// An optional ancilla-sharing mode (off by default, an extension beyond
/// the paper) reuses a pool of ancillas across gates, trading qubit count
/// for serialization through the shared qubits.
#pragma once

#include <string>

#include "circuit/circuit.h"

namespace leqa::synth {

struct FtSynthOptions {
    /// Reuse ancilla qubits across decomposed gates (extension; the paper's
    /// flow always allocates fresh ancillas).
    bool share_ancillas = false;
    /// Keep 3-input Toffolis instead of lowering to the 15-gate network
    /// (useful for inspecting the intermediate stage).
    bool keep_toffoli = false;
    /// Name prefix for ancilla qubits.
    std::string ancilla_prefix = "anc";
};

struct FtSynthStats {
    std::size_t input_gates = 0;
    std::size_t output_gates = 0;
    std::size_t input_qubits = 0;
    std::size_t ancillas_added = 0;
    std::size_t toffolis_lowered = 0;   ///< 3-input Toffolis expanded to FT
    std::size_t fredkins_lowered = 0;   ///< 3-input Fredkins expanded
    std::size_t chains_expanded = 0;    ///< multi-controlled gates expanded

    [[nodiscard]] std::string to_string() const;
};

struct FtSynthResult {
    circuit::Circuit circuit;
    FtSynthStats stats;
};

/// Run the full pipeline.  The result circuit satisfies
/// `result.circuit.is_ft()` (unless keep_toffoli is set) and preserves the
/// original qubits at indices [0, input.num_qubits()); ancillas follow.
[[nodiscard]] FtSynthResult ft_synthesize(const circuit::Circuit& input,
                                          const FtSynthOptions& options = {});

/// Closed-form FT op count for a circuit (matches ft_synthesize with fresh
/// ancillas); used by generators and tests without building the big netlist.
[[nodiscard]] std::size_t predicted_ft_ops(const circuit::Circuit& input);

/// Closed-form ancilla count for a circuit (fresh-ancilla mode).
[[nodiscard]] std::size_t predicted_ancillas(const circuit::Circuit& input);

} // namespace leqa::synth

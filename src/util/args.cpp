#include "util/args.h"

#include <cstdio>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace leqa::util {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
    LEQA_REQUIRE(!flags_.count(name) && !options_.count(name),
                 "duplicate argument name: " + name);
    flags_[name] = Flag{help, false};
}

void ArgParser::add_option(const std::string& name, const std::string& help,
                           std::string default_value) {
    LEQA_REQUIRE(!flags_.count(name) && !options_.count(name),
                 "duplicate argument name: " + name);
    options_[name] = Option{help, std::move(default_value), false};
}

void ArgParser::add_positional(const std::string& name, const std::string& help,
                               bool required) {
    positionals_.push_back(Positional{name, help, required, std::nullopt});
}

void ArgParser::add_rest(const std::string& name, const std::string& help) {
    LEQA_REQUIRE(rest_name_.empty(), "add_rest may only be called once");
    rest_name_ = name;
    rest_help_ = help;
}

bool ArgParser::parse(int argc, const char* const* argv) {
    std::size_t next_positional = 0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(help_text(argv[0]).c_str(), stdout);
            return false;
        }
        if (starts_with(arg, "--")) {
            std::string name = arg.substr(2);
            std::string inline_value;
            bool has_inline = false;
            const auto eq = name.find('=');
            if (eq != std::string::npos) {
                inline_value = name.substr(eq + 1);
                name = name.substr(0, eq);
                has_inline = true;
            }
            if (auto fit = flags_.find(name); fit != flags_.end()) {
                LEQA_REQUIRE(!has_inline, "flag --" + name + " does not take a value");
                fit->second.value = true;
                continue;
            }
            auto oit = options_.find(name);
            LEQA_REQUIRE(oit != options_.end(), "unknown option: --" + name);
            if (has_inline) {
                oit->second.value = inline_value;
            } else {
                LEQA_REQUIRE(i + 1 < argc, "option --" + name + " expects a value");
                oit->second.value = argv[++i];
            }
            oit->second.given = true;
            continue;
        }
        if (next_positional < positionals_.size()) {
            positionals_[next_positional++].value = std::move(arg);
            continue;
        }
        LEQA_REQUIRE(!rest_name_.empty(), "unexpected positional argument: " + arg);
        rest_values_.push_back(std::move(arg));
    }
    for (const auto& pos : positionals_) {
        LEQA_REQUIRE(!pos.required || pos.value.has_value(),
                     "missing required argument: " + pos.name);
    }
    return true;
}

bool ArgParser::flag(const std::string& name) const {
    const auto it = flags_.find(name);
    LEQA_REQUIRE(it != flags_.end(), "flag not declared: " + name);
    return it->second.value;
}

std::string ArgParser::option(const std::string& name) const {
    const auto it = options_.find(name);
    LEQA_REQUIRE(it != options_.end(), "option not declared: " + name);
    return it->second.value;
}

bool ArgParser::option_given(const std::string& name) const {
    const auto it = options_.find(name);
    LEQA_REQUIRE(it != options_.end(), "option not declared: " + name);
    return it->second.given;
}

std::optional<std::string> ArgParser::positional(const std::string& name) const {
    for (const auto& pos : positionals_) {
        if (pos.name == name) return pos.value;
    }
    throw InputError("positional not declared: " + name);
}

long long ArgParser::option_int(const std::string& name) const {
    const auto text = option(name);
    const auto value = parse_int(text);
    LEQA_REQUIRE(value.has_value(), "option --" + name + " expects an integer, got '" + text + "'");
    return *value;
}

std::size_t ArgParser::option_size(const std::string& name) const {
    const long long value = option_int(name);
    LEQA_REQUIRE(value >= 0, "option --" + name + " must be non-negative, got " +
                                 std::to_string(value));
    return static_cast<std::size_t>(value);
}

double ArgParser::option_double(const std::string& name) const {
    const auto text = option(name);
    const auto value = parse_double(text);
    LEQA_REQUIRE(value.has_value(), "option --" + name + " expects a number, got '" + text + "'");
    return *value;
}

std::string ArgParser::help_text(const std::string& program_name) const {
    std::ostringstream out;
    out << description_ << "\n\nUsage: " << program_name;
    for (const auto& pos : positionals_) {
        out << ' ' << (pos.required ? "<" : "[") << pos.name << (pos.required ? ">" : "]");
    }
    if (!rest_name_.empty()) out << " [" << rest_name_ << "...]";
    out << " [options]\n\n";
    if (!positionals_.empty() || !rest_name_.empty()) {
        out << "Arguments:\n";
        for (const auto& pos : positionals_) {
            out << "  " << pos.name << "  " << pos.help << '\n';
        }
        if (!rest_name_.empty()) {
            out << "  " << rest_name_ << "...  " << rest_help_ << '\n';
        }
        out << '\n';
    }
    out << "Options:\n";
    for (const auto& [name, flag] : flags_) {
        out << "  --" << name << "  " << flag.help << '\n';
    }
    for (const auto& [name, option] : options_) {
        out << "  --" << name << " <value>  " << option.help;
        if (!option.value.empty()) out << " (default: " << option.value << ")";
        out << '\n';
    }
    out << "  --help  Show this help\n";
    return out.str();
}

} // namespace leqa::util

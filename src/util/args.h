/// \file args.h
/// \brief Tiny declarative command-line argument parser for the CLI tools.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace leqa::util {

/// Declarative CLI parser supporting "--flag", "--option value",
/// "--option=value", and positional arguments.
class ArgParser {
public:
    explicit ArgParser(std::string program_description);

    /// Register a boolean flag (default false).
    void add_flag(const std::string& name, const std::string& help);

    /// Register an option taking one value; \p default_value may be empty.
    void add_option(const std::string& name, const std::string& help,
                    std::string default_value = "");

    /// Register a positional argument.  Required unless \p required is false.
    void add_positional(const std::string& name, const std::string& help,
                        bool required = true);

    /// Accept any number of extra positionals after the declared ones
    /// (e.g. a batch of circuit specs); they are collected into rest().
    void add_rest(const std::string& name, const std::string& help);

    /// Parse argv; throws InputError on unknown/malformed arguments.
    /// Returns false if "--help" was requested (help text printed to stdout).
    bool parse(int argc, const char* const* argv);

    [[nodiscard]] bool flag(const std::string& name) const;
    [[nodiscard]] std::string option(const std::string& name) const;
    [[nodiscard]] bool option_given(const std::string& name) const;
    [[nodiscard]] std::optional<std::string> positional(const std::string& name) const;
    /// Extra positionals collected by add_rest (empty when none given).
    [[nodiscard]] const std::vector<std::string>& rest() const { return rest_values_; }

    /// Option parsed as long long / double, with validation.
    [[nodiscard]] long long option_int(const std::string& name) const;
    /// option_int that additionally rejects negatives (sizes/counts).
    [[nodiscard]] std::size_t option_size(const std::string& name) const;
    [[nodiscard]] double option_double(const std::string& name) const;

    [[nodiscard]] std::string help_text(const std::string& program_name) const;

private:
    struct Flag { std::string help; bool value = false; };
    struct Option { std::string help; std::string value; bool given = false; };
    struct Positional { std::string name; std::string help; bool required; std::optional<std::string> value; };

    std::string description_;
    std::map<std::string, Flag> flags_;
    std::map<std::string, Option> options_;
    std::vector<Positional> positionals_;
    std::string rest_name_; ///< non-empty once add_rest was called
    std::string rest_help_;
    std::vector<std::string> rest_values_;
};

} // namespace leqa::util

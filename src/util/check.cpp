#include "util/check.h"

#include <atomic>
#include <cstdlib>

#include "util/error.h"

namespace leqa::util {

namespace {

[[noreturn]] void default_fail(const char* /*expression*/, const char* /*file*/,
                               int /*line*/, const std::string& message) {
    // The message format predates the handler indirection; keep it stable
    // (tests and callers match on the prefix).
    throw InternalError("internal check failed: " + message);
}

std::atomic<CheckFailHandler> g_handler{&default_fail};

} // namespace

CheckFailHandler set_check_fail_handler(CheckFailHandler handler) {
    return g_handler.exchange(handler != nullptr ? handler : &default_fail);
}

void check_failed(const char* expression, const char* file, int line,
                  const std::string& message) {
    g_handler.load()(expression, file, line, message);
    // Handlers must not return; enforce the [[noreturn]] contract.
    std::abort();
}

} // namespace leqa::util

/// \file check.h
/// \brief Invariant-checking macros shared by the library and the fuzz /
///        property harnesses.
///
/// Three tiers:
///
///   - `LEQA_CHECK(cond, msg)`   — always on.  Guards invariants whose
///     violation means a bug in this library (never bad user input; that is
///     `LEQA_REQUIRE` in util/error.h).  On failure the installed fail
///     handler runs; the default throws util::InternalError with the same
///     "internal check failed: ..." message the historical macro produced.
///   - `LEQA_DCHECK(cond, msg)`  — Debug builds only.  Expands to nothing
///     in Release (`NDEBUG`): the condition is *not evaluated*, so O(V+E)
///     structural validators can sit at stage boundaries for free in
///     production builds.  The condition still has to compile in Release
///     (it is used in an unevaluated context), so rot is caught either way.
///   - `LEQA_DCHECK_OK(expr)`    — Debug-only check of a *validator*: \p
///     expr must yield a `std::string` that is empty when the structure is
///     clean (the convention of graph::validate_csr and friends); a
///     non-empty result fails with that description as the message.
///
/// The fail handler is swappable (`set_check_fail_handler`) so death tests
/// and libFuzzer harnesses can turn a failed check into an abort with a
/// recognizable banner instead of an exception that some catch-all might
/// swallow.  Handlers must not return; if one does, std::abort runs.
#pragma once

#include <string>

namespace leqa::util {

/// Invoked when a LEQA_CHECK / LEQA_DCHECK fails.  Must not return
/// (throwing is fine; the default handler throws util::InternalError).
using CheckFailHandler = void (*)(const char* expression, const char* file, int line,
                                  const std::string& message);

/// Install a new fail handler and return the previous one.  Passing
/// nullptr restores the default (throwing) handler.
CheckFailHandler set_check_fail_handler(CheckFailHandler handler);

/// Dispatch a failed check to the installed handler (never returns).
[[noreturn]] void check_failed(const char* expression, const char* file, int line,
                               const std::string& message);

} // namespace leqa::util

/// Always-on invariant check; failure dispatches to the fail handler (the
/// default throws ::leqa::util::InternalError).
#define LEQA_CHECK(cond, msg)                                                \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::leqa::util::check_failed(#cond, __FILE__, __LINE__, (msg));    \
        }                                                                    \
    } while (false)

// NDEBUG is what CMake's Release/RelWithDebInfo configurations define; a
// Debug (or sanitizer) build keeps the checks.  LEQA_FORCE_DCHECK turns
// them back on in optimized builds (the fuzz harnesses use it so coverage-
// guided runs check contracts at full speed).
#if defined(NDEBUG) && !defined(LEQA_FORCE_DCHECK)
#define LEQA_DCHECK_ENABLED 0
#else
#define LEQA_DCHECK_ENABLED 1
#endif

#if LEQA_DCHECK_ENABLED
#define LEQA_DCHECK(cond, msg) LEQA_CHECK(cond, msg)
#define LEQA_DCHECK_OK(expr)                                                 \
    do {                                                                     \
        const std::string leqa_dcheck_err_ = (expr);                         \
        if (!leqa_dcheck_err_.empty()) {                                     \
            ::leqa::util::check_failed(#expr, __FILE__, __LINE__,            \
                                       leqa_dcheck_err_);                    \
        }                                                                    \
    } while (false)
#else
// sizeof over a ternary keeps the operands compiling (and silences
// -Wunused on variables referenced only from checks) without evaluating
// anything: the expansion contributes zero instructions.
#define LEQA_DCHECK(cond, msg)                                               \
    do {                                                                     \
        (void)sizeof((cond) ? 1 : 0);                                        \
        (void)sizeof(msg);                                                   \
    } while (false)
#define LEQA_DCHECK_OK(expr)                                                 \
    do {                                                                     \
        (void)sizeof(expr);                                                  \
    } while (false)
#endif

#include "util/env.h"

#include <cstdlib>

#include "util/logging.h"
#include "util/strings.h"

namespace leqa::util {

std::optional<std::string> env_string(const std::string& name) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only; nothing calls setenv.
    const char* raw = std::getenv(name.c_str());
    if (raw == nullptr) return std::nullopt;
    return std::string(raw);
}

bool env_flag(const std::string& name) {
    const auto value = env_string(name);
    if (!value) return false;
    const std::string lowered = to_lower(trim(*value));
    return lowered == "1" || lowered == "true" || lowered == "yes" || lowered == "on";
}

long long env_int(const std::string& name, long long fallback) {
    const auto value = env_string(name);
    if (!value) return fallback;
    const auto parsed = parse_int(*value);
    if (!parsed) {
        LEQA_LOG_WARN << "ignoring malformed integer in $" << name << "='" << *value << "'";
        return fallback;
    }
    return *parsed;
}

} // namespace leqa::util

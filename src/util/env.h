/// \file env.h
/// \brief Environment-variable helpers (bench harness sizing knobs).
#pragma once

#include <optional>
#include <string>

namespace leqa::util {

/// Raw environment lookup; nullopt when unset.
[[nodiscard]] std::optional<std::string> env_string(const std::string& name);

/// True when the variable is set to a truthy value ("1", "true", "yes", "on").
[[nodiscard]] bool env_flag(const std::string& name);

/// Integer environment variable with a default; malformed values fall back
/// to the default (with a warning) rather than aborting a bench run.
[[nodiscard]] long long env_int(const std::string& name, long long fallback);

} // namespace leqa::util

#include "util/error.h"

#include <system_error>

namespace leqa::util {

std::string prefixed(const std::string& prefix, const std::string& detail) {
    if (prefix.empty()) return detail;
    return prefix + ": " + detail;
}

std::string errno_message(int err) {
    return std::generic_category().message(err);
}

} // namespace leqa::util

#include "util/error.h"

namespace leqa::util {

std::string prefixed(const std::string& prefix, const std::string& detail) {
    if (prefix.empty()) return detail;
    return prefix + ": " + detail;
}

} // namespace leqa::util

/// \file error.h
/// \brief Exception types and error-checking helpers used across the library.
///
/// All recoverable failures in this library are reported by throwing
/// leqa::util::Error (or a subclass).  LEQA_REQUIRE guards user input;
/// the invariant macros (LEQA_CHECK / LEQA_DCHECK) live in util/check.h and
/// are re-exported here for the many historical include sites.
#pragma once

#include <stdexcept>
#include <string>

#include "util/check.h" // LEQA_CHECK / LEQA_DCHECK (historically defined here)

namespace leqa::util {

/// Base exception for all errors raised by the leqa libraries.
class Error : public std::runtime_error {
public:
    explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

/// Raised when a user-supplied input (netlist, config file, CLI argument)
/// fails validation.  Carries an optional source location string.
class InputError : public Error {
public:
    explicit InputError(std::string message) : Error(std::move(message)) {}
};

/// Raised when input *text* is malformed (netlist syntax, wire JSON).  A
/// subclass of InputError so existing catch sites keep working; the service
/// boundary maps it to StatusCode::ParseError.
class ParseError : public InputError {
public:
    explicit ParseError(std::string message) : InputError(std::move(message)) {}
};

/// Raised when a named thing does not exist (file, suite benchmark, job id).
/// A subclass of InputError; the service boundary maps it to
/// StatusCode::NotFound.
class NotFoundError : public InputError {
public:
    explicit NotFoundError(std::string message) : InputError(std::move(message)) {}
};

/// Raised at a pipeline cancellation checkpoint when the run's control flag
/// was set.  The service boundary maps it to StatusCode::Cancelled.
class CancelledError : public Error {
public:
    explicit CancelledError(std::string message) : Error(std::move(message)) {}
};

/// Raised at a pipeline cancellation checkpoint when the run's deadline has
/// passed.  The service boundary maps it to StatusCode::DeadlineExceeded.
class DeadlineError : public Error {
public:
    explicit DeadlineError(std::string message) : Error(std::move(message)) {}
};

/// Raised when a resource is temporarily exhausted and the caller should
/// retry later (the service's bounded queue is full).  The service boundary
/// maps it to StatusCode::Unavailable -- the one *retryable* wire code.
class UnavailableError : public Error {
public:
    explicit UnavailableError(std::string message) : Error(std::move(message)) {}
};

/// Raised when an internal invariant is violated.  Indicates a bug in this
/// library rather than bad input.
class InternalError : public Error {
public:
    explicit InternalError(std::string message) : Error(std::move(message)) {}
};

/// Build a message of the form "<prefix>: <detail>".
[[nodiscard]] std::string prefixed(const std::string& prefix, const std::string& detail);

/// The description of an errno value, via the thread-safe
/// std::error_category machinery.  Replaces direct std::strerror calls:
/// strerror writes into static storage and is flagged (correctly) by
/// concurrency-mt-unsafe -- the reactor and its workers both format errno
/// into exception messages.
[[nodiscard]] std::string errno_message(int err);

} // namespace leqa::util

/// Throw InputError with a formatted message when \p cond is false.
#define LEQA_REQUIRE(cond, msg)                                              \
    do {                                                                     \
        if (!(cond)) {                                                       \
            throw ::leqa::util::InputError(std::string("requirement failed: ") + (msg)); \
        }                                                                    \
    } while (false)

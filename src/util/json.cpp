#include "util/json.h"

#include <cstdio>

#include "util/error.h"
#include "util/strings.h"

namespace leqa::util {

std::string JsonWriter::escape(const std::string& text) {
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buffer[8];
                    std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                    out += buffer;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

void JsonWriter::before_value() {
    LEQA_CHECK(!done_, "JsonWriter: document already complete");
    if (stack_.empty()) return; // root value
    if (stack_.back() == Frame::Object) {
        LEQA_CHECK(expecting_value_, "JsonWriter: value in object requires a key");
    } else {
        if (has_items_.back()) out_ += ',';
        has_items_.back() = true;
    }
    expecting_value_ = false;
}

void JsonWriter::raw(const std::string& text) {
    before_value();
    out_ += text;
    if (stack_.empty()) done_ = true;
}

JsonWriter& JsonWriter::begin_object() {
    before_value();
    out_ += '{';
    stack_.push_back(Frame::Object);
    has_items_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_object() {
    LEQA_CHECK(!stack_.empty() && stack_.back() == Frame::Object,
               "JsonWriter: end_object without open object");
    LEQA_CHECK(!expecting_value_, "JsonWriter: dangling key");
    out_ += '}';
    stack_.pop_back();
    has_items_.pop_back();
    if (stack_.empty()) done_ = true;
    return *this;
}

JsonWriter& JsonWriter::begin_array() {
    before_value();
    out_ += '[';
    stack_.push_back(Frame::Array);
    has_items_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_array() {
    LEQA_CHECK(!stack_.empty() && stack_.back() == Frame::Array,
               "JsonWriter: end_array without open array");
    out_ += ']';
    stack_.pop_back();
    has_items_.pop_back();
    if (stack_.empty()) done_ = true;
    return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
    LEQA_CHECK(!stack_.empty() && stack_.back() == Frame::Object,
               "JsonWriter: key outside object");
    LEQA_CHECK(!expecting_value_, "JsonWriter: two keys in a row");
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
    out_ += '"';
    out_ += escape(name);
    out_ += "\":";
    expecting_value_ = true;
    return *this;
}

JsonWriter& JsonWriter::value(const std::string& text) {
    raw('"' + escape(text) + '"');
    return *this;
}

JsonWriter& JsonWriter::value(const char* text) { return value(std::string(text)); }

JsonWriter& JsonWriter::value(double number) {
    raw(format_double(number, 12));
    return *this;
}

JsonWriter& JsonWriter::value(long long number) {
    raw(std::to_string(number));
    return *this;
}

JsonWriter& JsonWriter::value(std::size_t number) {
    raw(std::to_string(number));
    return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
    raw(flag ? "true" : "false");
    return *this;
}

JsonWriter& JsonWriter::null() {
    raw("null");
    return *this;
}

JsonWriter& JsonWriter::raw_value(const std::string& json) {
    LEQA_CHECK(!json.empty(), "JsonWriter: raw_value requires a document");
    raw(json);
    return *this;
}

std::string JsonWriter::str() const {
    LEQA_CHECK(stack_.empty() && done_, "JsonWriter: document incomplete");
    return out_;
}

} // namespace leqa::util

/// \file json.h
/// \brief Minimal JSON emitter (no external dependencies).
///
/// Supports the subset the report module needs: nested objects and arrays,
/// string/number/bool/null scalars, correct escaping, stable formatting.
/// The writer enforces well-formedness (keys only inside objects, values
/// only where expected) via a small state machine and throws InternalError
/// on misuse.
#pragma once

#include <string>
#include <vector>

namespace leqa::util {

class JsonWriter {
public:
    JsonWriter() = default;

    JsonWriter& begin_object();
    JsonWriter& end_object();
    JsonWriter& begin_array();
    JsonWriter& end_array();

    /// Key for the next value (must be inside an object).
    JsonWriter& key(const std::string& name);

    JsonWriter& value(const std::string& text);
    JsonWriter& value(const char* text);
    JsonWriter& value(double number);
    JsonWriter& value(long long number);
    JsonWriter& value(std::size_t number);
    JsonWriter& value(bool flag);
    JsonWriter& null();

    /// Embed an already-serialized JSON document as the next value.  The
    /// caller vouches for its well-formedness (e.g. report::result_to_json
    /// output embedded into a wire response).
    JsonWriter& raw_value(const std::string& json);

    /// Convenience: key + value.
    template <typename T>
    JsonWriter& kv(const std::string& name, const T& v) {
        key(name);
        return value(v);
    }

    /// Finish and return the document; throws if containers remain open.
    [[nodiscard]] std::string str() const;

    /// Escape a string for JSON (exposed for tests).
    [[nodiscard]] static std::string escape(const std::string& text);

private:
    enum class Frame { Object, Array };
    void before_value();
    void raw(const std::string& text);

    std::string out_;
    std::vector<Frame> stack_;
    std::vector<bool> has_items_;
    bool expecting_value_ = false; ///< a key was just written
    bool done_ = false;
};

} // namespace leqa::util

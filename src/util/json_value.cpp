#include "util/json_value.h"

#include <cmath>
#include <cstdlib>

#include "util/error.h"
#include "util/json.h"
#include "util/strings.h"

namespace leqa::util {

// ------------------------------------------------------------- JsonValue --

JsonValue JsonValue::make_bool(bool flag) {
    JsonValue value;
    value.type_ = Type::Bool;
    value.bool_ = flag;
    return value;
}

JsonValue JsonValue::make_number(double number) {
    JsonValue value;
    value.type_ = Type::Number;
    value.number_ = number;
    return value;
}

JsonValue JsonValue::make_string(std::string text) {
    JsonValue value;
    value.type_ = Type::String;
    value.string_ = std::move(text);
    return value;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
    JsonValue value;
    value.type_ = Type::Array;
    value.items_ = std::move(items);
    return value;
}

JsonValue JsonValue::make_object(std::vector<Member> members) {
    JsonValue value;
    value.type_ = Type::Object;
    value.members_ = std::move(members);
    return value;
}

namespace {

const char* type_name(JsonValue::Type type) {
    switch (type) {
        case JsonValue::Type::Null: return "null";
        case JsonValue::Type::Bool: return "bool";
        case JsonValue::Type::Number: return "number";
        case JsonValue::Type::String: return "string";
        case JsonValue::Type::Array: return "array";
        case JsonValue::Type::Object: return "object";
    }
    return "?";
}

[[noreturn]] void type_error(const char* wanted, JsonValue::Type got) {
    throw InputError(std::string("json: expected ") + wanted + ", got " +
                     type_name(got));
}

} // namespace

bool JsonValue::as_bool() const {
    if (type_ != Type::Bool) type_error("bool", type_);
    return bool_;
}

double JsonValue::as_number() const {
    if (type_ != Type::Number) type_error("number", type_);
    return number_;
}

long long JsonValue::as_int() const {
    const double number = as_number();
    const double rounded = std::nearbyint(number);
    if (rounded != number) {
        throw InputError("json: expected an integer, got " + format_double(number, 12));
    }
    // 2^63 is exactly representable as a double; a value at or past either
    // bound would make the cast undefined behaviour.
    constexpr double kTwo63 = 9223372036854775808.0;
    if (rounded < -kTwo63 || rounded >= kTwo63) {
        throw InputError("json: integer out of range, got " + format_double(number, 12));
    }
    return static_cast<long long>(rounded);
}

const std::string& JsonValue::as_string() const {
    if (type_ != Type::String) type_error("string", type_);
    return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
    if (type_ != Type::Array) type_error("array", type_);
    return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
    if (type_ != Type::Object) type_error("object", type_);
    return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
    if (type_ != Type::Object) return nullptr;
    for (const Member& member : members_) {
        if (member.first == key) return &member.second;
    }
    return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
    const JsonValue* value = find(key);
    if (value == nullptr) throw InputError("json: missing key \"" + key + "\"");
    return *value;
}

namespace {

void dump_value(const JsonValue& value, std::string& out) {
    switch (value.type()) {
        case JsonValue::Type::Null:
            out += "null";
            return;
        case JsonValue::Type::Bool:
            out += value.as_bool() ? "true" : "false";
            return;
        case JsonValue::Type::Number:
            out += format_double(value.as_number(), 12);
            return;
        case JsonValue::Type::String:
            out += '"';
            out += JsonWriter::escape(value.as_string());
            out += '"';
            return;
        case JsonValue::Type::Array: {
            out += '[';
            bool first = true;
            for (const JsonValue& item : value.items()) {
                if (!first) out += ',';
                first = false;
                dump_value(item, out);
            }
            out += ']';
            return;
        }
        case JsonValue::Type::Object: {
            out += '{';
            bool first = true;
            for (const auto& [key, member] : value.members()) {
                if (!first) out += ',';
                first = false;
                out += '"';
                out += JsonWriter::escape(key);
                out += "\":";
                dump_value(member, out);
            }
            out += '}';
            return;
        }
    }
}

} // namespace

std::string JsonValue::dump() const {
    std::string out;
    dump_value(*this, out);
    return out;
}

// ---------------------------------------------------------------- parser --

namespace {

class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    JsonValue parse_document() {
        JsonValue value = parse_value();
        skip_whitespace();
        if (pos_ != text_.size()) fail("trailing characters after document");
        return value;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw ParseError("json: " + what + " at offset " + std::to_string(pos_));
    }

    void skip_whitespace() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(const char* literal) {
        const std::size_t length = std::string_view(literal).size();
        if (text_.compare(pos_, length, literal) != 0) return false;
        pos_ += length;
        return true;
    }

    JsonValue parse_value() {
        skip_whitespace();
        const char c = peek();
        switch (c) {
            case '{': return descend([this] { return parse_object(); });
            case '[': return descend([this] { return parse_array(); });
            case '"': return JsonValue::make_string(parse_string());
            case 't':
                if (!consume_literal("true")) fail("bad literal");
                return JsonValue::make_bool(true);
            case 'f':
                if (!consume_literal("false")) fail("bad literal");
                return JsonValue::make_bool(false);
            case 'n':
                if (!consume_literal("null")) fail("bad literal");
                return JsonValue{};
            default:
                return parse_number();
        }
    }

    /// Containers recurse one stack frame per nesting level; cap the depth
    /// so a hostile line is a ParseError, not a stack overflow.
    template <typename Fn>
    JsonValue descend(const Fn& parse) {
        static constexpr int kMaxDepth = 128;
        if (depth_ >= kMaxDepth) fail("nesting too deep");
        ++depth_;
        JsonValue value = parse();
        --depth_;
        return value;
    }

    JsonValue parse_object() {
        expect('{');
        std::vector<JsonValue::Member> members;
        skip_whitespace();
        if (peek() == '}') {
            ++pos_;
            return JsonValue::make_object(std::move(members));
        }
        while (true) {
            skip_whitespace();
            std::string key = parse_string();
            skip_whitespace();
            expect(':');
            members.emplace_back(std::move(key), parse_value());
            skip_whitespace();
            const char next = peek();
            ++pos_;
            if (next == '}') break;
            if (next != ',') fail("expected ',' or '}' in object");
        }
        return JsonValue::make_object(std::move(members));
    }

    JsonValue parse_array() {
        expect('[');
        std::vector<JsonValue> items;
        skip_whitespace();
        if (peek() == ']') {
            ++pos_;
            return JsonValue::make_array(std::move(items));
        }
        while (true) {
            items.push_back(parse_value());
            skip_whitespace();
            const char next = peek();
            ++pos_;
            if (next == ']') break;
            if (next != ',') fail("expected ',' or ']' in array");
        }
        return JsonValue::make_array(std::move(items));
    }

    unsigned parse_hex4() {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = peek();
            ++pos_;
            code <<= 4;
            if (c >= '0' && c <= '9') {
                code |= static_cast<unsigned>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                code |= static_cast<unsigned>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                code |= static_cast<unsigned>(c - 'A' + 10);
            } else {
                fail("bad \\u escape");
            }
        }
        return code;
    }

    static void append_utf8(std::string& out, unsigned code) {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
    }

    /// One \u escape, combining a surrogate pair into its code point.
    unsigned parse_unicode_escape() {
        const unsigned code = parse_hex4();
        if (code >= 0xDC00 && code <= 0xDFFF) fail("unpaired low surrogate");
        if (code < 0xD800 || code > 0xDBFF) return code;
        if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
            fail("unpaired high surrogate");
        }
        pos_ += 2;
        const unsigned low = parse_hex4();
        if (low < 0xDC00 || low > 0xDFFF) fail("unpaired high surrogate");
        return 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') break;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char escape = text_[pos_++];
            switch (escape) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': append_utf8(out, parse_unicode_escape()); break;
                default: fail("bad escape character");
            }
        }
        return out;
    }

    JsonValue parse_number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
                c == '+' || c == '-') {
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start) fail("expected a value");
        const auto number = parse_double(text_.substr(start, pos_ - start));
        if (!number.has_value()) fail("malformed number");
        return JsonValue::make_number(*number);
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

JsonValue json_parse(const std::string& text) {
    Parser parser(text);
    return parser.parse_document();
}

} // namespace leqa::util

/// \file json_value.h
/// \brief Minimal JSON document model + parser (no external dependencies).
///
/// The counterpart of util/json.h's JsonWriter: `json_parse` turns a JSON
/// text into a JsonValue tree, and `dump()` re-serializes it with the same
/// formatting rules the writer uses (numbers via format_double with 12
/// significant digits, object keys in insertion order), so
/// parse -> dump -> parse is a fixed point.  Used by the service wire layer
/// to decode NDJSON requests and by tests to round-trip responses.
///
/// Supported: objects, arrays, strings (with \uXXXX escapes, encoded as
/// UTF-8), numbers (as double), true/false/null.  Malformed input throws
/// util::ParseError with a byte offset.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace leqa::util {

class JsonValue {
public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    /// Object members in document order (order-preserving round trips).
    using Member = std::pair<std::string, JsonValue>;

    JsonValue() = default; ///< null
    static JsonValue make_bool(bool flag);
    static JsonValue make_number(double number);
    static JsonValue make_string(std::string text);
    static JsonValue make_array(std::vector<JsonValue> items);
    static JsonValue make_object(std::vector<Member> members);

    [[nodiscard]] Type type() const { return type_; }
    [[nodiscard]] bool is_null() const { return type_ == Type::Null; }
    [[nodiscard]] bool is_bool() const { return type_ == Type::Bool; }
    [[nodiscard]] bool is_number() const { return type_ == Type::Number; }
    [[nodiscard]] bool is_string() const { return type_ == Type::String; }
    [[nodiscard]] bool is_array() const { return type_ == Type::Array; }
    [[nodiscard]] bool is_object() const { return type_ == Type::Object; }

    /// Typed accessors; throw util::InputError on a type mismatch.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_number() const;
    [[nodiscard]] long long as_int() const; ///< requires an integral number
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const std::vector<JsonValue>& items() const;   ///< array
    [[nodiscard]] const std::vector<Member>& members() const;    ///< object

    /// Object member lookup; nullptr when absent (or not an object).
    [[nodiscard]] const JsonValue* find(const std::string& key) const;
    /// Object member lookup; throws util::InputError when absent.
    [[nodiscard]] const JsonValue& at(const std::string& key) const;

    /// Re-serialize (compact, writer-compatible formatting).
    [[nodiscard]] std::string dump() const;

private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<Member> members_;
};

/// Parse one JSON document; trailing non-whitespace is an error.
/// Throws util::ParseError on malformed input.
[[nodiscard]] JsonValue json_parse(const std::string& text);

} // namespace leqa::util

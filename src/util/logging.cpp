#include "util/logging.h"

#include <atomic>
#include <cstdio>

#include "util/error.h"
#include "util/strings.h"
#include "util/thread_annotations.h"

namespace leqa::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
util::Mutex g_output_mutex; ///< serializes whole lines onto stderr

const char* level_tag(LogLevel level) {
    switch (level) {
        case LogLevel::Debug: return "DEBUG";
        case LogLevel::Info: return "INFO ";
        case LogLevel::Warn: return "WARN ";
        case LogLevel::Error: return "ERROR";
        case LogLevel::Off: return "OFF  ";
    }
    return "?????";
}
} // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

LogLevel parse_log_level(const std::string& name) {
    const std::string lowered = to_lower(name);
    if (lowered == "debug") return LogLevel::Debug;
    if (lowered == "info") return LogLevel::Info;
    if (lowered == "warn" || lowered == "warning") return LogLevel::Warn;
    if (lowered == "error") return LogLevel::Error;
    if (lowered == "off" || lowered == "none") return LogLevel::Off;
    throw InputError("unknown log level: " + name);
}

void log_line(LogLevel level, const std::string& message) {
    if (level < log_level()) return;
    const util::MutexLock lock(g_output_mutex);
    std::fprintf(stderr, "[leqa %s] %s\n", level_tag(level), message.c_str());
}

} // namespace leqa::util

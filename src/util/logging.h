/// \file logging.h
/// \brief Minimal leveled logger writing to stderr.
///
/// The logger is intentionally tiny: a global level, a stream-style macro
/// interface, and thread-safe line-at-a-time output.  Benchmarks and tests
/// set the level to Warn to keep output clean.
#pragma once

#include <sstream>
#include <string>

namespace leqa::util {

enum class LogLevel : int {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Off = 4,
};

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Parse "debug" / "info" / "warn" / "error" / "off" (case-insensitive).
[[nodiscard]] LogLevel parse_log_level(const std::string& name);

/// Emit one log line (appends '\n').  Prefer the LEQA_LOG_* macros.
void log_line(LogLevel level, const std::string& message);

namespace detail {
/// Accumulates a message and emits it on destruction.
class LogMessage {
public:
    explicit LogMessage(LogLevel level) : level_(level) {}
    LogMessage(const LogMessage&) = delete;
    LogMessage& operator=(const LogMessage&) = delete;
    ~LogMessage() { log_line(level_, stream_.str()); }

    template <typename T>
    LogMessage& operator<<(const T& value) {
        stream_ << value;
        return *this;
    }

private:
    LogLevel level_;
    std::ostringstream stream_;
};
} // namespace detail

} // namespace leqa::util

#define LEQA_LOG_DEBUG                                                        \
    if (::leqa::util::log_level() <= ::leqa::util::LogLevel::Debug)           \
    ::leqa::util::detail::LogMessage(::leqa::util::LogLevel::Debug)
#define LEQA_LOG_INFO                                                         \
    if (::leqa::util::log_level() <= ::leqa::util::LogLevel::Info)            \
    ::leqa::util::detail::LogMessage(::leqa::util::LogLevel::Info)
#define LEQA_LOG_WARN                                                         \
    if (::leqa::util::log_level() <= ::leqa::util::LogLevel::Warn)            \
    ::leqa::util::detail::LogMessage(::leqa::util::LogLevel::Warn)
#define LEQA_LOG_ERROR                                                        \
    if (::leqa::util::log_level() <= ::leqa::util::LogLevel::Error)           \
    ::leqa::util::detail::LogMessage(::leqa::util::LogLevel::Error)

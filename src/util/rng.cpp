#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace leqa::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
} // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    // A state of all zeros is the one invalid xoshiro state; SplitMix64
    // cannot produce four zero outputs in a row, but guard regardless.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    LEQA_REQUIRE(lo <= hi, "uniform_int: lo must be <= hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) { // full 64-bit range
        return static_cast<std::int64_t>(next());
    }
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = (~0ULL) - ((~0ULL) % span);
    std::uint64_t draw = next();
    while (draw > limit) draw = next();
    return lo + static_cast<std::int64_t>(draw % span);
}

std::size_t Rng::index(std::size_t n) {
    LEQA_REQUIRE(n > 0, "index: n must be positive");
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

double Rng::uniform() {
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    LEQA_REQUIRE(lo <= hi, "uniform: lo must be <= hi");
    return lo + (hi - lo) * uniform();
}

bool Rng::chance(double p) { return uniform() < p; }

double Rng::exponential(double rate) {
    LEQA_REQUIRE(rate > 0.0, "exponential: rate must be positive");
    // Inverse CDF; 1 - uniform() is in (0, 1] so the log argument is safe.
    return -std::log(1.0 - uniform()) / rate;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
    LEQA_REQUIRE(k <= n, "sample_without_replacement: k must be <= n");
    // Partial Fisher-Yates over an index vector.
    std::vector<std::size_t> pool(n);
    for (std::size_t i = 0; i < n; ++i) pool[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j = i + index(n - i);
        std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
}

} // namespace leqa::util

/// \file rng.h
/// \brief Deterministic pseudo-random number generation (xoshiro256**).
///
/// Every stochastic component in this library (random placement, surrogate
/// benchmark generation, property tests) takes an explicit Rng so results
/// are reproducible from a seed.  xoshiro256** is small, fast, and passes
/// BigCrush; seeding goes through SplitMix64 as its authors recommend.
#pragma once

#include <cstdint>
#include <vector>

namespace leqa::util {

/// xoshiro256** engine with convenience sampling helpers.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seed via SplitMix64 expansion of \p seed.
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /// Raw 64 random bits.
    std::uint64_t next();

    /// UniformRandomBitGenerator interface (usable with <algorithm>).
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }
    result_type operator()() { return next(); }

    /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Uniform size_t in [0, n).  Requires n > 0.
    std::size_t index(std::size_t n);

    /// Uniform double in [0, 1).
    double uniform();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Bernoulli trial with probability \p p of returning true.
    bool chance(double p);

    /// Exponentially distributed sample with the given rate (mean 1/rate).
    double exponential(double rate);

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& values) {
        for (std::size_t i = values.size(); i > 1; --i) {
            const std::size_t j = index(i);
            std::swap(values[i - 1], values[j]);
        }
    }

    /// Sample k distinct indices from [0, n) without replacement (k <= n).
    std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

private:
    std::uint64_t state_[4];
};

} // namespace leqa::util

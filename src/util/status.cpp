#include "util/status.h"

#include <array>

namespace leqa::util {

namespace {

constexpr std::size_t kCodeCount = 8;

const std::array<std::string, kCodeCount>& code_names() {
    static const std::array<std::string, kCodeCount> names = {
        "Ok",        "InvalidArgument",  "ParseError",  "NotFound",
        "Cancelled", "DeadlineExceeded", "Unavailable", "Internal",
    };
    return names;
}

} // namespace

const std::string& status_code_name(StatusCode code) {
    const auto index = static_cast<std::size_t>(code);
    if (index >= kCodeCount) {
        throw InternalError("status_code_name: unknown code " + std::to_string(index));
    }
    return code_names()[index];
}

std::optional<StatusCode> parse_status_code(const std::string& name) {
    for (std::size_t i = 0; i < kCodeCount; ++i) {
        if (code_names()[i] == name) return static_cast<StatusCode>(i);
    }
    return std::nullopt;
}

bool status_code_retryable(StatusCode code) {
    return code == StatusCode::Unavailable;
}

std::string Status::to_string() const {
    if (ok()) return "Ok";
    std::string text = status_code_name(code_) + ": " + message_;
    if (!origin_.empty()) text += " (at " + origin_ + ")";
    return text;
}

Status status_from_exception(const std::exception_ptr& error, std::string origin) {
    // Most-derived first: ParseError/NotFoundError are InputErrors too.
    try {
        std::rethrow_exception(error);
    } catch (const ParseError& e) {
        return {StatusCode::ParseError, e.what(), std::move(origin)};
    } catch (const NotFoundError& e) {
        return {StatusCode::NotFound, e.what(), std::move(origin)};
    } catch (const InputError& e) {
        return {StatusCode::InvalidArgument, e.what(), std::move(origin)};
    } catch (const CancelledError& e) {
        return {StatusCode::Cancelled, e.what(), std::move(origin)};
    } catch (const DeadlineError& e) {
        return {StatusCode::DeadlineExceeded, e.what(), std::move(origin)};
    } catch (const UnavailableError& e) {
        return {StatusCode::Unavailable, e.what(), std::move(origin)};
    } catch (const std::exception& e) {
        return {StatusCode::Internal, e.what(), std::move(origin)};
    } catch (...) {
        return {StatusCode::Internal, "unknown exception", std::move(origin)};
    }
}

void throw_status(const Status& status) {
    switch (status.code()) {
        case StatusCode::Ok:
            throw InternalError("throw_status called with an OK status");
        case StatusCode::InvalidArgument:
            throw InputError(status.message());
        case StatusCode::ParseError:
            throw ParseError(status.message());
        case StatusCode::NotFound:
            throw NotFoundError(status.message());
        case StatusCode::Cancelled:
            throw CancelledError(status.message());
        case StatusCode::DeadlineExceeded:
            throw DeadlineError(status.message());
        case StatusCode::Unavailable:
            throw UnavailableError(status.message());
        case StatusCode::Internal:
            break;
    }
    throw InternalError(status.message());
}

} // namespace leqa::util

/// \file status.h
/// \brief Non-throwing boundary error model: Status codes and Result<T>.
///
/// The library core stays exception-based (util/error.h); the *service*
/// boundary never lets an exception escape.  `Status` carries a coarse
/// machine-readable code, a human-readable message, and the origin stage
/// that failed ("resolve", "estimate", "map", ...).  `Result<T>` is either
/// a value or a non-OK Status.  `status_from_exception` performs the single
/// exception-to-code mapping the whole boundary shares:
///
///   ParseError            -> ParseError          (malformed netlist / JSON)
///   NotFoundError         -> NotFound            (missing file / bench / job)
///   InputError            -> InvalidArgument     (failed validation)
///   CancelledError        -> Cancelled
///   DeadlineError         -> DeadlineExceeded
///   UnavailableError      -> Unavailable        (bounded queue full; retry)
///   anything else         -> Internal
#pragma once

#include <exception>
#include <optional>
#include <string>
#include <utility>

#include "util/error.h"

namespace leqa::util {

/// Machine-readable failure class carried across the service boundary.
enum class StatusCode {
    Ok,
    InvalidArgument,  ///< input failed validation (bad params, bad request)
    ParseError,       ///< malformed text (netlist syntax, wire JSON)
    NotFound,         ///< named thing does not exist (file, bench, job id)
    Cancelled,        ///< the job was cancelled before or between stages
    DeadlineExceeded, ///< the job's deadline passed before it finished
    Unavailable,      ///< temporarily overloaded (queue full) -- retryable
    Internal,         ///< invariant violation or unexpected exception
};

/// True for codes a client may retry verbatim after a backoff (today only
/// Unavailable: the request was fine, the service was momentarily full).
[[nodiscard]] bool status_code_retryable(StatusCode code);

/// Stable wire name of a code (e.g. "InvalidArgument").
[[nodiscard]] const std::string& status_code_name(StatusCode code);

/// Inverse of status_code_name; nullopt for unknown names.
[[nodiscard]] std::optional<StatusCode> parse_status_code(const std::string& name);

/// Code + message + origin stage.  Default-constructed Status is OK.
class Status {
public:
    Status() = default;
    Status(StatusCode code, std::string message, std::string origin = "")
        : code_(code), message_(std::move(message)), origin_(std::move(origin)) {}

    [[nodiscard]] bool ok() const { return code_ == StatusCode::Ok; }
    [[nodiscard]] StatusCode code() const { return code_; }
    [[nodiscard]] const std::string& message() const { return message_; }
    /// Pipeline/service stage the failure originated in ("resolve",
    /// "estimate", "map", "queue", "wire", ...); empty when unknown.
    [[nodiscard]] const std::string& origin() const { return origin_; }

    /// "Ok" or "<Code>: <message> [at <origin>]".
    [[nodiscard]] std::string to_string() const;

    [[nodiscard]] bool operator==(const Status&) const = default;

private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
    std::string origin_;
};

/// The boundary's exception-to-Status mapping (see file comment).
[[nodiscard]] Status status_from_exception(const std::exception_ptr& error,
                                           std::string origin = "");

/// Rethrow a non-OK Status as the closest matching util exception type
/// (the inverse mapping, for thin throwing back-compat wrappers).
[[noreturn]] void throw_status(const Status& status);

/// Either a T or a non-OK Status.  Accessing value() on a failed Result
/// throws InternalError (a misuse bug, not a recoverable condition).
template <typename T>
class Result {
public:
    Result(T value) : value_(std::move(value)) {} // NOLINT(google-explicit-constructor)
    Result(Status status) : status_(std::move(status)) { // NOLINT
        if (status_.ok()) {
            throw InternalError("Result constructed from an OK Status without a value");
        }
    }

    [[nodiscard]] bool ok() const { return status_.ok(); }
    [[nodiscard]] const Status& status() const { return status_; }

    [[nodiscard]] const T& value() const& {
        require_ok();
        return *value_;
    }
    [[nodiscard]] T& value() & {
        require_ok();
        return *value_;
    }
    [[nodiscard]] T&& value() && {
        require_ok();
        return std::move(*value_);
    }

    [[nodiscard]] const T& operator*() const& { return value(); }
    [[nodiscard]] const T* operator->() const { return &value(); }

private:
    void require_ok() const {
        if (!status_.ok()) {
            throw InternalError("Result::value() on failed result: " +
                                status_.to_string());
        }
    }

    Status status_;          ///< OK iff value_ holds the payload
    std::optional<T> value_;
};

} // namespace leqa::util

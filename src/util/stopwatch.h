/// \file stopwatch.h
/// \brief Wall-clock stopwatch used by the runtime-comparison benches.
#pragma once

#include <chrono>

namespace leqa::util {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
public:
    Stopwatch() : start_(clock::now()) {}

    /// Restart the stopwatch.
    void reset() { start_ = clock::now(); }

    /// Elapsed seconds since construction / last reset.
    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    /// Elapsed milliseconds.
    [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

} // namespace leqa::util

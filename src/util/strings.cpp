#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace leqa::util {

namespace {
bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
} // namespace

std::string trim(std::string_view text) {
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && is_space(text[begin])) ++begin;
    while (end > begin && is_space(text[end - 1])) --end;
    return std::string(text.substr(begin, end - begin));
}

std::string to_lower(std::string_view text) {
    std::string out(text);
    for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
    std::vector<std::string> parts;
    std::size_t begin = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == sep) {
            parts.emplace_back(text.substr(begin, i - begin));
            begin = i + 1;
        }
    }
    return parts;
}

std::vector<std::string> split_whitespace(std::string_view text) {
    std::vector<std::string> parts;
    std::size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() && is_space(text[i])) ++i;
        const std::size_t begin = i;
        while (i < text.size() && !is_space(text[i])) ++i;
        if (i > begin) parts.emplace_back(text.substr(begin, i - begin));
    }
    return parts;
}

bool starts_with(std::string_view text, std::string_view prefix) {
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
    return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += sep;
        out += parts[i];
    }
    return out;
}

std::optional<long long> parse_int(std::string_view text) {
    const std::string trimmed = trim(text);
    if (trimmed.empty()) return std::nullopt;
    long long value = 0;
    const char* begin = trimmed.data();
    const char* end = begin + trimmed.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr != end) return std::nullopt;
    return value;
}

std::optional<double> parse_double(std::string_view text) {
    const std::string trimmed = trim(text);
    if (trimmed.empty()) return std::nullopt;
    // std::from_chars for double is available in libstdc++ 11+.
    double value = 0.0;
    const char* begin = trimmed.data();
    const char* end = begin + trimmed.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr != end) return std::nullopt;
    return value;
}

std::string format_double(double value, int significant_digits) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*g", significant_digits, value);
    return buffer;
}

std::string format_scientific(double value, int mantissa_digits) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*E", mantissa_digits, value);
    return buffer;
}

bool is_identifier(std::string_view text) {
    if (text.empty()) return false;
    const char first = text[0];
    if (!(std::isalpha(static_cast<unsigned char>(first)) || first == '_')) return false;
    for (char c : text) {
        if (std::isalnum(static_cast<unsigned char>(c))) continue;
        switch (c) {
            case '_': case '^': case '.': case '[': case ']': case '-': continue;
            default: return false;
        }
    }
    return true;
}

} // namespace leqa::util

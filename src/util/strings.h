/// \file strings.h
/// \brief Small string utilities shared by the parsers and CLI tools.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace leqa::util {

/// Remove leading and trailing ASCII whitespace.
[[nodiscard]] std::string trim(std::string_view text);

/// Lower-case ASCII copy.
[[nodiscard]] std::string to_lower(std::string_view text);

/// Split on a single character; empty fields are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Split on any run of ASCII whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string> split_whitespace(std::string_view text);

[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix);

/// Join strings with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strict parsers: the whole string must be consumed, otherwise nullopt.
[[nodiscard]] std::optional<long long> parse_int(std::string_view text);
[[nodiscard]] std::optional<double> parse_double(std::string_view text);

/// Format a double with %.*g style precision.
[[nodiscard]] std::string format_double(double value, int significant_digits = 6);

/// Scientific notation with fixed mantissa digits, e.g. 1.617E+00.
[[nodiscard]] std::string format_scientific(double value, int mantissa_digits = 3);

/// True if \p text is a valid identifier: [A-Za-z_][A-Za-z0-9_^.\[\]-]*.
/// The permissive tail matches benchmark names such as "gf2^16mult".
[[nodiscard]] bool is_identifier(std::string_view text);

} // namespace leqa::util

#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"

namespace leqa::util {

Table::Table(std::vector<std::string> headers, std::vector<Align> alignments)
    : headers_(std::move(headers)), alignments_(std::move(alignments)) {
    LEQA_REQUIRE(!headers_.empty(), "table must have at least one column");
    if (alignments_.empty()) {
        // Default: first column left, the rest right (typical numeric table).
        alignments_.assign(headers_.size(), Align::Right);
        alignments_[0] = Align::Left;
    }
    LEQA_REQUIRE(alignments_.size() == headers_.size(),
                 "alignment count must match header count");
}

void Table::add_row(std::vector<std::string> cells) {
    LEQA_REQUIRE(cells.size() == headers_.size(),
                 "row width must match header count");
    rows_.push_back(std::move(cells));
}

void Table::add_separator() { rows_.emplace_back(); }

std::string Table::to_string() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    const auto render_cell = [&](const std::string& text, std::size_t c) {
        std::string out;
        const std::size_t pad = widths[c] - text.size();
        if (alignments_[c] == Align::Right) out.append(pad, ' ');
        out += text;
        if (alignments_[c] == Align::Left) out.append(pad, ' ');
        return out;
    };

    const auto rule = [&] {
        std::string line = "+";
        for (const std::size_t w : widths) {
            line.append(w + 2, '-');
            line += '+';
        }
        line += '\n';
        return line;
    }();

    std::ostringstream out;
    out << rule << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        out << ' ' << render_cell(headers_[c], c) << " |";
    }
    out << '\n' << rule;
    for (const auto& row : rows_) {
        if (row.empty()) {
            out << rule;
            continue;
        }
        out << '|';
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << ' ' << render_cell(row[c], c) << " |";
        }
        out << '\n';
    }
    out << rule;
    return out.str();
}

std::string csv_escape(const std::string& field) {
    const bool needs_quotes =
        field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes) return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"') out += "\"\"";
        else out += c;
    }
    out += '"';
    return out;
}

std::string Table::to_csv() const {
    std::ostringstream out;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        if (c > 0) out << ',';
        out << csv_escape(headers_[c]);
    }
    out << '\n';
    for (const auto& row : rows_) {
        if (row.empty()) continue;
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0) out << ',';
            out << csv_escape(row[c]);
        }
        out << '\n';
    }
    return out.str();
}

} // namespace leqa::util

/// \file table.h
/// \brief Console table / CSV formatting used by the bench harnesses to
///        print paper-style result tables.
#pragma once

#include <string>
#include <vector>

namespace leqa::util {

enum class Align { Left, Right };

/// A simple column-aligned text table.
///
/// Usage:
///   Table t({"Benchmark", "Actual (s)", "Estimated (s)", "Error (%)"});
///   t.add_row({"8bitadder", "1.617E+00", "1.667E+00", "3.10"});
///   std::cout << t.to_string();
class Table {
public:
    explicit Table(std::vector<std::string> headers,
                   std::vector<Align> alignments = {});

    /// Append one row; must have the same number of cells as headers.
    void add_row(std::vector<std::string> cells);

    /// Append a horizontal separator row.
    void add_separator();

    [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

    /// Render with ASCII separators.
    [[nodiscard]] std::string to_string() const;

    /// Render as CSV (RFC-4180-ish quoting).
    [[nodiscard]] std::string to_csv() const;

private:
    std::vector<std::string> headers_;
    std::vector<Align> alignments_;
    std::vector<std::vector<std::string>> rows_; // empty vector => separator
};

/// Quote a CSV field if needed.
[[nodiscard]] std::string csv_escape(const std::string& field);

} // namespace leqa::util

/// \file thread_annotations.h
/// \brief Clang capability-analysis wrappers over the std synchronization
///        primitives, plus the LEQA_* annotation macros.
///
/// `clang++ -Wthread-safety` proves a locking discipline at compile time,
/// but only over types that carry capability attributes -- std::mutex does
/// not.  This header provides the annotated vocabulary the concurrent
/// subsystems (service, net, pipeline, core/explore) are written in:
///
///   - `util::Mutex`: std::mutex with the `capability("mutex")` attribute,
///     so fields can be declared `LEQA_GUARDED_BY(mutex_)` and functions
///     `LEQA_REQUIRES(mutex_)`;
///   - `util::MutexLock`: the scoped (RAII) acquisition the analysis
///     understands -- the annotated replacement for std::lock_guard and for
///     std::unique_lock where no condition variable is involved;
///   - `util::CondVar`: std::condition_variable bound to util::Mutex;
///     `wait`/`wait_until` declare `LEQA_REQUIRES(mutex)` so a wait outside
///     the lock is a compile error.  Waits are written as explicit
///     while-loops at the call sites (not predicate lambdas): the analysis
///     treats a lambda body as a separate function, so a predicate reading
///     guarded state inside `wait(lock, pred)` cannot be proven.
///
/// On GCC (and any compiler without the attributes) every macro compiles
/// away and the wrappers collapse to their std equivalents, so the
/// annotations cost nothing outside clang builds.  The analysis itself is
/// enabled by the build: CMake adds `-Wthread-safety` whenever the compiler
/// is clang, and CI runs that configuration with `-Werror`.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define LEQA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LEQA_THREAD_ANNOTATION(x) // not supported: annotations compile away
#endif

/// The capability a mutex-like type provides.
#define LEQA_CAPABILITY(x) LEQA_THREAD_ANNOTATION(capability(x))
/// An RAII type that acquires on construction and releases on destruction.
#define LEQA_SCOPED_CAPABILITY LEQA_THREAD_ANNOTATION(scoped_lockable)
/// Field access requires holding the given mutex.
#define LEQA_GUARDED_BY(x) LEQA_THREAD_ANNOTATION(guarded_by(x))
/// Dereferencing this pointer requires holding the given mutex (the pointer
/// itself may be read freely).
#define LEQA_PT_GUARDED_BY(x) LEQA_THREAD_ANNOTATION(pt_guarded_by(x))
/// The function must be called with the given mutex(es) held.
#define LEQA_REQUIRES(...) \
    LEQA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// The function acquires the given mutex(es) and does not release them.
#define LEQA_ACQUIRE(...) \
    LEQA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// The function releases the given mutex(es) (held on entry).
#define LEQA_RELEASE(...) \
    LEQA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// The function acquires the mutex only when it returns the given value.
#define LEQA_TRY_ACQUIRE(...) \
    LEQA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// The function must be called with the given mutex(es) NOT held (it will
/// acquire them itself; catches self-deadlock at compile time).
#define LEQA_EXCLUDES(...) LEQA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// The function returns a reference to the mutex guarding its result.
#define LEQA_RETURN_CAPABILITY(x) LEQA_THREAD_ANNOTATION(lock_returned(x))
/// Opt one function out of the analysis.  Reserved for test helpers; the
/// production subsystems must not use it (the CI contract greps for it).
#define LEQA_NO_THREAD_SAFETY_ANALYSIS \
    LEQA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace leqa::util {

class CondVar;

/// std::mutex carrying the clang capability attribute.  Same cost, same
/// semantics; the analysis can now prove which locks guard which fields.
class LEQA_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() LEQA_ACQUIRE() { mutex_.lock(); }
    void unlock() LEQA_RELEASE() { mutex_.unlock(); }
    [[nodiscard]] bool try_lock() LEQA_TRY_ACQUIRE(true) {
        return mutex_.try_lock();
    }

private:
    friend class CondVar; ///< waits need the raw handle; nobody else does
    std::mutex mutex_;
};

/// Scoped acquisition (the std::lock_guard / std::scoped_lock shape) the
/// analysis tracks: construction acquires, destruction releases.
class LEQA_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mutex) LEQA_ACQUIRE(mutex) : mutex_(mutex) {
        mutex_.lock();
    }
    ~MutexLock() LEQA_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    Mutex& mutex_;
};

/// Condition variable bound to util::Mutex.  The waits declare that the
/// mutex is held, so the `while (!condition) cv.wait(mutex);` discipline is
/// machine-checked: the condition read and the wait both require the lock.
class CondVar {
public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

    /// Atomically release \p mutex, block, reacquire.  Spurious wakeups
    /// happen; always call in a while-loop over the guarded condition.
    void wait(Mutex& mutex) LEQA_REQUIRES(mutex) {
        // Adopt the already-held std::mutex for the wait, then release the
        // unique_lock's ownership claim so the caller's scoped lock stays
        // the one true owner.  The capability never actually changes hands.
        std::unique_lock<std::mutex> handoff(mutex.mutex_, std::adopt_lock);
        cv_.wait(handoff);
        handoff.release();
    }

    /// wait() with a deadline; returns true when the deadline passed (the
    /// caller's while-loop then re-checks the condition one last time).
    template <typename Clock, typename Duration>
    [[nodiscard]] bool wait_until(
        Mutex& mutex, const std::chrono::time_point<Clock, Duration>& deadline)
        LEQA_REQUIRES(mutex) {
        std::unique_lock<std::mutex> handoff(mutex.mutex_, std::adopt_lock);
        const std::cv_status status = cv_.wait_until(handoff, deadline);
        handoff.release();
        return status == std::cv_status::timeout;
    }

private:
    std::condition_variable cv_;
};

} // namespace leqa::util
